//! Workspace-level property-based tests (proptest) on the invariants
//! DESIGN.md promises.
//!
//! Gated behind the `proptest` feature because the offline build
//! environment cannot fetch the `proptest` crate; enabling the feature
//! requires registry access and re-adding the dev-dependency. The same
//! invariants run unconditionally, with the in-tree RNG, in
//! `tests/invariants.rs`.
#![cfg(feature = "proptest")]

use proptest::prelude::*;

use fbt::bist::{Lfsr, Misr, Tpg, TpgSpec};
use fbt::fault::{all_transition_faults, BroadsideTest};
use fbt::netlist::synth::CircuitSpec;
use fbt::netlist::{synth, Netlist};
use fbt::sim::seq::simulate_sequence;
use fbt::sim::{tv, Bits, Trit};

fn arb_bits(len: usize) -> impl Strategy<Value = Bits> {
    prop::collection::vec(any::<bool>(), len).prop_map(|v| Bits::from_bools(&v))
}

fn small_circuit() -> impl Strategy<Value = Netlist> {
    (2usize..6, 1usize..4, 2usize..8, 20usize..80, any::<u64>()).prop_map(
        |(pi, po, ff, gates, seed)| {
            let mut spec = CircuitSpec::new("prop", pi, po, ff, gates);
            spec.seed = seed;
            synth::generate(&spec)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// 3-valued simulation refines 2-valued simulation: wherever the
    /// 3-valued result is specified, it matches the boolean result.
    #[test]
    fn tv_sim_refines_binary_sim(net in small_circuit(), seed in any::<u64>()) {
        let mut rng = fbt::netlist::rng::Rng::new(seed);
        let pi_b: Vec<bool> = (0..net.num_inputs()).map(|_| rng.bit()).collect();
        let st_b: Vec<bool> = (0..net.num_dffs()).map(|_| rng.bit()).collect();
        // Randomly X out some entries.
        let pi_t: Vec<Trit> = pi_b.iter().map(|&b| if rng.chance(1, 3) { Trit::X } else { Trit::from_bool(b) }).collect();
        let st_t: Vec<Trit> = st_b.iter().map(|&b| if rng.chance(1, 3) { Trit::X } else { Trit::from_bool(b) }).collect();
        let (tvals, _) = tv::simulate_frame_tv(&net, &pi_t, &st_t);

        let mut bvals = vec![false; net.num_nodes()];
        for (v, &id) in pi_b.iter().zip(net.inputs()) { bvals[id.index()] = *v; }
        for (v, &id) in st_b.iter().zip(net.dffs()) { bvals[id.index()] = *v; }
        fbt::sim::comb::eval_scalar(&net, &mut bvals);
        for id in net.node_ids() {
            if let Some(v) = tvals[id.index()].to_bool() {
                prop_assert_eq!(v, bvals[id.index()], "node {}", net.node_name(id));
            }
        }
    }

    /// Broadside tests extracted from a trajectory always have on-trajectory
    /// scan-in states and matching implied second states.
    #[test]
    fn extracted_tests_are_functional(net in small_circuit(), seed in any::<u64>()) {
        let spec = TpgSpec::standard(fbt::bist::cube::input_cube(&net));
        let mut tpg = Tpg::new(spec, seed);
        let pis = tpg.sequence(24);
        let init = Bits::zeros(net.num_dffs());
        let traj = simulate_sequence(&net, &init, &pis);
        let tests = fbt::core::extract::functional_tests(&pis, &traj.states);
        for (k, t) in tests.iter().enumerate() {
            prop_assert_eq!(&t.scan_in, &traj.states[2 * k]);
            prop_assert_eq!(t.second_state(&net), traj.states[2 * k + 1].clone());
        }
    }

    /// The LFSR never reaches the all-zero state from any seed.
    #[test]
    fn lfsr_avoids_zero(width in 2u32..20, seed in any::<u64>()) {
        let mut l = Lfsr::new(width, seed).unwrap();
        for _ in 0..500 {
            l.step();
            prop_assert_ne!(l.state(), 0);
        }
    }

    /// MISR signatures distinguish single-bit response differences.
    #[test]
    fn misr_detects_single_flip(
        responses in prop::collection::vec(arb_bits(12), 1..8),
        flip_cycle in any::<prop::sample::Index>(),
        flip_bit in 0usize..12,
    ) {
        let fc = flip_cycle.index(responses.len());
        let mut good = Misr::new(16);
        let mut bad = Misr::new(16);
        for (c, r) in responses.iter().enumerate() {
            good.absorb(r);
            let mut r2 = r.clone();
            if c == fc {
                r2.set(flip_bit, !r2.get(flip_bit));
            }
            bad.absorb(&r2);
        }
        prop_assert_ne!(good.signature(), bad.signature());
    }

    /// Fault simulation detection is monotone in the test set: a superset of
    /// tests never detects fewer faults.
    #[test]
    fn fault_sim_monotone(net in small_circuit(), seed in any::<u64>()) {
        let mut rng = fbt::netlist::rng::Rng::new(seed);
        let faults = all_transition_faults(&net);
        let mk = |rng: &mut fbt::netlist::rng::Rng| BroadsideTest::new(
            (0..net.num_dffs()).map(|_| rng.bit()).collect(),
            (0..net.num_inputs()).map(|_| rng.bit()).collect(),
            (0..net.num_inputs()).map(|_| rng.bit()).collect(),
        );
        let tests: Vec<BroadsideTest> = (0..24).map(|_| mk(&mut rng)).collect();
        use fbt::fault::{FaultSimEngine, FaultSimOptions, TestSet};
        let mut fsim = fbt::fault::SerialSim::new(&net);
        let mut det_half = vec![false; faults.len()];
        fsim.simulate(
            TestSet::Broadside(&tests[..12]),
            &faults,
            &mut det_half,
            &FaultSimOptions::new(),
        );
        let mut det_full = vec![false; faults.len()];
        fsim.simulate(
            TestSet::Broadside(&tests),
            &faults,
            &mut det_full,
            &FaultSimOptions::new(),
        );
        for (h, f) in det_half.iter().zip(&det_full) {
            prop_assert!(!h || *f, "superset lost a detection");
        }
    }

    /// Trajectory switching activity is always within [0, 1], and the
    /// recorded states chain consistently (s(i+1) is the response to
    /// (s(i), p(i))).
    #[test]
    fn trajectory_consistency(net in small_circuit(), seed in any::<u64>()) {
        let spec = TpgSpec::standard(fbt::bist::cube::input_cube(&net));
        let pis = Tpg::new(spec, seed).sequence(16);
        let init = Bits::zeros(net.num_dffs());
        let traj = simulate_sequence(&net, &init, &pis);
        for s in traj.swa.iter().flatten() {
            prop_assert!(*s >= 0.0 && *s <= 1.0);
        }
        for (i, p) in pis.iter().enumerate() {
            let t = BroadsideTest::new(traj.states[i].clone(), p.clone(), p.clone());
            prop_assert_eq!(t.second_state(&net), traj.states[i + 1].clone());
        }
    }

    /// Collapsing never loses detection information: a test detects some
    /// fault of the full list iff it detects some representative.
    #[test]
    fn collapse_preserves_detection(net in small_circuit(), seed in any::<u64>()) {
        let mut rng = fbt::netlist::rng::Rng::new(seed);
        let full = all_transition_faults(&net);
        let reps = fbt::fault::collapse(&net, &full);
        let t = BroadsideTest::new(
            (0..net.num_dffs()).map(|_| rng.bit()).collect(),
            (0..net.num_inputs()).map(|_| rng.bit()).collect(),
            (0..net.num_inputs()).map(|_| rng.bit()).collect(),
        );
        use fbt::fault::FaultSimEngine;
        let mut fsim = fbt::fault::SerialSim::new(&net);
        let full_detected: usize = full.iter().filter(|f| fsim.detects(&t, f)).count();
        let reps_detected: usize = reps.iter().filter(|f| fsim.detects(&t, f)).count();
        // Representatives are equivalent to their class: the count over the
        // full list equals the count over classes weighted by class size,
        // so "any detected" agrees.
        prop_assert_eq!(full_detected > 0, reps_detected > 0);
    }
}
