//! Deterministic ports of the property-based tests in `tests/properties.rs`,
//! driven by the in-tree RNG so they run in the offline build environment
//! (the proptest originals are gated behind the `proptest` feature).
//!
//! Each test sweeps a fixed number of randomly generated circuits and
//! stimulus sets from fixed seeds, checking the invariants DESIGN.md
//! promises.

use fbt::bist::{Lfsr, Misr, Tpg, TpgSpec};
use fbt::fault::{
    all_transition_faults, BroadsideTest, FaultSimEngine, FaultSimOptions, SerialSim, TestSet,
};
use fbt::netlist::rng::Rng;
use fbt::netlist::synth::CircuitSpec;
use fbt::netlist::{synth, Netlist};
use fbt::sim::seq::simulate_sequence;
use fbt::sim::{tv, Bits, Trit};

/// Derive a small random circuit from one RNG draw, mirroring the ranges
/// the proptest strategy uses.
fn small_circuit(rng: &mut Rng) -> Netlist {
    let pi = 2 + (rng.next_u64() % 4) as usize; // 2..6
    let po = 1 + (rng.next_u64() % 3) as usize; // 1..4
    let ff = 2 + (rng.next_u64() % 6) as usize; // 2..8
    let gates = 20 + (rng.next_u64() % 60) as usize; // 20..80
    let mut spec = CircuitSpec::new("invariant", pi, po, ff, gates);
    spec.seed = rng.next_u64();
    synth::generate(&spec)
}

fn random_bits(rng: &mut Rng, len: usize) -> Bits {
    (0..len).map(|_| rng.bit()).collect()
}

/// 3-valued simulation refines 2-valued simulation: wherever the 3-valued
/// result is specified, it matches the boolean result.
#[test]
fn tv_sim_refines_binary_sim() {
    let mut rng = Rng::new(0x7111);
    for _ in 0..40 {
        let net = small_circuit(&mut rng);
        let pi_b: Vec<bool> = (0..net.num_inputs()).map(|_| rng.bit()).collect();
        let st_b: Vec<bool> = (0..net.num_dffs()).map(|_| rng.bit()).collect();
        // Randomly X out some entries.
        let x_out = |rng: &mut Rng, b: bool| {
            if rng.chance(1, 3) {
                Trit::X
            } else {
                Trit::from_bool(b)
            }
        };
        let pi_t: Vec<Trit> = pi_b.iter().map(|&b| x_out(&mut rng, b)).collect();
        let st_t: Vec<Trit> = st_b.iter().map(|&b| x_out(&mut rng, b)).collect();
        let (tvals, _) = tv::simulate_frame_tv(&net, &pi_t, &st_t);

        let mut bvals = vec![false; net.num_nodes()];
        for (v, &id) in pi_b.iter().zip(net.inputs()) {
            bvals[id.index()] = *v;
        }
        for (v, &id) in st_b.iter().zip(net.dffs()) {
            bvals[id.index()] = *v;
        }
        fbt::sim::comb::eval_scalar(&net, &mut bvals);
        for id in net.node_ids() {
            if let Some(v) = tvals[id.index()].to_bool() {
                assert_eq!(v, bvals[id.index()], "node {}", net.node_name(id));
            }
        }
    }
}

/// Broadside tests extracted from a trajectory always have on-trajectory
/// scan-in states and matching implied second states.
#[test]
fn extracted_tests_are_functional() {
    let mut rng = Rng::new(0x7222);
    for _ in 0..25 {
        let net = small_circuit(&mut rng);
        let spec = TpgSpec::standard(fbt::bist::cube::input_cube(&net));
        let mut tpg = Tpg::new(spec, rng.next_u64());
        let pis = tpg.sequence(24);
        let init = Bits::zeros(net.num_dffs());
        let traj = simulate_sequence(&net, &init, &pis);
        let tests = fbt::core::extract::functional_tests(&pis, &traj.states);
        for (k, t) in tests.iter().enumerate() {
            assert_eq!(&t.scan_in, &traj.states[2 * k]);
            assert_eq!(t.second_state(&net), traj.states[2 * k + 1].clone());
        }
    }
}

/// The LFSR never reaches the all-zero state from any seed.
#[test]
fn lfsr_avoids_zero() {
    let mut rng = Rng::new(0x7333);
    for width in 2u32..20 {
        for _ in 0..4 {
            let mut l = Lfsr::new(width, rng.next_u64()).unwrap();
            for _ in 0..500 {
                l.step();
                assert_ne!(l.state(), 0, "width {width}");
            }
        }
    }
}

/// MISR signatures distinguish single-bit response differences.
#[test]
fn misr_detects_single_flip() {
    let mut rng = Rng::new(0x7444);
    for _ in 0..60 {
        let n_resp = 1 + (rng.next_u64() % 7) as usize;
        let responses: Vec<Bits> = (0..n_resp).map(|_| random_bits(&mut rng, 12)).collect();
        let fc = (rng.next_u64() as usize) % n_resp;
        let flip_bit = (rng.next_u64() as usize) % 12;
        let mut good = Misr::new(16);
        let mut bad = Misr::new(16);
        for (c, r) in responses.iter().enumerate() {
            good.absorb(r);
            let mut r2 = r.clone();
            if c == fc {
                r2.set(flip_bit, !r2.get(flip_bit));
            }
            bad.absorb(&r2);
        }
        assert_ne!(good.signature(), bad.signature());
    }
}

/// Fault simulation detection is monotone in the test set: a superset of
/// tests never detects fewer faults.
#[test]
fn fault_sim_monotone() {
    let mut rng = Rng::new(0x7555);
    for _ in 0..25 {
        let net = small_circuit(&mut rng);
        let faults = all_transition_faults(&net);
        let tests: Vec<BroadsideTest> = (0..24)
            .map(|_| {
                BroadsideTest::new(
                    random_bits(&mut rng, net.num_dffs()),
                    random_bits(&mut rng, net.num_inputs()),
                    random_bits(&mut rng, net.num_inputs()),
                )
            })
            .collect();
        let mut fsim = SerialSim::new(&net);
        let mut det_half = vec![false; faults.len()];
        fsim.simulate(
            TestSet::Broadside(&tests[..12]),
            &faults,
            &mut det_half,
            &FaultSimOptions::new(),
        );
        let mut det_full = vec![false; faults.len()];
        fsim.simulate(
            TestSet::Broadside(&tests),
            &faults,
            &mut det_full,
            &FaultSimOptions::new(),
        );
        for (h, f) in det_half.iter().zip(&det_full) {
            assert!(!h || *f, "superset lost a detection");
        }
    }
}

/// Trajectory switching activity is always within [0, 1], and the recorded
/// states chain consistently (s(i+1) is the response to (s(i), p(i))).
#[test]
fn trajectory_consistency() {
    let mut rng = Rng::new(0x7666);
    for _ in 0..25 {
        let net = small_circuit(&mut rng);
        let spec = TpgSpec::standard(fbt::bist::cube::input_cube(&net));
        let pis = Tpg::new(spec, rng.next_u64()).sequence(16);
        let init = Bits::zeros(net.num_dffs());
        let traj = simulate_sequence(&net, &init, &pis);
        for s in traj.swa.iter().flatten() {
            assert!(*s >= 0.0 && *s <= 1.0);
        }
        for (i, p) in pis.iter().enumerate() {
            let t = BroadsideTest::new(traj.states[i].clone(), p.clone(), p.clone());
            assert_eq!(t.second_state(&net), traj.states[i + 1].clone());
        }
    }
}

/// Collapsing never loses detection information: a test detects some fault
/// of the full list iff it detects some representative.
#[test]
fn collapse_preserves_detection() {
    let mut rng = Rng::new(0x7777);
    for _ in 0..25 {
        let net = small_circuit(&mut rng);
        let full = all_transition_faults(&net);
        let reps = fbt::fault::collapse(&net, &full);
        let t = BroadsideTest::new(
            random_bits(&mut rng, net.num_dffs()),
            random_bits(&mut rng, net.num_inputs()),
            random_bits(&mut rng, net.num_inputs()),
        );
        let mut fsim = SerialSim::new(&net);
        let full_detected: usize = full.iter().filter(|f| fsim.detects(&t, f)).count();
        let reps_detected: usize = reps.iter().filter(|f| fsim.detects(&t, f)).count();
        // Representatives are equivalent to their class, so "any detected"
        // agrees between the full list and the collapsed one.
        assert_eq!(full_detected > 0, reps_detected > 0);
    }
}
