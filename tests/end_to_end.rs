//! Cross-crate integration tests: the complete flows a user of the library
//! would run, spanning netlist → simulation → fault models → BIST hardware →
//! the paper's generation methods.

use fbt::bist::holding::HoldSet;
use fbt::bist::{CycleCounter, Misr, Tpg, TpgSpec};
use fbt::core::driver::DrivingBlock;
use fbt::core::{
    generate_constrained, generate_unconstrained, improve_with_holding, swafunc,
    FunctionalBistConfig,
};
use fbt::fault::{FaultSimEngine, SerialSim};
use fbt::netlist::{s27, synth};
use fbt::sim::seq::{simulate_sequence, SeqSim};
use fbt::sim::Bits;

#[test]
fn full_unconstrained_flow_on_catalog_circuit() {
    let net = synth::generate(&synth::find("s298").unwrap());
    let cfg = FunctionalBistConfig {
        seq_len: 200,
        ..FunctionalBistConfig::smoke()
    };
    let out = generate_unconstrained(&net, &cfg);
    assert!(
        out.fault_coverage() > 30.0,
        "s298-class coverage too low: {:.1}%",
        out.fault_coverage()
    );
    // Every scan-in state of every applied test is reachable: replay each
    // kept seed's trajectory and verify the extracted states are traversed.
    let spec = TpgSpec {
        lfsr_width: cfg.lfsr_width,
        m: cfg.m,
        cube: fbt::bist::cube::input_cube(&net),
    };
    for &seed in &out.seeds {
        let pis = Tpg::new(spec.clone(), seed).sequence(cfg.seq_len);
        let traj = simulate_sequence(&net, &Bits::zeros(net.num_dffs()), &pis);
        let tests = fbt::core::extract::functional_tests(&pis, &traj.states);
        for (k, t) in tests.iter().enumerate() {
            assert_eq!(
                t.scan_in,
                traj.states[2 * k],
                "scan-in state off-trajectory"
            );
        }
    }
}

#[test]
fn constrained_flow_respects_functional_power_envelope() {
    let net = synth::generate(&synth::find("s386").unwrap());
    let cfg = FunctionalBistConfig::smoke();
    let driver_net = synth::generate(&synth::find("s953").unwrap());
    let driving = DrivingBlock::Circuit(driver_net);
    assert!(driving.can_drive(&net));
    let bound = swafunc(&net, &driving, &cfg);
    assert!(bound > 0.0 && bound < 1.0);
    let out = generate_constrained(&net, bound, &cfg);
    assert!(out.peak_swa <= bound + 1e-12);
    // The constrained run can only apply tests whose every cycle respects
    // the bound; verify against an independent replay.
    let tests = fbt::core::constrained::replay_tests(&net, &out, &cfg);
    assert_eq!(tests.len(), out.tests_applied);
}

#[test]
fn holding_flow_improves_or_preserves_coverage_under_bound() {
    let net = s27();
    let cfg = FunctionalBistConfig::smoke();
    let bound = swafunc(&net, &DrivingBlock::Buffers, &cfg) * 0.7;
    let base = generate_constrained(&net, bound, &cfg);
    let out = improve_with_holding(&net, bound, &cfg, &base);
    assert!(out.final_coverage() >= base.fault_coverage() - 1e-9);
    assert!(out.peak_swa <= bound + 1e-12);
    // The selected hold sets partition (a subset of) the flip-flops.
    let mut seen = vec![false; net.num_dffs()];
    for s in &out.sets {
        for &m in &s.members {
            assert!(!seen[m]);
            seen[m] = true;
        }
    }
}

#[test]
fn bist_hardware_applies_the_same_tests_the_software_model_predicts() {
    // Cycle-accurate agreement between the TPG hardware model and the
    // trajectory used for fault simulation: drive the circuit directly from
    // the TPG and compare with the recorded trajectory.
    let net = s27();
    let spec = TpgSpec::standard(fbt::bist::cube::input_cube(&net));
    let mut tpg = Tpg::new(spec.clone(), 0xBEEF);
    let pis = tpg.sequence(40);
    let traj = simulate_sequence(&net, &Bits::zeros(3), &pis);

    let mut tpg2 = Tpg::new(spec, 0xBEEF);
    let mut sim = SeqSim::new(&net, &Bits::zeros(3));
    let mut counter = CycleCounter::new();
    let mut misr = Misr::new(16);
    for (c, expected) in pis.iter().enumerate() {
        let v = tpg2.next_vector();
        assert_eq!(&v, expected, "TPG replay diverged at cycle {c}");
        let r = sim.step(&v);
        assert_eq!(
            r.next_state,
            traj.states[c + 1],
            "state diverged at cycle {c}"
        );
        if counter.test_apply(1) {
            misr.absorb(&r.outputs);
        }
        counter.tick();
    }
    // The MISR accumulated a deterministic signature.
    let sig = misr.signature();
    let mut misr2 = Misr::new(16);
    for (c, po) in traj.outputs.iter().enumerate() {
        if c % 2 == 0 {
            misr2.absorb(po);
        }
    }
    assert_eq!(sig, misr2.signature());
}

#[test]
fn faulty_circuit_changes_the_misr_signature() {
    // End-to-end BIST story: a detected fault must corrupt the signature
    // accumulated from test responses.
    let net = s27();
    let faults = fbt::fault::all_transition_faults(&net);
    let cfg = FunctionalBistConfig::smoke();
    let out = generate_unconstrained(&net, &cfg);
    let detected_idx = out
        .detected
        .iter()
        .position(|&d| d)
        .expect("something is detected");
    let fault = out.faults[detected_idx];
    let _ = faults;

    // Find a specific detecting test by replaying.
    let spec = TpgSpec {
        lfsr_width: cfg.lfsr_width,
        m: cfg.m,
        cube: fbt::bist::cube::input_cube(&net),
    };
    let mut fsim = SerialSim::new(&net);
    let mut found = None;
    for &seed in &out.seeds {
        let pis = Tpg::new(spec.clone(), seed).sequence(cfg.seq_len);
        let traj = simulate_sequence(&net, &Bits::zeros(3), &pis);
        let tests = fbt::core::extract::functional_tests(&pis, &traj.states);
        if let Some(t) = tests.iter().find(|t| fsim.detects(t, &fault)) {
            found = Some(t.clone());
            break;
        }
    }
    let test = found.expect("a detecting test exists among the kept seeds");
    // Good vs faulty response differ at the PO or in the captured state, so
    // a MISR absorbing both always diverges.
    let (good_po, good_s3) = test.response(&net);
    // Build the faulty response by forcing the fault's launch-frame effect:
    // simulate the faulty second frame via the fault simulator's semantics.
    // (The difference is already proven by `detects`; here we just check the
    // signature machinery is sensitive to any difference.)
    let mut m_good = Misr::new(16);
    m_good.absorb(&good_po);
    m_good.absorb(&good_s3);
    let mut m_bad = Misr::new(16);
    let mut flipped = good_po.clone();
    flipped.set(0, !flipped.get(0));
    m_bad.absorb(&flipped);
    m_bad.absorb(&good_s3);
    assert_ne!(m_good.signature(), m_bad.signature());
}

#[test]
fn hold_controller_masks_apply_in_sequence() {
    let ctl_sets = vec![HoldSet::new(vec![0, 2]), HoldSet::new(vec![1])];
    let mut ctl = fbt::bist::holding::HoldController::new(3, ctl_sets);
    let net = s27();
    let mut sim = SeqSim::new(&net, &Bits::from_str01("111"));
    // Hold set 0 ({0, 2}) on a hold-enabled cycle.
    let mask = ctl.mask();
    let r = sim.step_holding(&Bits::from_str01("0000"), Some(&mask));
    assert!(r.next_state.get(0));
    assert!(r.next_state.get(2));
    assert!(ctl.advance());
    assert_eq!(ctl.mask().to_string(), "010");
}
