//! Differential harness: every verdict of the SAT engine is cross-checked
//! against the independent fault-simulation engine.
//!
//! * Soundness — every test the SAT route produces must detect its target
//!   fault under [`fbt_fault::FaultSimEngine`] simulation;
//! * Completeness — on circuits small enough to enumerate every broadside
//!   test exhaustively, an UNSAT (untestable) verdict must agree with the
//!   enumeration, fault for fault;
//! * Determinism — repeating a run produces bit-identical solver statistics
//!   (decisions, conflicts, propagations), not merely the same verdicts.
//!
//! Runs deterministically from fixed seeds with the in-tree RNG so the
//! suite needs no external crates (the build environment is offline).

use fbt_fault::path::{enumerate_paths, tpdf_list};
use fbt_fault::{
    all_transition_faults, BroadsideTest, FaultSimEngine, FaultSimOptions, PackedParallelSim,
    SerialSim, TestSet,
};
use fbt_netlist::rng::Rng;
use fbt_netlist::synth::CircuitSpec;
use fbt_netlist::{s27, synth, Netlist};
use fbt_sat::{solve_tpdf, solve_transition_fault, DetectionVerdict, SolverStats};
use fbt_sim::Bits;

/// All `2^(ndff + 2·npi)` fully specified broadside tests of a circuit.
/// Only call on circuits where that number is small.
fn all_broadside_tests(net: &Netlist) -> Vec<BroadsideTest> {
    let nd = net.num_dffs();
    let np = net.num_inputs();
    assert!(nd + 2 * np <= 16, "circuit too large to enumerate");
    let bits = |a: u64, n: usize| -> Bits { (0..n).map(|i| (a >> i) & 1 == 1).collect() };
    (0..1u64 << (nd + 2 * np))
        .map(|a| BroadsideTest::new(bits(a, nd), bits(a >> nd, np), bits(a >> (nd + np), np)))
        .collect()
}

/// Ground-truth detectability per fault via exhaustive packed simulation.
fn exhaustive_detectability(net: &Netlist) -> Vec<bool> {
    let faults = all_transition_faults(net);
    let tests = all_broadside_tests(net);
    let mut detected = vec![false; faults.len()];
    PackedParallelSim::new(net).simulate(
        TestSet::Broadside(&tests),
        &faults,
        &mut detected,
        &FaultSimOptions::new(),
    );
    detected
}

/// SAT verdicts vs exhaustive enumeration plus simulation of every model,
/// on one circuit. Returns the accumulated solver statistics.
fn differential_check(net: &Netlist) -> SolverStats {
    let faults = all_transition_faults(net);
    let truth = exhaustive_detectability(net);
    let mut sim = SerialSim::new(net);
    let mut total = SolverStats::default();
    for (fault, &detectable) in faults.iter().zip(&truth) {
        let (verdict, stats) = solve_transition_fault(net, fault, None);
        total.absorb(&stats);
        match verdict {
            DetectionVerdict::Test(t) => {
                assert!(
                    sim.detects(&t, fault),
                    "SAT test fails to detect {fault} in simulation on {}",
                    net.name()
                );
                assert!(
                    detectable,
                    "SAT found a test for {fault} but exhaustive enumeration says \
                     no broadside test detects it on {}",
                    net.name()
                );
            }
            DetectionVerdict::Untestable => {
                assert!(
                    !detectable,
                    "SAT proved {fault} untestable but enumeration found a \
                     detecting test on {}",
                    net.name()
                );
            }
            DetectionVerdict::Unknown => panic!("no conflict limit was set"),
        }
    }
    total
}

#[test]
fn transition_fault_verdicts_match_enumeration_on_s27() {
    differential_check(&s27());
}

#[test]
fn transition_fault_verdicts_match_enumeration_on_random_circuits() {
    let mut rng = Rng::new(0x5A7_D1FF);
    for round in 0..6 {
        // Keep the enumeration space at or below 2^16 tests.
        let pi = 2 + (rng.next_u64() % 3) as usize; // 2..5
        let ff = 2 + (rng.next_u64() % 3) as usize; // 2..5
        let gates = 12 + (rng.next_u64() % 30) as usize;
        let mut spec = CircuitSpec::new("rand-sat-diff", pi, 2, ff, gates);
        spec.seed = rng.next_u64() ^ round;
        let net = synth::generate(&spec);
        differential_check(&net);
    }
}

#[test]
fn tpdf_tests_detect_all_their_transition_faults() {
    let net = s27();
    let faults = tpdf_list(&enumerate_paths(&net, usize::MAX));
    let mut sim = SerialSim::new(&net);
    let mut detected = 0usize;
    for f in &faults {
        if let (DetectionVerdict::Test(t), _) = solve_tpdf(&net, f, None) {
            for tf in f.transition_faults(&net) {
                assert!(
                    sim.detects(&t, &tf),
                    "TPDF test must detect every transition fault along its path"
                );
            }
            detected += 1;
        }
    }
    assert_eq!(detected, 23, "known s27 TPDF detection count");
}

#[test]
fn repeated_runs_have_identical_solver_statistics() {
    let net = s27();
    let a = differential_check(&net);
    let b = differential_check(&net);
    assert_eq!(
        a, b,
        "conflict/propagation/decision counts must be identical across runs"
    );
    assert!(a.conflicts > 0 || a.propagations > 0, "stats were recorded");
}
