//! Working with external circuits: read an ISCAS89 `.bench` file (here,
//! generated on the fly), insert it into the BIST flow, and write the
//! netlist back out.
//!
//! ```sh
//! cargo run --release --example bench_format -- [path/to/circuit.bench]
//! ```

use std::error::Error;

use fbt::bist::{cube, Tpg, TpgSpec};
use fbt::netlist::{bench, synth};

fn main() -> Result<(), Box<dyn Error>> {
    // Load a netlist: from the command line if given, else a catalog
    // circuit round-tripped through the .bench format.
    let net = match std::env::args().nth(1) {
        Some(path) => {
            let text = std::fs::read_to_string(&path)?;
            bench::parse(&text, &path)?
        }
        None => {
            let original = synth::generate(&synth::find("s344").unwrap());
            let text = bench::write(&original);
            println!("--- {} in .bench format (first lines) ---", original.name());
            for line in text.lines().take(10) {
                println!("{line}");
            }
            println!("...");
            bench::parse(&text, original.name())?
        }
    };
    println!("\nparsed: {net}");

    // The primary input cube C (paper §4.3): which inputs get biasing gates.
    let c = cube::input_cube(&net);
    let nsp = cube::specified_count(&c);
    println!(
        "input cube: {nsp} of {} inputs specified (NSP -> {nsp} biasing gates)",
        net.num_inputs()
    );

    // The TPG hardware this circuit would receive.
    let spec = TpgSpec::standard(c);
    println!(
        "TPG: {}-stage LFSR, m = {}, shift register of {} bits",
        spec.lfsr_width,
        spec.m,
        spec.shift_register_len()
    );
    let mut tpg = Tpg::new(spec, 0xACE1);
    println!(
        "first on-chip vectors: {} {} {}",
        tpg.next_vector(),
        tpg.next_vector(),
        tpg.next_vector()
    );
    Ok(())
}
