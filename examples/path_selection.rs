//! Critical-path selection refined by input necessary assignments
//! (Chapter 3): run traditional STA, recalculate delays under each fault's
//! detection conditions, and show how the ranking changes.
//!
//! ```sh
//! cargo run --release --example path_selection
//! ```

use fbt::netlist::synth;
use fbt::timing::{select_paths, DelayLibrary, PathSelectionConfig};

fn main() {
    let net = synth::generate(&synth::find("s386").unwrap());
    let lib = DelayLibrary::generic_018um();
    println!("circuit: {net}");
    println!("unit delay (inverter rise): {} ns", lib.unit());

    let sel = select_paths(&net, &lib, &PathSelectionConfig::for_n(12));
    println!(
        "initial Target_PDF: {} faults ({} undetectable skipped); final: {}",
        sel.initial_count,
        sel.undetectable_skipped,
        sel.target.len()
    );

    println!(
        "\n{:<6} {:>10} {:>10} {:>7}  path",
        "fault", "original", "final", "added"
    );
    for (i, f) in sel.target.iter().take(12).enumerate() {
        println!(
            "fp{:<4} {:>9.3}ns {:>9.3}ns {:>7}  {} ({})",
            i + 1,
            f.original_delay,
            f.final_delay,
            if f.added_during_recalculation {
                "new"
            } else {
                "-"
            },
            f.fault.path.display(&net),
            f.fault.source_transition
        );
    }

    // The headline property of §3.3: recalculated delays never increase,
    // so path ranks reorder and newly critical paths join the set.
    let demoted = sel
        .target
        .iter()
        .filter(|f| f.final_delay < f.original_delay - 1e-12)
        .count();
    let added = sel
        .target
        .iter()
        .filter(|f| f.added_during_recalculation)
        .count();
    println!("\n{demoted} faults had their delay reduced by the detection conditions;");
    println!("{added} faults entered the set only because of the recalculation.");
}
