//! From generated test program to on-chip execution: run a constrained test
//! program through the cycle-accurate hardware models (TPG, clock-cycle
//! counter, MISR, scan chains) and inspect the signature, the test-time
//! budget and the scan shift power.
//!
//! ```sh
//! cargo run --release --example hardware_session
//! ```

use fbt::bist::ScanChains;
use fbt::core::driver::DrivingBlock;
use fbt::core::run_on_hardware;
use fbt::netlist::synth;
use fbt::prelude::*;

fn main() {
    let net = synth::generate(&synth::find("s953").unwrap());
    let cfg = FunctionalBistConfig::scaled();
    println!("circuit: {net}");

    // Software view: generate the on-chip program.
    let bound = swafunc(&net, &DrivingBlock::Buffers, &cfg);
    let out = generate_constrained(&net, bound, &cfg);
    println!(
        "program: {} sequences, {} seeds, {} tests, coverage {:.2}%",
        out.nmulti(),
        out.nseeds(),
        out.tests_applied,
        out.fault_coverage()
    );

    // Hardware view: execute it cycle-accurately.
    let session = run_on_hardware(&net, &out, &cfg);
    assert_eq!(session.tests.len(), out.tests_applied);
    println!("\nhardware session:");
    println!("  fault-free MISR signature: {:#010x}", session.signature);
    println!("  total tester cycles:       {}", session.total_cycles);
    println!(
        "  cycles per applied test:   {:.1}",
        session.total_cycles as f64 / session.tests.len().max(1) as f64
    );
    println!(
        "  mean scan shift activity:  {:.2}%",
        session.mean_shift_activity * 100.0
    );

    // The scan configuration behind the shift numbers (§4.6 rules).
    let chains = ScanChains::paper_config(net.num_dffs());
    println!(
        "  scan: {} chains, longest {} cells",
        chains.num_chains(),
        chains.longest()
    );

    // A single flipped response bit anywhere in the session would change the
    // signature — that is the entire pass/fail mechanism of on-chip test.
    println!("\npass criterion: signature == {:#010x}", session.signature);
}
