//! Quickstart: built-in generation of functional broadside tests for a small
//! scan circuit, end to end.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fbt::core::driver::DrivingBlock;
use fbt::netlist::s27;
use fbt::prelude::*;

fn main() {
    // 1. A gate-level sequential circuit (the genuine ISCAS89 s27).
    let circuit = s27();
    println!("circuit: {circuit}");

    // 2. Estimate SWAfunc: the peak switching activity the circuit shows
    //    under functional input sequences. With no surrounding design the
    //    inputs are unconstrained ("buffers").
    let cfg = FunctionalBistConfig::scaled();
    let bound = swafunc(&circuit, &DrivingBlock::Buffers, &cfg);
    println!(
        "SWAfunc = {:.2}% of lines switching per cycle",
        bound * 100.0
    );

    // 3. Generate functional broadside tests on-chip: multi-segment
    //    pseudo-random primary-input sequences whose every clock cycle
    //    respects the bound, applied from the all-0 reset state.
    let outcome = generate_constrained(&circuit, bound, &cfg);
    println!(
        "generated {} tests from {} seeds across {} multi-segment sequences",
        outcome.tests_applied,
        outcome.nseeds(),
        outcome.nmulti()
    );
    println!(
        "transition fault coverage: {:.2}% of {} collapsed faults",
        outcome.fault_coverage(),
        outcome.faults.len()
    );
    println!(
        "peak switching activity during test application: {:.2}% (bound {:.2}%)",
        outcome.peak_swa * 100.0,
        bound * 100.0
    );
    assert!(outcome.peak_swa <= bound + 1e-12, "the bound is hard");

    // 4. The unified fault-simulation engine API: the multi-threaded
    //    packed-parallel engine and the serial oracle agree bit for bit.
    let faults = collapse(&circuit, &all_transition_faults(&circuit));
    let mut rng = fbt::netlist::rng::Rng::new(1);
    let tests: Vec<BroadsideTest> = (0..256)
        .map(|_| {
            BroadsideTest::new(
                (0..circuit.num_dffs()).map(|_| rng.bit()).collect(),
                (0..circuit.num_inputs()).map(|_| rng.bit()).collect(),
                (0..circuit.num_inputs()).map(|_| rng.bit()).collect(),
            )
        })
        .collect();
    let mut packed = PackedParallelSim::new(&circuit);
    let mut serial = SerialSim::new(&circuit);
    let mut det_packed = vec![false; faults.len()];
    let mut det_serial = vec![false; faults.len()];
    let opts = FaultSimOptions::new();
    packed.simulate(TestSet::Broadside(&tests), &faults, &mut det_packed, &opts);
    serial.simulate(TestSet::Broadside(&tests), &faults, &mut det_serial, &opts);
    assert_eq!(det_packed, det_serial, "engines are bit-identical");
    println!(
        "{} and {} agree: {:.2}% coverage from 256 random broadside tests",
        packed.name(),
        serial.name(),
        fbt::fault::coverage_percent(&det_packed)
    );
}
