//! Deterministic test generation for transition path delay faults
//! (Chapter 2): enumerate the paths of a circuit, run the five-sub-procedure
//! pipeline, and show which sub-procedure decided each fault.
//!
//! ```sh
//! cargo run --release --example tpdf_atpg
//! ```

use fbt::atpg::tpdf::{run_pipeline, SubProcedure, TpdfConfig, TpdfStatus};
use fbt::fault::path::{enumerate_paths, tpdf_list};
use fbt::netlist::s27;

fn main() {
    let net = s27();
    println!("circuit: {net}");

    let paths = enumerate_paths(&net, usize::MAX);
    let faults = tpdf_list(&paths);
    println!(
        "{} structural paths -> {} transition path delay faults",
        paths.len(),
        faults.len()
    );

    let report = run_pipeline(&net, &faults, &TpdfConfig::default());
    println!(
        "detected {}, undetectable {}, aborted {}",
        report.num_detected(),
        report.num_undetectable(),
        report.num_aborted()
    );
    for sub in [
        SubProcedure::Preprocess,
        SubProcedure::FaultSim,
        SubProcedure::Heuristic,
        SubProcedure::BranchBound,
    ] {
        let det = report.stats.detected.get(&sub).copied().unwrap_or(0);
        let undet = report.stats.undetectable.get(&sub).copied().unwrap_or(0);
        println!("  {sub:?}: {det} detected, {undet} proven undetectable");
    }

    // Show a few verdicts with their paths.
    println!("\nsample verdicts:");
    for (f, s) in faults.iter().zip(&report.statuses).take(8) {
        let verdict = match s {
            TpdfStatus::Detected(sub, _) => format!("DETECTED ({sub:?})"),
            TpdfStatus::Undetectable(sub) => format!("undetectable ({sub:?})"),
            TpdfStatus::Aborted => "aborted".to_string(),
        };
        println!(
            "  {:>4} at {:<24} {}",
            f.source_transition.to_string(),
            f.path.display(&net).to_string(),
            verdict
        );
    }
}
