//! Embedded-block scenario (the paper's motivating workload, §4.1/Fig. 4.1):
//! a `spi`-class core sits inside a larger design whose `wb_dma`-class block
//! drives its primary inputs. Test generation must respect the power profile
//! that those constrained inputs produce, and the state-holding DFT option
//! recovers the coverage that purely functional tests leave on the table.
//!
//! ```sh
//! cargo run --release --example embedded_block
//! ```

use fbt::core::driver::DrivingBlock;
use fbt::core::experiment::{run_constrained_experiment, run_holding_experiment};
use fbt::core::FunctionalBistConfig;
use fbt::netlist::synth;

fn main() {
    // Scaled-down catalog circuits (÷8) keep this example under a minute.
    let target = synth::generate(&synth::find("spi").unwrap().scaled(8));
    let block = synth::generate(&synth::find("wb_dma").unwrap().scaled(8));
    println!("target:  {target}");
    println!("driver:  {block}");

    let cfg = FunctionalBistConfig {
        seq_len: 300,
        ..FunctionalBistConfig::scaled()
    };

    // Unconstrained reference: pretend the core is stand-alone.
    let (free, _) = run_constrained_experiment(&target, &DrivingBlock::Buffers, &cfg);
    println!(
        "\n[buffers]  SWAfunc {:>6.2}%  coverage {:>6.2}%  tests {:>6}",
        free.swafunc_pct, free.fc_pct, free.ntests
    );

    // Constrained: the driving block caps the functional activity, which in
    // turn caps what on-chip test generation may do.
    let driving = DrivingBlock::Circuit(block);
    let (row, outcome) = run_constrained_experiment(&target, &driving, &cfg);
    println!(
        "[{:>7}]  SWAfunc {:>6.2}%  coverage {:>6.2}%  tests {:>6}  peak SWA {:>6.2}%",
        row.driver, row.swafunc_pct, row.fc_pct, row.ntests, row.swa_pct
    );
    assert!(row.swa_pct <= row.swafunc_pct + 1e-9);

    // Optional DFT: state holding steers the circuit into controlled
    // unreachable states to detect what functional broadside tests cannot —
    // still under the same activity bound.
    let (hold, _) = run_holding_experiment(&target, &driving, &cfg, &outcome);
    println!(
        "[holding]  {} sets over {} flip-flops: +{:.2}% coverage -> {:.2}% (peak SWA {:.2}%)",
        hold.nh, hold.nbits, hold.fc_improvement_pct, hold.final_fc_pct, hold.swa_pct
    );
    println!(
        "\nhardware: {:.0} um^2 ({:.2}% of the circuit)",
        hold.hw_area, hold.overhead_pct
    );
}
