#!/usr/bin/env bash
# Offline CI gate: formatting, lints, build and the tier-1 test command.
#
# Everything here runs without network access — the workspace has no
# external dependencies and the proptest-based suites are feature-gated
# off by default.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== rustfmt =="
cargo fmt --all --check

echo "== clippy (workspace; engine module denies warnings) =="
# The fault-simulation engine is the PR-critical subsystem: any clippy
# warning in fbt-fault is a hard failure. The rest of the workspace is
# linted at default level so new warnings surface in the log.
cargo clippy -p fbt-fault --all-targets -- -D warnings
cargo clippy --workspace --all-targets

echo "== offline release build =="
cargo build --release --offline

echo "== tier-1 tests =="
cargo test -q

echo "== workspace tests =="
cargo test --workspace -q

echo "CI OK"
