#!/usr/bin/env bash
# Offline CI gate: formatting, lints, build and the tier-1 test command.
#
# Everything here runs without network access — the workspace has no
# external dependencies and the proptest-based suites are feature-gated
# off by default.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== no tracked build output =="
# Build artifacts must never be committed (9.8k of them once were). Fail if
# the index contains anything under a target/ directory or other build
# output.
tracked_artifacts=$(git ls-files -- 'target/*' '*/target/*' '*.rlib' '*.rmeta' '*.o' '*.d' || true)
if [ -n "${tracked_artifacts}" ]; then
    echo "error: build artifacts are tracked by git:" >&2
    echo "${tracked_artifacts}" | head -20 >&2
    echo "(run: git rm -r --cached target)" >&2
    exit 1
fi

echo "== rustfmt =="
cargo fmt --all --check

echo "== clippy (workspace, deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== offline release build =="
cargo build --release --offline

echo "== tier-1 tests =="
cargo test -q

echo "== workspace tests =="
cargo test --workspace -q

echo "== bench_ch4 smoke (speculative search stats + JSON) =="
# One small constrained generation with stats printing; the run itself
# asserts serial and speculative modes reach identical coverage.
bench_json=$(mktemp)
BENCH_CH4_OUT="${bench_json}" cargo run --release -q -p fbt-bench --bin bench_ch4 smoke
python3 -m json.tool "${bench_json}" > /dev/null
rm -f "${bench_json}"

echo "== bench_sat smoke (CDCL solver stats + JSON) =="
# Solves every transition fault of the smoke circuits through the SAT
# backend; the run itself asserts repeated solving is bit-identical.
sat_json=$(mktemp)
BENCH_SAT_OUT="${sat_json}" cargo run --release -q -p fbt-bench --bin bench_sat smoke
python3 -m json.tool "${sat_json}" > /dev/null
rm -f "${sat_json}"

echo "CI OK"
