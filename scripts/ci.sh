#!/usr/bin/env bash
# Offline CI gate: formatting, lints, build and the tier-1 test command.
#
# Everything here runs without network access — the workspace has no
# external dependencies and the proptest-based suites are feature-gated
# off by default.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== no tracked build output =="
# Build artifacts must never be committed (9.8k of them once were). Fail if
# the index contains anything under a target/ directory or other build
# output.
tracked_artifacts=$(git ls-files -- 'target/*' '*/target/*' '*.rlib' '*.rmeta' '*.o' '*.d' || true)
if [ -n "${tracked_artifacts}" ]; then
    echo "error: build artifacts are tracked by git:" >&2
    echo "${tracked_artifacts}" | head -20 >&2
    echo "(run: git rm -r --cached target)" >&2
    exit 1
fi

echo "== rustfmt =="
cargo fmt --all --check

echo "== clippy (workspace, deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== offline release build =="
cargo build --release --offline

echo "== tier-1 tests =="
cargo test -q

echo "== workspace tests =="
cargo test --workspace -q

echo "== rustdoc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q

echo "== fbt-lint golden reports =="
# Every bundled benchmark's JSON report must be bit-identical to the
# checked-in golden file, and well-formed JSON.
cargo build --release -q -p fbt-lint
lint_bin=target/release/fbt-lint
lint_out=$(mktemp)
for gold in crates/lint/tests/golden/s*.json; do
    name=$(basename "${gold}" .json)
    "${lint_bin}" --json "${name}" 2>/dev/null > "${lint_out}"
    python3 -m json.tool "${lint_out}" > /dev/null
    diff -u "${gold}" "${lint_out}"
done
# The seeded defective circuit (comb cycle + undriven net + shadowed PI +
# unsatisfiable constraint cube) must exit non-zero under the default
# --deny error filter, with the exact golden report...
if "${lint_bin}" --json \
    --constraints crates/lint/tests/fixtures/bad_circuit.constraints \
    crates/lint/tests/fixtures/bad_circuit.bench 2>/dev/null > "${lint_out}"; then
    echo "error: fbt-lint exited 0 on the seeded bad circuit" >&2
    exit 1
fi
python3 -m json.tool "${lint_out}" > /dev/null
diff -u crates/lint/tests/golden/bad_circuit.json "${lint_out}"
rm -f "${lint_out}"
# ...and every bundled benchmark must pass it (warnings/notes allowed).
"${lint_bin}" --deny error \
    s27 s298 s344 s349 s382 s386 s444 s510 s526 s641 s713 \
    s820 s832 s953 s1196 s1238 s1488 s1494 > /dev/null 2>&1

echo "== golden Chapter-4 outcomes (bit-identity vs committed fixtures) =="
# The three generation modes must reproduce the committed pre-engine
# fixtures byte-exactly across batch/thread combinations. The golden suite
# runs the candidate-packed path (batch {1, 4, 16}); the determinism suite
# additionally diffs packed against the legacy per-candidate passes and the
# serial reference.
cargo test --release -q -p fbt-core --test golden_ch4
cargo test --release -q -p fbt-core --test speculative_determinism

echo "== bench_ch4 smoke (speculative search stats + JSON) =="
# One small constrained generation with stats printing (restricted to one
# circuit via the filter argument); the run itself asserts serial, legacy
# speculative and candidate-packed modes reach identical coverage, and the
# JSON summary must record the unified engine it was measured on. The
# packed grouped calls exist to remove per-candidate pass overhead, so
# packed batch-8 must not be slower than the serial loop even at smoke
# scale.
bench_json=$(mktemp)
BENCH_CH4_OUT="${bench_json}" cargo run --release -q -p fbt-bench --bin bench_ch4 smoke spi
python3 -m json.tool "${bench_json}" > /dev/null
python3 - "${bench_json}" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d.get("engine") == "unified", f"missing/stale engine field: {d.get('engine')!r}"
assert all(e["circuit"] == "spi" for e in d["entries"]), "circuit filter ignored"
modes = {e["mode"] for e in d["entries"]}
assert modes == {"serial", "spec8", "packed8"}, f"unexpected mode set: {modes}"
for method in ("unconstrained", "constrained"):
    rows = {e["mode"]: e for e in d["entries"] if e["method"] == method}
    assert len({e["fc_pct"] for e in rows.values()}) == 1, f"{method}: coverage drifted"
wall = {
    mode: sum(e["stats"]["total_wall_s"] for e in d["entries"] if e["mode"] == mode)
    for mode in modes
}
assert wall["packed8"] <= wall["serial"], (
    f"packed8 slower than serial ({wall['packed8']:.4f}s > {wall['serial']:.4f}s)"
)
EOF
rm -f "${bench_json}"

echo "== bench_sat smoke (CDCL solver stats + JSON) =="
# Solves every transition fault of the smoke circuits through the SAT
# backend; the run itself asserts repeated solving is bit-identical.
sat_json=$(mktemp)
BENCH_SAT_OUT="${sat_json}" cargo run --release -q -p fbt-bench --bin bench_sat smoke
python3 -m json.tool "${sat_json}" > /dev/null
rm -f "${sat_json}"

echo "CI OK"
