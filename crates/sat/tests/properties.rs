//! Property-based equivalence of the CDCL solver against brute-force
//! enumeration on ≤ 20-variable formulas.
//!
//! Gated behind the `proptest` feature because the offline build
//! environment cannot fetch the `proptest` crate; enabling the feature
//! requires registry access and re-adding the dev-dependency. The same
//! checks run unconditionally, with the in-tree RNG, in
//! `tests/brute_force.rs`.
#![cfg(feature = "proptest")]

use proptest::prelude::*;

use fbt_sat::{Lit, SatResult, Solver, Var};

fn arb_cnf() -> impl Strategy<Value = (usize, Vec<Vec<Lit>>)> {
    (3usize..=20).prop_flat_map(|num_vars| {
        let lit = (0..num_vars as u32, any::<bool>()).prop_map(|(v, s)| Var(v).lit(s));
        let clause = prop::collection::vec(lit, 1..=4);
        prop::collection::vec(clause, 1..=4 * num_vars).prop_map(move |clauses| (num_vars, clauses))
    })
}

fn brute_force_satisfiable(num_vars: usize, clauses: &[Vec<Lit>]) -> bool {
    (0..1u64 << num_vars).any(|a| {
        clauses
            .iter()
            .all(|c| c.iter().any(|l| l.eval((a >> l.var().index()) & 1 == 1)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The solver's verdict equals exhaustive enumeration, and every model
    /// satisfies every clause.
    #[test]
    fn solver_equals_brute_force((num_vars, clauses) in arb_cnf()) {
        let mut solver = Solver::new();
        for _ in 0..num_vars {
            solver.new_var();
        }
        for c in &clauses {
            solver.add_clause(c);
        }
        let brute = brute_force_satisfiable(num_vars, &clauses);
        match solver.solve() {
            SatResult::Sat(model) => {
                prop_assert!(brute);
                for c in &clauses {
                    prop_assert!(c.iter().any(|&l| model.lit(l)));
                }
            }
            SatResult::Unsat => prop_assert!(!brute),
            SatResult::Unknown => prop_assert!(false, "no conflict limit was set"),
        }
    }
}
