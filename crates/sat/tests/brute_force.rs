//! Brute-force cross-validation of the CDCL solver on random small CNF
//! formulas: the solver's verdict must match exhaustive enumeration over
//! all assignments, every model must satisfy every clause, and repeated
//! runs must produce identical statistics.
//!
//! Runs deterministically from fixed seeds with the in-tree RNG so the
//! suite needs no external crates (the build environment is offline); a
//! proptest version of the same checks lives in `tests/properties.rs`
//! behind the `proptest` feature.

use fbt_netlist::rng::Rng;
use fbt_sat::{Lit, SatResult, Solver, Var};

/// A random CNF: up to 13 variables, mixed clause widths 1–4.
fn random_cnf(rng: &mut Rng) -> (usize, Vec<Vec<Lit>>) {
    let num_vars = 3 + (rng.next_u64() % 11) as usize; // 3..14
    let num_clauses = num_vars + (rng.next_u64() % (3 * num_vars as u64)) as usize;
    let clauses = (0..num_clauses)
        .map(|_| {
            let width = 1 + (rng.next_u64() % 4) as usize;
            (0..width)
                .map(|_| Var((rng.next_u64() % num_vars as u64) as u32).lit(rng.bit()))
                .collect()
        })
        .collect();
    (num_vars, clauses)
}

fn clause_satisfied(clause: &[Lit], assignment: u64) -> bool {
    clause
        .iter()
        .any(|l| l.eval((assignment >> l.var().index()) & 1 == 1))
}

fn brute_force_satisfiable(num_vars: usize, clauses: &[Vec<Lit>]) -> bool {
    (0..1u64 << num_vars).any(|a| clauses.iter().all(|c| clause_satisfied(c, a)))
}

fn build_solver(num_vars: usize, clauses: &[Vec<Lit>]) -> Solver {
    let mut s = Solver::new();
    for _ in 0..num_vars {
        s.new_var();
    }
    for c in clauses {
        s.add_clause(c);
    }
    s
}

#[test]
fn verdicts_match_exhaustive_enumeration() {
    let mut rng = Rng::new(0x5A7_F0C5);
    for round in 0..400 {
        let (num_vars, clauses) = random_cnf(&mut rng);
        let brute = brute_force_satisfiable(num_vars, &clauses);
        let mut solver = build_solver(num_vars, &clauses);
        match solver.solve() {
            SatResult::Sat(model) => {
                assert!(
                    brute,
                    "round {round}: solver found a model, brute force none"
                );
                for (ci, c) in clauses.iter().enumerate() {
                    assert!(
                        c.iter().any(|&l| model.lit(l)),
                        "round {round}: clause {ci} falsified by the model"
                    );
                }
            }
            SatResult::Unsat => {
                assert!(
                    !brute,
                    "round {round}: solver said UNSAT, brute force disagrees"
                );
            }
            SatResult::Unknown => panic!("round {round}: no conflict limit was set"),
        }
    }
}

#[test]
fn twenty_variable_formulas_round_trip() {
    // Wider formulas near the documented 20-variable brute-force ceiling.
    let mut rng = Rng::new(0xBEA7ED);
    for round in 0..8 {
        let num_vars = 18 + (rng.next_u64() % 3) as usize; // 18..21
        let num_clauses = 4 * num_vars;
        let clauses: Vec<Vec<Lit>> = (0..num_clauses)
            .map(|_| {
                (0..3)
                    .map(|_| Var((rng.next_u64() % num_vars as u64) as u32).lit(rng.bit()))
                    .collect()
            })
            .collect();
        let brute = brute_force_satisfiable(num_vars, &clauses);
        let mut solver = build_solver(num_vars, &clauses);
        match solver.solve() {
            SatResult::Sat(model) => {
                assert!(brute, "round {round}");
                assert!(clauses.iter().all(|c| c.iter().any(|&l| model.lit(l))));
            }
            SatResult::Unsat => assert!(!brute, "round {round}"),
            SatResult::Unknown => panic!("round {round}: no conflict limit was set"),
        }
    }
}

#[test]
fn repeated_runs_are_bit_identical() {
    let mut rng = Rng::new(0xD373C7);
    for _ in 0..50 {
        let (num_vars, clauses) = random_cnf(&mut rng);
        let run = || {
            let mut solver = build_solver(num_vars, &clauses);
            let verdict = match solver.solve() {
                SatResult::Sat(m) => Some(m),
                SatResult::Unsat => None,
                SatResult::Unknown => panic!("no conflict limit was set"),
            };
            (verdict, solver.stats)
        };
        let (model_a, stats_a) = run();
        let (model_b, stats_b) = run();
        assert_eq!(
            model_a, model_b,
            "identical input must give identical models"
        );
        assert_eq!(
            stats_a, stats_b,
            "identical input must give identical stats"
        );
    }
}
