//! SAT encoding of broadside transition-fault detection.
//!
//! A broadside test `<s1, v1, s2, v2>` detects a transition fault on line
//! `g` when (paper §1.2, and exactly the contract of
//! `fbt_fault::engine::FaultSimEngine`):
//!
//! 1. **launch** — the first pattern establishes the fault's initial value
//!    on `g`, and
//! 2. **capture** — under the second pattern, the corresponding stuck-at
//!    fault on `g` is observed at a primary output or a flip-flop D input.
//!
//! [`BroadsideEncoding`] unrolls the circuit over two stitched frames
//! (launch = frame 0, capture = frame 1 with the state aliased from frame
//! 0's next-state literals — the broadside property `s2 = next(s1, v1)` is
//! structural, not clausal). [`BroadsideEncoding::require_detection`] then
//! adds, per fault:
//!
//! * a unit clause pinning the frame-0 value of `g` to the initial value;
//! * a *faulty copy* of frame 1 restricted to `g`'s fanout cone, with `g`
//!   forced to the stuck value;
//! * difference indicators `d_c → faulty(c) ≠ good(c)` for every observable
//!   cone node `c`, and the clause `⋁ d_c` asserting observation.
//!
//! A model is a broadside test detecting every required fault; `Unsat` is a
//! proof that no scan-in state and input pair detects them — for a single
//! fault, an **untestability proof** under the broadside transition-fault
//! model. Requiring all faults of `TR(fp)` simultaneously yields the
//! transition path delay fault criterion of paper §2.2.

use fbt_netlist::Netlist;
use fbt_sim::{Bits, Trit};

use fbt_fault::{BroadsideTest, TransitionFault, TransitionPathDelayFault};

use crate::lit::Lit;
use crate::solver::{SatResult, Solver, SolverStats};
use crate::unroll::{FrameState, Unroller};

/// Outcome of a SAT-based test-generation query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DetectionVerdict {
    /// A broadside test detecting every required fault.
    Test(BroadsideTest),
    /// Proven: no broadside test (over any scan-in state satisfying the
    /// encoding's constraints) detects the required faults.
    Untestable,
    /// The conflict budget ran out before a verdict.
    Unknown,
}

impl DetectionVerdict {
    /// The generated test, if any.
    pub fn test(&self) -> Option<&BroadsideTest> {
        match self {
            DetectionVerdict::Test(t) => Some(t),
            _ => None,
        }
    }
}

/// A two-frame broadside encoding with accumulating detection requirements.
#[derive(Debug, Clone)]
pub struct BroadsideEncoding<'a> {
    net: &'a Netlist,
    unroller: Unroller<'a>,
    /// Observation points: PO drivers and flip-flop D-input drivers.
    observable: Vec<bool>,
}

impl<'a> BroadsideEncoding<'a> {
    /// Encode two stitched frames over a free scan-in state.
    pub fn new(net: &'a Netlist) -> Self {
        let mut unroller = Unroller::new(net);
        unroller.push_frame(FrameState::Free);
        unroller.push_frame(FrameState::FromPrevious);
        let mut observable = vec![false; net.num_nodes()];
        for &o in net.outputs() {
            observable[o.index()] = true;
        }
        for &d in net.dffs() {
            observable[net.node(d).fanins()[0].index()] = true;
        }
        BroadsideEncoding {
            net,
            unroller,
            observable,
        }
    }

    /// The underlying unroller (frame 0 = launch, frame 1 = capture), for
    /// layering extra constraints such as a fixed scan-in state.
    pub fn unroller_mut(&mut self) -> &mut Unroller<'a> {
        &mut self.unroller
    }

    /// Pin the scan-in state `s1`.
    pub fn fix_scan_in(&mut self, s1: &Bits) {
        self.unroller.assert_state(0, s1);
    }

    /// Constrain both patterns' primary inputs to a cube (for generating
    /// tests applicable under functional PI constraints, paper §4.2).
    pub fn constrain_pis(&mut self, cube: &[Trit]) {
        self.unroller.constrain_pis(0, cube);
        self.unroller.constrain_pis(1, cube);
    }

    /// Require that the encoded test detect `fault`.
    ///
    /// Calling this for several faults requires a *single* test detecting
    /// all of them — the building block of the TPDF criterion.
    pub fn require_detection(&mut self, fault: &TransitionFault) {
        let net = self.net;
        let g = fault.line;
        let init = fault.transition.initial_value();

        // Launch: frame-0 value of g equals the fault's initial value.
        let launch = self.unroller.lit(0, g);
        self.unroller.cnf_mut().add_clause(&[launch.xor_neg(!init)]);

        // Faulty copy of frame 1 over g's fanout cone, g stuck at `init`.
        let cone = net.fanout_cone(g);
        debug_assert_eq!(cone[0], g, "fanout cone starts at its seed");
        let mut faulty: Vec<Option<Lit>> = vec![None; net.num_nodes()];
        faulty[g.index()] = Some(self.unroller.cnf_mut().constant(init));
        for &c in &cone[1..] {
            let node = net.node(c);
            let ins: Vec<Lit> = node
                .fanins()
                .iter()
                .map(|f| faulty[f.index()].unwrap_or_else(|| self.unroller.lit(1, *f)))
                .collect();
            let out = self.unroller.cnf_mut().new_var().pos();
            self.unroller.cnf_mut().gate(node.kind(), out, &ins);
            faulty[c.index()] = Some(out);
        }

        // Observation: some observable cone node differs between the faulty
        // and fault-free capture frames. One-directional indicators suffice:
        // the solver must *raise* some d_c, and d_c forces a difference.
        let mut indicators: Vec<Lit> = Vec::new();
        for &c in &cone {
            if !self.observable[c.index()] {
                continue;
            }
            let d = self.unroller.cnf_mut().new_var().pos();
            let fv = faulty[c.index()].expect("cone node has a faulty literal");
            let gv = self.unroller.lit(1, c);
            self.unroller.cnf_mut().add_clause(&[!d, fv, gv]);
            self.unroller.cnf_mut().add_clause(&[!d, !fv, !gv]);
            indicators.push(d);
        }
        // No observable node in the cone ⇒ the empty clause: untestable.
        self.unroller.cnf_mut().add_clause(&indicators);
    }

    /// Require detection of a transition path delay fault: every transition
    /// fault along the path must be detected by the same test (paper §2.2).
    pub fn require_tpdf_detection(&mut self, fault: &TransitionPathDelayFault) {
        for tf in fault.transition_faults(self.net) {
            self.require_detection(&tf);
        }
    }

    /// Solve the accumulated encoding. `conflict_limit` bounds the search
    /// (`None` = run to completion); the returned stats come from this
    /// query's solver.
    pub fn solve(&self, conflict_limit: Option<u64>) -> (DetectionVerdict, SolverStats) {
        let mut solver = Solver::from_cnf(self.unroller.cnf());
        let result = match conflict_limit {
            Some(limit) => solver.solve_limited(limit),
            None => solver.solve(),
        };
        let verdict = match result {
            SatResult::Sat(model) => {
                let s1 = self.unroller.state_values(0, &model);
                let v1 = self.unroller.pi_values(0, &model);
                let v2 = self.unroller.pi_values(1, &model);
                DetectionVerdict::Test(BroadsideTest::new(s1, v1, v2))
            }
            SatResult::Unsat => DetectionVerdict::Untestable,
            SatResult::Unknown => DetectionVerdict::Unknown,
        };
        (verdict, solver.stats)
    }
}

/// Generate a broadside test for one transition fault (or prove it
/// untestable) over a free scan-in state.
pub fn solve_transition_fault(
    net: &Netlist,
    fault: &TransitionFault,
    conflict_limit: Option<u64>,
) -> (DetectionVerdict, SolverStats) {
    let mut enc = BroadsideEncoding::new(net);
    enc.require_detection(fault);
    enc.solve(conflict_limit)
}

/// Generate a broadside test for a transition path delay fault (or prove it
/// untestable) over a free scan-in state.
pub fn solve_tpdf(
    net: &Netlist,
    fault: &TransitionPathDelayFault,
    conflict_limit: Option<u64>,
) -> (DetectionVerdict, SolverStats) {
    let mut enc = BroadsideEncoding::new(net);
    enc.require_tpdf_detection(fault);
    enc.solve(conflict_limit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbt_fault::engine::{FaultSimEngine, SerialSim};
    use fbt_fault::{all_transition_faults, Transition};
    use fbt_netlist::{s27, GateKind, NetlistBuilder};

    #[test]
    fn every_sat_test_detects_its_fault_on_s27() {
        let net = s27();
        let mut sim = SerialSim::new(&net);
        let mut sat = 0;
        for fault in all_transition_faults(&net) {
            let (verdict, _) = solve_transition_fault(&net, &fault, None);
            match verdict {
                DetectionVerdict::Test(t) => {
                    sat += 1;
                    assert!(sim.detects(&t, &fault), "SAT test must detect {fault}");
                }
                DetectionVerdict::Untestable => {}
                DetectionVerdict::Unknown => panic!("no conflict limit was set"),
            }
        }
        assert!(sat > 0, "s27 has testable transition faults");
    }

    #[test]
    fn unobservable_line_is_untestable() {
        // A gate feeding nothing observable: x drives only a dangling buffer
        // chain is impossible (outputs are required), so instead build a
        // circuit where one input never reaches an output and check its
        // faults are proven untestable.
        let mut b = NetlistBuilder::new("dead");
        b.input("a").unwrap();
        b.input("b").unwrap();
        b.gate(GateKind::Buf, "x", &["b"]).unwrap();
        b.gate(GateKind::And, "y", &["a", "a"]).unwrap();
        b.output("y").unwrap();
        let net = b.finish().unwrap();
        let x = net.find("x").unwrap();
        for tr in [Transition::Rise, Transition::Fall] {
            let (verdict, _) = solve_transition_fault(&net, &TransitionFault::new(x, tr), None);
            assert_eq!(verdict, DetectionVerdict::Untestable);
        }
    }

    #[test]
    fn pi_constraints_restrict_generated_tests() {
        let net = s27();
        let fault = TransitionFault::new(net.find("G0").unwrap(), Transition::Rise);
        // Pin PI 0 (G0) to 0 in both frames: the rising launch on G0 needs
        // G0 = 0 in frame 0 (fine) but the fault effect needs G0 = 1 in
        // frame 1 fault-free — contradicted by the cube, so untestable.
        let cube = vec![Trit::Zero, Trit::X, Trit::X, Trit::X];
        let mut enc = BroadsideEncoding::new(&net);
        enc.constrain_pis(&cube);
        enc.require_detection(&fault);
        let (verdict, _) = enc.solve(None);
        assert_eq!(verdict, DetectionVerdict::Untestable);
        // Without the cube the fault is testable.
        let (free, _) = solve_transition_fault(&net, &fault, None);
        assert!(free.test().is_some());
    }

    #[test]
    fn fixed_scan_in_state_is_honoured() {
        let net = s27();
        let fault = TransitionFault::new(net.find("G0").unwrap(), Transition::Rise);
        let s1 = Bits::from_str01("101");
        let mut enc = BroadsideEncoding::new(&net);
        enc.fix_scan_in(&s1);
        enc.require_detection(&fault);
        let (verdict, _) = enc.solve(None);
        if let DetectionVerdict::Test(t) = &verdict {
            assert_eq!(t.scan_in, s1);
            assert!(SerialSim::new(&net).detects(t, &fault));
        }
    }

    #[test]
    fn conflict_limit_yields_unknown_or_verdict() {
        let net = s27();
        let fault = TransitionFault::new(net.find("G17").unwrap(), Transition::Fall);
        let (limited, _) = solve_transition_fault(&net, &fault, Some(1));
        // With one conflict allowed the query either finishes trivially or
        // reports Unknown — never a wrong verdict.
        if let DetectionVerdict::Test(t) = &limited {
            assert!(SerialSim::new(&net).detects(t, &fault));
        }
        let (full, _) = solve_transition_fault(&net, &fault, None);
        assert_ne!(full, DetectionVerdict::Unknown);
    }

    #[test]
    fn tpdf_verdicts_match_table_2_1_counts() {
        // s27's complete TPDF set: 23 of 56 faults detectable (Table 2.1).
        let net = s27();
        let paths = fbt_fault::path::enumerate_paths(&net, usize::MAX);
        let faults = fbt_fault::path::tpdf_list(&paths);
        assert_eq!(faults.len(), 56);
        let mut testable = 0;
        let mut untestable = 0;
        let mut sim = SerialSim::new(&net);
        for f in &faults {
            let (verdict, _) = solve_tpdf(&net, f, None);
            match verdict {
                DetectionVerdict::Test(t) => {
                    testable += 1;
                    for tf in f.transition_faults(&net) {
                        assert!(sim.detects(&t, &tf), "TPDF test must detect {tf}");
                    }
                }
                DetectionVerdict::Untestable => untestable += 1,
                DetectionVerdict::Unknown => panic!("no conflict limit was set"),
            }
        }
        assert_eq!((testable, untestable), (23, 33));
    }
}
