//! Time-frame expansion: unrolling a [`Netlist`] into CNF.
//!
//! Each *frame* is one combinational evaluation of the circuit: a fresh SAT
//! variable per primary input, a present-state literal per flip-flop and a
//! Tseitin-encoded literal per gate. Frames are stitched together without
//! any extra clauses — the present-state literal of flip-flop `i` at frame
//! `f + 1` *is* the literal of its D-input driver at frame `f`
//! ([`FrameState::FromPrevious`]). Frame 0's state can be left free (ATPG
//! over an arbitrary scan-in state) or fixed to constants (reachability from
//! the all-0 reset state of paper §4.3).
//!
//! Launch/capture and functional-constraint conditions are layered on top:
//! [`Unroller::constrain_pis`] pins the specified positions of a primary
//! input cube (unit clauses per frame), and the `assert_*` helpers pin state
//! or next-state vectors for reachability targets.

use fbt_netlist::{Netlist, NodeId};
use fbt_sim::{Bits, Trit};

use crate::cnf::CnfFormula;
use crate::lit::Lit;
use crate::solver::Model;

/// How a newly pushed frame's present-state (flip-flop) literals are
/// defined.
#[derive(Debug, Clone, Copy)]
pub enum FrameState<'a> {
    /// Fresh free variables: the frame starts from an arbitrary state (used
    /// by ATPG, where the scan-in state is a solver choice).
    Free,
    /// Constants: the frame starts from a known state (used for frame 0 of
    /// reachability queries, fixed to the all-0 reset state).
    Fixed(&'a Bits),
    /// Aliased to the previous frame's next-state literals — the time-frame
    /// stitch. No clauses are added: flip-flop `i`'s literal *is* the
    /// literal of its D-input driver one frame earlier.
    FromPrevious,
}

/// A netlist unrolled over a growing number of time frames.
#[derive(Debug, Clone)]
pub struct Unroller<'a> {
    net: &'a Netlist,
    cnf: CnfFormula,
    /// Per frame, per node: the literal carrying that node's value.
    frames: Vec<Vec<Lit>>,
}

impl<'a> Unroller<'a> {
    /// An unroller with no frames yet.
    pub fn new(net: &'a Netlist) -> Self {
        Unroller {
            net,
            cnf: CnfFormula::new(),
            frames: Vec::new(),
        }
    }

    /// The netlist being unrolled.
    pub fn net(&self) -> &'a Netlist {
        self.net
    }

    /// Number of frames pushed so far.
    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    /// The formula accumulated so far.
    pub fn cnf(&self) -> &CnfFormula {
        &self.cnf
    }

    /// Mutable access to the formula, for layering extra constraints.
    pub fn cnf_mut(&mut self) -> &mut CnfFormula {
        &mut self.cnf
    }

    /// Consume the unroller, returning the formula.
    pub fn into_cnf(self) -> CnfFormula {
        self.cnf
    }

    /// Append one time frame and return its index.
    ///
    /// # Panics
    ///
    /// Panics if `state` is [`FrameState::FromPrevious`] on the first frame,
    /// or [`FrameState::Fixed`] with a width not matching the DFF count.
    pub fn push_frame(&mut self, state: FrameState<'_>) -> usize {
        let net = self.net;
        let mut lits = vec![Lit(0); net.num_nodes()];
        for &pi in net.inputs() {
            lits[pi.index()] = self.cnf.new_var().pos();
        }
        match state {
            FrameState::Free => {
                for &ff in net.dffs() {
                    lits[ff.index()] = self.cnf.new_var().pos();
                }
            }
            FrameState::Fixed(bits) => {
                assert_eq!(bits.len(), net.num_dffs(), "state width mismatch");
                for (i, &ff) in net.dffs().iter().enumerate() {
                    lits[ff.index()] = self.cnf.constant(bits.get(i));
                }
            }
            FrameState::FromPrevious => {
                let prev = self
                    .frames
                    .last()
                    .expect("FromPrevious needs a prior frame");
                for &ff in net.dffs() {
                    let d = net.node(ff).fanins()[0];
                    lits[ff.index()] = prev[d.index()];
                }
            }
        }
        for &id in net.eval_order() {
            let out = self.cnf.new_var().pos();
            let node = net.node(id);
            let ins: Vec<Lit> = node.fanins().iter().map(|f| lits[f.index()]).collect();
            self.cnf.gate(node.kind(), out, &ins);
            lits[id.index()] = out;
        }
        self.frames.push(lits);
        self.frames.len() - 1
    }

    /// The literal carrying `node`'s value at `frame`.
    pub fn lit(&self, frame: usize, node: NodeId) -> Lit {
        self.frames[frame][node.index()]
    }

    /// The literal of primary input `i` at `frame`.
    pub fn pi_lit(&self, frame: usize, i: usize) -> Lit {
        self.lit(frame, self.net.inputs()[i])
    }

    /// The present-state literal of flip-flop `i` at `frame`.
    pub fn state_lit(&self, frame: usize, i: usize) -> Lit {
        self.lit(frame, self.net.dffs()[i])
    }

    /// The next-state literal of flip-flop `i` at `frame` (its D-input
    /// driver's literal, i.e. the state entering frame `frame + 1`).
    pub fn next_state_lit(&self, frame: usize, i: usize) -> Lit {
        let d = self.net.node(self.net.dffs()[i]).fanins()[0];
        self.lit(frame, d)
    }

    /// Pin the specified positions of a primary-input cube at `frame` with
    /// unit clauses (the functional PI constraints of paper §4.2).
    ///
    /// # Panics
    ///
    /// Panics if the cube's width differs from the PI count.
    pub fn constrain_pis(&mut self, frame: usize, cube: &[Trit]) {
        assert_eq!(cube.len(), self.net.num_inputs(), "PI cube width mismatch");
        for (i, t) in cube.iter().enumerate() {
            if let Some(b) = t.to_bool() {
                let l = self.pi_lit(frame, i);
                self.cnf.add_clause(&[l.xor_neg(!b)]);
            }
        }
    }

    /// Pin every primary input at `frame` to the given vector.
    pub fn assert_pis(&mut self, frame: usize, pis: &Bits) {
        assert_eq!(pis.len(), self.net.num_inputs(), "PI width mismatch");
        for i in 0..pis.len() {
            let l = self.pi_lit(frame, i);
            self.cnf.add_clause(&[l.xor_neg(!pis.get(i))]);
        }
    }

    /// Pin the present state at `frame` to the given vector.
    pub fn assert_state(&mut self, frame: usize, state: &Bits) {
        assert_eq!(state.len(), self.net.num_dffs(), "state width mismatch");
        for i in 0..state.len() {
            let l = self.state_lit(frame, i);
            self.cnf.add_clause(&[l.xor_neg(!state.get(i))]);
        }
    }

    /// Pin the next state of `frame` (the state entering frame `frame + 1`)
    /// to the given vector — the reachability target constraint.
    pub fn assert_next_state(&mut self, frame: usize, state: &Bits) {
        assert_eq!(state.len(), self.net.num_dffs(), "state width mismatch");
        for i in 0..state.len() {
            let l = self.next_state_lit(frame, i);
            self.cnf.add_clause(&[l.xor_neg(!state.get(i))]);
        }
    }

    /// Extract the primary-input vector of `frame` from a model.
    pub fn pi_values(&self, frame: usize, model: &Model) -> Bits {
        (0..self.net.num_inputs())
            .map(|i| model.lit(self.pi_lit(frame, i)))
            .collect()
    }

    /// Extract the present-state vector of `frame` from a model.
    pub fn state_values(&self, frame: usize, model: &Model) -> Bits {
        (0..self.net.num_dffs())
            .map(|i| model.lit(self.state_lit(frame, i)))
            .collect()
    }

    /// Extract the next-state vector of `frame` from a model.
    pub fn next_state_values(&self, frame: usize, model: &Model) -> Bits {
        (0..self.net.num_dffs())
            .map(|i| model.lit(self.next_state_lit(frame, i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{SatResult, Solver};
    use fbt_netlist::rng::Rng;
    use fbt_netlist::s27;
    use fbt_sim::comb;

    fn random_bits(rng: &mut Rng, n: usize) -> Bits {
        (0..n).map(|_| rng.bit()).collect()
    }

    /// Scalar reference: one frame of evaluation → (all node values, next state).
    fn frame_ref(net: &Netlist, pis: &Bits, state: &Bits) -> (Vec<bool>, Bits) {
        let mut vals = vec![false; net.num_nodes()];
        for (i, &id) in net.inputs().iter().enumerate() {
            vals[id.index()] = pis.get(i);
        }
        for (i, &id) in net.dffs().iter().enumerate() {
            vals[id.index()] = state.get(i);
        }
        comb::eval_scalar(net, &mut vals);
        let ns: Bits = net
            .dffs()
            .iter()
            .map(|&d| vals[net.node(d).fanins()[0].index()])
            .collect();
        (vals, ns)
    }

    #[test]
    fn single_frame_matches_scalar_simulation() {
        let net = s27();
        let mut rng = Rng::new(11);
        for _ in 0..16 {
            let pis = random_bits(&mut rng, net.num_inputs());
            let state = random_bits(&mut rng, net.num_dffs());
            let mut u = Unroller::new(&net);
            u.push_frame(FrameState::Fixed(&state));
            u.assert_pis(0, &pis);
            let SatResult::Sat(model) = Solver::from_cnf(u.cnf()).solve() else {
                panic!("fully constrained frame must be satisfiable");
            };
            let (vals, ns) = frame_ref(&net, &pis, &state);
            for id in net.node_ids() {
                assert_eq!(model.lit(u.lit(0, id)), vals[id.index()], "node {id}");
            }
            assert_eq!(u.next_state_values(0, &model), ns);
        }
    }

    #[test]
    fn frame_stitching_matches_multi_cycle_simulation() {
        let net = s27();
        let mut rng = Rng::new(23);
        let k = 5;
        let pis: Vec<Bits> = (0..k)
            .map(|_| random_bits(&mut rng, net.num_inputs()))
            .collect();
        let reset = Bits::zeros(net.num_dffs());
        let mut u = Unroller::new(&net);
        u.push_frame(FrameState::Fixed(&reset));
        for _ in 1..k {
            u.push_frame(FrameState::FromPrevious);
        }
        for (f, v) in pis.iter().enumerate() {
            u.assert_pis(f, v);
        }
        let SatResult::Sat(model) = Solver::from_cnf(u.cnf()).solve() else {
            panic!("constrained unrolling must be satisfiable");
        };
        let mut state = reset;
        for (f, pi) in pis.iter().enumerate() {
            assert_eq!(u.state_values(f, &model), state, "frame {f} state");
            let (_, ns) = frame_ref(&net, pi, &state);
            assert_eq!(u.next_state_values(f, &model), ns, "frame {f} next state");
            state = ns;
        }
    }

    #[test]
    fn free_state_finds_a_distinguishing_assignment() {
        // With a free state, asking for a specific next state is satisfiable
        // exactly when some (state, PI) pair produces it.
        let net = s27();
        let mut u = Unroller::new(&net);
        u.push_frame(FrameState::Free);
        // Find any predecessor of state 111.
        let target = Bits::from_str01("111");
        u.assert_next_state(0, &target);
        match Solver::from_cnf(u.cnf()).solve() {
            SatResult::Sat(model) => {
                let s = u.state_values(0, &model);
                let v = u.pi_values(0, &model);
                let (_, ns) = frame_ref(&net, &v, &s);
                assert_eq!(ns, target, "witness must actually produce the target");
            }
            SatResult::Unsat => {
                // Verify exhaustively that no predecessor exists.
                for s in 0..8u32 {
                    for v in 0..16u32 {
                        let state: Bits = (0..3).map(|i| (s >> i) & 1 == 1).collect();
                        let pis: Bits = (0..4).map(|i| (v >> i) & 1 == 1).collect();
                        let (_, ns) = frame_ref(&net, &pis, &state);
                        assert_ne!(ns, target, "solver missed a predecessor");
                    }
                }
            }
            SatResult::Unknown => panic!("no conflict limit was set"),
        }
    }

    #[test]
    fn pi_cube_constraints_are_respected() {
        let net = s27();
        let cube = vec![Trit::One, Trit::X, Trit::Zero, Trit::X];
        let mut u = Unroller::new(&net);
        u.push_frame(FrameState::Free);
        u.push_frame(FrameState::FromPrevious);
        u.constrain_pis(0, &cube);
        u.constrain_pis(1, &cube);
        let SatResult::Sat(model) = Solver::from_cnf(u.cnf()).solve() else {
            panic!("cube-constrained unrolling must be satisfiable");
        };
        for f in 0..2 {
            let v = u.pi_values(f, &model);
            assert!(v.get(0), "frame {f}: PI 0 pinned to 1");
            assert!(!v.get(2), "frame {f}: PI 2 pinned to 0");
        }
    }

    #[test]
    #[should_panic(expected = "FromPrevious needs a prior frame")]
    fn from_previous_on_first_frame_panics() {
        let net = s27();
        let mut u = Unroller::new(&net);
        u.push_frame(FrameState::FromPrevious);
    }
}
