//! CNF formulas and Tseitin gate encodings.
//!
//! [`CnfFormula`] accumulates clauses over fresh variables and knows how to
//! encode every [`GateKind`] of the netlist crate as CNF constraints
//! (`out ↔ KIND(ins)`). Multi-input XOR/XNOR gates are chained through
//! auxiliary variables, so clause width stays bounded.

use fbt_netlist::GateKind;

use crate::lit::{Lit, Var};

/// A CNF formula under construction: a variable counter plus a clause list.
///
/// # Example
///
/// ```
/// use fbt_sat::{CnfFormula, Solver, SatResult};
///
/// let mut cnf = CnfFormula::new();
/// let a = cnf.new_var().pos();
/// let b = cnf.new_var().pos();
/// cnf.add_clause(&[a, b]);
/// cnf.add_clause(&[!a]);
/// let mut solver = Solver::from_cnf(&cnf);
/// let SatResult::Sat(model) = solver.solve() else { panic!() };
/// assert!(model.lit(b));
/// ```
#[derive(Debug, Clone, Default)]
pub struct CnfFormula {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
    /// Lazily created variable forced true, for encoding constants.
    true_var: Option<Var>,
}

impl CnfFormula {
    /// An empty formula.
    pub fn new() -> Self {
        CnfFormula::default()
    }

    /// Allocate a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.num_vars as u32);
        self.num_vars += 1;
        v
    }

    /// Number of variables allocated so far.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses added so far.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The clauses added so far.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Add a clause (a disjunction of literals).
    pub fn add_clause(&mut self, lits: &[Lit]) {
        self.clauses.push(lits.to_vec());
    }

    /// A literal that is constant `true` (or `false`): backed by a single
    /// lazily allocated variable pinned by a unit clause.
    pub fn constant(&mut self, value: bool) -> Lit {
        let v = match self.true_var {
            Some(v) => v,
            None => {
                let v = self.new_var();
                self.clauses.push(vec![v.pos()]);
                self.true_var = Some(v);
                v
            }
        };
        v.lit(value)
    }

    /// Constrain `a ↔ b`.
    pub fn equal(&mut self, a: Lit, b: Lit) {
        self.add_clause(&[!a, b]);
        self.add_clause(&[a, !b]);
    }

    /// Constrain `out ↔ AND(ins)` (an empty `ins` makes `out` true).
    pub fn and_gate(&mut self, out: Lit, ins: &[Lit]) {
        let mut long: Vec<Lit> = Vec::with_capacity(ins.len() + 1);
        long.push(out);
        for &i in ins {
            self.add_clause(&[!out, i]);
            long.push(!i);
        }
        self.add_clause(&long);
    }

    /// Constrain `out ↔ OR(ins)` (an empty `ins` makes `out` false).
    pub fn or_gate(&mut self, out: Lit, ins: &[Lit]) {
        let mut long: Vec<Lit> = Vec::with_capacity(ins.len() + 1);
        long.push(!out);
        for &i in ins {
            self.add_clause(&[out, !i]);
            long.push(i);
        }
        self.add_clause(&long);
    }

    /// Constrain `out ↔ a XOR b`.
    pub fn xor2_gate(&mut self, out: Lit, a: Lit, b: Lit) {
        self.add_clause(&[!out, a, b]);
        self.add_clause(&[!out, !a, !b]);
        self.add_clause(&[out, !a, b]);
        self.add_clause(&[out, a, !b]);
    }

    /// Constrain `out ↔ XOR(ins)`, chaining auxiliary variables for more
    /// than two inputs.
    ///
    /// # Panics
    ///
    /// Panics on an empty input list (a zero-input XOR has no netlist
    /// counterpart).
    pub fn xor_gate(&mut self, out: Lit, ins: &[Lit]) {
        match ins {
            [] => panic!("XOR gate needs at least one input"),
            [a] => self.equal(out, *a),
            [a, b] => self.xor2_gate(out, *a, *b),
            [a, rest @ ..] => {
                let mut acc = *a;
                for (k, &i) in rest.iter().enumerate() {
                    let next = if k + 1 == rest.len() {
                        out
                    } else {
                        self.new_var().pos()
                    };
                    self.xor2_gate(next, acc, i);
                    acc = next;
                }
            }
        }
    }

    /// Constrain `out ↔ KIND(ins)` for any combinational [`GateKind`].
    ///
    /// # Panics
    ///
    /// Panics on source kinds (`Input`, `Dff`) — they have no combinational
    /// function — and on arity violations for single-input kinds.
    pub fn gate(&mut self, kind: GateKind, out: Lit, ins: &[Lit]) {
        match kind {
            GateKind::Input | GateKind::Dff => {
                panic!("source nodes have no combinational CNF encoding")
            }
            GateKind::And => self.and_gate(out, ins),
            GateKind::Nand => self.and_gate(!out, ins),
            GateKind::Or => self.or_gate(out, ins),
            GateKind::Nor => self.or_gate(!out, ins),
            GateKind::Xor => self.xor_gate(out, ins),
            GateKind::Xnor => self.xor_gate(!out, ins),
            GateKind::Not => {
                assert_eq!(ins.len(), 1, "NOT takes one input");
                self.equal(out, !ins[0]);
            }
            GateKind::Buf => {
                assert_eq!(ins.len(), 1, "BUFF takes one input");
                self.equal(out, ins[0]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{SatResult, Solver};

    /// Exhaustively check that `gate(kind)` encodes exactly the gate's truth
    /// table: for every input combination, the output is forced to the
    /// evaluated value and the opposite value is contradictory.
    #[test]
    fn gate_encodings_match_truth_tables() {
        for kind in GateKind::COMBINATIONAL {
            let arity = if kind.is_unate_single() { 1 } else { 3 };
            for combo in 0..(1u32 << arity) {
                let ins_b: Vec<bool> = (0..arity).map(|k| (combo >> k) & 1 == 1).collect();
                let expect = kind.eval(&ins_b);
                for claim in [false, true] {
                    let mut cnf = CnfFormula::new();
                    let out = cnf.new_var();
                    let ins: Vec<Var> = (0..arity).map(|_| cnf.new_var()).collect();
                    let in_lits: Vec<Lit> = ins.iter().map(|v| v.pos()).collect();
                    cnf.gate(kind, out.pos(), &in_lits);
                    for (v, &b) in ins.iter().zip(&ins_b) {
                        cnf.add_clause(&[v.lit(b)]);
                    }
                    cnf.add_clause(&[out.lit(claim)]);
                    let sat = matches!(Solver::from_cnf(&cnf).solve(), SatResult::Sat(_));
                    assert_eq!(
                        sat,
                        claim == expect,
                        "{kind} inputs {ins_b:?} claim {claim}"
                    );
                }
            }
        }
    }

    #[test]
    fn xor_chain_width_five() {
        // 5-input XOR via chained auxiliaries: odd parity only.
        for combo in 0..32u32 {
            let ins_b: Vec<bool> = (0..5).map(|k| (combo >> k) & 1 == 1).collect();
            let parity = ins_b.iter().filter(|&&b| b).count() % 2 == 1;
            let mut cnf = CnfFormula::new();
            let out = cnf.new_var();
            let ins: Vec<Var> = (0..5).map(|_| cnf.new_var()).collect();
            let in_lits: Vec<Lit> = ins.iter().map(|v| v.pos()).collect();
            cnf.xor_gate(out.pos(), &in_lits);
            for (v, &b) in ins.iter().zip(&ins_b) {
                cnf.add_clause(&[v.lit(b)]);
            }
            let SatResult::Sat(model) = Solver::from_cnf(&cnf).solve() else {
                panic!("fixing all inputs must be satisfiable");
            };
            assert_eq!(model.lit(out.pos()), parity, "inputs {ins_b:?}");
        }
    }

    #[test]
    fn constants_are_pinned_and_shared() {
        let mut cnf = CnfFormula::new();
        let t = cnf.constant(true);
        let f = cnf.constant(false);
        assert_eq!(t.var(), f.var(), "both polarities share one variable");
        let SatResult::Sat(model) = Solver::from_cnf(&cnf).solve() else {
            panic!("a pinned constant is satisfiable");
        };
        assert!(model.lit(t));
        assert!(!model.lit(f));
    }

    #[test]
    fn empty_and_or_are_constants() {
        let mut cnf = CnfFormula::new();
        let a = cnf.new_var();
        let o = cnf.new_var();
        cnf.and_gate(a.pos(), &[]);
        cnf.or_gate(o.pos(), &[]);
        let SatResult::Sat(model) = Solver::from_cnf(&cnf).solve() else {
            panic!("constant gates are satisfiable");
        };
        assert!(model.value(a));
        assert!(!model.value(o));
    }
}
