//! Bounded reachability certification from the reset state.
//!
//! The paper's functional broadside tests are defined by their scan-in
//! states being *reachable under functional operation* (§4.3): starting
//! from the all-0 reset state and applying primary-input vectors that
//! satisfy the functional constraints, the circuit can arrive at the state.
//! The generators in `fbt-core` produce such states constructively — by
//! simulating forward — but constructive evidence cannot show a state is
//! **un**reachable. This module closes that gap with SAT: unroll the
//! circuit `j` frames from reset, pin each frame's primary inputs to the
//! constraint cube, and ask for the target as the state entering frame `j`.
//!
//! * `Sat` at some depth `j ≤ k` yields a **witness**: the per-frame PI
//!   vectors driving reset to the target, checkable by plain simulation.
//! * `Unsat` at every depth up to `k` is a *k-bounded unreachability
//!   proof*: no constrained input sequence of length ≤ k reaches the state.
//!   (It is a proof outright once `k ≥ 2^{#DFF}`, and in practice far
//!   earlier; the certifier in `fbt-core` records the bound.)
//!
//! Depths are searched in increasing order, so a `Reachable` verdict always
//! carries the *minimum* constrained distance from reset.

use fbt_netlist::Netlist;
use fbt_sim::{Bits, Trit};

use crate::solver::{SatResult, Solver, SolverStats};
use crate::unroll::{FrameState, Unroller};

/// Verdict of a bounded reachability query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reachability {
    /// The target is reachable in `pis.len()` constrained cycles from
    /// reset; `pis[f]` is the primary-input vector applied in cycle `f`.
    Reachable {
        /// The witness input sequence (its length is the depth).
        pis: Vec<Bits>,
    },
    /// No constrained input sequence of length ≤ `bound` reaches the
    /// target.
    Unreachable {
        /// The depth bound that was exhausted.
        bound: usize,
    },
    /// The conflict budget ran out before every depth had a verdict.
    Unknown {
        /// The depth bound that was being examined.
        bound: usize,
    },
}

impl Reachability {
    /// Whether the target was proven reachable.
    pub fn is_reachable(&self) -> bool {
        matches!(self, Reachability::Reachable { .. })
    }

    /// The witness depth, if reachable.
    pub fn depth(&self) -> Option<usize> {
        match self {
            Reachability::Reachable { pis } => Some(pis.len()),
            _ => None,
        }
    }
}

/// Decide whether `target` is reachable from the all-0 reset state within
/// `k` cycles whose primary inputs satisfy `pi_cube` (`None` = inputs
/// unconstrained). `conflict_limit` bounds each depth's search; exhausting
/// it turns the overall verdict into [`Reachability::Unknown`].
///
/// # Panics
///
/// Panics if `target`'s width differs from the circuit's DFF count, or the
/// cube's width from the PI count.
pub fn bounded_reach(
    net: &Netlist,
    target: &Bits,
    k: usize,
    pi_cube: Option<&[Trit]>,
    conflict_limit: Option<u64>,
) -> (Reachability, SolverStats) {
    assert_eq!(target.len(), net.num_dffs(), "target width mismatch");
    let mut stats = SolverStats::default();
    let reset = Bits::zeros(net.num_dffs());
    if *target == reset {
        return (Reachability::Reachable { pis: Vec::new() }, stats);
    }
    let mut exhausted = false;
    for depth in 1..=k {
        let mut u = Unroller::new(net);
        u.push_frame(FrameState::Fixed(&reset));
        for _ in 1..depth {
            u.push_frame(FrameState::FromPrevious);
        }
        if let Some(cube) = pi_cube {
            for f in 0..depth {
                u.constrain_pis(f, cube);
            }
        }
        u.assert_next_state(depth - 1, target);
        let mut solver = Solver::from_cnf(u.cnf());
        let result = match conflict_limit {
            Some(limit) => solver.solve_limited(limit),
            None => solver.solve(),
        };
        stats.absorb(&solver.stats);
        match result {
            SatResult::Sat(model) => {
                let pis = (0..depth).map(|f| u.pi_values(f, &model)).collect();
                return (Reachability::Reachable { pis }, stats);
            }
            SatResult::Unsat => {}
            SatResult::Unknown => exhausted = true,
        }
    }
    let verdict = if exhausted {
        Reachability::Unknown { bound: k }
    } else {
        Reachability::Unreachable { bound: k }
    };
    (verdict, stats)
}

/// Replay a reachability witness by simulation, returning the final state.
/// The certifier uses this to validate every `Reachable` verdict.
pub fn replay_witness(net: &Netlist, pis: &[Bits]) -> Bits {
    use fbt_sim::comb;
    let mut state = Bits::zeros(net.num_dffs());
    for v in pis {
        let mut vals = vec![false; net.num_nodes()];
        for (i, &id) in net.inputs().iter().enumerate() {
            vals[id.index()] = v.get(i);
        }
        for (i, &id) in net.dffs().iter().enumerate() {
            vals[id.index()] = state.get(i);
        }
        comb::eval_scalar(net, &mut vals);
        state = net
            .dffs()
            .iter()
            .map(|&d| vals[net.node(d).fanins()[0].index()])
            .collect();
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbt_netlist::s27;
    use fbt_sim::comb;
    use std::collections::HashSet;

    /// All states reachable from reset within `k` cycles, by brute force.
    fn enumerate_reachable(net: &Netlist, k: usize, cube: Option<&[Trit]>) -> HashSet<Bits> {
        let n_pi = net.num_inputs();
        let mut frontier = vec![Bits::zeros(net.num_dffs())];
        let mut seen: HashSet<Bits> = frontier.iter().cloned().collect();
        for _ in 0..k {
            let mut next = Vec::new();
            for state in &frontier {
                'vec: for v in 0..(1u32 << n_pi) {
                    let pis: Bits = (0..n_pi).map(|i| (v >> i) & 1 == 1).collect();
                    if let Some(cube) = cube {
                        for (i, t) in cube.iter().enumerate() {
                            if let Some(b) = t.to_bool() {
                                if pis.get(i) != b {
                                    continue 'vec;
                                }
                            }
                        }
                    }
                    let mut vals = vec![false; net.num_nodes()];
                    for (i, &id) in net.inputs().iter().enumerate() {
                        vals[id.index()] = pis.get(i);
                    }
                    for (i, &id) in net.dffs().iter().enumerate() {
                        vals[id.index()] = state.get(i);
                    }
                    comb::eval_scalar(net, &mut vals);
                    let ns: Bits = net
                        .dffs()
                        .iter()
                        .map(|&d| vals[net.node(d).fanins()[0].index()])
                        .collect();
                    if seen.insert(ns.clone()) {
                        next.push(ns);
                    }
                }
            }
            frontier = next;
        }
        seen
    }

    #[test]
    fn verdicts_match_exhaustive_enumeration_on_s27() {
        let net = s27();
        let k = 4;
        let reachable = enumerate_reachable(&net, k, None);
        for s in 0..8u32 {
            let target: Bits = (0..3).map(|i| (s >> i) & 1 == 1).collect();
            let (verdict, _) = bounded_reach(&net, &target, k, None, None);
            match &verdict {
                Reachability::Reachable { pis } => {
                    assert!(
                        reachable.contains(&target),
                        "SAT over-approximated {target}"
                    );
                    assert!(pis.len() <= k);
                    assert_eq!(replay_witness(&net, pis), target, "witness must replay");
                }
                Reachability::Unreachable { bound } => {
                    assert_eq!(*bound, k);
                    assert!(!reachable.contains(&target), "SAT missed {target}");
                }
                Reachability::Unknown { .. } => panic!("no conflict limit was set"),
            }
        }
    }

    #[test]
    fn constrained_inputs_shrink_the_reachable_set() {
        let net = s27();
        let k = 3;
        let cube = vec![Trit::Zero, Trit::X, Trit::Zero, Trit::X];
        let free = enumerate_reachable(&net, k, None);
        let constrained = enumerate_reachable(&net, k, Some(&cube));
        assert!(constrained.len() <= free.len());
        for s in 0..8u32 {
            let target: Bits = (0..3).map(|i| (s >> i) & 1 == 1).collect();
            let (verdict, _) = bounded_reach(&net, &target, k, Some(&cube), None);
            assert_eq!(
                verdict.is_reachable(),
                constrained.contains(&target),
                "constrained verdict for {target}"
            );
            if let Reachability::Reachable { pis } = &verdict {
                for v in pis {
                    assert!(!v.get(0) && !v.get(2), "witness must respect the cube");
                }
            }
        }
    }

    #[test]
    fn reset_state_is_reachable_at_depth_zero() {
        let net = s27();
        let (verdict, stats) = bounded_reach(&net, &Bits::zeros(3), 2, None, None);
        assert_eq!(verdict, Reachability::Reachable { pis: Vec::new() });
        assert_eq!(verdict.depth(), Some(0));
        assert_eq!(stats, SolverStats::default(), "no solving needed");
    }

    #[test]
    fn depths_are_minimal() {
        let net = s27();
        for s in 1..8u32 {
            let target: Bits = (0..3).map(|i| (s >> i) & 1 == 1).collect();
            let (verdict, _) = bounded_reach(&net, &target, 5, None, None);
            if let Some(d) = verdict.depth() {
                // A shallower bound must not reach it.
                let (shallow, _) = bounded_reach(&net, &target, d - 1, None, None);
                assert!(
                    !shallow.is_reachable(),
                    "depth {d} was not minimal for {target}"
                );
            }
        }
    }

    #[test]
    fn zero_conflict_budget_reports_unknown() {
        let net = s27();
        let target = Bits::from_str01("110");
        let (verdict, _) = bounded_reach(&net, &target, 3, None, Some(1));
        // A single conflict is enough only for trivial depths; the verdict
        // must never be a wrong Unreachable.
        if let Reachability::Reachable { pis } = &verdict {
            assert_eq!(replay_witness(&net, pis), target);
        }
    }
}
