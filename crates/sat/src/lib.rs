#![warn(missing_docs)]

//! A from-scratch SAT engine for formal reasoning about broadside tests.
//!
//! The rest of the workspace produces *constructive* evidence: a generated
//! test detects its fault because simulation says so; a scan-in state is
//! reachable because a trajectory visited it. This crate supplies the
//! negative direction — machine-checkable proofs that no test or no input
//! sequence exists — via two layers:
//!
//! * [`solver`] — a deterministic CDCL SAT solver ([`Solver`]): two-watched-
//!   literal propagation, first-UIP clause learning, VSIDS-style activities
//!   with index tie-breaks, Luby restarts. Identical input yields identical
//!   [`SolverStats`], a property the differential test suite asserts.
//! * [`cnf`] / [`unroll`] — Tseitin encodings of netlist gates
//!   ([`CnfFormula::gate`]) and time-frame expansion ([`Unroller`]): frames
//!   are stitched by aliasing each flip-flop's present-state literal to its
//!   D-driver's literal one frame earlier, and launch/capture/functional-
//!   constraint conditions are layered as unit clauses.
//!
//! On top sit the two query modules consumed elsewhere in the workspace:
//!
//! * [`broadside`] — two-frame transition-fault and transition-path-delay-
//!   fault test generation with UNSAT untestability proofs (used by
//!   `fbt-atpg`'s SAT backend);
//! * [`reach`] — bounded reachability of scan-in states from the all-0
//!   reset under constrained primary inputs (used by `fbt-core`'s
//!   functional-broadside certifier).

pub mod broadside;
pub mod cnf;
pub mod lit;
pub mod reach;
pub mod solver;
pub mod unroll;

pub use broadside::{solve_tpdf, solve_transition_fault, BroadsideEncoding, DetectionVerdict};
pub use cnf::CnfFormula;
pub use lit::{Lit, Var};
pub use reach::{bounded_reach, replay_witness, Reachability};
pub use solver::{Model, SatResult, Solver, SolverStats};
pub use unroll::{FrameState, Unroller};
