//! A from-scratch CDCL SAT solver.
//!
//! MiniSat-lineage architecture, written for this workspace with two hard
//! requirements:
//!
//! 1. **Completeness** — two-watched-literal propagation, first-UIP conflict
//!    clause learning with non-chronological backjumping, VSIDS-style
//!    variable activities and Luby restarts make the solver a decision
//!    procedure, not a heuristic: `Sat` models are checkable and `Unsat`
//!    verdicts are proofs of untestability / unreachability for the encoded
//!    bound.
//! 2. **Determinism** — identical input produces identical search traces.
//!    Every data structure is index-ordered (no hashing), activity
//!    tie-breaks prefer the lower variable index, phase saving starts from a
//!    fixed polarity, and no wall-clock or randomized decision exists
//!    anywhere. Repeated runs report identical
//!    [`SolverStats`] — asserted by the differential suite.
//!
//! Learnt clauses are kept for the lifetime of the solver: the workspace's
//! formulas (two-frame fault encodings, k-frame reachability encodings of
//! benchmark-scale circuits) stay far below the sizes where clause-database
//! reduction pays off, and never deleting keeps the solver simpler to audit.

use std::fmt;

use crate::cnf::CnfFormula;
use crate::lit::{Lit, Var};

/// Search statistics, identical across repeated runs on the same input.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Branching decisions taken.
    pub decisions: u64,
    /// Conflicts analyzed.
    pub conflicts: u64,
    /// Literals propagated (trail entries processed).
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Clauses learned.
    pub learned: u64,
}

impl SolverStats {
    /// Accumulate another run's counters (used by multi-query consumers).
    pub fn absorb(&mut self, other: &SolverStats) {
        self.decisions += other.decisions;
        self.conflicts += other.conflicts;
        self.propagations += other.propagations;
        self.restarts += other.restarts;
        self.learned += other.learned;
    }

    /// Render as a JSON object (no external dependencies in this workspace).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"decisions\":{},\"conflicts\":{},\"propagations\":{},\
             \"restarts\":{},\"learned\":{}}}",
            self.decisions, self.conflicts, self.propagations, self.restarts, self.learned
        )
    }
}

impl fmt::Display for SolverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} decisions, {} conflicts, {} propagations, {} restarts, {} learned",
            self.decisions, self.conflicts, self.propagations, self.restarts, self.learned
        )
    }
}

/// A satisfying assignment, total over the solver's variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model(Vec<bool>);

impl Model {
    /// The value assigned to a variable.
    #[inline]
    pub fn value(&self, v: Var) -> bool {
        self.0[v.index()]
    }

    /// The truth value of a literal under the model.
    #[inline]
    pub fn lit(&self, l: Lit) -> bool {
        l.eval(self.0[l.var().index()])
    }

    /// Number of variables in the model.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the model covers no variables.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// The verdict of a [`Solver::solve`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with a total model.
    Sat(Model),
    /// Proven unsatisfiable.
    Unsat,
    /// The conflict budget of [`Solver::solve_limited`] was exhausted.
    Unknown,
}

impl SatResult {
    /// The model, if satisfiable.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SatResult::Sat(m) => Some(m),
            _ => None,
        }
    }

    /// Whether the verdict is `Unsat`.
    pub fn is_unsat(&self) -> bool {
        matches!(self, SatResult::Unsat)
    }
}

const UNDEF: u8 = 2;
const NO_REASON: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
}

/// The CDCL solver.
///
/// # Example
///
/// ```
/// use fbt_sat::{SatResult, Solver};
///
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause(&[a.pos(), b.pos()]);
/// s.add_clause(&[!a.pos()]);
/// let SatResult::Sat(model) = s.solve() else { panic!() };
/// assert!(!model.value(a));
/// assert!(model.value(b));
/// ```
#[derive(Debug, Clone)]
pub struct Solver {
    clauses: Vec<Clause>,
    /// Watch lists: for each literal code, the clauses currently watching
    /// that literal (the literal sits at position 0 or 1 of the clause).
    watches: Vec<Vec<u32>>,
    assigns: Vec<u8>,
    level: Vec<u32>,
    reason: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    /// VSIDS activity per variable, decayed geometrically via `var_inc`.
    activity: Vec<f64>,
    var_inc: f64,
    /// Saved phase per variable; initial polarity is `false` so that first
    /// models are minimal-ish and — more importantly — deterministic.
    polarity: Vec<bool>,
    /// Binary max-heap over unassigned variables, ordered by activity with
    /// the lower index winning ties.
    heap: Vec<Var>,
    heap_pos: Vec<usize>,
    ok: bool,
    /// Statistics of all `solve*` calls so far.
    pub stats: SolverStats,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// An empty solver.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            polarity: Vec::new(),
            heap: Vec::new(),
            heap_pos: Vec::new(),
            ok: true,
            stats: SolverStats::default(),
        }
    }

    /// Build a solver holding all of a formula's variables and clauses.
    pub fn from_cnf(cnf: &CnfFormula) -> Self {
        let mut s = Solver::new();
        for _ in 0..cnf.num_vars() {
            s.new_var();
        }
        for c in cnf.clauses() {
            s.add_clause(c);
        }
        s
    }

    /// Allocate a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(UNDEF);
        self.level.push(0);
        self.reason.push(NO_REASON);
        self.activity.push(0.0);
        self.polarity.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap_pos.push(usize::MAX);
        self.heap_insert(v);
        v
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Add a clause. Must be called before (or between) `solve*` calls —
    /// the solver is at decision level 0 then, which this relies on.
    ///
    /// Duplicate literals are merged, tautologies dropped, and literals
    /// already false at level 0 removed. Returns `false` if the clause made
    /// the formula trivially unsatisfiable.
    ///
    /// # Panics
    ///
    /// Panics if a literal references an unallocated variable.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        assert_eq!(self.trail_lim.len(), 0, "clauses are added at level 0");
        if !self.ok {
            return false;
        }
        let mut c: Vec<Lit> = lits.to_vec();
        c.sort_unstable();
        c.dedup();
        let mut filtered: Vec<Lit> = Vec::with_capacity(c.len());
        for (k, &l) in c.iter().enumerate() {
            assert!(l.var().index() < self.num_vars(), "literal out of range");
            if k + 1 < c.len() && c[k + 1] == !l {
                return true; // tautology: contains l and ¬l
            }
            match self.lit_value(l) {
                Some(true) => return true, // already satisfied at level 0
                Some(false) => {}          // drop the false literal
                None => filtered.push(l),
            }
        }
        match filtered.as_slice() {
            [] => {
                self.ok = false;
                false
            }
            [unit] => {
                self.enqueue(*unit, NO_REASON);
                // Propagate eagerly so later add_clause calls see the
                // strongest level-0 assignment.
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                let cref = self.clauses.len() as u32;
                self.watches[filtered[0].code()].push(cref);
                self.watches[filtered[1].code()].push(cref);
                self.clauses.push(Clause { lits: filtered });
                true
            }
        }
    }

    /// Solve with no conflict budget: always returns `Sat` or `Unsat`.
    pub fn solve(&mut self) -> SatResult {
        self.solve_limited(u64::MAX)
    }

    /// Solve with a conflict budget; returns `Unknown` when it runs out.
    pub fn solve_limited(&mut self, max_conflicts: u64) -> SatResult {
        if !self.ok {
            return SatResult::Unsat;
        }
        let mut conflicts_left = max_conflicts;
        let mut restart_idx: u64 = 1;
        let mut restart_budget = luby(restart_idx) * 64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SatResult::Unsat;
                }
                let (learnt, back_level) = self.analyze(confl);
                self.cancel_until(back_level);
                self.learn(learnt);
                self.decay_activity();
                if conflicts_left == 0 {
                    // Deterministic budget accounting happens before the
                    // decrement below, so this is unreachable; kept for
                    // clarity against future edits.
                    return SatResult::Unknown;
                }
                conflicts_left -= 1;
                if conflicts_left == 0 {
                    self.cancel_until(0);
                    return SatResult::Unknown;
                }
                restart_budget = restart_budget.saturating_sub(1);
                if restart_budget == 0 {
                    self.stats.restarts += 1;
                    restart_idx += 1;
                    restart_budget = luby(restart_idx) * 64;
                    self.cancel_until(0);
                }
            } else {
                match self.pick_branch_var() {
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(v.lit(self.polarity[v.index()]), NO_REASON);
                    }
                    None => {
                        let model = Model(self.assigns.iter().map(|&a| a == 1).collect());
                        self.cancel_until(0);
                        return SatResult::Sat(model);
                    }
                }
            }
        }
    }

    // ---- internals ------------------------------------------------------

    #[inline]
    fn value(&self, v: Var) -> u8 {
        self.assigns[v.index()]
    }

    #[inline]
    fn lit_value(&self, l: Lit) -> Option<bool> {
        match self.value(l.var()) {
            UNDEF => None,
            b => Some(l.eval(b == 1)),
        }
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, l: Lit, reason: u32) {
        debug_assert_eq!(self.value(l.var()), UNDEF);
        let vi = l.var().index();
        self.assigns[vi] = (!l.is_neg()) as u8;
        self.level[vi] = self.decision_level();
        self.reason[vi] = reason;
        self.trail.push(l);
    }

    /// Two-watched-literal unit propagation. Returns a conflicting clause.
    fn propagate(&mut self) -> Option<u32> {
        let mut confl: Option<u32> = None;
        while confl.is_none() && self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            let mut ws = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut kept = 0usize;
            let mut j = 0usize;
            while j < ws.len() {
                let cref = ws[j];
                j += 1;
                let lits = &mut self.clauses[cref as usize].lits;
                if lits[0] == false_lit {
                    lits.swap(0, 1);
                }
                debug_assert_eq!(lits[1], false_lit);
                let first = lits[0];
                if lit_val(&self.assigns, first) == Some(true) {
                    ws[kept] = cref;
                    kept += 1;
                    continue;
                }
                // Look for a replacement watch among the tail literals.
                let mut moved = false;
                for k in 2..lits.len() {
                    if lit_val(&self.assigns, lits[k]) != Some(false) {
                        lits.swap(1, k);
                        let new_watch = lits[1];
                        self.watches[new_watch.code()].push(cref);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting under the current trail.
                ws[kept] = cref;
                kept += 1;
                if lit_val(&self.assigns, first) == Some(false) {
                    confl = Some(cref);
                    // Keep the unprocessed suffix of the watch list.
                    while j < ws.len() {
                        ws[kept] = ws[j];
                        kept += 1;
                        j += 1;
                    }
                } else {
                    self.enqueue(first, cref);
                }
            }
            ws.truncate(kept);
            self.watches[false_lit.code()] = ws;
        }
        confl
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first, a backjump-level literal second) and the backjump
    /// level.
    fn analyze(&mut self, confl: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // slot 0: asserting literal
        let mut seen = vec![false; self.num_vars()];
        let current = self.decision_level();
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut cref = confl;
        loop {
            for qi in 0..self.clauses[cref as usize].lits.len() {
                let q = self.clauses[cref as usize].lits[qi];
                // Skip the literal being resolved on (the reason clause
                // contains it in asserting polarity).
                if Some(q) == p {
                    continue;
                }
                let vi = q.var().index();
                if !seen[vi] && self.level[vi] > 0 {
                    seen[vi] = true;
                    self.bump_activity(q.var());
                    if self.level[vi] >= current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail backwards to the next marked literal.
            loop {
                index -= 1;
                if seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            seen[lit.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !lit;
                break;
            }
            p = Some(lit);
            cref = self.reason[lit.var().index()];
            debug_assert_ne!(cref, NO_REASON, "non-UIP literal must have a reason");
        }
        // Backjump level: the highest level among the non-asserting
        // literals; move one literal of that level to slot 1 so the watch
        // invariant holds after backjumping.
        let mut back_level = 0u32;
        let mut at = 1usize;
        for (k, l) in learnt.iter().enumerate().skip(1) {
            let lv = self.level[l.var().index()];
            if lv > back_level {
                back_level = lv;
                at = k;
            }
        }
        if learnt.len() > 1 {
            learnt.swap(1, at);
        }
        (learnt, back_level)
    }

    /// Attach a learnt clause and enqueue its asserting literal.
    fn learn(&mut self, learnt: Vec<Lit>) {
        self.stats.learned += 1;
        match learnt.as_slice() {
            [unit] => {
                debug_assert_eq!(self.decision_level(), 0);
                self.enqueue(*unit, NO_REASON);
            }
            _ => {
                let cref = self.clauses.len() as u32;
                self.watches[learnt[0].code()].push(cref);
                self.watches[learnt[1].code()].push(cref);
                let asserting = learnt[0];
                self.clauses.push(Clause { lits: learnt });
                self.enqueue(asserting, cref);
            }
        }
    }

    /// Undo all assignments above `target_level`, saving phases.
    fn cancel_until(&mut self, target_level: u32) {
        if self.decision_level() <= target_level {
            return;
        }
        let keep = self.trail_lim[target_level as usize];
        for k in (keep..self.trail.len()).rev() {
            let l = self.trail[k];
            let vi = l.var().index();
            self.polarity[vi] = !l.is_neg();
            self.assigns[vi] = UNDEF;
            self.reason[vi] = NO_REASON;
            self.heap_insert(l.var());
        }
        self.trail.truncate(keep);
        self.trail_lim.truncate(target_level as usize);
        self.qhead = keep;
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.heap_pop() {
            if self.value(v) == UNDEF {
                return Some(v);
            }
        }
        None
    }

    fn bump_activity(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        if self.heap_pos[v.index()] != usize::MAX {
            self.heap_sift_up(self.heap_pos[v.index()]);
        }
    }

    fn decay_activity(&mut self) {
        self.var_inc /= 0.95;
    }

    // ---- activity-ordered heap ------------------------------------------

    /// `a` strictly precedes `b`: higher activity wins, lower index breaks
    /// ties (the determinism anchor of the decision heuristic).
    #[inline]
    fn heap_before(&self, a: Var, b: Var) -> bool {
        let (aa, ab) = (self.activity[a.index()], self.activity[b.index()]);
        aa > ab || (aa == ab && a.0 < b.0)
    }

    fn heap_insert(&mut self, v: Var) {
        if self.heap_pos[v.index()] != usize::MAX {
            return;
        }
        self.heap_pos[v.index()] = self.heap.len();
        self.heap.push(v);
        self.heap_sift_up(self.heap.len() - 1);
    }

    fn heap_pop(&mut self) -> Option<Var> {
        let top = *self.heap.first()?;
        self.heap_pos[top.index()] = usize::MAX;
        let last = self.heap.pop().expect("heap is non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.heap_pos[last.index()] = 0;
            self.heap_sift_down(0);
        }
        Some(top)
    }

    fn heap_sift_up(&mut self, mut k: usize) {
        while k > 0 {
            let parent = (k - 1) / 2;
            if self.heap_before(self.heap[k], self.heap[parent]) {
                self.heap_swap(k, parent);
                k = parent;
            } else {
                break;
            }
        }
    }

    fn heap_sift_down(&mut self, mut k: usize) {
        loop {
            let (l, r) = (2 * k + 1, 2 * k + 2);
            let mut best = k;
            if l < self.heap.len() && self.heap_before(self.heap[l], self.heap[best]) {
                best = l;
            }
            if r < self.heap.len() && self.heap_before(self.heap[r], self.heap[best]) {
                best = r;
            }
            if best == k {
                break;
            }
            self.heap_swap(k, best);
            k = best;
        }
    }

    fn heap_swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.heap_pos[self.heap[a].index()] = a;
        self.heap_pos[self.heap[b].index()] = b;
    }
}

#[inline]
fn lit_val(assigns: &[u8], l: Lit) -> Option<bool> {
    match assigns[l.var().index()] {
        UNDEF => None,
        b => Some(l.eval(b == 1)),
    }
}

/// The Luby restart sequence 1, 1, 2, 1, 1, 2, 4, … (1-indexed).
fn luby(i: u64) -> u64 {
    // Descend through the self-similar structure: the sequence's prefix of
    // length 2^seq - 1 ends with 2^(seq-1).
    let mut x = i - 1;
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(spec: &[i32]) -> Vec<Lit> {
        spec.iter()
            .map(|&x| {
                let v = Var(x.unsigned_abs() - 1);
                v.lit(x > 0)
            })
            .collect()
    }

    fn solver_with(num_vars: usize, clauses: &[&[i32]]) -> Solver {
        let mut s = Solver::new();
        for _ in 0..num_vars {
            s.new_var();
        }
        for c in clauses {
            s.add_clause(&lits(c));
        }
        s
    }

    #[test]
    fn luby_sequence_prefix() {
        let prefix: Vec<u64> = (1..=15).map(luby).collect();
        assert_eq!(prefix, [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert!(matches!(s.solve(), SatResult::Sat(_)));
    }

    #[test]
    fn contradictory_units_are_unsat() {
        let mut s = solver_with(1, &[&[1], &[-1]]);
        assert!(s.solve().is_unsat());
        // The solver stays unsat afterwards.
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn model_satisfies_all_clauses() {
        let cls: &[&[i32]] = &[&[1, 2, -3], &[-1, 3], &[-2, 3], &[1, -2], &[2, -1, 3]];
        let mut s = solver_with(3, cls);
        let SatResult::Sat(m) = s.solve() else {
            panic!("satisfiable");
        };
        for c in cls {
            assert!(lits(c).iter().any(|&l| m.lit(l)), "clause {c:?} falsified");
        }
    }

    #[test]
    fn tautology_and_duplicates_are_harmless() {
        let mut s = solver_with(2, &[&[1, -1], &[2, 2, 2]]);
        let SatResult::Sat(m) = s.solve() else {
            panic!("satisfiable");
        };
        assert!(m.value(Var(1)));
    }

    #[test]
    fn conflict_budget_returns_unknown() {
        // Pigeonhole 4→3 needs more than one conflict.
        let mut s = pigeonhole(4, 3);
        assert_eq!(s.solve_limited(1), SatResult::Unknown);
        // And the full search still finishes it off afterwards.
        assert!(s.solve().is_unsat());
    }

    /// PHP(p, h): p pigeons into h holes, UNSAT when p > h.
    /// Variable `x_{i,j}` = pigeon i sits in hole j.
    fn pigeonhole(pigeons: usize, holes: usize) -> Solver {
        let mut s = Solver::new();
        let var = |i: usize, j: usize| Var((i * holes + j) as u32);
        for _ in 0..pigeons * holes {
            s.new_var();
        }
        for i in 0..pigeons {
            let c: Vec<Lit> = (0..holes).map(|j| var(i, j).pos()).collect();
            s.add_clause(&c);
        }
        for j in 0..holes {
            for a in 0..pigeons {
                for b in a + 1..pigeons {
                    s.add_clause(&[var(a, j).neg(), var(b, j).neg()]);
                }
            }
        }
        s
    }

    #[test]
    fn pigeonhole_unsat_and_fit_sat() {
        assert!(pigeonhole(5, 4).solve().is_unsat());
        assert!(pigeonhole(6, 5).solve().is_unsat());
        let SatResult::Sat(m) = pigeonhole(4, 4).solve() else {
            panic!("4 pigeons fit 4 holes");
        };
        // Exactly one hole per pigeon row is allowed to be multiple? No —
        // at-least-one per pigeon and at-most-one-pigeon per hole: check.
        for i in 0..4 {
            assert!((0..4).any(|j| m.value(Var((i * 4 + j) as u32))));
        }
        for j in 0..4 {
            assert!((0..4).filter(|i| m.value(Var((i * 4 + j) as u32))).count() <= 1);
        }
    }

    #[test]
    fn unit_propagation_chain_needs_no_decisions() {
        // x1, x1→x2, x2→x3, …, x9→x10: all forced at level 0.
        let mut s = Solver::new();
        for _ in 0..10 {
            s.new_var();
        }
        s.add_clause(&lits(&[1]));
        for k in 1..10i32 {
            s.add_clause(&lits(&[-k, k + 1]));
        }
        let SatResult::Sat(m) = s.solve() else {
            panic!("chain is satisfiable");
        };
        assert!((0..10).all(|v| m.value(Var(v))));
        assert_eq!(s.stats.decisions, 0, "pure propagation");
        assert_eq!(s.stats.conflicts, 0);
    }

    #[test]
    fn deterministic_stats_across_runs() {
        let run = || {
            let mut s = pigeonhole(6, 5);
            assert!(s.solve().is_unsat());
            s.stats
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "identical input must give identical search traces");
        assert!(a.conflicts > 0);
    }

    #[test]
    fn clauses_added_after_level0_propagation() {
        // A unit clause propagates eagerly inside add_clause; a later
        // clause already satisfied at level 0 must be dropped harmlessly.
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        assert!(s.add_clause(&[a.pos()]));
        assert!(s.add_clause(&[a.pos(), b.pos()]));
        assert!(s.add_clause(&[a.neg(), b.pos()]));
        let SatResult::Sat(m) = s.solve() else {
            panic!("satisfiable");
        };
        assert!(m.value(a));
        assert!(m.value(b));
    }

    #[test]
    fn level0_conflict_via_add_clause() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.pos()]);
        s.add_clause(&[a.neg(), b.pos()]);
        assert!(!s.add_clause(&[b.neg()]), "contradiction at level 0");
        assert!(s.solve().is_unsat());
    }
}
