//! Boolean variables and literals.

use std::fmt;
use std::ops::Not;

/// A Boolean variable, identified by a dense index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// The index as `usize`, for slice access.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    #[inline]
    pub fn pos(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal of this variable.
    // Not `std::ops::Neg`: negating a variable yields a *literal*, and an
    // operator that changes type would read worse than `v.neg()`.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn neg(self) -> Lit {
        Lit((self.0 << 1) | 1)
    }

    /// The literal of this variable with the given polarity (`true` =
    /// positive).
    #[inline]
    pub fn lit(self, positive: bool) -> Lit {
        if positive {
            self.pos()
        } else {
            self.neg()
        }
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation, packed as `var << 1 | sign`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The literal's variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is negated.
    #[inline]
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The packed code (`var << 1 | sign`), an index into watch lists.
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// The truth value this literal takes when its variable is assigned
    /// `value`.
    #[inline]
    pub fn eval(self, value: bool) -> bool {
        value != self.is_neg()
    }

    /// Apply an extra negation when `negate` is true (useful for encoding
    /// inverting gates).
    #[inline]
    pub fn xor_neg(self, negate: bool) -> Lit {
        Lit(self.0 ^ negate as u32)
    }
}

impl Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_neg() {
            write!(f, "¬{}", self.var())
        } else {
            write!(f, "{}", self.var())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_roundtrip() {
        let v = Var(7);
        assert_eq!(v.pos().var(), v);
        assert_eq!(v.neg().var(), v);
        assert!(!v.pos().is_neg());
        assert!(v.neg().is_neg());
        assert_eq!(!v.pos(), v.neg());
        assert_eq!(!(!v.pos()), v.pos());
        assert_eq!(v.lit(true), v.pos());
        assert_eq!(v.lit(false), v.neg());
    }

    #[test]
    fn eval_respects_sign() {
        let v = Var(3);
        assert!(v.pos().eval(true));
        assert!(!v.pos().eval(false));
        assert!(v.neg().eval(false));
        assert!(!v.neg().eval(true));
    }

    #[test]
    fn xor_neg_flips_conditionally() {
        let l = Var(2).pos();
        assert_eq!(l.xor_neg(false), l);
        assert_eq!(l.xor_neg(true), !l);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Var(4).pos().to_string(), "x4");
        assert_eq!(Var(4).neg().to_string(), "¬x4");
    }
}
