//! Criterion benches over the end-to-end generation procedures: the
//! unconstrained baseline of \[73\], the constrained multi-segment method
//! (the paper's contribution), the state-holding stage, and the TPDF
//! pipeline — the wall-clock counterparts of Tables 2.5 / 2.6 and the run
//! costs behind Tables 4.3 / 4.4.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fbt_atpg::tpdf::{run_pipeline, TpdfConfig};
use fbt_core::driver::DrivingBlock;
use fbt_core::{generate_constrained, generate_unconstrained, improve_with_holding, swafunc, FunctionalBistConfig};
use fbt_fault::path::{enumerate_paths, tpdf_list};
use fbt_netlist::s27;

fn bench_unconstrained(c: &mut Criterion) {
    let net = s27();
    let cfg = FunctionalBistConfig::smoke();
    c.bench_function("unconstrained_s27_smoke", |b| {
        b.iter(|| black_box(generate_unconstrained(&net, &cfg)))
    });
}

fn bench_constrained(c: &mut Criterion) {
    let net = s27();
    let cfg = FunctionalBistConfig::smoke();
    let bound = swafunc(&net, &DrivingBlock::Buffers, &cfg);
    c.bench_function("constrained_s27_smoke", |b| {
        b.iter(|| black_box(generate_constrained(&net, bound, &cfg)))
    });
}

fn bench_holding(c: &mut Criterion) {
    let net = s27();
    let cfg = FunctionalBistConfig::smoke();
    let bound = swafunc(&net, &DrivingBlock::Buffers, &cfg) * 0.75;
    let base = generate_constrained(&net, bound, &cfg);
    c.bench_function("state_holding_s27_smoke", |b| {
        b.iter(|| black_box(improve_with_holding(&net, bound, &cfg, &base)))
    });
}

fn bench_tpdf_pipeline(c: &mut Criterion) {
    let net = s27();
    let faults = tpdf_list(&enumerate_paths(&net, usize::MAX));
    let cfg = TpdfConfig::default();
    c.bench_function("tpdf_pipeline_s27", |b| {
        b.iter(|| black_box(run_pipeline(&net, &faults, &cfg)))
    });
}

criterion_group!(
    benches,
    bench_unconstrained,
    bench_constrained,
    bench_holding,
    bench_tpdf_pipeline
);
criterion_main!(benches);
