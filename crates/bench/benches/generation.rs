//! Self-contained benches over the end-to-end generation procedures: the
//! unconstrained baseline of \[73\], the constrained multi-segment method
//! (the paper's contribution), the state-holding stage, and the TPDF
//! pipeline — the wall-clock counterparts of Tables 2.5 / 2.6 and the run
//! costs behind Tables 4.3 / 4.4.
//!
//! Criterion is deliberately not used (offline build environment); the
//! harness is a plain timed loop. Run with `cargo bench --bench generation`.

use std::hint::black_box;
use std::time::{Duration, Instant};

use fbt_atpg::tpdf::{run_pipeline, TpdfConfig};
use fbt_core::driver::DrivingBlock;
use fbt_core::{
    generate_constrained, generate_unconstrained, improve_with_holding, swafunc,
    FunctionalBistConfig,
};
use fbt_fault::path::{enumerate_paths, tpdf_list};
use fbt_netlist::s27;

/// Time `f` adaptively: warm up once, then repeat until ~0.5 s has elapsed
/// and report the mean per-iteration time.
fn bench<R>(name: &str, mut f: impl FnMut() -> R) {
    black_box(f());
    let budget = Duration::from_millis(500);
    let mut iters = 0u32;
    let start = Instant::now();
    while start.elapsed() < budget {
        black_box(f());
        iters += 1;
    }
    let mean = start.elapsed() / iters.max(1);
    println!("{name:<36} {mean:>12.2?}/iter  ({iters} iters)");
}

fn main() {
    let net = s27();
    let cfg = FunctionalBistConfig::smoke();

    bench("unconstrained_s27_smoke", || {
        black_box(generate_unconstrained(&net, &cfg))
    });

    let bound = swafunc(&net, &DrivingBlock::Buffers, &cfg);
    bench("constrained_s27_smoke", || {
        black_box(generate_constrained(&net, bound, &cfg))
    });

    let bound = swafunc(&net, &DrivingBlock::Buffers, &cfg) * 0.75;
    let base = generate_constrained(&net, bound, &cfg);
    bench("state_holding_s27_smoke", || {
        black_box(improve_with_holding(&net, bound, &cfg, &base))
    });

    let faults = tpdf_list(&enumerate_paths(&net, usize::MAX));
    let tpdf_cfg = TpdfConfig::default();
    bench("tpdf_pipeline_s27", || {
        black_box(run_pipeline(&net, &faults, &tpdf_cfg))
    });
}
