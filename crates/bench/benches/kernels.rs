//! Self-contained benches for the performance kernels: packed logic
//! simulation, the serial vs. packed-parallel fault-simulation engines, the
//! TPG hardware model and K-critical-path STA. These correspond to the
//! per-sub-procedure run-time comparisons of Tables 2.5 / 2.6 at kernel
//! granularity.
//!
//! Criterion is deliberately not used: the build environment is offline, so
//! the harness is a plain `fn main()` with `std::time::Instant` timing
//! (`harness = false` in the manifest). Run with
//! `cargo bench --bench kernels`.

use std::hint::black_box;
use std::time::{Duration, Instant};

use fbt_bist::{cube, Tpg, TpgSpec};
use fbt_fault::{
    all_transition_faults, BroadsideTest, FaultSimEngine, FaultSimOptions, PackedParallelSim,
    SerialSim, TestSet,
};
use fbt_netlist::rng::Rng;
use fbt_netlist::synth;
use fbt_sim::comb;
use fbt_timing::sta::{k_critical_paths, Unconstrained};
use fbt_timing::DelayLibrary;

/// Time `f` adaptively: warm up once, then repeat until ~0.5 s has elapsed
/// and report the mean per-iteration time.
fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> Duration {
    black_box(f());
    let budget = Duration::from_millis(500);
    let mut iters = 0u32;
    let start = Instant::now();
    while start.elapsed() < budget {
        black_box(f());
        iters += 1;
    }
    let mean = start.elapsed() / iters.max(1);
    println!("{name:<44} {mean:>12.2?}/iter  ({iters} iters)");
    mean
}

fn net_1196() -> fbt_netlist::Netlist {
    synth::generate(&synth::find("s1196").unwrap())
}

fn random_tests(net: &fbt_netlist::Netlist, n: usize, seed: u64) -> Vec<BroadsideTest> {
    let mut rng = Rng::new(seed);
    (0..n)
        .map(|_| {
            BroadsideTest::new(
                (0..net.num_dffs()).map(|_| rng.bit()).collect(),
                (0..net.num_inputs()).map(|_| rng.bit()).collect(),
                (0..net.num_inputs()).map(|_| rng.bit()).collect(),
            )
        })
        .collect()
}

fn bench_packed_eval() {
    let net = net_1196();
    let mut vals = vec![0u64; net.num_nodes()];
    let mut rng = Rng::new(1);
    for v in vals.iter_mut() {
        *v = rng.next_u64();
    }
    bench("packed_eval_s1196_64pat", || {
        comb::eval_packed(&net, black_box(&mut vals));
    });
}

/// The headline comparison: serial oracle vs. the packed-parallel engine at
/// several thread counts, without fault dropping so every engine does the
/// same amount of work. Reports throughput in pattern·fault evaluations/s.
fn bench_fault_sim_engines() {
    let net = net_1196();
    let faults = all_transition_faults(&net);
    let tests = random_tests(&net, 256, 2);
    let work = (tests.len() * faults.len()) as f64;
    let opts = FaultSimOptions::new().fault_dropping(false);

    // Baseline: the same serial engine driven one test at a time, so each
    // 64-lane word carries a single pattern. This isolates the packing
    // factor itself (identical cone logic, 1/64th lane occupancy).
    let single = &tests[..64];
    let work_single = (single.len() * faults.len()) as f64;
    let mut serial1 = SerialSim::new(&net);
    let t1 = bench("fault_sim_s1196_64tests/serial_1pat_word", || {
        let mut detected = vec![false; faults.len()];
        for t in single {
            black_box(serial1.simulate(
                TestSet::Broadside(std::slice::from_ref(t)),
                &faults,
                &mut detected,
                &opts,
            ));
        }
    });
    let unpacked = work_single / t1.as_secs_f64();
    println!(
        "{:<44} {:>10.1} Mpat·fault/s",
        "  1-pattern/word throughput",
        unpacked / 1e6
    );

    let mut serial = SerialSim::new(&net);
    let t = bench("fault_sim_s1196_256tests/serial", || {
        let mut detected = vec![false; faults.len()];
        black_box(serial.simulate(TestSet::Broadside(&tests), &faults, &mut detected, &opts))
    });
    let base = t.as_secs_f64();
    println!(
        "{:<44} {:>10.1} Mpat·fault/s  ({:.1}x vs 1-pattern/word)",
        "  serial throughput",
        work / base / 1e6,
        work / base / unpacked
    );

    for threads in [1usize, 2, 4, 8] {
        let opts = opts.clone().threads(threads);
        let mut packed = PackedParallelSim::new(&net);
        let t = bench(
            &format!("fault_sim_s1196_256tests/packed_t{threads}"),
            || {
                let mut detected = vec![false; faults.len()];
                black_box(packed.simulate(
                    TestSet::Broadside(&tests),
                    &faults,
                    &mut detected,
                    &opts,
                ))
            },
        );
        println!(
            "{:<44} {:>10.1} Mpat·fault/s  ({:.2}x vs serial)",
            format!("  packed_t{threads} throughput"),
            work / t.as_secs_f64() / 1e6,
            base / t.as_secs_f64()
        );
    }
}

fn bench_tpg() {
    let net = net_1196();
    let spec = TpgSpec::standard(cube::input_cube(&net));
    bench("tpg_s1196_1000cycles", || {
        let mut tpg = Tpg::new(spec.clone(), 0xACE1);
        black_box(tpg.sequence(1000))
    });
}

fn bench_sta() {
    let net = synth::generate(&synth::find("s953").unwrap());
    let lib = DelayLibrary::generic_018um();
    bench("k_critical_paths_s953_k200", || {
        black_box(k_critical_paths(&net, &lib, 200, &Unconstrained, 1_000_000))
    });
}

fn main() {
    println!(
        "host parallelism: {}",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    bench_packed_eval();
    bench_fault_sim_engines();
    bench_tpg();
    bench_sta();
}
