//! Criterion benches for the performance kernels: packed logic simulation,
//! broadside fault simulation, the TPG hardware model and K-critical-path
//! STA. These correspond to the per-sub-procedure run-time comparisons of
//! Tables 2.5 / 2.6 at kernel granularity.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fbt_bist::{cube, Tpg, TpgSpec};
use fbt_fault::sim::FaultSim;
use fbt_fault::{all_transition_faults, BroadsideTest};
use fbt_netlist::rng::Rng;
use fbt_netlist::synth;
use fbt_sim::comb;
use fbt_timing::sta::{k_critical_paths, Unconstrained};
use fbt_timing::DelayLibrary;

fn net_1196() -> fbt_netlist::Netlist {
    synth::generate(&synth::find("s1196").unwrap())
}

fn random_tests(net: &fbt_netlist::Netlist, n: usize, seed: u64) -> Vec<BroadsideTest> {
    let mut rng = Rng::new(seed);
    (0..n)
        .map(|_| {
            BroadsideTest::new(
                (0..net.num_dffs()).map(|_| rng.bit()).collect(),
                (0..net.num_inputs()).map(|_| rng.bit()).collect(),
                (0..net.num_inputs()).map(|_| rng.bit()).collect(),
            )
        })
        .collect()
}

fn bench_packed_eval(c: &mut Criterion) {
    let net = net_1196();
    let mut vals = vec![0u64; net.num_nodes()];
    let mut rng = Rng::new(1);
    for v in vals.iter_mut() {
        *v = rng.next_u64();
    }
    c.bench_function("packed_eval_s1196_64pat", |b| {
        b.iter(|| {
            comb::eval_packed(&net, black_box(&mut vals));
        })
    });
}

fn bench_fault_sim(c: &mut Criterion) {
    let net = net_1196();
    let faults = all_transition_faults(&net);
    let tests = random_tests(&net, 256, 2);
    c.bench_function("fault_sim_s1196_256tests", |b| {
        b.iter(|| {
            let mut fsim = FaultSim::new(&net);
            let mut detected = vec![false; faults.len()];
            black_box(fsim.run(&tests, &faults, &mut detected))
        })
    });
}

fn bench_tpg(c: &mut Criterion) {
    let net = net_1196();
    let spec = TpgSpec::standard(cube::input_cube(&net));
    c.bench_function("tpg_s1196_1000cycles", |b| {
        b.iter(|| {
            let mut tpg = Tpg::new(spec.clone(), 0xACE1);
            black_box(tpg.sequence(1000))
        })
    });
}

fn bench_sta(c: &mut Criterion) {
    let net = synth::generate(&synth::find("s953").unwrap());
    let lib = DelayLibrary::generic_018um();
    c.bench_function("k_critical_paths_s953_k200", |b| {
        b.iter(|| black_box(k_critical_paths(&net, &lib, 200, &Unconstrained, 1_000_000)))
    });
}

criterion_group!(benches, bench_packed_eval, bench_fault_sim, bench_tpg, bench_sta);
criterion_main!(benches);
