//! Chapter 3 experiment runners (Tables 3.1–3.5).

use std::collections::HashSet;

use fbt_atpg::podem::{AtpgOutcome, Podem};
use fbt_fault::{Transition, TransitionPathDelayFault};
use fbt_netlist::{Netlist, NodeId};
use fbt_timing::case::CaseAnalysis;
use fbt_timing::sta::{path_delay, Unconstrained};
use fbt_timing::{select_paths, DelayLibrary, PathSelection, PathSelectionConfig};

use crate::Scale;

/// The circuits of Tables 3.2 / 3.3 / 3.5.
pub fn circuits(scale: Scale) -> Vec<&'static str> {
    // At reduced scales the deep synthetic stand-ins have (faithfully to
    // Table 2.2) vanishingly few detectable faults among their longest
    // paths; the smaller circuits keep the selection dynamics observable.
    match scale {
        Scale::Smoke => vec!["s386", "s510"],
        Scale::Default => vec!["s386", "s510", "s820", "s953", "s1488", "b11"],
        Scale::Paper => vec![
            "s1423", "s5378", "s9234", "s13207", "s38417", "s38584", "b11", "b12",
        ],
    }
}

/// Run path selection for one circuit and one `N`.
pub fn selection(net: &Netlist, lib: &DelayLibrary, n: usize) -> PathSelection {
    select_paths(net, lib, &PathSelectionConfig::for_n(n))
}

/// The set of fault keys selected by *traditional* STA ranking (original
/// delays) — the comparison baseline of Table 3.3.
pub fn traditional_top(sel: &PathSelection, n: usize) -> HashSet<(Vec<NodeId>, Transition)> {
    let mut by_original: Vec<&fbt_timing::SelectedFault> = sel.target.iter().collect();
    by_original.sort_by(|a, b| {
        b.original_delay
            .partial_cmp(&a.original_delay)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    by_original
        .iter()
        .filter(|f| !f.added_during_recalculation)
        .take(n)
        .map(|f| key(&f.fault))
        .collect()
}

/// The set selected by the refined ranking (final delays).
pub fn refined_top(sel: &PathSelection, n: usize) -> HashSet<(Vec<NodeId>, Transition)> {
    sel.target.iter().take(n).map(|f| key(&f.fault)).collect()
}

fn key(f: &TransitionPathDelayFault) -> (Vec<NodeId>, Transition) {
    (f.path.nodes().to_vec(), f.source_transition)
}

/// Generate a test for a path delay fault and return the delay under that
/// test ("after TG" of Table 3.4): the case-analysis delay with the complete
/// test's values asserted.
pub fn delay_after_test_generation(
    net: &Netlist,
    lib: &DelayLibrary,
    fault: &TransitionPathDelayFault,
    podem: &mut Podem<'_>,
) -> Option<f64> {
    let trs = fault.transition_faults(net);
    // As in the paper's flow, test generation starts from the fault's input
    // necessary assignments; the test's conditions are then a superset of
    // those used for the "final" delay, so after-TG <= final <= original.
    let base = match fbt_atpg::necessary::tpdf_analysis(net, fault, &HashSet::new()) {
        fbt_atpg::necessary::Analysis::Potential(sets) => {
            fbt_atpg::tpdf::cube_from_inputs(net, &sets.input_necessary)
        }
        fbt_atpg::necessary::Analysis::Undetectable => return None,
    };
    let cube = match podem.generate_multi(&base, &trs) {
        AtpgOutcome::Test(c) => c,
        _ => return None,
    };
    let ca = CaseAnalysis::from_cube(net, &cube)?;
    path_delay(net, lib, &fault.path, fault.source_transition, &ca)
        // A test's assignments can block the nominal worst-case arcs on the
        // path; the exhibited delay is then the unconstrained walk with the
        // stable side-inputs' load still present — fall back to the final
        // (necessary-assignment) delay semantics by ignoring the constraint
        // on the on-path lines themselves.
        .or_else(|| {
            path_delay(
                net,
                lib,
                &fault.path,
                fault.source_transition,
                &Unconstrained,
            )
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbt_atpg::PodemConfig;

    #[test]
    fn tops_have_requested_sizes() {
        let net = fbt_netlist::s27();
        let lib = DelayLibrary::generic_018um();
        let sel = selection(&net, &lib, 5);
        assert!(refined_top(&sel, 5).len() >= 5);
        assert!(!traditional_top(&sel, 5).is_empty());
    }

    #[test]
    fn after_tg_delay_not_above_original() {
        let net = fbt_netlist::s27();
        let lib = DelayLibrary::generic_018um();
        let sel = selection(&net, &lib, 5);
        let mut podem = Podem::new(
            &net,
            PodemConfig {
                backtrack_limit: 100_000,
                time_limit: std::time::Duration::from_secs(10),
            },
        );
        let mut seen_one = false;
        for f in sel.target.iter().take(5) {
            if let Some(after) = delay_after_test_generation(&net, &lib, &f.fault, &mut podem) {
                assert!(after <= f.original_delay + 1e-9);
                seen_one = true;
            }
        }
        assert!(seen_one, "at least one fault should get a test");
    }
}
