#![warn(missing_docs)]

//! Shared infrastructure for the experiment binaries.
//!
//! Every table of the paper's evaluation has a binary in `src/bin/`
//! (`table2_1` … `table4_4`). All binaries accept a scale as `argv[1]` or
//! the `FBT_SCALE` environment variable:
//!
//! * `smoke` — seconds, tiny circuits (CI);
//! * `default` — minutes, catalog circuits scaled down (the shipped
//!   EXPERIMENTS.md numbers);
//! * `paper` — the paper's parameters and circuit sizes (hours).

pub mod ch2;
pub mod ch3;
pub mod ch4;

use std::time::Duration;

use fbt_atpg::tpdf::TpdfConfig;
use fbt_atpg::PodemConfig;
use fbt_core::FunctionalBistConfig;
use fbt_netlist::synth::CircuitSpec;
use fbt_netlist::Netlist;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds; CI-sized.
    Smoke,
    /// Minutes; the shipped results.
    Default,
    /// The paper's parameters (hours).
    Paper,
}

impl Scale {
    /// Read the scale from `argv[1]` or `FBT_SCALE` (default: `default`).
    pub fn from_env() -> Scale {
        let arg = std::env::args()
            .nth(1)
            .or_else(|| std::env::var("FBT_SCALE").ok());
        match arg.as_deref() {
            Some("smoke") => Scale::Smoke,
            Some("paper") => Scale::Paper,
            _ => Scale::Default,
        }
    }

    /// Divisor applied to catalog circuit sizes.
    pub fn circuit_divisor(self) -> usize {
        match self {
            Scale::Smoke => 16,
            Scale::Default => 8,
            Scale::Paper => 1,
        }
    }

    /// The functional-BIST configuration for Chapter 4 experiments.
    pub fn bist_config(self) -> FunctionalBistConfig {
        match self {
            Scale::Smoke => FunctionalBistConfig::smoke(),
            Scale::Default => FunctionalBistConfig::scaled(),
            Scale::Paper => FunctionalBistConfig::paper(),
        }
    }

    /// The TPDF pipeline configuration for Chapter 2 experiments.
    pub fn tpdf_config(self) -> TpdfConfig {
        match self {
            Scale::Smoke => TpdfConfig {
                tf_podem: PodemConfig {
                    backtrack_limit: 128,
                    time_limit: Duration::from_millis(200),
                },
                heuristic_time_limit: Duration::from_millis(50),
                bnb: PodemConfig {
                    backtrack_limit: 1_000,
                    time_limit: Duration::from_millis(300),
                },
                sat_fallback: true,
                preflight: true,
                seed: 0x7BDF,
            },
            Scale::Default => TpdfConfig::default(),
            Scale::Paper => TpdfConfig {
                tf_podem: PodemConfig {
                    backtrack_limit: 128,
                    time_limit: Duration::from_secs(30),
                },
                heuristic_time_limit: Duration::from_secs(60),
                bnb: PodemConfig {
                    backtrack_limit: 1_000_000,
                    time_limit: Duration::from_secs(120),
                },
                sat_fallback: true,
                preflight: true,
                seed: 0x7BDF,
            },
        }
    }

    /// Path-enumeration cap for "enumerate all paths" experiments.
    pub fn path_cap(self) -> usize {
        match self {
            Scale::Smoke => 400,
            Scale::Default => 4_000,
            Scale::Paper => usize::MAX,
        }
    }

    /// The "at least this many detected faults" target of Table 2.2.
    pub fn detect_target(self) -> usize {
        match self {
            Scale::Smoke => 10,
            Scale::Default => 50,
            Scale::Paper => 1_000,
        }
    }

    /// The N sweep of Tables 3.2 / 3.3 (paper: 100, 200, …, 1000).
    pub fn n_sweep(self) -> Vec<usize> {
        match self {
            Scale::Smoke => vec![5, 10],
            Scale::Default => (1..=10).map(|i| i * 10).collect(),
            Scale::Paper => (1..=10).map(|i| i * 100).collect(),
        }
    }
}

/// Generate a catalog circuit at this scale.
pub fn circuit(scale: Scale, name: &str) -> Netlist {
    let spec =
        fbt_netlist::synth::find(name).unwrap_or_else(|| panic!("unknown catalog circuit {name}"));
    fbt_netlist::synth::generate(&scaled_spec(scale, &spec))
}

/// The scaled spec for a catalog circuit.
pub fn scaled_spec(scale: Scale, spec: &CircuitSpec) -> CircuitSpec {
    spec.scaled(scale.circuit_divisor())
}

/// Fixed-width table printer.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header length).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Render to stdout.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==");
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for r in &self.rows {
            for (w, c) in widths.iter_mut().zip(r) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let cols: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            println!("{}", cols.join("  "));
        };
        line(&self.header);
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for r in &self.rows {
            line(r);
        }
    }
}

/// `mm:ss` rendering of a duration.
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs();
    format!("{:02}:{:02}.{:03}", s / 60, s % 60, d.subsec_millis())
}

/// Two-decimal percent.
pub fn pct(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_differ() {
        assert!(Scale::Smoke.circuit_divisor() > Scale::Paper.circuit_divisor());
        assert_eq!(Scale::Paper.path_cap(), usize::MAX);
        assert_eq!(Scale::Paper.detect_target(), 1000);
    }

    #[test]
    fn circuit_lookup() {
        let net = circuit(Scale::Smoke, "s298");
        assert!(net.num_gates() > 0);
    }

    #[test]
    #[should_panic(expected = "unknown catalog circuit")]
    fn unknown_circuit_panics() {
        let _ = circuit(Scale::Smoke, "sNOPE");
    }

    #[test]
    fn table_renders() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.print("test");
    }

    #[test]
    fn duration_format() {
        assert_eq!(fmt_duration(Duration::from_millis(61_500)), "01:01.500");
    }
}
