//! `bench_ch4` — wall-clock benchmark of the Chapter-4 seed search: the
//! serial loop (`batch = 1, threads = 1`) against deterministic speculative
//! batching (`batch = 8`, one worker per core) in its two forms — the
//! legacy per-candidate passes (`spec8`, kept for one release so stored
//! numbers stay comparable) and the candidate-packed grouped calls
//! (`packed8`, the default). All modes produce bit-identical outcomes
//! (asserted here); the benchmark measures the wall-clock and
//! wasted-evaluation trade. All methods run through the unified
//! policy-driven `GenerationEngine` (the `engine` field of the JSON summary
//! records this).
//!
//! Usage: `bench_ch4 [scale] [circuit]` — the optional second argument (or
//! `BENCH_CH4_CIRCUIT`) restricts the run to one catalog circuit, e.g.
//! `bench_ch4 smoke spi`.
//!
//! Prints the per-run [`GenerationStats`] and writes a machine-readable
//! summary to `BENCH_ch4.json` (override the path with `BENCH_CH4_OUT`).

use std::time::Instant;

use fbt_bench::{ch4, fmt_duration, pct, Scale, Table};
use fbt_core::driver::swafunc;
use fbt_core::{
    generate_constrained, generate_unconstrained, FunctionalBistConfig, GenerationStats,
    SearchOptions,
};

/// Identifies the generation-loop implementation the numbers were measured
/// on, so stored benchmark JSON stays comparable across refactors.
const ENGINE: &str = "unified";

struct Entry {
    circuit: String,
    method: &'static str,
    mode: &'static str,
    batch: usize,
    threads: usize,
    fc_pct: f64,
    stats: GenerationStats,
}

impl Entry {
    fn to_json(&self) -> String {
        format!(
            "{{\"circuit\":\"{}\",\"method\":\"{}\",\"mode\":\"{}\",\"batch\":{},\
             \"threads\":{},\"fc_pct\":{:.4},\"stats\":{}}}",
            self.circuit,
            self.method,
            self.mode,
            self.batch,
            self.threads,
            self.fc_pct,
            self.stats.to_json(),
        )
    }
}

fn modes() -> [(&'static str, SearchOptions); 3] {
    [
        ("serial", SearchOptions::serial()),
        // The pre-grouped speculative search (per-candidate PPSFP passes).
        // Deprecated alongside the per-test-set engine API; stamped for one
        // release so stored benchmark JSON stays comparable.
        (
            "spec8",
            SearchOptions {
                batch: 8,
                threads: 0,
                packed: false,
            },
        ),
        ("packed8", SearchOptions::speculative(8)),
    ]
}

fn main() {
    let scale = Scale::from_env();
    let filter = std::env::args()
        .nth(2)
        .or_else(|| std::env::var("BENCH_CH4_CIRCUIT").ok());
    let base = scale.bist_config();
    let mut entries: Vec<Entry> = Vec::new();
    let mut t = Table::new(&[
        "Circuit", "Method", "Mode", "FC %", "Evals", "Wasted", "Waste %", "Wall",
    ]);

    let selected: Vec<&'static str> = ch4::pairs(scale)
        .into_iter()
        .map(|(target_name, _)| target_name)
        .filter(|name| filter.as_deref().is_none_or(|f| f == *name))
        .collect();
    assert!(
        !selected.is_empty(),
        "circuit filter {:?} matches nothing at scale {scale:?}",
        filter.as_deref().unwrap_or("")
    );

    for target_name in selected {
        let target = fbt_bench::circuit(scale, target_name);
        let bound = swafunc(&target, &fbt_core::DrivingBlock::Buffers, &base);

        let mut fc_by_method: [Option<f64>; 2] = [None, None];
        for (mode, search) in modes() {
            let cfg = FunctionalBistConfig {
                search,
                ..base.clone()
            };
            for (mi, method) in ["unconstrained", "constrained"].into_iter().enumerate() {
                let t0 = Instant::now();
                let (fc, mut stats) = match method {
                    "unconstrained" => {
                        let out = generate_unconstrained(&target, &cfg);
                        (out.fault_coverage(), out.stats.clone())
                    }
                    _ => {
                        let out = generate_constrained(&target, bound, &cfg);
                        (out.fault_coverage(), out.stats.clone())
                    }
                };
                stats.total_wall = t0.elapsed();
                // Determinism guarantee: every mode must reach the same
                // coverage (outcomes are bit-identical by construction).
                match fc_by_method[mi] {
                    None => fc_by_method[mi] = Some(fc),
                    Some(prev) => assert_eq!(prev, fc, "{target_name} {method} {mode}"),
                }
                println!("{target_name:>12} {method:>13} {mode:>6}: {stats}");
                t.row(vec![
                    target_name.to_string(),
                    method.to_string(),
                    mode.to_string(),
                    pct(fc),
                    stats.evals.to_string(),
                    stats.wasted_evals.to_string(),
                    pct(100.0 * stats.waste_ratio()),
                    fmt_duration(stats.total_wall),
                ]);
                entries.push(Entry {
                    circuit: target_name.to_string(),
                    method,
                    mode,
                    batch: search.batch,
                    threads: search.resolved_threads(),
                    fc_pct: fc,
                    stats,
                });
            }
        }
    }

    t.print(&format!(
        "bench_ch4: serial vs speculative seed search [{scale:?}]"
    ));

    let body: Vec<String> = entries.iter().map(Entry::to_json).collect();
    let json = format!(
        "{{\"scale\":\"{scale:?}\",\"engine\":\"{ENGINE}\",\"host_threads\":{},\"entries\":[{}]}}\n",
        SearchOptions::default().resolved_threads(),
        body.join(",")
    );
    let path = std::env::var("BENCH_CH4_OUT").unwrap_or_else(|_| "BENCH_ch4.json".to_string());
    std::fs::write(&path, json).expect("write benchmark JSON");
    println!("\nwrote {path}");
}
