//! N-detection profile of the built-in-generated test set (§4.1: "it is
//! easy to apply a large number of tests with built-in test generation …
//! N-detection is naturally achieved").

use fbt_bench::{pct, Scale, Table};
use fbt_core::constrained::replay_tests;
use fbt_core::driver::DrivingBlock;
use fbt_core::{generate_constrained, swafunc};
use fbt_fault::{n_detect_coverage, FaultSimEngine, PackedParallelSim};

fn main() {
    let scale = Scale::from_env();
    let cfg = scale.bist_config();
    let circuits = match scale {
        Scale::Smoke => vec!["s298"],
        _ => vec!["s298", "s953", "spi"],
    };
    let ns = [1usize, 2, 3, 5, 10];
    let mut header = vec!["Circuit".to_string(), "Ntests".to_string()];
    header.extend(ns.iter().map(|n| format!("FC@n={n} %")));
    let hrefs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(&hrefs);
    for name in circuits {
        let net = fbt_bench::circuit(scale, name);
        let bound = swafunc(&net, &DrivingBlock::Buffers, &cfg);
        let out = generate_constrained(&net, bound, &cfg);
        let tests = replay_tests(&net, &out, &cfg);
        let mut fsim = PackedParallelSim::new(&net);
        let counts = fsim.n_detect_profile(&tests, &out.faults, 10);
        let mut row = vec![net.name().to_string(), tests.len().to_string()];
        row.extend(ns.iter().map(|&n| pct(n_detect_coverage(&counts, n))));
        t.row(row);
    }
    t.print(&format!(
        "N-detection profile of on-chip test sets [{scale:?}]"
    ));
}
