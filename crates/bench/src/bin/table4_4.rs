//! Table 4.4 — built-in test generation with state holding (targets whose
//! functional-broadside coverage left room for improvement).

use fbt_bench::{ch4, pct, Scale, Table};

fn main() {
    let scale = Scale::from_env();
    let threshold = 90.0; // paper: holding applied where FC < 90%
    let mut t = Table::new(&[
        "Circuit",
        "Driving block",
        "Nh",
        "Nbits",
        "Nseeds",
        "Ntests",
        "SWA %",
        "FC Imp. %",
        "Final FC %",
        "HW Area (um2)",
        "Area Over. %",
    ]);
    for (target_name, driver_names) in ch4::pairs(scale) {
        let target = fbt_bench::circuit(scale, target_name);
        for (label, driving) in ch4::admissible_drivers(scale, &target, &driver_names) {
            let (row, base) = ch4::constrained_cell(scale, &target, &driving);
            if row.fc_pct >= threshold {
                continue;
            }
            let (h, hout) = ch4::holding_cell(scale, &target, &driving, &base);
            println!("{} / {label}: {}", h.target, hout.stats);
            t.row(vec![
                h.target.clone(),
                label,
                h.nh.to_string(),
                h.nbits.to_string(),
                h.nseeds.to_string(),
                h.ntests.to_string(),
                pct(h.swa_pct),
                pct(h.fc_improvement_pct),
                pct(h.final_fc_pct),
                format!("{:.0}", h.hw_area),
                pct(h.overhead_pct),
            ]);
        }
    }
    t.print(&format!(
        "Table 4.4: built-in test generation with state holding [{scale:?}]"
    ));
}
