//! Table 3.1 — path-selection walk-through on an s13207-class circuit:
//! original vs. recalculated delays, and the faults added by the procedure.

use fbt_bench::{ch3, Scale, Table};
use fbt_timing::DelayLibrary;

fn main() {
    let scale = Scale::from_env();
    let circuit_name = match scale {
        Scale::Paper => "s13207",
        _ => "s953",
    };
    let net = fbt_bench::circuit(scale, circuit_name);
    let lib = DelayLibrary::generic_018um();
    let n = match scale {
        Scale::Smoke => 8,
        _ => 16,
    };
    let sel = ch3::selection(&net, &lib, n);
    let mut t = Table::new(&[
        "Path delay fault",
        "orignial (ns)",
        "final (ns)",
        "new path",
    ]);
    for (i, f) in sel.target.iter().enumerate() {
        t.row(vec![
            format!("fp{}", i + 1),
            format!("{:.3}", f.original_delay),
            format!("{:.3}", f.final_delay),
            if f.added_during_recalculation {
                "yes"
            } else {
                "-"
            }
            .to_string(),
        ]);
    }
    t.print(&format!(
        "Table 3.1: path selection in {} (N = {n}, initial set {}, {} undetectable skipped) [{scale:?}]",
        net.name(),
        sel.initial_count,
        sel.undetectable_skipped
    ));
}
