//! Table 2.1 — TPDF test generation with all paths enumerated.

use fbt_bench::{ch2, fmt_duration, Scale, Table};

fn main() {
    let scale = Scale::from_env();
    let mut t = Table::new(&[
        "Circuit",
        "No. of faults",
        "No. of Det.",
        "No. of Undet.",
        "No. of Abr.",
        "Run time",
    ]);
    for run in ch2::run_small(scale) {
        t.row(vec![
            run.name,
            run.num_faults.to_string(),
            run.report.num_detected().to_string(),
            run.report.num_undetectable().to_string(),
            run.report.num_aborted().to_string(),
            fmt_duration(run.elapsed),
        ]);
    }
    t.print(&format!(
        "Table 2.1: results of test generation (enumerate all paths) [{scale:?}]"
    ));
}
