//! Multi-clock-domain investigation (paper §5.1, third future-work item):
//! partition the flip-flops into clock domains, simulate each domain at its
//! own rate, classify faults as intra- vs. inter-domain, and measure how
//! much coverage per-domain functional broadside tests recover.

use fbt_bench::{pct, Scale, Table};
use fbt_bist::{cube, Tpg, TpgSpec};
use fbt_core::domains::{classify_faults, domain_tests, round_robin, simulate_multi_rate};
use fbt_fault::{all_transition_faults, collapse};
use fbt_fault::{FaultSimEngine, FaultSimOptions, PackedParallelSim, TestSet};
use fbt_netlist::rng::Rng;
use fbt_sim::Bits;

fn main() {
    let scale = Scale::from_env();
    let cfg = scale.bist_config();
    let circuits = match scale {
        Scale::Smoke => vec!["s298"],
        _ => vec!["s298", "s953", "spi"],
    };
    let mut t = Table::new(&[
        "Circuit",
        "domains",
        "intra faults",
        "inter faults",
        "Ntests",
        "FC (all) %",
    ]);
    for name in circuits {
        let net = fbt_bench::circuit(scale, name);
        let faults = collapse(&net, &all_transition_faults(&net));
        for n_domains in [1usize, 2, 3] {
            let domains = round_robin(&net, n_domains);
            let (intra, inter) = classify_faults(&net, &domains, &faults);
            // Per-domain functional broadside tests from multi-rate
            // trajectories over a few seeds.
            let spec = TpgSpec {
                lfsr_width: cfg.lfsr_width,
                m: cfg.m,
                cube: cube::input_cube(&net),
            };
            let mut rng = Rng::new(cfg.master_seed);
            let mut fsim = PackedParallelSim::new(&net);
            let mut detected = vec![false; faults.len()];
            let mut ntests = 0usize;
            for _ in 0..6 {
                let pis = Tpg::new(spec.clone(), rng.next_u64()).sequence(cfg.seq_len);
                let traj = simulate_multi_rate(&net, &domains, &Bits::zeros(net.num_dffs()), &pis);
                for d in 0..n_domains {
                    let tests = domain_tests(&domains, d, &pis, &traj);
                    ntests += tests.len();
                    fsim.simulate(
                        TestSet::TwoPattern(&tests),
                        &faults,
                        &mut detected,
                        &FaultSimOptions::new(),
                    );
                }
            }
            t.row(vec![
                net.name().to_string(),
                n_domains.to_string(),
                intra.len().to_string(),
                inter.len().to_string(),
                ntests.to_string(),
                pct(fbt_fault::sim::coverage_percent(&detected)),
            ]);
        }
    }
    t.print(&format!(
        "Multi-clock-domain investigation (§5.1): per-domain functional tests [{scale:?}]"
    ));
}
