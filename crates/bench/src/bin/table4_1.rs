//! Table 4.1 — worked example of primary-input subsequence selection under
//! the switching-activity bound.

use fbt_bench::{pct, Scale, Table};
use fbt_bist::{cube, Tpg, TpgSpec};
use fbt_core::FunctionalBistConfig;
use fbt_sim::seq::simulate_sequence;
use fbt_sim::Bits;

fn main() {
    let scale = Scale::from_env();
    let net = fbt_bench::circuit(scale, "s298");
    let cfg = FunctionalBistConfig::smoke();
    let spec = TpgSpec {
        lfsr_width: cfg.lfsr_width,
        m: cfg.m,
        cube: cube::input_cube(&net),
    };
    let pis = Tpg::new(spec, 0xACE1).sequence(24);
    let traj = simulate_sequence(&net, &Bits::zeros(net.num_dffs()), &pis);
    // A bound below the peak so that the example shows violations.
    let bound = traj.peak_swa() * 0.9;
    let mut t = Table::new(&["Clock cycle i", "s(i)", "p(i)", "SWA(i) %", "status"]);
    for (i, p) in pis.iter().enumerate() {
        let swa = traj.swa[i];
        let status = match swa {
            None => "-".to_string(),
            Some(v) if v > bound => "VIOLATION".to_string(),
            Some(_) => "ok".to_string(),
        };
        t.row(vec![
            i.to_string(),
            traj.states[i].to_string(),
            p.to_string(),
            swa.map_or("-".to_string(), |v| pct(v * 100.0)),
            status,
        ]);
    }
    t.print(&format!(
        "Table 4.1: primary input subsequence selection example on {} (SWAfunc = {}%) [{scale:?}]",
        net.name(),
        pct(bound * 100.0)
    ));
}
