//! Table 4.2 — benchmark circuit parameters.

use fbt_bench::{Scale, Table};
use fbt_core::experiment::circuit_params;

fn main() {
    let scale = Scale::from_env();
    let names = [
        "s35932",
        "s38584",
        "b14",
        "b20",
        "spi",
        "wb_dma",
        "systemcaes",
        "systemcdes",
        "des_area",
        "aes_core",
        "wb_conmax",
        "des_perf",
    ];
    let mut t = Table::new(&["Circuit", "NPO", "Nin", "Np", "NSV"]);
    for name in names {
        let net = fbt_bench::circuit(scale, name);
        let p = circuit_params(&net);
        t.row(vec![
            p.name,
            p.npo.to_string(),
            p.npi.to_string(),
            p.nsp.to_string(),
            p.nsv.to_string(),
        ]);
    }
    t.print(&format!(
        "Table 4.2: parameters for benchmark circuits [{scale:?}]"
    ));
}
