//! Ablation: the primary input cube C (repeated-synchronization avoidance,
//! §4.3) on vs. off. Without the biasing gates, inputs that synchronize
//! state variables keep re-synchronizing them and coverage drops.

use fbt_bench::{pct, Scale, Table};
use fbt_bist::{cube, Tpg, TpgSpec};
use fbt_fault::{all_transition_faults, collapse};
use fbt_fault::{FaultSimEngine, FaultSimOptions, PackedParallelSim, TestSet};
use fbt_netlist::rng::Rng;
use fbt_sim::seq::simulate_sequence;
use fbt_sim::{Bits, Trit};

fn main() {
    let scale = Scale::from_env();
    let cfg = scale.bist_config();
    let circuits = match scale {
        Scale::Smoke => vec!["s298", "s386"],
        _ => vec!["s298", "s386", "s953", "s1196", "spi", "wb_dma"],
    };
    let mut t = Table::new(&["Circuit", "NSP", "FC biased %", "FC unbiased %", "delta"]);
    for name in circuits {
        let net = fbt_bench::circuit(scale, name);
        let real_cube = cube::input_cube(&net);
        let nsp = cube::specified_count(&real_cube);
        let faults = collapse(&net, &all_transition_faults(&net));
        let zero = Bits::zeros(net.num_dffs());
        let coverage = |c: Vec<Trit>| {
            let spec = TpgSpec {
                lfsr_width: cfg.lfsr_width,
                m: cfg.m,
                cube: c,
            };
            let mut rng = Rng::new(cfg.master_seed);
            let mut fsim = PackedParallelSim::new(&net);
            let mut detected = vec![false; faults.len()];
            for _ in 0..8 {
                let pis = Tpg::new(spec.clone(), rng.next_u64()).sequence(cfg.seq_len);
                let traj = simulate_sequence(&net, &zero, &pis);
                let tests = fbt_core::extract::functional_tests(&pis, &traj.states);
                fsim.simulate(
                    TestSet::Broadside(&tests),
                    &faults,
                    &mut detected,
                    &FaultSimOptions::new(),
                );
            }
            fbt_fault::sim::coverage_percent(&detected)
        };
        let biased = coverage(real_cube);
        let unbiased = coverage(vec![Trit::X; net.num_inputs()]);
        t.row(vec![
            net.name().to_string(),
            nsp.to_string(),
            pct(biased),
            pct(unbiased),
            format!("{:+.2}", biased - unbiased),
        ]);
    }
    t.print(&format!(
        "Ablation: input-cube biasing (repeated synchronization, §4.3) [{scale:?}]"
    ));
}
