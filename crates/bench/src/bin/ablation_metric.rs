//! Ablation: switching-activity bound (the paper's §4.4 metric) vs. the
//! signal-transition-pattern subset rule (§5.1 future work, \[90\]). STP is
//! strictly stronger: it also forbids signal transitions functional
//! operation never produces, trading coverage for less overtesting risk.

use fbt_bench::{pct, Scale, Table};
use fbt_core::driver::{functional_sequences, DrivingBlock};
use fbt_core::stp::StpLibrary;
use fbt_core::{
    estimate_overtesting, generate_constrained, generate_constrained_with_library, DeviationMetric,
    FunctionalBistConfig,
};
use fbt_sim::Bits;

fn main() {
    let scale = Scale::from_env();
    let cfg = scale.bist_config();
    // The functional library is sampled more sparsely than the generation
    // budget, so the SWA-bounded generator strays outside it (a measurable
    // overtesting residue) while the STP rule, by construction, cannot.
    let lib_cfg = FunctionalBistConfig {
        func_sequences: 2,
        func_len: cfg.func_len / 4,
        ..cfg.clone()
    };
    let circuits = match scale {
        Scale::Smoke => vec!["s298"],
        _ => vec!["s298", "s386", "s953"],
    };
    let mut t = Table::new(&[
        "Circuit",
        "metric",
        "bound %",
        "Nseeds",
        "Ntests",
        "SWA %",
        "FC %",
        "non-func trans %",
    ]);
    for name in circuits {
        let net = fbt_bench::circuit(scale, name);
        let seqs = functional_sequences(&net, &DrivingBlock::Buffers, &lib_cfg);
        let lib = StpLibrary::collect(&net, &Bits::zeros(net.num_dffs()), &seqs);
        let bound = fbt_sim::activity::peak_activity(&net, &Bits::zeros(net.num_dffs()), &seqs);

        let swa_out = generate_constrained(&net, bound, &cfg);
        let swa_residue = estimate_overtesting(&net, &swa_out, &cfg, &lib);
        t.row(vec![
            net.name().to_string(),
            "SWA".to_string(),
            pct(bound * 100.0),
            swa_out.nseeds().to_string(),
            swa_out.tests_applied.to_string(),
            pct(swa_out.peak_swa * 100.0),
            pct(swa_out.fault_coverage()),
            pct(swa_residue.non_functional_fraction() * 100.0),
        ]);

        let stp_cfg = FunctionalBistConfig {
            metric: DeviationMetric::SignalTransitionPatterns,
            ..cfg.clone()
        };
        let stp_out = generate_constrained_with_library(&net, bound, &lib, &stp_cfg);
        let stp_residue = estimate_overtesting(&net, &stp_out, &stp_cfg, &lib);
        t.row(vec![
            net.name().to_string(),
            format!("STP ({} patterns)", lib.len()),
            pct(bound * 100.0),
            stp_out.nseeds().to_string(),
            stp_out.tests_applied.to_string(),
            pct(stp_out.peak_swa * 100.0),
            pct(stp_out.fault_coverage()),
            pct(stp_residue.non_functional_fraction() * 100.0),
        ]);
    }
    t.print(&format!(
        "Ablation: deviation metric — SWA bound vs signal-transition patterns [{scale:?}]"
    ));
}
