//! Ablation: state-holding parameters — hold period 2^h and set-selection
//! tree height H (paper §4.5; the paper fixes h = 2, H = 6).

use fbt_bench::{pct, Scale, Table};
use fbt_core::driver::DrivingBlock;
use fbt_core::{
    generate_constrained, improve_with_holding, improve_with_holding_greedy, swafunc,
    FunctionalBistConfig,
};

fn main() {
    let scale = Scale::from_env();
    let base_cfg = scale.bist_config();
    let name = match scale {
        Scale::Smoke => "s298",
        _ => "spi",
    };
    let net = fbt_bench::circuit(scale, name);
    // A deliberately tightened bound leaves coverage on the table.
    let bound = swafunc(&net, &DrivingBlock::Buffers, &base_cfg) * 0.8;
    let base = generate_constrained(&net, bound, &base_cfg);
    println!(
        "{}: functional-broadside coverage {:.2}% (bound {:.2}%)",
        net.name(),
        base.fault_coverage(),
        bound * 100.0
    );
    let mut t = Table::new(&[
        "h (hold every 2^h)",
        "selection",
        "H",
        "Nh",
        "Nbits",
        "FC Imp. %",
        "Final FC %",
    ]);
    for h in [1u32, 2, 3] {
        for tree in [2u32, 3] {
            let cfg = FunctionalBistConfig {
                hold_period_log2: h,
                hold_tree_height: tree,
                ..base_cfg.clone()
            };
            for (label, out) in [
                (
                    "tree (§4.5.2)",
                    improve_with_holding(&net, bound, &cfg, &base),
                ),
                (
                    "greedy (§5.1)",
                    improve_with_holding_greedy(&net, bound, &cfg, &base),
                ),
            ] {
                t.row(vec![
                    h.to_string(),
                    label.to_string(),
                    tree.to_string(),
                    out.sets.len().to_string(),
                    out.nbits().to_string(),
                    pct(out.improvement()),
                    pct(out.final_coverage()),
                ]);
            }
        }
    }
    t.print(&format!("Ablation: state-holding parameters [{scale:?}]"));
}
