//! Table 3.5 — how often the recalculated delay is closer to the delay under
//! a generated test.

use fbt_atpg::podem::Podem;
use fbt_atpg::PodemConfig;
use fbt_bench::{ch3, pct, Scale, Table};
use fbt_timing::DelayLibrary;
use std::time::Duration;

fn main() {
    let scale = Scale::from_env();
    let lib = DelayLibrary::generic_018um();
    let n = match scale {
        Scale::Smoke => 10,
        Scale::Default => 50,
        Scale::Paper => 1000,
    };
    let mut t = Table::new(&["Circuit", "Pct. 1 %", "Pct. 2 %"]);
    for name in ch3::circuits(scale) {
        let net = fbt_bench::circuit(scale, name);
        let sel = ch3::selection(&net, &lib, n);
        let mut podem = Podem::new(
            &net,
            PodemConfig {
                backtrack_limit: 5_000,
                time_limit: Duration::from_secs(2),
            },
        );
        let mut differs = 0usize;
        let mut closer = 0usize;
        let mut tested = 0usize;
        for f in sel.target.iter().take(n) {
            let Some(after) = ch3::delay_after_test_generation(&net, &lib, &f.fault, &mut podem)
            else {
                continue;
            };
            tested += 1;
            if (f.original_delay - after).abs() > 1e-9 {
                differs += 1;
                if (f.final_delay - after).abs() < (f.original_delay - after).abs() - 1e-12 {
                    closer += 1;
                }
            }
        }
        let p1 = if tested > 0 {
            100.0 * differs as f64 / tested as f64
        } else {
            0.0
        };
        let p2 = if differs > 0 {
            100.0 * closer as f64 / differs as f64
        } else {
            0.0
        };
        t.row(vec![name.to_string(), pct(p1), pct(p2)]);
    }
    t.print(&format!("Table 3.5: path delay comparison [{scale:?}]"));
}
