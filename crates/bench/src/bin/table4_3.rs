//! Table 4.3 — built-in generation of functional broadside tests considering
//! primary input constraints.

use fbt_bench::{ch4, pct, Scale, Table};

fn main() {
    let scale = Scale::from_env();
    let mut t = Table::new(&[
        "Circuit",
        "Lsc",
        "Driving block",
        "Nmulti",
        "Nsegmax",
        "Lmax",
        "SWAfunc %",
        "Nseeds",
        "Ntests",
        "SWA %",
        "FC %",
        "HW Area (um2)",
        "Area Over. %",
    ]);
    for (target_name, driver_names) in ch4::pairs(scale) {
        let target = fbt_bench::circuit(scale, target_name);
        for (label, driving) in ch4::admissible_drivers(scale, &target, &driver_names) {
            let (row, out) = ch4::constrained_cell(scale, &target, &driving);
            println!("{} / {label}: {}", row.target, out.stats);
            t.row(vec![
                format!("{} ({})", row.target, row.num_faults),
                row.lsc.to_string(),
                label,
                row.nmulti.to_string(),
                row.nsegmax.to_string(),
                row.lmax.to_string(),
                pct(row.swafunc_pct),
                row.nseeds.to_string(),
                row.ntests.to_string(),
                pct(row.swa_pct),
                pct(row.fc_pct),
                format!("{:.0}", row.hw_area),
                pct(row.overhead_pct),
            ]);
        }
    }
    t.print(&format!(
        "Table 4.3: built-in test generation considering primary input constraints [{scale:?}]"
    ));
}
