//! Tables 2.3 / 2.4 — faults decided per sub-procedure.

use fbt_atpg::tpdf::SubProcedure;
use fbt_bench::{ch2, Scale, Table};

fn print_counts(title: &str, runs: &[ch2::Ch2Run]) {
    let mut t = Table::new(&[
        "Circuit",
        "Prep. Proc.",
        "FSim Proc.",
        "Heur. Proc.",
        "Bran. Proc.",
    ]);
    for run in runs {
        let det = |p: SubProcedure| run.report.stats.detected.get(&p).copied().unwrap_or(0);
        let undet_prep = run
            .report
            .stats
            .undetectable
            .get(&SubProcedure::Preprocess)
            .copied()
            .unwrap_or(0);
        // Paper's first column: upper bound on detectable faults after
        // preprocessing removed the provably undetectable ones.
        t.row(vec![
            run.name.clone(),
            (run.num_faults - undet_prep).to_string(),
            det(SubProcedure::FaultSim).to_string(),
            det(SubProcedure::Heuristic).to_string(),
            det(SubProcedure::BranchBound).to_string(),
        ]);
    }
    t.print(title);
}

fn main() {
    let scale = Scale::from_env();
    print_counts(
        &format!("Table 2.3: detections per sub-procedure (all paths) [{scale:?}]"),
        &ch2::run_small(scale),
    );
    print_counts(
        &format!("Table 2.4: detections per sub-procedure (longest paths) [{scale:?}]"),
        &ch2::run_large(scale),
    );
}
