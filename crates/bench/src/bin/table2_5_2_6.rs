//! Tables 2.5 / 2.6 — run time per sub-procedure.

use fbt_atpg::tpdf::SubProcedure;
use fbt_bench::{ch2, fmt_duration, Scale, Table};
use std::time::Duration;

fn print_times(title: &str, runs: &[ch2::Ch2Run]) {
    let mut t = Table::new(&[
        "Circuit",
        "TG for Tran.",
        "Prep. Proc.",
        "FSim Proc.",
        "Heur. Proc.",
        "Bran. Proc.",
    ]);
    for run in runs {
        let time = |p: SubProcedure| {
            fmt_duration(
                run.report
                    .stats
                    .times
                    .get(&p)
                    .copied()
                    .unwrap_or(Duration::ZERO),
            )
        };
        t.row(vec![
            run.name.clone(),
            fmt_duration(run.report.stats.tf_generation_time),
            time(SubProcedure::Preprocess),
            time(SubProcedure::FaultSim),
            time(SubProcedure::Heuristic),
            time(SubProcedure::BranchBound),
        ]);
    }
    t.print(title);
}

fn main() {
    let scale = Scale::from_env();
    print_times(
        &format!("Table 2.5: run time per sub-procedure (all paths) [{scale:?}]"),
        &ch2::run_small(scale),
    );
    print_times(
        &format!("Table 2.6: run time per sub-procedure (longest paths) [{scale:?}]"),
        &ch2::run_large(scale),
    );
}
