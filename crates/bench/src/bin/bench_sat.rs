//! `bench_sat` — wall-clock and search-effort benchmark of the CDCL SAT
//! backend: every transition fault of each benchmark circuit is solved
//! through the two-frame time-frame-expansion encoding, counting tests,
//! untestability proofs and aborts alongside the solver's decision,
//! conflict and propagation totals.
//!
//! The run re-solves the first circuit and asserts bit-identical solver
//! statistics — the determinism guarantee the differential suite relies on.
//!
//! Prints a per-circuit table and writes a machine-readable summary to
//! `BENCH_sat.json` (override the path with `BENCH_SAT_OUT`).

use std::time::Instant;

use fbt_bench::{ch2, fmt_duration, Scale, Table};
use fbt_fault::all_transition_faults;
use fbt_netlist::{s27, Netlist};
use fbt_sat::{solve_transition_fault, DetectionVerdict, SolverStats};

struct Entry {
    circuit: String,
    faults: usize,
    tests: usize,
    untestable: usize,
    aborted: usize,
    wall_ms: u128,
    solver: SolverStats,
}

impl Entry {
    fn to_json(&self) -> String {
        format!(
            "{{\"circuit\":\"{}\",\"faults\":{},\"tests\":{},\"untestable\":{},\
             \"aborted\":{},\"wall_ms\":{},\"solver\":{}}}",
            self.circuit,
            self.faults,
            self.tests,
            self.untestable,
            self.aborted,
            self.wall_ms,
            self.solver.to_json(),
        )
    }
}

fn run_circuit(net: &Netlist, conflict_limit: Option<u64>) -> Entry {
    let faults = all_transition_faults(net);
    let mut entry = Entry {
        circuit: net.name().to_string(),
        faults: faults.len(),
        tests: 0,
        untestable: 0,
        aborted: 0,
        wall_ms: 0,
        solver: SolverStats::default(),
    };
    let t0 = Instant::now();
    for fault in &faults {
        let (verdict, stats) = solve_transition_fault(net, fault, conflict_limit);
        entry.solver.absorb(&stats);
        match verdict {
            DetectionVerdict::Test(_) => entry.tests += 1,
            DetectionVerdict::Untestable => entry.untestable += 1,
            DetectionVerdict::Unknown => entry.aborted += 1,
        }
    }
    entry.wall_ms = t0.elapsed().as_millis();
    entry
}

fn main() {
    let scale = Scale::from_env();
    let conflict_limit = match scale {
        Scale::Smoke => Some(20_000),
        Scale::Default => Some(200_000),
        Scale::Paper => None,
    };

    let mut nets = vec![s27()];
    for name in ch2::small_circuits(scale) {
        nets.push(fbt_bench::circuit(scale, name));
    }

    let mut entries: Vec<Entry> = Vec::new();
    let mut t = Table::new(&[
        "Circuit",
        "Faults",
        "Tests",
        "Untest",
        "Abort",
        "Conflicts",
        "Props",
        "Wall",
    ]);
    for net in &nets {
        let e = run_circuit(net, conflict_limit);
        println!(
            "{:>12}: {}/{} testable, {}",
            e.circuit, e.tests, e.faults, e.solver
        );
        t.row(vec![
            e.circuit.clone(),
            e.faults.to_string(),
            e.tests.to_string(),
            e.untestable.to_string(),
            e.aborted.to_string(),
            e.solver.conflicts.to_string(),
            e.solver.propagations.to_string(),
            fmt_duration(std::time::Duration::from_millis(e.wall_ms as u64)),
        ]);
        entries.push(e);
    }

    // Determinism guarantee: a repeated run must reproduce the verdict
    // counts and the exact search statistics, not merely the verdicts.
    let again = run_circuit(&nets[0], conflict_limit);
    assert_eq!(
        (again.tests, again.untestable, again.aborted),
        (entries[0].tests, entries[0].untestable, entries[0].aborted),
        "verdict counts changed between runs"
    );
    assert_eq!(
        again.solver, entries[0].solver,
        "solver statistics changed between runs"
    );

    t.print(&format!(
        "bench_sat: CDCL transition-fault solving [{scale:?}]"
    ));

    let body: Vec<String> = entries.iter().map(Entry::to_json).collect();
    let json = format!(
        "{{\"scale\":\"{scale:?}\",\"entries\":[{}]}}\n",
        body.join(",")
    );
    let path = std::env::var("BENCH_SAT_OUT").unwrap_or_else(|_| "BENCH_sat.json".to_string());
    std::fs::write(&path, json).expect("write benchmark JSON");
    println!("\nwrote {path}");
}
