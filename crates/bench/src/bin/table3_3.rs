//! Table 3.3 — number of path delay faults unique to the refined selection.

use fbt_bench::{ch3, Scale, Table};
use fbt_timing::DelayLibrary;

fn main() {
    let scale = Scale::from_env();
    let lib = DelayLibrary::generic_018um();
    let sweep = scale.n_sweep();
    let mut header: Vec<String> = vec!["Circuit".into()];
    header.extend(sweep.iter().map(|n| n.to_string()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);
    for name in ch3::circuits(scale) {
        let net = fbt_bench::circuit(scale, name);
        let mut row = vec![name.to_string()];
        for &n in &sweep {
            let sel = ch3::selection(&net, &lib, n);
            let trad = ch3::traditional_top(&sel, n);
            let refined = ch3::refined_top(&sel, n);
            let unique = refined.difference(&trad).count();
            row.push(unique.to_string());
        }
        t.row(row);
    }
    t.print(&format!(
        "Table 3.3: number of different path delay faults [{scale:?}]"
    ));
}
