//! Table 3.4 — original / final / after-test-generation path delays.

use fbt_atpg::podem::Podem;
use fbt_atpg::PodemConfig;
use fbt_bench::{ch3, Scale, Table};
use fbt_timing::DelayLibrary;
use std::time::Duration;

fn main() {
    let scale = Scale::from_env();
    let circuit_name = match scale {
        Scale::Paper => "s13207",
        _ => "s953",
    };
    let net = fbt_bench::circuit(scale, circuit_name);
    let lib = DelayLibrary::generic_018um();
    let sel = ch3::selection(&net, &lib, 16);
    let mut podem = Podem::new(
        &net,
        PodemConfig {
            backtrack_limit: 20_000,
            time_limit: Duration::from_secs(5),
        },
    );
    let unit = lib.unit();
    let mut t = Table::new(&[
        "Path delay fault",
        "original",
        "final",
        "after TG",
        "diff",
        "diff_unit",
    ]);
    let mut shown = 0usize;
    for (i, f) in sel.target.iter().enumerate() {
        if shown >= 10 {
            break;
        }
        let Some(after) = ch3::delay_after_test_generation(&net, &lib, &f.fault, &mut podem) else {
            continue;
        };
        shown += 1;
        let diff = f.original_delay - f.final_delay;
        t.row(vec![
            format!("fp{}", i + 1),
            format!("{:.3}", f.original_delay),
            format!("{:.3}", f.final_delay),
            format!("{:.3}", after),
            format!("{:.3}", diff),
            format!("{:.1}", diff / unit),
        ]);
    }
    t.print(&format!(
        "Table 3.4: path delay comparison of {} [{scale:?}]",
        net.name()
    ));
}
