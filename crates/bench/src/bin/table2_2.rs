//! Table 2.2 — TPDF test generation from the longest paths downwards.

use fbt_bench::{ch2, fmt_duration, Scale, Table};

fn main() {
    let scale = Scale::from_env();
    let mut t = Table::new(&[
        "Circuit",
        "No. of faults",
        "No. of Det.",
        "No. of Undet.",
        "No. of Abr.",
        "Run time",
    ]);
    for run in ch2::run_large(scale) {
        t.row(vec![
            run.name,
            run.num_faults.to_string(),
            run.report.num_detected().to_string(),
            run.report.num_undetectable().to_string(),
            run.report.num_aborted().to_string(),
            fmt_duration(run.elapsed),
        ]);
    }
    t.print(&format!(
        "Table 2.2: results of test generation (longest paths first) [{scale:?}]"
    ));
}
