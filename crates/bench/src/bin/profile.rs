//! Structural profile of the benchmark catalog: the circuit characteristics
//! the evaluation chapters reason about (depth, fanout, reconvergence,
//! observability) plus the synchronizing-input count behind the `Np` column
//! of Table 4.2.

use fbt_bench::{pct, Scale, Table};
use fbt_bist::cube;
use fbt_netlist::analysis::profile;
use fbt_sim::reset::greedy_synchronizing_sequence;

fn main() {
    let scale = Scale::from_env();
    let names = [
        "s298",
        "s953",
        "s1423",
        "s13207",
        "b14",
        "spi",
        "wb_dma",
        "systemcdes",
        "aes_core",
    ];
    let mut t = Table::new(&[
        "Circuit",
        "PI",
        "PO",
        "FF",
        "gates",
        "depth",
        "mean FO",
        "reconv stems",
        "dead",
        "Np",
        "greedy sync %",
    ]);
    for name in names {
        let net = fbt_bench::circuit(scale, name);
        let p = profile(&net);
        let c = cube::input_cube(&net);
        let (_, sync) = greedy_synchronizing_sequence(&net, 6);
        t.row(vec![
            net.name().to_string(),
            net.num_inputs().to_string(),
            net.num_outputs().to_string(),
            net.num_dffs().to_string(),
            net.num_gates().to_string(),
            p.depth.to_string(),
            format!("{:.2}", p.mean_fanout),
            p.reconvergent_stems.to_string(),
            p.dead_gates.to_string(),
            cube::specified_count(&c).to_string(),
            pct(100.0 * sync.synchronized as f64 / net.num_dffs().max(1) as f64),
        ]);
    }
    t.print(&format!(
        "Structural profile of the benchmark catalog [{scale:?}]"
    ));
    println!(
        "\n(\"greedy sync %\": state variables a 6-vector greedy synchronizing\n\
         sequence can initialize from the unknown power-up state; the paper's\n\
         circuits additionally have reset pins, which the all-0 assumed-\n\
         reachable state models.)"
    );
}
