//! Table 3.2 — Target_PDF size before and after delay recalculation.

use fbt_bench::{ch3, Scale, Table};
use fbt_timing::DelayLibrary;

fn main() {
    let scale = Scale::from_env();
    let lib = DelayLibrary::generic_018um();
    let sweep = scale.n_sweep();
    let mut header: Vec<String> = vec!["Circuit".into(), "".into()];
    header.extend(sweep.iter().map(|n| n.to_string()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);
    for name in ch3::circuits(scale) {
        let net = fbt_bench::circuit(scale, name);
        let mut original = vec![name.to_string(), "original".to_string()];
        let mut fin = vec![String::new(), "final".to_string()];
        for &n in &sweep {
            let sel = ch3::selection(&net, &lib, n);
            original.push(sel.initial_count.to_string());
            fin.push(sel.target.len().to_string());
        }
        t.row(original);
        t.row(fin);
    }
    t.print(&format!(
        "Table 3.2: path group size comparison [{scale:?}]"
    ));
}
