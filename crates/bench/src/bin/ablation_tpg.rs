//! Ablation: the developed TPG (fixed 32-stage LFSR + shift register,
//! Fig. 4.8) vs. the TPG of \[73\] (dedicated LFSR stages per input, Fig. 4.7)
//! vs. a weighted-random TPG — coverage per test budget and register cost.
//!
//! The paper's motivation for Fig. 4.8 is hardware: \[73\]'s LFSR grows
//! linearly with the input count. The ablation verifies the coverage cost of
//! that substitution is negligible.

use fbt_bench::{pct, Scale, Table};
use fbt_bist::{cube, Tpg, Tpg73, TpgSpec, WeightedTpg};
use fbt_fault::{all_transition_faults, collapse};
use fbt_fault::{FaultSimEngine, FaultSimOptions, PackedParallelSim, TestSet};
use fbt_netlist::rng::Rng;
use fbt_sim::seq::simulate_sequence;
use fbt_sim::Bits;

fn main() {
    let scale = Scale::from_env();
    let cfg = scale.bist_config();
    let circuits = match scale {
        Scale::Smoke => vec!["s298"],
        _ => vec!["s298", "s953", "s1196", "spi"],
    };
    let n_seeds = 8;
    let mut t = Table::new(&["Circuit", "TPG", "LFSR+SR bits", "Ntests", "FC %"]);
    for name in circuits {
        let net = fbt_bench::circuit(scale, name);
        let c = cube::input_cube(&net);
        let faults = collapse(&net, &all_transition_faults(&net));
        let zero = Bits::zeros(net.num_dffs());
        let spec = TpgSpec {
            lfsr_width: cfg.lfsr_width,
            m: cfg.m,
            cube: c.clone(),
        };

        let mut run = |label: &str, bits: usize, mut gen: Box<dyn FnMut(u64) -> Vec<Bits>>| {
            let mut rng = Rng::new(cfg.master_seed);
            let mut fsim = PackedParallelSim::new(&net);
            let mut detected = vec![false; faults.len()];
            let mut ntests = 0usize;
            for _ in 0..n_seeds {
                let pis = gen(rng.next_u64());
                let traj = simulate_sequence(&net, &zero, &pis);
                let tests = fbt_core::extract::functional_tests(&pis, &traj.states);
                ntests += tests.len();
                fsim.simulate(
                    TestSet::Broadside(&tests),
                    &faults,
                    &mut detected,
                    &FaultSimOptions::new(),
                );
            }
            t.row(vec![
                net.name().to_string(),
                label.to_string(),
                bits.to_string(),
                ntests.to_string(),
                pct(fbt_fault::sim::coverage_percent(&detected)),
            ]);
        };

        let spec_clone = spec.clone();
        let len = cfg.seq_len;
        run(
            "Fig4.8 (developed)",
            32 + spec.shift_register_len(),
            Box::new(move |seed| Tpg::new(spec_clone.clone(), seed).sequence(len)),
        );
        let c73 = c.clone();
        let d = 4;
        run(
            "Fig4.7 ([73])",
            d * net.num_inputs(),
            Box::new(move |seed| Tpg73::new(c73.clone(), d, cfg.m, seed).sequence(len)),
        );
        let cw = c.clone();
        run(
            "weighted random",
            32,
            Box::new(move |seed| WeightedTpg::from_cube(&cw, seed).sequence(len)),
        );
    }
    t.print(&format!("Ablation: TPG architectures [{scale:?}]"));
}
