//! Chapter 4 experiment runners (Tables 4.1–4.4).

use fbt_core::driver::DrivingBlock;
use fbt_core::experiment::{
    run_constrained_experiment, run_holding_experiment, ConstrainedRow, HoldingRow,
};
use fbt_core::ConstrainedOutcome;
use fbt_netlist::Netlist;

use crate::Scale;

/// The (target, drivers) pairs of Table 4.3: every target is evaluated with
/// unconstrained `buffers` plus representative driving blocks (the paper
/// lists the blocks producing the highest and lowest `SWAfunc`).
pub fn pairs(scale: Scale) -> Vec<(&'static str, Vec<&'static str>)> {
    match scale {
        Scale::Smoke => vec![("s35932", vec!["spi"]), ("spi", vec!["wb_dma"])],
        Scale::Default => vec![
            ("s35932", vec!["aes_core", "spi"]),
            ("s38584", vec!["des_area", "wb_conmax"]),
            ("b14", vec!["systemcdes", "aes_core"]),
            ("spi", vec!["wb_conmax", "wb_dma"]),
            ("systemcdes", vec!["wb_dma", "s38584"]),
            ("des_area", vec!["wb_conmax"]),
        ],
        Scale::Paper => vec![
            ("s35932", vec!["aes_core", "spi"]),
            ("s38584", vec!["des_area", "wb_conmax"]),
            ("b14", vec!["systemcdes", "aes_core"]),
            ("b20", vec!["aes_core", "spi"]),
            ("spi", vec!["wb_conmax", "wb_dma"]),
            ("wb_dma", vec!["wb_conmax", "s35932"]),
            ("systemcaes", vec!["wb_conmax", "s35932"]),
            ("systemcdes", vec!["wb_dma", "s38584"]),
            ("des_area", vec!["wb_conmax", "des_area"]),
            ("aes_core", vec!["wb_conmax", "s35932"]),
            ("wb_conmax", vec!["wb_conmax"]),
            ("des_perf", vec!["wb_conmax", "s38584"]),
        ],
    }
}

/// Build a driving block (scaled like the targets).
pub fn driver(scale: Scale, name: &str) -> DrivingBlock {
    DrivingBlock::Circuit(crate::circuit(scale, name))
}

/// Run one Table 4.3 cell.
pub fn constrained_cell(
    scale: Scale,
    target: &Netlist,
    driving: &DrivingBlock,
) -> (ConstrainedRow, ConstrainedOutcome) {
    let cfg = scale.bist_config();
    run_constrained_experiment(target, driving, &cfg)
}

/// Run one Table 4.4 cell on top of a constrained outcome. The outcome is
/// returned too so callers can report its [`fbt_core::GenerationStats`].
pub fn holding_cell(
    scale: Scale,
    target: &Netlist,
    driving: &DrivingBlock,
    base: &ConstrainedOutcome,
) -> (HoldingRow, fbt_core::HoldingOutcome) {
    let cfg = scale.bist_config();
    run_holding_experiment(target, driving, &cfg, base)
}

/// Drivers are only admissible when wide enough (§4.6 pairing rule); filter
/// a candidate list for a target.
pub fn admissible_drivers(
    scale: Scale,
    target: &Netlist,
    names: &[&'static str],
) -> Vec<(String, DrivingBlock)> {
    let mut out = vec![("buffers".to_string(), DrivingBlock::Buffers)];
    for name in names {
        let d = driver(scale, name);
        if d.can_drive(target) {
            out.push((name.to_string(), d));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_listed_for_every_scale() {
        for s in [Scale::Smoke, Scale::Default, Scale::Paper] {
            assert!(!pairs(s).is_empty());
        }
    }

    #[test]
    fn buffers_always_admissible() {
        let target = crate::circuit(Scale::Smoke, "spi");
        let ds = admissible_drivers(Scale::Smoke, &target, &["s298"]);
        assert_eq!(ds[0].0, "buffers");
    }
}
