//! Chapter 2 experiment runners (Tables 2.1–2.6).

use std::time::{Duration, Instant};

use fbt_atpg::tpdf::{run_pipeline, TpdfReport};

use fbt_fault::path::{enumerate_paths, enumerate_paths_at_least, tpdf_list};

use crate::Scale;

/// One circuit's chapter-2 result.
#[derive(Debug)]
pub struct Ch2Run {
    /// Circuit name.
    pub name: String,
    /// Number of targeted transition path delay faults.
    pub num_faults: usize,
    /// The pipeline report.
    pub report: TpdfReport,
    /// Total wall-clock time.
    pub elapsed: Duration,
}

/// The circuits used for the "enumerate all paths" experiments, per scale.
pub fn small_circuits(scale: Scale) -> Vec<&'static str> {
    match scale {
        Scale::Smoke => vec!["s298", "s344", "s386"],
        Scale::Default => vec![
            "s298", "s344", "s349", "s382", "s386", "s444", "s510", "s526", "s820", "s832",
        ],
        Scale::Paper => vec![
            "s298", "s344", "s349", "s382", "s386", "s444", "s510", "s526", "s641", "s713", "s820",
            "s832", "s953", "s1196", "s1238", "s1488", "s1494",
        ],
    }
}

/// The circuits for the "longest paths until enough detections" experiments.
pub fn large_circuits(scale: Scale) -> Vec<&'static str> {
    match scale {
        Scale::Smoke => vec!["s1423"],
        Scale::Default => vec!["s1423", "s5378", "s9234"],
        Scale::Paper => vec![
            "s1423", "s5378", "s9234", "s13207", "s35932", "s38417", "s38584",
        ],
    }
}

/// Run the pipeline with full path enumeration (Table 2.1 protocol).
pub fn run_small(scale: Scale) -> Vec<Ch2Run> {
    let cfg = scale.tpdf_config();
    small_circuits(scale)
        .into_iter()
        .map(|name| {
            let net = crate::circuit(scale, name);
            let paths = enumerate_paths(&net, scale.path_cap() / 2);
            let faults = tpdf_list(&paths);
            let t0 = Instant::now();
            let report = run_pipeline(&net, &faults, &cfg);
            Ch2Run {
                name: name.to_string(),
                num_faults: faults.len(),
                report,
                elapsed: t0.elapsed(),
            }
        })
        .collect()
}

/// Run the pipeline targeting faults from the longest paths downwards until
/// at least `scale.detect_target()` faults are detected or the path budget
/// is exhausted (Table 2.2 protocol: "we considered faults from the longest
/// paths to the shorter ones until at least 1000 detected faults were
/// found").
pub fn run_large(scale: Scale) -> Vec<Ch2Run> {
    let cfg = scale.tpdf_config();
    let target = scale.detect_target();
    large_circuits(scale)
        .into_iter()
        .map(|name| {
            let net = crate::circuit(scale, name);
            let t0 = Instant::now();
            // All paths within budget, longest first.
            let chosen = enumerate_paths_at_least(&net, 2, scale.path_cap());
            let faults = tpdf_list(&chosen);
            // Process in waves of decreasing length until enough detections.
            let mut merged: Option<TpdfReport> = None;
            let mut offset = 0usize;
            let wave = 600usize;
            while offset < faults.len() {
                let end = (offset + wave).min(faults.len());
                let report = run_pipeline(&net, &faults[offset..end], &cfg);
                offset = end;
                merged = Some(match merged {
                    None => report,
                    Some(mut acc) => {
                        acc.statuses.extend(report.statuses);
                        for (k, v) in report.stats.detected {
                            *acc.stats.detected.entry(k).or_insert(0) += v;
                        }
                        for (k, v) in report.stats.undetectable {
                            *acc.stats.undetectable.entry(k).or_insert(0) += v;
                        }
                        for (k, v) in report.stats.times {
                            *acc.stats.times.entry(k).or_insert(Duration::ZERO) += v;
                        }
                        acc.stats.tf_generation_time += report.stats.tf_generation_time;
                        acc
                    }
                });
                if merged.as_ref().is_some_and(|r| r.num_detected() >= target) {
                    break;
                }
            }
            let report = merged.expect("at least one wave ran");
            Ch2Run {
                name: name.to_string(),
                num_faults: report.statuses.len(),
                report,
                elapsed: t0.elapsed(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_small_runs() {
        let runs = run_small(Scale::Smoke);
        assert_eq!(runs.len(), 3);
        for r in &runs {
            assert_eq!(
                r.num_faults,
                r.report.num_detected() + r.report.num_undetectable() + r.report.num_aborted()
            );
        }
    }
}
