//! A small, reproducible PRNG (xoshiro256** seeded via SplitMix64).
//!
//! Every stochastic procedure in the workspace — synthetic circuit
//! generation, LFSR seed selection, random target ordering — draws from this
//! generator so that experiments replay exactly from a `u64` seed. It is not
//! cryptographically secure and does not need to be.

/// xoshiro256** pseudo-random generator.
///
/// # Example
///
/// ```
/// use fbt_netlist::rng::Rng;
/// let mut a = Rng::new(7);
/// let mut b = Rng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Create a generator from a seed, expanded via SplitMix64.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut s = [next(), next(), next(), next()];
        if s == [0; 4] {
            s = [1, 2, 3, 4];
        }
        Rng { s }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        // Lemire-style rejection-free-enough mapping; bias is negligible for
        // the bounds used here (all far below 2^32).
        (((self.next_u64() >> 32) * bound as u64) >> 32) as usize
    }

    /// A pseudo-random boolean.
    pub fn bit(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A boolean that is `true` with probability `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn chance(&mut self, num: usize, den: usize) -> bool {
        self.below(den) < num
    }

    /// Choose a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// Derive an independent child generator (for parallel sub-procedures
    /// that must not perturb the parent's stream).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng::new(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit in 1000 draws");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "50 elements almost surely move"
        );
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(9);
        assert!(!(0..100).any(|_| r.chance(0, 10)));
        assert!((0..100).all(|_| r.chance(10, 10)));
    }

    #[test]
    fn fork_diverges_from_parent() {
        let mut a = Rng::new(11);
        let mut child = a.fork();
        assert_ne!(a.next_u64(), child.next_u64());
    }
}
