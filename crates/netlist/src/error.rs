//! Error type for netlist construction and parsing.

use std::error::Error;
use std::fmt;

/// Errors produced while building or parsing a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A signal name was defined more than once.
    DuplicateName(String),
    /// A referenced signal name was never defined.
    UndefinedName(String),
    /// A gate keyword was not recognised.
    UnknownGateKind(String),
    /// A gate was declared with an invalid number of fanins.
    BadFaninCount {
        /// Name of the offending gate.
        name: String,
        /// Number of fanins supplied.
        got: usize,
    },
    /// The combinational logic contains a cycle (through the named node).
    CombinationalCycle(String),
    /// A `.bench` line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// The netlist has no primary inputs and no flip-flops.
    NoSources,
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateName(n) => write!(f, "signal `{n}` defined more than once"),
            NetlistError::UndefinedName(n) => write!(f, "signal `{n}` referenced but never defined"),
            NetlistError::UnknownGateKind(k) => write!(f, "unknown gate kind `{k}`"),
            NetlistError::BadFaninCount { name, got } => {
                write!(f, "gate `{name}` has invalid fanin count {got}")
            }
            NetlistError::CombinationalCycle(n) => {
                write!(f, "combinational cycle through `{n}`")
            }
            NetlistError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            NetlistError::NoSources => write!(f, "netlist has no primary inputs or flip-flops"),
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errs = [
            NetlistError::DuplicateName("x".into()),
            NetlistError::UndefinedName("y".into()),
            NetlistError::UnknownGateKind("Z".into()),
            NetlistError::BadFaninCount { name: "g".into(), got: 0 },
            NetlistError::CombinationalCycle("c".into()),
            NetlistError::Parse { line: 3, message: "bad".into() },
            NetlistError::NoSources,
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'));
        }
    }
}
