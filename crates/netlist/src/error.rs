//! Error types: [`NetlistError`] for netlist construction and parsing, and
//! the workspace-wide [`Error`] that every fallible constructor in the
//! stack returns (re-exported as `fbt_core::Error` and in `fbt::prelude`).

use std::fmt;

/// Errors produced while building or parsing a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A signal name was defined more than once.
    DuplicateName(String),
    /// A gate or flip-flop output collides with a primary input of the same
    /// name (in either definition order) — the gate would silently shadow
    /// the input.
    ShadowedInput(String),
    /// A referenced signal name was never defined.
    UndefinedName(String),
    /// A gate keyword was not recognised.
    UnknownGateKind(String),
    /// A gate was declared with an invalid number of fanins.
    BadFaninCount {
        /// Name of the offending gate.
        name: String,
        /// Number of fanins supplied.
        got: usize,
    },
    /// The combinational logic contains a cycle (through the named node).
    CombinationalCycle(String),
    /// A `.bench` line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// The netlist has no primary inputs and no flip-flops.
    NoSources,
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateName(n) => write!(f, "signal `{n}` defined more than once"),
            NetlistError::ShadowedInput(n) => {
                write!(
                    f,
                    "gate output `{n}` shadows a primary input of the same name"
                )
            }
            NetlistError::UndefinedName(n) => {
                write!(f, "signal `{n}` referenced but never defined")
            }
            NetlistError::UnknownGateKind(k) => write!(f, "unknown gate kind `{k}`"),
            NetlistError::BadFaninCount { name, got } => {
                write!(f, "gate `{name}` has invalid fanin count {got}")
            }
            NetlistError::CombinationalCycle(n) => {
                write!(f, "combinational cycle through `{n}`")
            }
            NetlistError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            NetlistError::NoSources => write!(f, "netlist has no primary inputs or flip-flops"),
        }
    }
}

impl std::error::Error for NetlistError {}

/// The workspace-wide error type.
///
/// This crate is the root of the dependency graph, so the shared enum lives
/// here; higher layers (`fbt-sim`, `fbt-fault`, `fbt-core`) add their
/// failure modes as variants and re-export the type. Panicking constructors
/// (`Bits::from_str01`, `BroadsideTest::new`, ...) are thin `expect`
/// wrappers over the `try_` forms that return this.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A netlist could not be built or parsed.
    Netlist(NetlistError),
    /// A bit-string contained a character other than `0` or `1`.
    InvalidBitChar {
        /// 0-based character position.
        index: usize,
        /// The offending character.
        found: char,
    },
    /// Two widths that must agree did not.
    WidthMismatch {
        /// What was being constructed or compared.
        what: &'static str,
        /// The width required.
        expected: usize,
        /// The width supplied.
        got: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Netlist(e) => e.fmt(f),
            Error::InvalidBitChar { index, found } => {
                write!(f, "invalid bit character {found:?} at position {index}")
            }
            Error::WidthMismatch {
                what,
                expected,
                got,
            } => {
                write!(f, "{what}: width mismatch (expected {expected}, got {got})")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for Error {
    fn from(e: NetlistError) -> Self {
        Error::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errs = [
            NetlistError::DuplicateName("x".into()),
            NetlistError::ShadowedInput("i".into()),
            NetlistError::UndefinedName("y".into()),
            NetlistError::UnknownGateKind("Z".into()),
            NetlistError::BadFaninCount {
                name: "g".into(),
                got: 0,
            },
            NetlistError::CombinationalCycle("c".into()),
            NetlistError::Parse {
                line: 3,
                message: "bad".into(),
            },
            NetlistError::NoSources,
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn shared_error_display_and_source() {
        use std::error::Error as _;
        let e = Error::from(NetlistError::NoSources);
        assert!(e.source().is_some());
        assert_eq!(e.to_string(), NetlistError::NoSources.to_string());
        let e = Error::InvalidBitChar {
            index: 2,
            found: 'x',
        };
        assert!(e.to_string().contains("position 2"));
        assert!(e.source().is_none());
        let e = Error::WidthMismatch {
            what: "broadside test",
            expected: 4,
            got: 5,
        };
        assert!(e.to_string().contains("expected 4"));
    }
}
