//! Gate kinds and their Boolean semantics.

use std::fmt;
use std::str::FromStr;

use crate::NetlistError;

/// The kind of a netlist node.
///
/// `Input` and `Dff` are *sources* for combinational evaluation: a primary
/// input takes its value from the applied vector, a D flip-flop output takes
/// its value from the present state. All other kinds are combinational gates
/// evaluated from their fanins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GateKind {
    /// Primary input (no fanins).
    Input,
    /// D flip-flop. The node's value is the *present-state* bit; `fanins[0]`
    /// is the driver of the D (next-state) input.
    Dff,
    /// Logical AND of all fanins.
    And,
    /// Logical NAND of all fanins.
    Nand,
    /// Logical OR of all fanins.
    Or,
    /// Logical NOR of all fanins.
    Nor,
    /// Exclusive OR of all fanins.
    Xor,
    /// Exclusive NOR of all fanins.
    Xnor,
    /// Inverter (single fanin).
    Not,
    /// Buffer (single fanin).
    Buf,
}

impl GateKind {
    /// All combinational kinds, useful for random generation.
    pub const COMBINATIONAL: [GateKind; 8] = [
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
        GateKind::Buf,
    ];

    /// `true` for `Input` and `Dff`, the sources of combinational evaluation.
    #[inline]
    pub fn is_source(self) -> bool {
        matches!(self, GateKind::Input | GateKind::Dff)
    }

    /// `true` for single-input kinds (`Not`, `Buf`; `Dff` also has exactly one
    /// fanin but is a source).
    #[inline]
    pub fn is_unate_single(self) -> bool {
        matches!(self, GateKind::Not | GateKind::Buf)
    }

    /// The *controlling value* of the gate, if it has one.
    ///
    /// A controlling value on any input determines the output regardless of
    /// the other inputs (`0` for AND/NAND, `1` for OR/NOR). XOR-class and
    /// single-input gates have none.
    #[inline]
    pub fn controlling_value(self) -> Option<bool> {
        match self {
            GateKind::And | GateKind::Nand => Some(false),
            GateKind::Or | GateKind::Nor => Some(true),
            _ => None,
        }
    }

    /// The output value produced when a controlling value is present on some
    /// input (e.g. `0` for AND, `1` for NAND).
    #[inline]
    pub fn controlled_output(self) -> Option<bool> {
        match self {
            GateKind::And => Some(false),
            GateKind::Nand => Some(true),
            GateKind::Or => Some(true),
            GateKind::Nor => Some(false),
            _ => None,
        }
    }

    /// Whether the gate inverts its inputs' parity (NAND/NOR/XNOR/NOT).
    ///
    /// For delay-fault polarity tracking, a transition propagating through an
    /// inverting gate flips direction (rising becomes falling).
    #[inline]
    pub fn inverts(self) -> bool {
        matches!(
            self,
            GateKind::Nand | GateKind::Nor | GateKind::Xnor | GateKind::Not
        )
    }

    /// Evaluate the gate over boolean fanin values.
    ///
    /// # Panics
    ///
    /// Panics if called on a source kind, or with a wrong fanin count for
    /// single-input kinds.
    pub fn eval(self, fanins: &[bool]) -> bool {
        match self {
            GateKind::Input | GateKind::Dff => {
                panic!("source nodes are not combinationally evaluated")
            }
            GateKind::And => fanins.iter().all(|&v| v),
            GateKind::Nand => !fanins.iter().all(|&v| v),
            GateKind::Or => fanins.iter().any(|&v| v),
            GateKind::Nor => !fanins.iter().any(|&v| v),
            GateKind::Xor => fanins.iter().fold(false, |a, &v| a ^ v),
            GateKind::Xnor => !fanins.iter().fold(false, |a, &v| a ^ v),
            GateKind::Not => !fanins[0],
            GateKind::Buf => fanins[0],
        }
    }

    /// The `.bench` keyword for this kind.
    pub fn bench_keyword(self) -> &'static str {
        match self {
            GateKind::Input => "INPUT",
            GateKind::Dff => "DFF",
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Not => "NOT",
            GateKind::Buf => "BUFF",
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.bench_keyword())
    }
}

impl FromStr for GateKind {
    type Err = NetlistError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "INPUT" => Ok(GateKind::Input),
            "DFF" => Ok(GateKind::Dff),
            "AND" => Ok(GateKind::And),
            "NAND" => Ok(GateKind::Nand),
            "OR" => Ok(GateKind::Or),
            "NOR" => Ok(GateKind::Nor),
            "XOR" => Ok(GateKind::Xor),
            "XNOR" => Ok(GateKind::Xnor),
            "NOT" => Ok(GateKind::Not),
            "BUFF" | "BUF" => Ok(GateKind::Buf),
            other => Err(NetlistError::UnknownGateKind(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_truth_tables() {
        use GateKind::*;
        assert!(And.eval(&[true, true]));
        assert!(!And.eval(&[true, false]));
        assert!(!Nand.eval(&[true, true]));
        assert!(Nand.eval(&[false, true]));
        assert!(Or.eval(&[false, true]));
        assert!(!Or.eval(&[false, false]));
        assert!(Nor.eval(&[false, false]));
        assert!(!Nor.eval(&[true, false]));
        assert!(Xor.eval(&[true, false, false]));
        assert!(!Xor.eval(&[true, true, false]));
        assert!(Xnor.eval(&[true, true]));
        assert!(!Xnor.eval(&[true, false]));
        assert!(Not.eval(&[false]));
        assert!(Buf.eval(&[true]));
    }

    #[test]
    fn controlling_values() {
        assert_eq!(GateKind::And.controlling_value(), Some(false));
        assert_eq!(GateKind::Nor.controlling_value(), Some(true));
        assert_eq!(GateKind::Xor.controlling_value(), None);
        assert_eq!(GateKind::Nand.controlled_output(), Some(true));
    }

    #[test]
    fn inversion_parity() {
        assert!(GateKind::Nand.inverts());
        assert!(GateKind::Not.inverts());
        assert!(!GateKind::And.inverts());
        assert!(!GateKind::Buf.inverts());
    }

    #[test]
    fn keyword_roundtrip() {
        for kind in GateKind::COMBINATIONAL {
            let parsed: GateKind = kind.bench_keyword().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert!("FROB".parse::<GateKind>().is_err());
    }
}
