#![warn(missing_docs)]

//! Gate-level sequential netlists for scan-based delay testing.
//!
//! This crate is the structural substrate of the `fbt` workspace. It provides:
//!
//! * [`Netlist`] — an immutable, levelized gate-level netlist with primary
//!   inputs, primary outputs and D flip-flops (state variables), built through
//!   [`NetlistBuilder`];
//! * [`mod@bench`] — a parser and writer for the ISCAS89 `.bench` format;
//! * [`synth`] — a deterministic synthetic benchmark generator together with a
//!   catalog that mirrors the interface parameters (inputs / outputs / state
//!   variables / approximate gate count) of the circuits used in the paper's
//!   evaluation (ISCAS89, ITC99 and IWLS2005 benchmark suites);
//! * [`rng`] — a small, dependency-free, reproducible PRNG used everywhere in
//!   the workspace so that every experiment is replayable from a `u64` seed.
//!
//! # Example
//!
//! ```
//! use fbt_netlist::{GateKind, NetlistBuilder};
//!
//! # fn main() -> Result<(), fbt_netlist::NetlistError> {
//! let mut b = NetlistBuilder::new("toy");
//! b.input("a")?;
//! b.input("b")?;
//! b.dff("q", "d")?; // state variable q, next-state driven by d
//! b.gate(fbt_netlist::GateKind::Nand, "d", &["a", "q"])?;
//! b.gate(GateKind::Or, "y", &["d", "b"])?;
//! b.output("y")?;
//! let net = b.finish()?;
//! assert_eq!(net.num_inputs(), 2);
//! assert_eq!(net.num_dffs(), 1);
//! assert_eq!(net.num_outputs(), 1);
//! # Ok(())
//! # }
//! ```

pub mod analysis;
pub mod bench;
mod builder;
mod error;
mod gate;
mod netlist;
pub mod rng;
pub mod synth;
pub mod verilog;

pub use builder::NetlistBuilder;
pub use error::{Error, NetlistError};
pub use gate::GateKind;
pub use netlist::{Netlist, Node, NodeId};

/// The genuine ISCAS89 `s27` benchmark circuit (4 inputs, 1 output, 3 flip-flops).
///
/// This is the one benchmark circuit small enough to embed verbatim; all other
/// benchmark-like circuits come from [`synth`].
///
/// # Example
///
/// ```
/// let s27 = fbt_netlist::s27();
/// assert_eq!(s27.num_inputs(), 4);
/// assert_eq!(s27.num_dffs(), 3);
/// assert_eq!(s27.num_outputs(), 1);
/// ```
pub fn s27() -> Netlist {
    const S27: &str = "\
# s27 (ISCAS89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
";
    bench::parse(S27, "s27").expect("embedded s27 is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s27_shape() {
        let n = s27();
        assert_eq!(n.num_inputs(), 4);
        assert_eq!(n.num_outputs(), 1);
        assert_eq!(n.num_dffs(), 3);
        // 4 PIs + 3 DFFs + 10 gates
        assert_eq!(n.num_nodes(), 17);
        assert_eq!(n.name(), "s27");
    }
}
