//! Incremental construction and validation of [`Netlist`]s.

use std::collections::HashMap;

use crate::{GateKind, Netlist, NetlistError, Node, NodeId};

/// Builder for [`Netlist`].
///
/// Signals may be referenced before they are defined (netlist formats list
/// gates in arbitrary order); all references are resolved in
/// [`NetlistBuilder::finish`], which also rejects combinational cycles,
/// computes fanouts and levelizes the circuit.
///
/// # Example
///
/// ```
/// use fbt_netlist::{GateKind, NetlistBuilder};
/// # fn main() -> Result<(), fbt_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new("latch_loop");
/// b.input("en")?;
/// b.dff("q", "d")?;
/// b.gate(GateKind::Xor, "d", &["en", "q"])?;
/// b.output("q")?;
/// let net = b.finish()?;
/// assert_eq!(net.num_gates(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    name: String,
    defs: Vec<ProtoNode>,
    by_name: HashMap<String, usize>,
    outputs: Vec<String>,
}

#[derive(Debug, Clone)]
struct ProtoNode {
    name: String,
    kind: GateKind,
    fanin_names: Vec<String>,
}

impl NetlistBuilder {
    /// Start building a netlist with the given circuit name.
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            name: name.into(),
            defs: Vec::new(),
            by_name: HashMap::new(),
            outputs: Vec::new(),
        }
    }

    fn define(
        &mut self,
        name: &str,
        kind: GateKind,
        fanins: Vec<String>,
    ) -> Result<NodeId, NetlistError> {
        if let Some(&prev) = self.by_name.get(name) {
            // A gate/DFF output colliding with a primary input (in either
            // order) is silent shadowing, distinguished from a plain
            // same-kind redefinition.
            let prev_is_input = self.defs[prev].kind == GateKind::Input;
            let new_is_input = kind == GateKind::Input;
            if prev_is_input != new_is_input {
                return Err(NetlistError::ShadowedInput(name.to_string()));
            }
            return Err(NetlistError::DuplicateName(name.to_string()));
        }
        let idx = self.defs.len();
        self.by_name.insert(name.to_string(), idx);
        self.defs.push(ProtoNode {
            name: name.to_string(),
            kind,
            fanin_names: fanins,
        });
        Ok(NodeId(idx as u32))
    }

    /// Declare a primary input.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if the name is already a
    /// primary input, or [`NetlistError::ShadowedInput`] if it is already a
    /// gate or flip-flop output.
    pub fn input(&mut self, name: &str) -> Result<NodeId, NetlistError> {
        self.define(name, GateKind::Input, Vec::new())
    }

    /// Declare a D flip-flop named `q` whose next state is driven by signal
    /// `d` (which may be defined later).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ShadowedInput`] if `q` is already a primary
    /// input, or [`NetlistError::DuplicateName`] for any other redefinition.
    pub fn dff(&mut self, q: &str, d: &str) -> Result<NodeId, NetlistError> {
        self.define(q, GateKind::Dff, vec![d.to_string()])
    }

    /// Declare a combinational gate.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ShadowedInput`] if `name` is already a primary
    /// input, [`NetlistError::DuplicateName`] for any other redefinition, or
    /// [`NetlistError::BadFaninCount`] when the arity is invalid for `kind`
    /// (single-input kinds take exactly one fanin, all others at least one).
    pub fn gate(
        &mut self,
        kind: GateKind,
        name: &str,
        fanins: &[&str],
    ) -> Result<NodeId, NetlistError> {
        let bad = match kind {
            GateKind::Input | GateKind::Dff => true,
            GateKind::Not | GateKind::Buf => fanins.len() != 1,
            _ => fanins.is_empty(),
        };
        if bad {
            return Err(NetlistError::BadFaninCount {
                name: name.to_string(),
                got: fanins.len(),
            });
        }
        self.define(name, kind, fanins.iter().map(|s| s.to_string()).collect())
    }

    /// Declare a primary output driven by signal `name` (defined before or
    /// after this call).
    ///
    /// # Errors
    ///
    /// Infallible today; returns `Result` for forward compatibility.
    pub fn output(&mut self, name: &str) -> Result<(), NetlistError> {
        self.outputs.push(name.to_string());
        Ok(())
    }

    /// Number of signals defined so far.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Whether no signals have been defined yet.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Resolve all references, validate, levelize, and produce the [`Netlist`].
    ///
    /// # Errors
    ///
    /// * [`NetlistError::UndefinedName`] — a fanin or output references a
    ///   signal that was never defined.
    /// * [`NetlistError::CombinationalCycle`] — the gates (ignoring flip-flop
    ///   boundaries) contain a cycle.
    /// * [`NetlistError::NoSources`] — there are no inputs and no flip-flops.
    pub fn finish(self) -> Result<Netlist, NetlistError> {
        let n = self.defs.len();
        let mut nodes: Vec<Node> = Vec::with_capacity(n);
        let mut node_names = Vec::with_capacity(n);
        let mut inputs = Vec::new();
        let mut dffs = Vec::new();

        for (i, p) in self.defs.iter().enumerate() {
            let mut fanins = Vec::with_capacity(p.fanin_names.len());
            for f in &p.fanin_names {
                let idx = self
                    .by_name
                    .get(f)
                    .ok_or_else(|| NetlistError::UndefinedName(f.clone()))?;
                fanins.push(NodeId(*idx as u32));
            }
            match p.kind {
                GateKind::Input => inputs.push(NodeId(i as u32)),
                GateKind::Dff => dffs.push(NodeId(i as u32)),
                _ => {}
            }
            nodes.push(Node {
                kind: p.kind,
                fanins,
                fanouts: Vec::new(),
            });
            node_names.push(p.name.clone());
        }

        if inputs.is_empty() && dffs.is_empty() {
            return Err(NetlistError::NoSources);
        }

        let mut outputs = Vec::with_capacity(self.outputs.len());
        for o in &self.outputs {
            let idx = self
                .by_name
                .get(o)
                .ok_or_else(|| NetlistError::UndefinedName(o.clone()))?;
            outputs.push(NodeId(*idx as u32));
        }

        // Fanouts.
        for i in 0..n {
            let fanins = nodes[i].fanins.clone();
            for f in fanins {
                nodes[f.index()].fanouts.push(NodeId(i as u32));
            }
        }

        // Kahn levelization over the combinational gates; DFFs and inputs are
        // level-0 sources and DFF D-inputs do not create combinational edges.
        let mut pending: Vec<usize> = nodes
            .iter()
            .map(|nd| {
                if nd.kind.is_source() {
                    0
                } else {
                    nd.fanins.len()
                }
            })
            .collect();
        let mut levels = vec![0u32; n];
        let mut eval_order = Vec::with_capacity(n);
        let mut queue: Vec<NodeId> = (0..n as u32)
            .map(NodeId)
            .filter(|id| nodes[id.index()].kind.is_source())
            .collect();
        let mut head = 0;
        while head < queue.len() {
            let id = queue[head];
            head += 1;
            let node = &nodes[id.index()];
            if !node.kind.is_source() {
                eval_order.push(id);
            }
            for &fo in &node.fanouts {
                let fo_node = &nodes[fo.index()];
                if fo_node.kind.is_source() {
                    continue; // DFF boundary: no combinational edge
                }
                levels[fo.index()] = levels[fo.index()].max(levels[id.index()] + 1);
                pending[fo.index()] -= 1;
                if pending[fo.index()] == 0 {
                    queue.push(fo);
                }
            }
        }
        if let Some((i, _)) = pending.iter().enumerate().find(|&(_, &p)| p > 0) {
            return Err(NetlistError::CombinationalCycle(node_names[i].clone()));
        }

        Ok(Netlist {
            name: self.name,
            nodes,
            node_names,
            inputs,
            outputs,
            dffs,
            eval_order,
            levels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_references_resolve() {
        let mut b = NetlistBuilder::new("fw");
        b.output("y").unwrap();
        b.gate(GateKind::And, "y", &["a", "b"]).unwrap();
        b.input("a").unwrap();
        b.input("b").unwrap();
        let n = b.finish().unwrap();
        assert_eq!(n.num_outputs(), 1);
        assert_eq!(n.num_gates(), 1);
    }

    #[test]
    fn duplicate_rejected() {
        let mut b = NetlistBuilder::new("dup");
        b.input("a").unwrap();
        assert_eq!(
            b.input("a"),
            Err(NetlistError::DuplicateName("a".to_string()))
        );
    }

    #[test]
    fn gate_shadowing_input_rejected() {
        // Gate output colliding with an existing primary input.
        let mut b = NetlistBuilder::new("shadow1");
        b.input("a").unwrap();
        b.input("b").unwrap();
        assert_eq!(
            b.gate(GateKind::And, "a", &["a", "b"]),
            Err(NetlistError::ShadowedInput("a".to_string()))
        );
    }

    #[test]
    fn input_shadowing_gate_rejected() {
        // Reverse order: input declared after a gate of the same name.
        let mut b = NetlistBuilder::new("shadow2");
        b.input("x").unwrap();
        b.gate(GateKind::Not, "y", &["x"]).unwrap();
        assert_eq!(
            b.input("y"),
            Err(NetlistError::ShadowedInput("y".to_string()))
        );
    }

    #[test]
    fn dff_shadowing_input_rejected() {
        let mut b = NetlistBuilder::new("shadow3");
        b.input("a").unwrap();
        assert_eq!(
            b.dff("a", "a"),
            Err(NetlistError::ShadowedInput("a".to_string()))
        );
        // And the reverse order.
        let mut b = NetlistBuilder::new("shadow4");
        b.dff("q", "d").unwrap();
        assert_eq!(
            b.input("q"),
            Err(NetlistError::ShadowedInput("q".to_string()))
        );
    }

    #[test]
    fn undefined_rejected() {
        let mut b = NetlistBuilder::new("undef");
        b.input("a").unwrap();
        b.gate(GateKind::Not, "y", &["ghost"]).unwrap();
        assert!(matches!(b.finish(), Err(NetlistError::UndefinedName(_))));
    }

    #[test]
    fn combinational_cycle_rejected() {
        let mut b = NetlistBuilder::new("cyc");
        b.input("a").unwrap();
        b.gate(GateKind::And, "x", &["a", "y"]).unwrap();
        b.gate(GateKind::And, "y", &["a", "x"]).unwrap();
        assert!(matches!(
            b.finish(),
            Err(NetlistError::CombinationalCycle(_))
        ));
    }

    #[test]
    fn sequential_loop_through_dff_is_fine() {
        let mut b = NetlistBuilder::new("seq");
        b.input("a").unwrap();
        b.dff("q", "d").unwrap();
        b.gate(GateKind::Xor, "d", &["a", "q"]).unwrap();
        assert!(b.finish().is_ok());
    }

    #[test]
    fn arity_checked() {
        let mut b = NetlistBuilder::new("ar");
        b.input("a").unwrap();
        assert!(b.gate(GateKind::Not, "y", &["a", "a"]).is_err());
        assert!(b.gate(GateKind::And, "z", &[]).is_err());
    }

    #[test]
    fn no_sources_rejected() {
        let b = NetlistBuilder::new("empty");
        assert_eq!(b.finish().unwrap_err(), NetlistError::NoSources);
    }
}
