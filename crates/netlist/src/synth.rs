//! Deterministic synthetic benchmark circuits.
//!
//! The paper's evaluation uses the ISCAS89, ITC99 and IWLS2005 benchmark
//! suites, which are distributed separately from the paper and are not
//! shipped here. This module substitutes a *deterministic synthetic
//! generator*: [`generate`] emits a connected sequential circuit with a
//! requested number of primary inputs, primary outputs, flip-flops and gates,
//! reproducibly from a seed. [`catalog`] lists specs whose interface
//! parameters match the benchmark circuits of the paper's Tables 2.1, 2.2,
//! 3.2 and 4.2, so the experiment harnesses can report rows under the
//! familiar names.
//!
//! The stand-ins preserve what the evaluated algorithms are sensitive to —
//! circuit size, sequential depth, fanout structure, reconvergence and
//! random-pattern resistance — but they are **not** the original netlists;
//! absolute coverage numbers therefore differ from the paper's (as the paper
//! itself notes its numbers differ from other works after resynthesis).

use crate::rng::Rng;
use crate::{GateKind, Netlist, NetlistBuilder};

/// Specification of a synthetic benchmark circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitSpec {
    /// Circuit name (used as the row label in experiment tables).
    pub name: String,
    /// Number of primary inputs.
    pub n_pi: usize,
    /// Number of primary outputs.
    pub n_po: usize,
    /// Number of D flip-flops (state variables).
    pub n_ff: usize,
    /// Number of combinational gates.
    pub n_gates: usize,
    /// Number of *synchronizing* primary inputs: inputs gating flip-flop
    /// updates through AND gates, so that one input value forces state
    /// variables to a constant. These are the inputs the primary input cube
    /// `C` (paper §4.3) marks as specified — the `Np` column of Table 4.2.
    pub sync_inputs: usize,
    /// Generation seed.
    pub seed: u64,
}

impl CircuitSpec {
    /// Create a spec. The seed defaults to a hash of the name so that each
    /// named circuit is unique yet reproducible.
    pub fn new(name: &str, n_pi: usize, n_po: usize, n_ff: usize, n_gates: usize) -> Self {
        let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
        });
        CircuitSpec {
            name: name.to_string(),
            n_pi,
            n_po,
            n_ff,
            n_gates,
            sync_inputs: 0,
            seed,
        }
    }

    /// Builder-style setter for the number of synchronizing inputs.
    pub fn with_sync_inputs(mut self, n: usize) -> Self {
        self.sync_inputs = n;
        self
    }

    /// A proportionally smaller version of this spec (for fast experiment
    /// runs), dividing flip-flop and gate counts by `div` with sane floors.
    /// The name gains a `@div` suffix so scaled rows are distinguishable.
    ///
    /// Primary inputs and outputs scale by `√div` only: shrinking the
    /// periphery as fast as the core would destroy controllability and
    /// observability, making the scaled circuit qualitatively unlike its
    /// full-size counterpart.
    pub fn scaled(&self, div: usize) -> CircuitSpec {
        assert!(div > 0, "div must be positive");
        if div == 1 {
            return self.clone();
        }
        let io_div = (div as f64).sqrt().round().max(1.0) as usize;
        CircuitSpec {
            name: format!("{}@{div}", self.name),
            n_pi: (self.n_pi / io_div).max(4),
            n_po: (self.n_po / io_div).max(2),
            n_ff: (self.n_ff / div).max(3),
            n_gates: (self.n_gates / div).max(16),
            sync_inputs: if self.sync_inputs == 0 {
                0
            } else {
                (self.sync_inputs / io_div).max(1)
            },
            seed: self.seed,
        }
    }
}

/// Generate the circuit described by `spec`.
///
/// The construction is staged so that the result is always a DAG through the
/// combinational logic: gates only consume earlier-created signals. A
/// "dangling first" policy when choosing flip-flop D inputs, primary-output
/// drivers and late extra fanins keeps almost every gate observable, which is
/// what gives the circuits realistic (non-trivial but high) fault coverage.
///
/// # Panics
///
/// Panics if `spec` has zero inputs+flip-flops or zero gates.
pub fn generate(spec: &CircuitSpec) -> Netlist {
    assert!(spec.n_pi + spec.n_ff > 0, "need at least one source");
    assert!(spec.n_gates > 0, "need at least one gate");
    let mut rng = Rng::new(spec.seed);

    // Signal table: 0..n_pi are PIs, n_pi..n_pi+n_ff are FF outputs, then gates.
    let n_sources = spec.n_pi + spec.n_ff;
    let total = n_sources + spec.n_gates;
    let mut kinds: Vec<GateKind> = Vec::with_capacity(total);
    let mut fanins: Vec<Vec<usize>> = Vec::with_capacity(total);
    for _ in 0..spec.n_pi {
        kinds.push(GateKind::Input);
        fanins.push(Vec::new());
    }
    for _ in 0..spec.n_ff {
        kinds.push(GateKind::Dff);
        fanins.push(Vec::new()); // D input filled in later
    }

    let mut consumers = vec![0usize; total];

    // Weighted gate-kind palette roughly matching synthesized control plus
    // datapath logic. XOR-class gates matter: they keep signal probabilities
    // near 1/2 through deep logic (realistic switching activity) and carry
    // no controlling value, so paths through them remain sensitizable.
    const PALETTE: [(GateKind, usize); 8] = [
        (GateKind::Nand, 20),
        (GateKind::Nor, 12),
        (GateKind::And, 13),
        (GateKind::Or, 12),
        (GateKind::Not, 8),
        (GateKind::Xor, 16),
        (GateKind::Xnor, 8),
        (GateKind::Buf, 6),
    ];
    let palette_total: usize = PALETTE.iter().map(|&(_, w)| w).sum();
    let pick_kind = |rng: &mut Rng| {
        let mut roll = rng.below(palette_total);
        for &(k, w) in &PALETTE {
            if roll < w {
                return k;
            }
            roll -= w;
        }
        GateKind::Nand
    };

    const WINDOW: usize = 64; // locality window for depth

    // Some gate slots are reserved for flip-flop feedback XORs (below):
    // real sequential circuits hold counters and accumulators whose state
    // keeps evolving; without them a biased pseudo-random input sequence
    // quickly parks the state at a fixed point.
    // Each synchronizing input gates two flip-flops through dedicated AND
    // gates; those flip-flops are reserved before feedback is assigned.
    let n_sync = spec
        .sync_inputs
        .min(spec.n_pi)
        .min(spec.n_ff / 2)
        .min(spec.n_gates / 3);
    let n_feedback = if spec.n_ff == 0 {
        0
    } else {
        (spec.n_ff - 2 * n_sync).min((spec.n_gates / 6).max(1))
    };
    let n_plain_gates = spec.n_gates - n_feedback - 2 * n_sync;

    for gi in 0..n_plain_gates {
        let idx = n_sources + gi;
        let kind = pick_kind(&mut rng);
        let arity = match kind {
            GateKind::Not | GateKind::Buf => 1,
            GateKind::Xor | GateKind::Xnor => 2,
            _ => 2 + rng.below(3), // 2..=4
        };
        let avail = idx; // signals 0..idx are available
        let mut ins: Vec<usize> = Vec::with_capacity(arity);
        let mut guard = 0;
        while ins.len() < arity && guard < 200 {
            guard += 1;
            let cand = if rng.chance(2, 5) {
                // Prefer a signal nobody consumes yet, to stay connected.
                let start = rng.below(avail);
                (0..avail)
                    .map(|o| (start + o) % avail)
                    .find(|&c| consumers[c] == 0)
                    .unwrap_or_else(|| rng.below(avail))
            } else if rng.chance(6, 10) && avail > WINDOW {
                // Local choice for depth.
                avail - 1 - rng.below(WINDOW)
            } else {
                rng.below(avail)
            };
            if !ins.contains(&cand) {
                ins.push(cand);
            }
        }
        while ins.len() < arity {
            // Tiny circuits may not have enough distinct signals; allow any
            // not-yet-used index deterministically.
            let fallback = (0..avail).find(|c| !ins.contains(c));
            match fallback {
                Some(c) => ins.push(c),
                None => break,
            }
        }
        if ins.is_empty() {
            ins.push(rng.below(avail));
        }
        for &i in &ins {
            consumers[i] += 1;
        }
        let kind = match (kind, ins.len()) {
            (GateKind::Not | GateKind::Buf, n) if n != 1 => GateKind::And,
            (k, 1) if !k.is_unate_single() => GateKind::Buf,
            (k, _) => k,
        };
        kinds.push(kind);
        fanins.push(ins);
    }

    let mut dangling: Vec<usize> = (n_sources..n_sources + n_plain_gates)
        .filter(|&i| consumers[i] == 0)
        .collect();
    rng.shuffle(&mut dangling);

    // Feedback XOR gates: the first `n_feedback` flip-flops get
    // `D = XOR(src, Q)` so the state keeps evolving under biased inputs.
    for k in 0..n_feedback {
        let ff_sig = spec.n_pi + k;
        let mut src = dangling.pop().unwrap_or_else(|| {
            if n_plain_gates > 0 {
                n_sources + rng.below(n_plain_gates)
            } else {
                rng.below(n_sources)
            }
        });
        if src == ff_sig {
            src = rng.below(spec.n_pi.max(1));
        }
        let gidx = n_sources + n_plain_gates + k;
        kinds.push(GateKind::Xor);
        fanins.push(vec![src, ff_sig]);
        consumers[src] += 1;
        consumers[ff_sig] += 1;
        fanins[ff_sig].push(gidx); // D input of the flip-flop
        consumers[gidx] += 1;
    }

    // Remaining flip-flop D inputs: dangling gates first, then random gates.
    for ff in n_feedback..spec.n_ff {
        let d = dangling
            .pop()
            .unwrap_or_else(|| n_sources + rng.below(n_plain_gates.max(1)));
        fanins[spec.n_pi + ff].push(d);
        consumers[d] += 1;
    }

    // Synchronizing inputs: input k gates the D inputs of two non-feedback
    // flip-flops through fresh AND gates, so pi_k = 0 forces both to 0 —
    // the repeated-synchronization structure the cube biasing avoids.
    for k in 0..n_sync {
        for half in 0..2 {
            let ff_sig = spec.n_pi + n_feedback + 2 * k + half;
            let old_d = fanins[ff_sig][0];
            let gidx = n_sources + n_plain_gates + n_feedback + 2 * k + half;
            kinds.push(GateKind::And);
            fanins.push(vec![old_d, k]); // pi_k is signal index k
            consumers[k] += 1;
            consumers[gidx] += 1;
            // old_d keeps its consumer count (it now feeds the AND instead).
            fanins[ff_sig][0] = gidx;
        }
    }

    // Primary outputs: dangling first, then random gates (always gates, so
    // output faults are meaningful).
    let mut po_drivers: Vec<usize> = Vec::with_capacity(spec.n_po);
    for _ in 0..spec.n_po {
        let d = dangling
            .pop()
            .unwrap_or_else(|| n_sources + rng.below(spec.n_gates));
        po_drivers.push(d);
        consumers[d] += 1;
    }

    // Any remaining dangling gate becomes an extra fanin of a *later* AND/OR
    // family gate (keeps the DAG property) so nearly everything is observable.
    for d in dangling {
        let later: Vec<usize> = ((d + 1)..total)
            .filter(|&g| {
                matches!(
                    kinds[g],
                    GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor
                ) && fanins[g].len() < 5
                    && !fanins[g].contains(&d)
            })
            .collect();
        if let Some(&g) = later.first() {
            fanins[g].push(d);
            consumers[d] += 1;
        } else if let Some(&last_po) = po_drivers.first() {
            // Give up and alias it onto an output position.
            let _ = last_po;
            po_drivers.push(d);
            consumers[d] += 1;
        }
    }

    // Materialise through the builder.
    let sig_name = |i: usize| -> String {
        if i < spec.n_pi {
            format!("pi{i}")
        } else if i < n_sources {
            format!("ff{}", i - spec.n_pi)
        } else {
            format!("g{}", i - n_sources)
        }
    };
    let mut b = NetlistBuilder::new(&spec.name);
    for i in 0..spec.n_pi {
        b.input(&sig_name(i)).expect("unique PI names");
    }
    for ff in 0..spec.n_ff {
        let q = sig_name(spec.n_pi + ff);
        let d = sig_name(fanins[spec.n_pi + ff][0]);
        b.dff(&q, &d).expect("unique FF names");
    }
    for gi in 0..spec.n_gates {
        let idx = n_sources + gi;
        let name = sig_name(idx);
        let args: Vec<String> = fanins[idx].iter().map(|&f| sig_name(f)).collect();
        let arg_refs: Vec<&str> = args.iter().map(String::as_str).collect();
        b.gate(kinds[idx], &name, &arg_refs)
            .expect("unique gate names");
    }
    for &d in po_drivers.iter().take(spec.n_po) {
        b.output(&sig_name(d)).expect("output declaration");
    }
    b.finish().expect("generated circuit is structurally valid")
}

/// Specs matching the interface parameters of the ISCAS89 circuits used in
/// Table 2.1 (small circuits, full path enumeration).
pub fn iscas_small() -> Vec<CircuitSpec> {
    [
        ("s298", 3, 6, 14, 119),
        ("s344", 9, 11, 15, 160),
        ("s349", 9, 11, 15, 161),
        ("s382", 3, 6, 21, 158),
        ("s386", 7, 7, 6, 159),
        ("s444", 3, 6, 21, 181),
        ("s510", 19, 7, 6, 211),
        ("s526", 3, 6, 21, 193),
        ("s641", 35, 24, 19, 379),
        ("s713", 35, 23, 19, 393),
        ("s820", 18, 19, 5, 289),
        ("s832", 18, 19, 5, 287),
        ("s953", 16, 23, 29, 395),
        ("s1196", 14, 14, 18, 529),
        ("s1238", 14, 14, 18, 508),
        ("s1488", 8, 19, 6, 653),
        ("s1494", 8, 19, 6, 647),
    ]
    .iter()
    .map(|&(n, pi, po, ff, g)| CircuitSpec::new(n, pi, po, ff, g))
    .collect()
}

/// Specs matching the larger ISCAS89 circuits of Table 2.2 / Table 3.2.
pub fn iscas_large() -> Vec<CircuitSpec> {
    [
        ("s1423", 17, 5, 74, 657, 0),
        ("s5378", 35, 49, 179, 2779, 0),
        ("s9234", 36, 39, 211, 5597, 0),
        ("s13207", 62, 152, 638, 7951, 0),
        // The Np column of Table 4.2: synchronizing inputs detected by the
        // primary-input-cube computation on the original netlists.
        ("s35932", 35, 320, 1728, 16065, 1),
        ("s38417", 28, 106, 1636, 22179, 0),
        ("s38584", 38, 304, 1426, 19253, 2),
    ]
    .iter()
    .map(|&(n, pi, po, ff, g, sy)| CircuitSpec::new(n, pi, po, ff, g).with_sync_inputs(sy))
    .collect()
}

/// Specs matching the ITC99 circuits used in Tables 3.2–3.5 and 4.2.
pub fn itc99() -> Vec<CircuitSpec> {
    [
        ("b11", 7, 6, 31, 510),
        ("b12", 5, 6, 121, 1000),
        ("b14", 32, 54, 215, 5401),
        ("b20", 32, 22, 430, 11000),
    ]
    .iter()
    .map(|&(n, pi, po, ff, g)| CircuitSpec::new(n, pi, po, ff, g))
    .collect()
}

/// Specs matching the IWLS2005 circuits of Table 4.2 (NPO, NPI, NSV taken
/// from the paper; gate counts approximate the published synthesis results).
pub fn iwls2005() -> Vec<CircuitSpec> {
    [
        // (name, NPI, NPO, NSV, gates, Np) with Np from Table 4.2.
        ("spi", 45, 45, 229, 3200, 3),
        ("wb_dma", 215, 215, 523, 3500, 17),
        ("systemcaes", 258, 129, 670, 7500, 1),
        ("systemcdes", 130, 65, 190, 3000, 1),
        ("des_area", 239, 64, 128, 4800, 0),
        ("aes_core", 258, 129, 530, 20000, 2),
        ("wb_conmax", 1128, 1416, 770, 29000, 8),
        ("des_perf", 233, 64, 8808, 49000, 0),
    ]
    .iter()
    .map(|&(n, pi, po, ff, g, sy)| CircuitSpec::new(n, pi, po, ff, g).with_sync_inputs(sy))
    .collect()
}

/// The full catalog (all suites).
pub fn catalog() -> Vec<CircuitSpec> {
    let mut all = iscas_small();
    all.extend(iscas_large());
    all.extend(itc99());
    all.extend(iwls2005());
    all
}

/// Find a catalog entry by name.
pub fn find(name: &str) -> Option<CircuitSpec> {
    catalog().into_iter().find(|c| c.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_matches_spec() {
        for spec in iscas_small() {
            let n = generate(&spec);
            assert_eq!(n.num_inputs(), spec.n_pi, "{}", spec.name);
            assert_eq!(n.num_dffs(), spec.n_ff, "{}", spec.name);
            assert!(n.num_outputs() >= spec.n_po, "{}", spec.name);
            assert_eq!(n.num_gates(), spec.n_gates, "{}", spec.name);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = find("s298").unwrap();
        let a = crate::bench::write(&generate(&spec));
        let b = crate::bench::write(&generate(&spec));
        assert_eq!(a, b);
    }

    #[test]
    fn different_names_differ() {
        let a = crate::bench::write(&generate(&find("s344").unwrap()));
        let b = crate::bench::write(&generate(&find("s349").unwrap()));
        assert_ne!(a, b);
    }

    #[test]
    fn nearly_everything_is_observable() {
        // The dangling-first policy should leave only a tiny unobservable tail.
        let spec = find("s953").unwrap();
        let n = generate(&spec);
        let dangling = n
            .node_ids()
            .filter(|&id| n.node(id).fanouts().is_empty() && !n.is_po_driver(id))
            .count();
        assert!(
            dangling * 50 <= n.num_nodes(),
            "at most 2% dangling, got {dangling}/{}",
            n.num_nodes()
        );
    }

    #[test]
    fn circuits_have_depth() {
        let spec = find("s1196").unwrap();
        let n = generate(&spec);
        assert!(
            n.depth() >= 6,
            "depth {} too shallow to be interesting",
            n.depth()
        );
    }

    #[test]
    fn scaled_reduces_size() {
        let spec = find("s35932").unwrap().scaled(8);
        assert_eq!(spec.name, "s35932@8");
        assert_eq!(spec.n_ff, 1728 / 8);
        let n = generate(&spec);
        assert_eq!(n.num_dffs(), 216);
    }

    #[test]
    fn catalog_names_unique() {
        let cat = catalog();
        let mut names: Vec<&str> = cat.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), cat.len());
    }

    #[test]
    fn roundtrips_through_bench_format() {
        let spec = find("s386").unwrap();
        let n = generate(&spec);
        let text = crate::bench::write(&n);
        let m = crate::bench::parse(&text, &spec.name).unwrap();
        assert_eq!(m.num_nodes(), n.num_nodes());
    }
}
