//! The immutable, levelized [`Netlist`] structure.

use std::fmt;

use crate::GateKind;

/// Index of a node (line) in a [`Netlist`].
///
/// Every node — primary input, flip-flop output, or gate output — is a *line*
/// in the delay-testing sense: the site of potential transition faults and a
/// contributor to switching activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index as `usize`, for slice access.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A single node of a [`Netlist`].
#[derive(Debug, Clone)]
pub struct Node {
    pub(crate) kind: GateKind,
    pub(crate) fanins: Vec<NodeId>,
    pub(crate) fanouts: Vec<NodeId>,
}

impl Node {
    /// The node's gate kind.
    #[inline]
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// Fanin drivers. For a [`GateKind::Dff`] node this is the single driver
    /// of its D (next-state) input; for an input it is empty.
    #[inline]
    pub fn fanins(&self) -> &[NodeId] {
        &self.fanins
    }

    /// Nodes that consume this node's value (including DFF nodes whose D input
    /// it drives).
    #[inline]
    pub fn fanouts(&self) -> &[NodeId] {
        &self.fanouts
    }
}

/// An immutable gate-level sequential netlist.
///
/// Construction goes through [`crate::NetlistBuilder`] (or the
/// [`crate::bench`] parser), which validates the structure, computes fanouts,
/// levelizes the combinational logic and produces a topological evaluation
/// order. See the crate-level documentation for an example.
#[derive(Debug, Clone)]
pub struct Netlist {
    pub(crate) name: String,
    pub(crate) nodes: Vec<Node>,
    pub(crate) node_names: Vec<String>,
    pub(crate) inputs: Vec<NodeId>,
    pub(crate) outputs: Vec<NodeId>,
    pub(crate) dffs: Vec<NodeId>,
    pub(crate) eval_order: Vec<NodeId>,
    pub(crate) levels: Vec<u32>,
}

impl Netlist {
    /// The circuit's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of nodes (primary inputs + flip-flops + gates).
    ///
    /// This is the number of *lines* used as the denominator of switching
    /// activity and as the site count for transition faults.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of primary inputs.
    #[inline]
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    #[inline]
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of D flip-flops (state variables).
    #[inline]
    pub fn num_dffs(&self) -> usize {
        self.dffs.len()
    }

    /// Number of combinational gates (nodes that are neither inputs nor DFFs).
    #[inline]
    pub fn num_gates(&self) -> usize {
        self.eval_order.len()
    }

    /// Primary input nodes, in declaration order.
    #[inline]
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary output *driver* nodes, in declaration order.
    ///
    /// `.bench` outputs name an existing signal, so an output is represented
    /// by the node that drives it.
    #[inline]
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Flip-flop nodes (the present-state variables), in declaration order.
    ///
    /// The scan chain order used by the rest of the workspace is exactly this
    /// order.
    #[inline]
    pub fn dffs(&self) -> &[NodeId] {
        &self.dffs
    }

    /// Topological evaluation order over the combinational gates.
    ///
    /// Sources (inputs and DFF outputs) are excluded; evaluating gates in this
    /// order guarantees fanins are ready.
    #[inline]
    pub fn eval_order(&self) -> &[NodeId] {
        &self.eval_order
    }

    /// Access a node.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The name of a node.
    #[inline]
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.index()]
    }

    /// Look up a node by name.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.node_names
            .iter()
            .position(|n| n == name)
            .map(|i| NodeId(i as u32))
    }

    /// Logic level of a node: 0 for sources, `1 + max(fanin levels)` for gates.
    #[inline]
    pub fn level(&self, id: NodeId) -> u32 {
        self.levels[id.index()]
    }

    /// Maximum logic level in the circuit (the combinational depth).
    pub fn depth(&self) -> u32 {
        self.levels.iter().copied().max().unwrap_or(0)
    }

    /// Iterate over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Whether a node's value is observable as a primary output.
    pub fn is_po_driver(&self, id: NodeId) -> bool {
        self.outputs.contains(&id)
    }

    /// The transitive fanout cone of `seed` (including `seed` itself),
    /// returned in topological order. DFF nodes terminate the cone: a DFF's
    /// D input is *in* the cone (the capture point) but the cone does not
    /// continue through the flip-flop into the next time frame.
    pub fn fanout_cone(&self, seed: NodeId) -> Vec<NodeId> {
        let mut in_cone = vec![false; self.nodes.len()];
        in_cone[seed.index()] = true;
        let mut cone = Vec::new();
        if !self.node(seed).kind().is_source() {
            cone.push(seed);
        }
        for &id in &self.eval_order {
            if in_cone[id.index()] {
                // already marked (it is the seed and a gate)
            } else if self.nodes[id.index()]
                .fanins
                .iter()
                .any(|f| in_cone[f.index()])
            {
                in_cone[id.index()] = true;
                cone.push(id);
            }
        }
        if self.node(seed).kind().is_source() {
            let mut with_seed = Vec::with_capacity(cone.len() + 1);
            with_seed.push(seed);
            with_seed.extend(cone);
            return with_seed;
        }
        cone
    }

    /// The transitive fanin cone of `seed` (including `seed`), as a set of
    /// marked nodes. Stops at sources (inputs, DFF outputs).
    pub fn fanin_cone(&self, seed: NodeId) -> Vec<bool> {
        let mut in_cone = vec![false; self.nodes.len()];
        let mut stack = vec![seed];
        while let Some(id) = stack.pop() {
            if in_cone[id.index()] {
                continue;
            }
            in_cone[id.index()] = true;
            if !self.node(id).kind().is_source() {
                stack.extend(self.node(id).fanins().iter().copied());
            }
        }
        in_cone
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} PIs, {} POs, {} DFFs, {} gates, depth {}",
            self.name,
            self.num_inputs(),
            self.num_outputs(),
            self.num_dffs(),
            self.num_gates(),
            self.depth()
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::s27;

    #[test]
    fn eval_order_respects_fanins() {
        let n = s27();
        let mut seen = vec![false; n.num_nodes()];
        for id in n.inputs().iter().chain(n.dffs()) {
            seen[id.index()] = true;
        }
        for &id in n.eval_order() {
            for f in n.node(id).fanins() {
                assert!(seen[f.index()], "fanin {f} of {id} not yet evaluated");
            }
            seen[id.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fanouts_are_inverse_of_fanins() {
        let n = s27();
        for id in n.node_ids() {
            for &f in n.node(id).fanins() {
                assert!(n.node(f).fanouts().contains(&id));
            }
            for &fo in n.node(id).fanouts() {
                assert!(n.node(fo).fanins().contains(&id));
            }
        }
    }

    #[test]
    fn fanout_cone_from_input_contains_output() {
        let n = s27();
        let g0 = n.find("G0").unwrap();
        let cone = n.fanout_cone(g0);
        let g17 = n.find("G17").unwrap();
        assert!(cone.contains(&g17), "G0 reaches G17 through G14/G10/G11");
        assert_eq!(cone[0], g0);
    }

    #[test]
    fn fanin_cone_of_output() {
        let n = s27();
        let g17 = n.find("G17").unwrap();
        let cone = n.fanin_cone(g17);
        // G17 = NOT(G11), G11 = NOR(G5, G9): both must be in the cone.
        assert!(cone[n.find("G11").unwrap().index()]);
        assert!(cone[n.find("G5").unwrap().index()]);
        // cone stops at the DFF: G10 (D input of G5) must NOT be included.
        assert!(!cone[n.find("G2").unwrap().index()]);
    }

    #[test]
    fn levels_increase_along_fanin() {
        let n = s27();
        for &id in n.eval_order() {
            let lvl = n.level(id);
            for &f in n.node(id).fanins() {
                assert!(n.level(f) < lvl);
            }
        }
    }

    #[test]
    fn display_mentions_counts() {
        let n = s27();
        let s = n.to_string();
        assert!(s.contains("4 PIs"));
        assert!(s.contains("3 DFFs"));
    }
}
