//! Structural netlist analysis: the circuit-characterization quantities the
//! experiment chapters reason about (logic depth, fanout structure,
//! reconvergence, sequential connectivity).

use crate::{Netlist, NodeId};

/// A structural profile of a netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct StructuralProfile {
    /// Combinational depth (maximum logic level).
    pub depth: u32,
    /// Mean fanout over all nodes with at least one consumer.
    pub mean_fanout: f64,
    /// Maximum fanout.
    pub max_fanout: usize,
    /// Number of fanout stems (nodes with more than one consumer) — the
    /// sites where reconvergence can originate.
    pub fanout_stems: usize,
    /// Number of *reconvergent* stems: fanout stems whose branches meet
    /// again at some gate (the structures that defeat robust tests, §2.2).
    pub reconvergent_stems: usize,
    /// Number of gates unobservable at any output or flip-flop.
    pub dead_gates: usize,
    /// Length of the longest purely combinational path (in gates).
    pub longest_path_gates: usize,
}

/// Compute the profile.
pub fn profile(net: &Netlist) -> StructuralProfile {
    let mut max_fanout = 0usize;
    let mut fanout_sum = 0usize;
    let mut driven = 0usize;
    let mut fanout_stems = 0usize;
    let mut reconvergent_stems = 0usize;
    for id in net.node_ids() {
        let f = net.node(id).fanouts().len();
        if f > 0 {
            driven += 1;
            fanout_sum += f;
        }
        max_fanout = max_fanout.max(f);
        if f > 1 {
            fanout_stems += 1;
            if is_reconvergent(net, id) {
                reconvergent_stems += 1;
            }
        }
    }

    // Dead gates: not in the fanin cone of any observable point.
    let mut live = vec![false; net.num_nodes()];
    let mark = |live: &mut Vec<bool>, seed: NodeId, net: &Netlist| {
        let cone = net.fanin_cone(seed);
        for (i, &inc) in cone.iter().enumerate() {
            if inc {
                live[i] = true;
            }
        }
    };
    for &o in net.outputs() {
        mark(&mut live, o, net);
    }
    for &d in net.dffs() {
        mark(&mut live, net.node(d).fanins()[0], net);
    }
    let dead_gates = net
        .eval_order()
        .iter()
        .filter(|&&g| !live[g.index()])
        .count();

    // Longest combinational path in gates = max level over gates.
    let longest_path_gates = net
        .eval_order()
        .iter()
        .map(|&g| net.level(g) as usize)
        .max()
        .unwrap_or(0);

    StructuralProfile {
        depth: net.depth(),
        mean_fanout: if driven == 0 {
            0.0
        } else {
            fanout_sum as f64 / driven as f64
        },
        max_fanout,
        fanout_stems,
        reconvergent_stems,
        dead_gates,
        longest_path_gates,
    }
}

/// Do two branches of `stem` meet again at some downstream gate?
fn is_reconvergent(net: &Netlist, stem: NodeId) -> bool {
    // For each immediate fanout branch, compute the set of gates reachable
    // without passing through the stem again; reconvergence = any gate
    // reachable from two distinct branches.
    let branches: Vec<NodeId> = net
        .node(stem)
        .fanouts()
        .iter()
        .copied()
        .filter(|&f| !net.node(f).kind().is_source())
        .collect();
    if branches.len() < 2 {
        return false;
    }
    let mut owner: Vec<Option<usize>> = vec![None; net.num_nodes()];
    for (b, &start) in branches.iter().enumerate() {
        let mut stack = vec![start];
        while let Some(id) = stack.pop() {
            match owner[id.index()] {
                Some(o) if o == b => continue,
                Some(_) => return true, // reached from a different branch
                None => owner[id.index()] = Some(b),
            }
            for &fo in net.node(id).fanouts() {
                if !net.node(fo).kind().is_source() {
                    stack.push(fo);
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{s27, synth, GateKind, NetlistBuilder};

    #[test]
    fn s27_profile() {
        let p = profile(&s27());
        assert_eq!(p.depth, 6);
        assert!(p.max_fanout >= 2);
        assert!(p.fanout_stems >= 3);
        // G8 fans out to G15 and G16 which reconverge at G9.
        assert!(p.reconvergent_stems >= 1);
        assert_eq!(p.dead_gates, 0, "everything in s27 is observable");
    }

    #[test]
    fn reconvergence_detection() {
        // y = AND(a, NOT(a)) reconverges at y; a is a reconvergent stem.
        let mut b = NetlistBuilder::new("rc");
        b.input("a").unwrap();
        b.gate(GateKind::Not, "n", &["a"]).unwrap();
        b.gate(GateKind::And, "y", &["a", "n"]).unwrap();
        b.output("y").unwrap();
        let net = b.finish().unwrap();
        assert!(is_reconvergent(&net, net.find("a").unwrap()));
        // A pure fanout tree does not reconverge.
        let mut b = NetlistBuilder::new("tree");
        b.input("a").unwrap();
        b.gate(GateKind::Buf, "x", &["a"]).unwrap();
        b.gate(GateKind::Not, "y", &["a"]).unwrap();
        b.output("x").unwrap();
        b.output("y").unwrap();
        let net = b.finish().unwrap();
        assert!(!is_reconvergent(&net, net.find("a").unwrap()));
    }

    #[test]
    fn catalog_circuits_are_reconvergent_and_alive() {
        for name in ["s298", "s953", "spi"] {
            let net = synth::generate(&synth::find(name).unwrap().scaled(8));
            let p = profile(&net);
            assert!(p.reconvergent_stems > 0, "{name} has no reconvergence?");
            assert!(
                p.dead_gates * 50 <= net.num_gates(),
                "{name}: {} dead gates",
                p.dead_gates
            );
            assert!(p.mean_fanout >= 1.0);
        }
    }
}
