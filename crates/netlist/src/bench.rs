//! ISCAS89 `.bench` format parsing and writing.
//!
//! The `.bench` format is the lingua franca of the ISCAS89 sequential
//! benchmark suite used throughout the paper's evaluation:
//!
//! ```text
//! # comment
//! INPUT(G0)
//! OUTPUT(G17)
//! G5 = DFF(G10)
//! G8 = AND(G14, G6)
//! ```

use std::fmt::Write as _;

use crate::{GateKind, Netlist, NetlistBuilder, NetlistError};

/// One syntactically valid `.bench` statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BenchStmt {
    /// `INPUT(name)` — a primary input declaration.
    Input(String),
    /// `OUTPUT(name)` — a primary output declaration.
    Output(String),
    /// `name = KIND(arg, ...)` — a gate or flip-flop definition.
    Def {
        /// The defined signal name (the left-hand side).
        name: String,
        /// The gate kind (never [`GateKind::Input`]).
        kind: GateKind,
        /// The fanin signal names, in source order.
        args: Vec<String>,
    },
}

impl BenchStmt {
    /// The signal name this statement declares or defines, if any
    /// (`OUTPUT` only *references* a signal).
    pub fn defined_name(&self) -> Option<&str> {
        match self {
            BenchStmt::Input(n) => Some(n),
            BenchStmt::Output(_) => None,
            BenchStmt::Def { name, .. } => Some(name),
        }
    }
}

/// A syntax-level parse of a `.bench` document: the statement stream with
/// 1-based line numbers, **without** structural validation.
///
/// This is the representation static analysis works on: a raw document may
/// contain combinational cycles, undriven nets or duplicate definitions that
/// [`NetlistBuilder::finish`] would reject, and `fbt-lint` needs to see all
/// of them rather than stopping at the first.
#[derive(Debug, Clone)]
pub struct RawBench {
    /// The circuit name (supplied by the caller, not the document).
    pub name: String,
    /// Parsed statements with their 1-based source line numbers.
    pub stmts: Vec<(usize, BenchStmt)>,
}

impl RawBench {
    /// Feed the statements into a [`NetlistBuilder`], stopping at the first
    /// structural error (duplicate definition, input shadowing, bad arity).
    pub fn to_builder(&self) -> Result<NetlistBuilder, NetlistError> {
        let mut b = NetlistBuilder::new(&self.name);
        for (_, stmt) in &self.stmts {
            match stmt {
                BenchStmt::Input(n) => {
                    b.input(n)?;
                }
                BenchStmt::Output(n) => b.output(n)?,
                BenchStmt::Def { name, kind, args } => match kind {
                    GateKind::Dff => {
                        b.dff(name, &args[0])?;
                    }
                    k => {
                        let refs: Vec<&str> = args.iter().map(String::as_str).collect();
                        b.gate(*k, name, &refs)?;
                    }
                },
            }
        }
        Ok(b)
    }
}

/// Parse a `.bench` document to the statement level only.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for malformed lines and
/// [`NetlistError::UnknownGateKind`] for unrecognised keywords. Structural
/// problems (duplicates, cycles, undriven nets) are *not* errors at this
/// level.
pub fn parse_raw(text: &str, name: &str) -> Result<RawBench, NetlistError> {
    let mut stmts = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let line_err = |message: String| NetlistError::Parse {
            line: lineno + 1,
            message,
        };
        if let Some(rest) = strip_call(line, "INPUT") {
            stmts.push((lineno + 1, BenchStmt::Input(rest.to_string())));
        } else if let Some(rest) = strip_call(line, "OUTPUT") {
            stmts.push((lineno + 1, BenchStmt::Output(rest.to_string())));
        } else if let Some(eq) = line.find('=') {
            let target = line[..eq].trim();
            let rhs = line[eq + 1..].trim();
            let open = rhs
                .find('(')
                .ok_or_else(|| line_err(format!("expected `KIND(...)`, got `{rhs}`")))?;
            if !rhs.ends_with(')') {
                return Err(line_err(format!("missing `)` in `{rhs}`")));
            }
            let kind: GateKind = rhs[..open].trim().parse()?;
            let args: Vec<String> = rhs[open + 1..rhs.len() - 1]
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect();
            match kind {
                GateKind::Dff if args.len() != 1 => {
                    return Err(line_err(format!(
                        "DFF takes one argument, got {}",
                        args.len()
                    )));
                }
                GateKind::Input => {
                    return Err(line_err("INPUT cannot appear on an assignment".to_string()))
                }
                _ => {}
            }
            stmts.push((
                lineno + 1,
                BenchStmt::Def {
                    name: target.to_string(),
                    kind,
                    args,
                },
            ));
        } else {
            return Err(line_err(format!("unrecognised line `{line}`")));
        }
    }
    Ok(RawBench {
        name: name.to_string(),
        stmts,
    })
}

/// Parse a `.bench` document into a [`Netlist`] named `name`.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for malformed lines and propagates the
/// structural errors of [`NetlistBuilder::finish`].
///
/// # Example
///
/// ```
/// let src = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n";
/// let net = fbt_netlist::bench::parse(src, "inv").unwrap();
/// assert_eq!(net.num_gates(), 1);
/// ```
pub fn parse(text: &str, name: &str) -> Result<Netlist, NetlistError> {
    parse_raw(text, name)?.to_builder()?.finish()
}

fn strip_call<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(keyword)?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let rest = rest.strip_suffix(')')?;
    Some(rest.trim())
}

/// Render a [`Netlist`] back to `.bench` text.
///
/// The output round-trips through [`parse`]: parsing it yields a structurally
/// identical netlist.
///
/// # Example
///
/// ```
/// let net = fbt_netlist::s27();
/// let text = fbt_netlist::bench::write(&net);
/// let again = fbt_netlist::bench::parse(&text, net.name()).unwrap();
/// assert_eq!(again.num_nodes(), net.num_nodes());
/// ```
pub fn write(net: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", net.name());
    for &i in net.inputs() {
        let _ = writeln!(out, "INPUT({})", net.node_name(i));
    }
    for &o in net.outputs() {
        let _ = writeln!(out, "OUTPUT({})", net.node_name(o));
    }
    for &d in net.dffs() {
        let _ = writeln!(
            out,
            "{} = DFF({})",
            net.node_name(d),
            net.node_name(net.node(d).fanins()[0])
        );
    }
    for &g in net.eval_order() {
        let node = net.node(g);
        let args: Vec<&str> = node.fanins().iter().map(|&f| net.node_name(f)).collect();
        let _ = writeln!(
            out,
            "{} = {}({})",
            net.node_name(g),
            node.kind().bench_keyword(),
            args.join(", ")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_comments_and_blanks() {
        let src = "# hello\n\nINPUT(a) # trailing\nOUTPUT(y)\ny = BUFF(a)\n";
        let n = parse(src, "c").unwrap();
        assert_eq!(n.num_inputs(), 1);
        assert_eq!(n.num_gates(), 1);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let src = "INPUT(a)\ngarbage line\n";
        match parse(src, "bad") {
            Err(NetlistError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn dff_arity_enforced() {
        let src = "INPUT(a)\nq = DFF(a, a)\n";
        assert!(matches!(parse(src, "bad"), Err(NetlistError::Parse { .. })));
    }

    /// Same structure under the same names.
    fn assert_structurally_equal(n: &Netlist, m: &Netlist) {
        assert_eq!(m.num_nodes(), n.num_nodes(), "{}", n.name());
        assert_eq!(m.num_inputs(), n.num_inputs(), "{}", n.name());
        assert_eq!(m.num_dffs(), n.num_dffs(), "{}", n.name());
        assert_eq!(m.num_outputs(), n.num_outputs(), "{}", n.name());
        for id in n.node_ids() {
            let name = n.node_name(id);
            let mid = m.find(name).unwrap();
            assert_eq!(m.node(mid).kind(), n.node(id).kind(), "kind of {name}");
            let mut a: Vec<&str> = n
                .node(id)
                .fanins()
                .iter()
                .map(|&f| n.node_name(f))
                .collect();
            let mut b: Vec<&str> = m
                .node(mid)
                .fanins()
                .iter()
                .map(|&f| m.node_name(f))
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "fanins of {name}");
        }
    }

    #[test]
    fn roundtrip_s27() {
        let n = crate::s27();
        let text = write(&n);
        let m = parse(&text, "s27").unwrap();
        assert_structurally_equal(&n, &m);
    }

    /// Every circuit in the small ISCAS catalog survives a write → parse
    /// round trip structurally unchanged.
    #[test]
    fn roundtrip_every_iscas_small_circuit() {
        let specs = crate::synth::iscas_small();
        assert!(!specs.is_empty());
        for spec in &specs {
            let n = crate::synth::generate(spec);
            let text = write(&n);
            let m = parse(&text, n.name())
                .unwrap_or_else(|e| panic!("written .bench for {} failed to parse: {e}", n.name()));
            assert_structurally_equal(&n, &m);
            // A second round trip is textually identical (writer is
            // deterministic and parse preserves everything write emits).
            assert_eq!(write(&m), text, "{} is not a fixed point", n.name());
        }
    }

    #[test]
    fn unknown_kind_is_error() {
        let src = "INPUT(a)\ny = MYSTERY(a)\n";
        assert!(matches!(
            parse(src, "bad"),
            Err(NetlistError::UnknownGateKind(_))
        ));
    }
}
