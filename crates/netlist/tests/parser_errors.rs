//! Parser and builder error-path coverage: every failure mode of the
//! `.bench` front end is asserted against its *specific*
//! [`NetlistError`] variant, not merely `is_err()`.
//!
//! (The Verilog back end is write-only — there is no Verilog parser — so
//! the `.bench` parser is the only textual entry point to cover.)

use fbt_netlist::bench::{parse, parse_raw, BenchStmt};
use fbt_netlist::NetlistError;

#[test]
fn malformed_gate_line_missing_paren() {
    match parse("INPUT(a)\ny = AND(a, a\n", "bad") {
        Err(NetlistError::Parse { line, message }) => {
            assert_eq!(line, 2);
            assert!(message.contains(")"), "message was: {message}");
        }
        other => panic!("expected Parse error, got {other:?}"),
    }
}

#[test]
fn malformed_gate_line_no_call_syntax() {
    match parse("INPUT(a)\ny = a\n", "bad") {
        Err(NetlistError::Parse { line, .. }) => assert_eq!(line, 2),
        other => panic!("expected Parse error, got {other:?}"),
    }
}

#[test]
fn unrecognised_line_reports_its_number() {
    match parse("INPUT(a)\n\n# fine\nthis is not bench\n", "bad") {
        Err(NetlistError::Parse { line, .. }) => assert_eq!(line, 4),
        other => panic!("expected Parse error, got {other:?}"),
    }
}

#[test]
fn input_on_assignment_rejected() {
    match parse("a = INPUT(b)\n", "bad") {
        Err(NetlistError::Parse { line, message }) => {
            assert_eq!(line, 1);
            assert!(message.contains("INPUT"), "message was: {message}");
        }
        other => panic!("expected Parse error, got {other:?}"),
    }
}

#[test]
fn unknown_gate_kind_names_the_keyword() {
    match parse("INPUT(a)\ny = FROB(a)\n", "bad") {
        Err(NetlistError::UnknownGateKind(k)) => assert_eq!(k, "FROB"),
        other => panic!("expected UnknownGateKind, got {other:?}"),
    }
}

#[test]
fn undeclared_net_names_the_net() {
    match parse("INPUT(a)\nOUTPUT(y)\ny = NOT(ghost)\n", "bad") {
        Err(NetlistError::UndefinedName(n)) => assert_eq!(n, "ghost"),
        other => panic!("expected UndefinedName, got {other:?}"),
    }
}

#[test]
fn undeclared_output_names_the_net() {
    match parse("INPUT(a)\nOUTPUT(phantom)\ny = NOT(a)\n", "bad") {
        Err(NetlistError::UndefinedName(n)) => assert_eq!(n, "phantom"),
        other => panic!("expected UndefinedName, got {other:?}"),
    }
}

#[test]
fn duplicate_gate_definition_names_the_net() {
    match parse("INPUT(a)\ny = NOT(a)\ny = BUFF(a)\n", "bad") {
        Err(NetlistError::DuplicateName(n)) => assert_eq!(n, "y"),
        other => panic!("expected DuplicateName, got {other:?}"),
    }
}

#[test]
fn duplicate_input_declaration_names_the_net() {
    match parse("INPUT(a)\nINPUT(a)\ny = NOT(a)\n", "bad") {
        Err(NetlistError::DuplicateName(n)) => assert_eq!(n, "a"),
        other => panic!("expected DuplicateName, got {other:?}"),
    }
}

#[test]
fn gate_shadowing_input_is_shadowed_input() {
    match parse("INPUT(a)\nINPUT(b)\na = AND(a, b)\n", "bad") {
        Err(NetlistError::ShadowedInput(n)) => assert_eq!(n, "a"),
        other => panic!("expected ShadowedInput, got {other:?}"),
    }
}

#[test]
fn input_shadowing_gate_is_shadowed_input() {
    match parse("INPUT(a)\ny = NOT(a)\nINPUT(y)\n", "bad") {
        Err(NetlistError::ShadowedInput(n)) => assert_eq!(n, "y"),
        other => panic!("expected ShadowedInput, got {other:?}"),
    }
}

#[test]
fn dff_shadowing_input_is_shadowed_input() {
    match parse("INPUT(q)\nq = DFF(q)\n", "bad") {
        Err(NetlistError::ShadowedInput(n)) => assert_eq!(n, "q"),
        other => panic!("expected ShadowedInput, got {other:?}"),
    }
}

#[test]
fn bad_fanin_count_names_gate_and_count() {
    match parse("INPUT(a)\ny = NOT(a, a)\n", "bad") {
        Err(NetlistError::BadFaninCount { name, got }) => {
            assert_eq!(name, "y");
            assert_eq!(got, 2);
        }
        other => panic!("expected BadFaninCount, got {other:?}"),
    }
}

#[test]
fn empty_fanin_list_is_bad_fanin_count() {
    match parse("INPUT(a)\ny = AND()\n", "bad") {
        Err(NetlistError::BadFaninCount { name, got }) => {
            assert_eq!(name, "y");
            assert_eq!(got, 0);
        }
        other => panic!("expected BadFaninCount, got {other:?}"),
    }
}

#[test]
fn dff_arity_is_a_parse_error() {
    match parse("INPUT(a)\nq = DFF(a, a)\n", "bad") {
        Err(NetlistError::Parse { line, message }) => {
            assert_eq!(line, 2);
            assert!(message.contains("DFF"), "message was: {message}");
        }
        other => panic!("expected Parse error, got {other:?}"),
    }
}

#[test]
fn combinational_cycle_detected() {
    let src = "INPUT(a)\nOUTPUT(x)\nx = AND(a, y)\ny = AND(a, x)\n";
    assert!(matches!(
        parse(src, "bad"),
        Err(NetlistError::CombinationalCycle(_))
    ));
}

#[test]
fn no_sources_rejected() {
    assert_eq!(parse("", "empty").unwrap_err(), NetlistError::NoSources);
}

#[test]
fn raw_parse_tolerates_structural_problems() {
    // Cycle + duplicate + undefined net: the raw layer parses the whole
    // document, while the structural layer rejects it.
    let src = "INPUT(a)\nx = AND(a, y)\ny = AND(a, x)\nx = NOT(ghost)\n";
    let raw = parse_raw(src, "rough").expect("raw parse succeeds");
    assert_eq!(raw.stmts.len(), 4);
    assert_eq!(raw.stmts[0], (1, BenchStmt::Input("a".to_string())));
    assert!(matches!(
        raw.stmts[3],
        (4, BenchStmt::Def { ref name, .. }) if name == "x"
    ));
    assert!(parse(src, "rough").is_err());
}

#[test]
fn raw_parse_still_rejects_syntax_errors() {
    assert!(matches!(
        parse_raw("y = AND(a\n", "bad"),
        Err(NetlistError::Parse { line: 1, .. })
    ));
    assert!(matches!(
        parse_raw("y = FROB(a)\n", "bad"),
        Err(NetlistError::UnknownGateKind(_))
    ));
}
