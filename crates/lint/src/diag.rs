//! The shared diagnostics layer: severities, diagnostics, and deterministic
//! reports with pretty and JSON emitters.
//!
//! Every lint pass funnels its findings into [`Diagnostic`]s collected by a
//! [`LintReport`]. The report sorts diagnostics into a canonical order
//! (severity, then rule, then location, then message) so repeated runs over
//! the same inputs are bit-identical — the property the golden-file CI step
//! asserts.

use std::fmt;

/// How serious a diagnostic is.
///
/// The derived ordering places [`Severity::Note`] lowest and
/// [`Severity::Error`] highest; reports print most-severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: worth knowing, never a defect by itself.
    Note,
    /// Suspicious structure that wastes test budget or masks coverage.
    Warning,
    /// A defect: the circuit, constraint set or plan is unusable as-is.
    Error,
}

impl Severity {
    /// The lowercase keyword used in pretty output, JSON, and `--deny`.
    pub fn keyword(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// Parse the lowercase keyword back into a severity.
    pub fn from_keyword(s: &str) -> Option<Severity> {
        match s {
            "note" => Some(Severity::Note),
            "warning" => Some(Severity::Warning),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// One finding of one rule at one place.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable kebab-case rule identifier (e.g. `comb-cycle`).
    pub rule_id: &'static str,
    /// How serious the finding is.
    pub severity: Severity,
    /// Where: `circuit`, `circuit:node`, or `circuit:line N` — a plain
    /// string so every producer controls its own precision.
    pub location: String,
    /// What was found, in one sentence.
    pub message: String,
    /// How to fix or interpret it (may be empty).
    pub help: String,
}

impl Diagnostic {
    /// Build a diagnostic with an empty help string.
    pub fn new(
        rule_id: &'static str,
        severity: Severity,
        location: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            rule_id,
            severity,
            location: location.into(),
            message: message.into(),
            help: String::new(),
        }
    }

    /// Attach a help string.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = help.into();
        self
    }

    fn sort_key(&self) -> (std::cmp::Reverse<Severity>, &str, &str, &str) {
        (
            std::cmp::Reverse(self.severity),
            self.rule_id,
            &self.location,
            &self.message,
        )
    }

    /// Render as a single JSON object (hand-rolled, no dependencies).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule_id\":{},\"severity\":\"{}\",\"location\":{},\"message\":{},\"help\":{}}}",
            json_string(self.rule_id),
            self.severity,
            json_string(&self.location),
            json_string(&self.message),
            json_string(&self.help),
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.rule_id, self.location, self.message
        )?;
        if !self.help.is_empty() {
            write!(f, "\n  help: {}", self.help)?;
        }
        Ok(())
    }
}

/// All diagnostics produced for one subject (a circuit, constraint set,
/// or plan), in canonical order.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// The linted subject's name (usually the circuit name).
    pub subject: String,
    diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// An empty report for the named subject.
    pub fn new(subject: impl Into<String>) -> Self {
        LintReport {
            subject: subject.into(),
            diagnostics: Vec::new(),
        }
    }

    /// Add one diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Absorb every diagnostic of another report.
    pub fn extend(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// The diagnostics in canonical order (sorts in place first).
    pub fn diagnostics(&mut self) -> &[Diagnostic] {
        self.sort();
        &self.diagnostics
    }

    /// Sort into canonical order: most severe first, then rule id,
    /// location, and message.
    pub fn sort(&mut self) {
        self.diagnostics
            .sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    }

    /// Number of diagnostics at exactly this severity.
    pub fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }

    /// Whether any diagnostic is at or above the given severity.
    pub fn any_at_least(&self, sev: Severity) -> bool {
        self.diagnostics.iter().any(|d| d.severity >= sev)
    }

    /// Whether the report is empty.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Total number of diagnostics.
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// Drop diagnostics whose rule id fails the predicate.
    pub fn retain(&mut self, mut keep: impl FnMut(&Diagnostic) -> bool) {
        self.diagnostics.retain(|d| keep(d));
    }

    /// Render the whole report as one JSON object. Deterministic: sorts
    /// first, escapes all strings, no trailing whitespace.
    pub fn to_json(&mut self) -> String {
        self.sort();
        let body: Vec<String> = self.diagnostics.iter().map(Diagnostic::to_json).collect();
        format!(
            "{{\"subject\":{},\"errors\":{},\"warnings\":{},\"notes\":{},\"diagnostics\":[{}]}}",
            json_string(&self.subject),
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Note),
            body.join(","),
        )
    }

    /// Render the report for humans: one line per diagnostic plus a summary.
    pub fn to_pretty(&mut self) -> String {
        self.sort();
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{}: {} error(s), {} warning(s), {} note(s)\n",
            self.subject,
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Note),
        ));
        out
    }
}

/// Escape a string as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_error_highest() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Note);
        assert_eq!(Severity::from_keyword("warning"), Some(Severity::Warning));
        assert_eq!(Severity::from_keyword("fatal"), None);
    }

    #[test]
    fn report_sorts_canonically() {
        let mut r = LintReport::new("c");
        r.push(Diagnostic::new("b-rule", Severity::Note, "c:n1", "m"));
        r.push(Diagnostic::new("a-rule", Severity::Error, "c:n2", "m"));
        r.push(Diagnostic::new("a-rule", Severity::Error, "c:n1", "m"));
        let d = r.diagnostics();
        assert_eq!(d[0].location, "c:n1");
        assert_eq!(d[1].location, "c:n2");
        assert_eq!(d[2].rule_id, "b-rule");
    }

    #[test]
    fn json_escapes_and_counts() {
        let mut r = LintReport::new("c\"x");
        r.push(Diagnostic::new("r", Severity::Error, "c:n", "say \"hi\"\n").with_help("tab\there"));
        let j = r.to_json();
        assert!(j.contains("\"subject\":\"c\\\"x\""));
        assert!(j.contains("\\\"hi\\\"\\n"));
        assert!(j.contains("tab\\there"));
        assert!(j.contains("\"errors\":1"));
        assert!(j.contains("\"warnings\":0"));
    }

    #[test]
    fn json_is_deterministic_across_insertion_orders() {
        let a = Diagnostic::new("r1", Severity::Warning, "c:x", "m1");
        let b = Diagnostic::new("r2", Severity::Error, "c:y", "m2");
        let mut r1 = LintReport::new("c");
        r1.push(a.clone());
        r1.push(b.clone());
        let mut r2 = LintReport::new("c");
        r2.push(b);
        r2.push(a);
        assert_eq!(r1.to_json(), r2.to_json());
    }

    #[test]
    fn pretty_includes_help() {
        let mut r = LintReport::new("c");
        r.push(Diagnostic::new("r", Severity::Warning, "c:n", "msg").with_help("fix it"));
        let p = r.to_pretty();
        assert!(p.contains("warning[r] c:n: msg"));
        assert!(p.contains("  help: fix it"));
        assert!(p.contains("c: 0 error(s), 1 warning(s), 0 note(s)"));
    }
}
