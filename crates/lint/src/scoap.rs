//! SCOAP-style testability scoring.
//!
//! Classic combinational SCOAP measures, adapted to the scan-based setting:
//! flip-flops are pseudo-primary-inputs (their state is scan-loaded, so
//! `CC0 = CC1 = 1`), and both primary-output drivers and flip-flop D-inputs
//! are observation points (`CO = 0`, the response is scanned out). The
//! `scoap-hard` rule aggregates nodes whose controllability or
//! observability exceeds a threshold into a single deterministic note, so
//! ATPG effort can be steered away from hopeless cones before any budget
//! is spent.

use fbt_netlist::GateKind;

use crate::diag::{Diagnostic, LintReport, Severity};
use crate::graph::RawCircuit;

/// Controllability/observability scores for one node. Saturating integer
/// arithmetic; `u32::MAX` means "unreachable/unobservable".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scoap {
    /// Effort to set the line to 0 (SCOAP CC0).
    pub cc0: u32,
    /// Effort to set the line to 1 (SCOAP CC1).
    pub cc1: u32,
    /// Effort to observe the line at an output or scan cell (SCOAP CO).
    pub co: u32,
}

/// Score every node, or `None` when the circuit has no combinational
/// topological order (a cycle — reported separately by `comb-cycle`).
pub fn scores(c: &RawCircuit) -> Option<Vec<Scoap>> {
    let n = c.nodes.len();
    let order = topo_order(c)?;

    let mut cc0 = vec![u32::MAX; n];
    let mut cc1 = vec![u32::MAX; n];
    // Sources: PIs and scan-loadable flip-flops cost 1; undriven nets are
    // unknown sources and also get 1 (their real cost is a separate error).
    for i in 0..n {
        if c.is_source(i) {
            cc0[i] = 1;
            cc1[i] = 1;
        }
    }
    for &i in &order {
        let kind = c.nodes[i].kind.expect("ordered nodes are gates");
        let ins = &c.nodes[i].fanins;
        let (z, o) = gate_cc(kind, ins, &cc0, &cc1);
        cc0[i] = z;
        cc1[i] = o;
    }

    let mut co = vec![u32::MAX; n];
    for p in c.observable_points() {
        co[p] = 0;
    }
    // Reverse topological order; sources handled implicitly through their
    // consumers.
    for &i in order.iter().rev() {
        let kind = c.nodes[i].kind.expect("ordered nodes are gates");
        let ins = &c.nodes[i].fanins;
        if co[i] == u32::MAX {
            continue;
        }
        for (k, &f) in ins.iter().enumerate() {
            let side: u32 = match kind {
                GateKind::And | GateKind::Nand => sum_others(ins, k, &cc1),
                GateKind::Or | GateKind::Nor => sum_others(ins, k, &cc0),
                GateKind::Xor | GateKind::Xnor => ins
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != k)
                    .map(|(_, &f2)| cc0[f2].min(cc1[f2]))
                    .fold(0u32, u32::saturating_add),
                GateKind::Not | GateKind::Buf => 0,
                GateKind::Input | GateKind::Dff => unreachable!(),
            };
            let through = co[i].saturating_add(side).saturating_add(1);
            co[f] = co[f].min(through);
        }
    }

    Some(
        (0..n)
            .map(|i| Scoap {
                cc0: cc0[i],
                cc1: cc1[i],
                co: co[i],
            })
            .collect(),
    )
}

fn sum_others(ins: &[usize], skip: usize, cc: &[u32]) -> u32 {
    ins.iter()
        .enumerate()
        .filter(|&(j, _)| j != skip)
        .map(|(_, &f)| cc[f])
        .fold(0u32, u32::saturating_add)
}

fn gate_cc(kind: GateKind, ins: &[usize], cc0: &[u32], cc1: &[u32]) -> (u32, u32) {
    let sum = |cc: &[u32]| {
        ins.iter()
            .map(|&f| cc[f])
            .fold(0u32, u32::saturating_add)
            .saturating_add(1)
    };
    let min = |cc: &[u32]| {
        ins.iter()
            .map(|&f| cc[f])
            .min()
            .unwrap_or(u32::MAX)
            .saturating_add(1)
    };
    match kind {
        GateKind::And => (min(cc0), sum(cc1)),
        GateKind::Nand => (sum(cc1), min(cc0)),
        GateKind::Or => (sum(cc0), min(cc1)),
        GateKind::Nor => (min(cc1), sum(cc0)),
        GateKind::Not => (cc1[ins[0]].saturating_add(1), cc0[ins[0]].saturating_add(1)),
        GateKind::Buf => (cc0[ins[0]].saturating_add(1), cc1[ins[0]].saturating_add(1)),
        GateKind::Xor | GateKind::Xnor => {
            // Fold pairwise: cost of even/odd parity over the inputs.
            let mut even = 0u32; // cost of parity 0 so far (empty prefix)
            let mut odd = u32::MAX; // parity 1 impossible with no inputs
            for &f in ins {
                let (e2, o2) = (
                    (even.saturating_add(cc0[f])).min(odd.saturating_add(cc1[f])),
                    (even.saturating_add(cc1[f])).min(odd.saturating_add(cc0[f])),
                );
                even = e2;
                odd = o2;
            }
            if kind == GateKind::Xor {
                (even.saturating_add(1), odd.saturating_add(1))
            } else {
                (odd.saturating_add(1), even.saturating_add(1))
            }
        }
        GateKind::Input | GateKind::Dff => unreachable!("sources scored separately"),
    }
}

/// Kahn topological order over combinational gates; `None` on a cycle.
fn topo_order(c: &RawCircuit) -> Option<Vec<usize>> {
    let n = c.nodes.len();
    let mut pending: Vec<usize> = (0..n)
        .map(|i| {
            if c.is_gate(i) {
                c.nodes[i].fanins.len()
            } else {
                0
            }
        })
        .collect();
    let mut queue: Vec<usize> = (0..n).filter(|&i| !c.is_gate(i)).collect();
    let mut order = Vec::new();
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        if c.is_gate(v) {
            order.push(v);
        }
        for &w in &c.fanouts[v] {
            if !c.is_gate(w) {
                continue;
            }
            pending[w] -= 1;
            if pending[w] == 0 {
                queue.push(w);
            }
        }
    }
    if order.len() == (0..n).filter(|&i| c.is_gate(i)).count() {
        Some(order)
    } else {
        None
    }
}

/// Threshold above which a node counts as hard to test.
const HARD_THRESHOLD: u32 = 100;

/// `scoap-hard`: one aggregate note naming the worst node and counting all
/// nodes above the effort threshold (unobservable nodes are excluded — the
/// `unobservable-gate` rule owns those).
pub fn run(c: &RawCircuit, report: &mut LintReport) {
    let Some(s) = scores(c) else {
        return; // cyclic: comb-cycle already reported
    };
    let mut worst: Option<(u32, usize)> = None;
    let mut count = 0usize;
    for (i, sc) in s.iter().enumerate() {
        if !c.is_gate(i) || sc.co == u32::MAX {
            continue;
        }
        let effort = sc.cc0.min(sc.cc1).saturating_add(sc.co);
        if effort >= HARD_THRESHOLD {
            count += 1;
            if worst.map(|(w, _)| effort > w).unwrap_or(true) {
                worst = Some((effort, i));
            }
        }
    }
    if let Some((effort, i)) = worst {
        report.push(
            Diagnostic::new(
                "scoap-hard",
                Severity::Note,
                c.location(i),
                format!(
                    "{count} gate(s) exceed SCOAP effort {HARD_THRESHOLD} \
                     (worst: `{}` at {effort})",
                    c.nodes[i].name
                ),
            )
            .with_help("hard-to-test cones burn ATPG budget; consider test points"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn circuit(src: &str) -> RawCircuit {
        let raw = fbt_netlist::bench::parse_raw(src, "t").unwrap();
        RawCircuit::from_raw_bench(&raw)
    }

    #[test]
    fn inverter_swaps_controllabilities() {
        let c = circuit("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n");
        let s = scores(&c).unwrap();
        let y = c.find("y").unwrap();
        let a = c.find("a").unwrap();
        assert_eq!(s[a].cc0, 1);
        assert_eq!(s[y].cc0, 2); // needs a=1
        assert_eq!(s[y].cc1, 2); // needs a=0
        assert_eq!(s[y].co, 0); // PO driver
        assert_eq!(s[a].co, 1); // through the NOT
    }

    #[test]
    fn and_sums_ones_and_mins_zeros() {
        let c = circuit("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n");
        let s = scores(&c).unwrap();
        let y = c.find("y").unwrap();
        assert_eq!(s[y].cc1, 3); // 1 + 1 + 1
        assert_eq!(s[y].cc0, 2); // min(1, 1) + 1
                                 // Observing a requires b = 1: CO = 0 + CC1(b) + 1 = 2.
        assert_eq!(s[c.find("a").unwrap()].co, 2);
    }

    #[test]
    fn xor_parity_controllability() {
        let c = circuit("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n");
        let s = scores(&c).unwrap();
        let y = c.find("y").unwrap();
        // Either both 0 or both 1 → min(1+1, 1+1) + 1 = 3; same for odd.
        assert_eq!(s[y].cc0, 3);
        assert_eq!(s[y].cc1, 3);
    }

    #[test]
    fn dff_is_pseudo_input_and_pseudo_output() {
        let c = circuit("INPUT(a)\nq = DFF(d)\nd = AND(a, q)\nOUTPUT(q)\n");
        let s = scores(&c).unwrap();
        let q = c.find("q").unwrap();
        let d = c.find("d").unwrap();
        assert_eq!(s[q].cc0, 1); // scan-loadable
        assert_eq!(s[d].co, 0); // D-driver is an observation point
    }

    #[test]
    fn cyclic_circuit_scores_none() {
        let c = circuit("INPUT(a)\nOUTPUT(x)\nx = AND(a, y)\ny = AND(a, x)\n");
        assert!(scores(&c).is_none());
        let mut r = LintReport::new("t");
        run(&c, &mut r); // must not panic or report
        assert!(r.is_empty());
    }

    #[test]
    fn deep_and_chain_triggers_hard_note() {
        // Each AND level adds its sibling's CC1 to the observation cost of
        // the chain head, so a long chain crosses the threshold.
        let mut src = String::from("INPUT(a)\nINPUT(b)\n");
        let mut prev = "a".to_string();
        for i in 0..120 {
            src.push_str(&format!("n{i} = AND({prev}, b)\n"));
            prev = format!("n{i}");
        }
        src.push_str(&format!("OUTPUT({prev})\n"));
        let c = circuit(&src);
        let mut r = LintReport::new("t");
        run(&c, &mut r);
        assert_eq!(r.diagnostics().len(), 1);
        assert_eq!(r.diagnostics()[0].rule_id, "scoap-hard");
    }
}
