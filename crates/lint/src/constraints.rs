//! Primary-input constraint sets and their SAT-backed lint rules.
//!
//! Functional broadside generation restricts primary inputs to the values
//! the surrounding logic can actually produce. This module parses a small
//! textual constraint format over PI names and checks it with the CDCL
//! solver:
//!
//! ```text
//! # fixed assignments and clauses over primary inputs
//! reset = 0
//! mode | !enable          # at least one literal must hold
//! ```
//!
//! * `constraint-parse` — a line that is neither `name = 0|1` nor a
//!   `|`-separated clause of optionally-`!`-negated names;
//! * `constraint-unknown-pi` — a constraint references a net that is not a
//!   primary input of the circuit;
//! * `constraint-unsat` — the conjunction of all constraints is
//!   unsatisfiable: the constrained generation loop can never launch;
//! * `constraint-const-pi` — the constraints force a primary input to a
//!   single value (every test pattern wastes that input).

use std::collections::BTreeMap;

use fbt_netlist::Netlist;
use fbt_sat::{CnfFormula, SatResult, Solver};

use crate::diag::{Diagnostic, LintReport, Severity};

/// One literal over a primary input: the input name and its polarity
/// (`false` = negated).
pub type ConstraintLit = (String, bool);

/// A parsed constraint set: fixed assignments plus CNF clauses, all over
/// primary-input names.
#[derive(Debug, Clone, Default)]
pub struct ConstraintSet {
    /// `name = 0|1` lines, in source order.
    pub fixed: Vec<(usize, String, bool)>,
    /// `a | !b | c` clause lines, in source order.
    pub clauses: Vec<(usize, Vec<ConstraintLit>)>,
}

impl ConstraintSet {
    /// Parse the textual format. Unparseable lines become
    /// `constraint-parse` diagnostics (the rest of the file still loads).
    pub fn parse(text: &str, subject: &str, report: &mut LintReport) -> ConstraintSet {
        let mut set = ConstraintSet::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let lno = lineno + 1;
            if let Some(eq) = line.find('=') {
                let name = line[..eq].trim();
                let value = line[eq + 1..].trim();
                let bad_name = name.is_empty() || name.contains(char::is_whitespace);
                match (bad_name, value) {
                    (false, "0") => set.fixed.push((lno, name.to_string(), false)),
                    (false, "1") => set.fixed.push((lno, name.to_string(), true)),
                    _ => report.push(
                        Diagnostic::new(
                            "constraint-parse",
                            Severity::Error,
                            format!("{subject}:line {lno}"),
                            format!("expected `name = 0|1`, got `{line}`"),
                        )
                        .with_help("fixed assignments take exactly one input name and 0 or 1"),
                    ),
                }
            } else {
                let mut lits = Vec::new();
                let mut ok = true;
                for tok in line.split('|') {
                    let tok = tok.trim();
                    let (name, pol) = match tok.strip_prefix('!') {
                        Some(rest) => (rest.trim(), false),
                        None => (tok, true),
                    };
                    if name.is_empty() || name.contains(char::is_whitespace) {
                        ok = false;
                        break;
                    }
                    lits.push((name.to_string(), pol));
                }
                if ok && !lits.is_empty() {
                    set.clauses.push((lno, lits));
                } else {
                    report.push(
                        Diagnostic::new(
                            "constraint-parse",
                            Severity::Error,
                            format!("{subject}:line {lno}"),
                            format!("expected `a | !b | ...`, got `{line}`"),
                        )
                        .with_help("clauses are `|`-separated input names, `!` negates"),
                    );
                }
            }
        }
        set
    }

    /// Whether the set contains no constraints at all.
    pub fn is_empty(&self) -> bool {
        self.fixed.is_empty() && self.clauses.is_empty()
    }

    /// Every input name mentioned, sorted and deduplicated.
    pub fn support(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self
            .fixed
            .iter()
            .map(|(_, n, _)| n.as_str())
            .chain(
                self.clauses
                    .iter()
                    .flat_map(|(_, ls)| ls.iter().map(|(n, _)| n.as_str())),
            )
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    }
}

/// Run the SAT-backed constraint rules for `set` against `net`'s primary
/// inputs.
pub fn run(net: &Netlist, set: &ConstraintSet, report: &mut LintReport) {
    let names: Vec<&str> = net.inputs().iter().map(|&id| net.node_name(id)).collect();
    run_names(net.name(), &names, set, report);
}

/// Same as [`run`], but over a bare primary-input name list — usable even
/// when the circuit is too broken to build a `Netlist`.
pub fn run_names(subject: &str, pi_names: &[&str], set: &ConstraintSet, report: &mut LintReport) {
    if set.is_empty() {
        return;
    }

    // Map PI name -> cube index; report unknown references.
    let mut pi_index: BTreeMap<&str, usize> = BTreeMap::new();
    for (k, &name) in pi_names.iter().enumerate() {
        pi_index.insert(name, k);
    }
    let mut known = true;
    for name in set.support() {
        if !pi_index.contains_key(name) {
            known = false;
            report.push(
                Diagnostic::new(
                    "constraint-unknown-pi",
                    Severity::Error,
                    format!("{subject}:{name}"),
                    format!("constraint references `{name}`, which is not a primary input"),
                )
                .with_help("constraints may only mention primary inputs of the circuit"),
            );
        }
    }
    if !known {
        return; // the formula below would silently drop unknown literals
    }

    // Encode: one variable per primary input, in input order.
    let build = |extra: Option<(usize, bool)>| -> Solver {
        let mut cnf = CnfFormula::new();
        let vars: Vec<_> = (0..pi_names.len()).map(|_| cnf.new_var()).collect();
        for (_, name, value) in &set.fixed {
            cnf.add_clause(&[vars[pi_index[name.as_str()]].lit(*value)]);
        }
        for (_, lits) in &set.clauses {
            let clause: Vec<_> = lits
                .iter()
                .map(|(name, pol)| vars[pi_index[name.as_str()]].lit(*pol))
                .collect();
            cnf.add_clause(&clause);
        }
        if let Some((pi, value)) = extra {
            cnf.add_clause(&[vars[pi].lit(value)]);
        }
        Solver::from_cnf(&cnf)
    };

    if matches!(build(None).solve(), SatResult::Unsat) {
        report.push(
            Diagnostic::new(
                "constraint-unsat",
                Severity::Error,
                subject.to_string(),
                "the primary-input constraint set is unsatisfiable",
            )
            .with_help(
                "no input vector satisfies the constraints; constrained generation can \
                 never launch a test",
            ),
        );
        return;
    }

    // Forced-constant inputs: only inputs in the support can be forced.
    for name in set.support() {
        let pi = pi_index[name];
        for value in [false, true] {
            if matches!(build(Some((pi, value))).solve(), SatResult::Unsat) {
                report.push(
                    Diagnostic::new(
                        "constraint-const-pi",
                        Severity::Warning,
                        format!("{subject}:{name}"),
                        format!(
                            "constraints force primary input `{name}` to constant {}",
                            u8::from(!value)
                        ),
                    )
                    .with_help(
                        "a forced input carries no test information; transition faults \
                         on it are untestable under these constraints",
                    ),
                );
                break; // the other polarity is implied satisfiable
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(text: &str) -> ConstraintSet {
        let mut r = LintReport::new("t");
        let set = ConstraintSet::parse(text, "t", &mut r);
        assert!(r.is_empty(), "{:?}", r.diagnostics());
        set
    }

    #[test]
    fn parses_fixed_and_clauses_with_comments() {
        let set = parse_ok("# header\na = 0\nb=1 # inline\na | !b | c\n");
        assert_eq!(set.fixed.len(), 2);
        assert_eq!(set.clauses.len(), 1);
        assert_eq!(set.clauses[0].1.len(), 3);
        assert_eq!(set.support(), vec!["a", "b", "c"]);
    }

    #[test]
    fn bad_lines_are_diagnosed_not_fatal() {
        let mut r = LintReport::new("t");
        let set = ConstraintSet::parse("a = 2\nb = 1\n| |\n", "t", &mut r);
        assert_eq!(set.fixed.len(), 1);
        assert_eq!(r.count(Severity::Error), 2);
        assert!(r
            .diagnostics()
            .iter()
            .all(|d| d.rule_id == "constraint-parse"));
    }

    fn s27_lint(text: &str) -> LintReport {
        let net = fbt_netlist::s27();
        let mut r = LintReport::new("s27");
        let set = ConstraintSet::parse(text, "s27", &mut r);
        run(&net, &set, &mut r);
        r
    }

    #[test]
    fn unsat_cube_is_an_error() {
        let mut r = s27_lint("G0 = 0\nG0 = 1\n");
        assert_eq!(r.diagnostics().len(), 1);
        assert_eq!(r.diagnostics()[0].rule_id, "constraint-unsat");
    }

    #[test]
    fn unsat_via_clauses_is_an_error() {
        let mut r = s27_lint("G0 | G1\n!G0\n!G1\n");
        assert!(r
            .diagnostics()
            .iter()
            .any(|d| d.rule_id == "constraint-unsat"));
    }

    #[test]
    fn implied_constant_is_a_warning() {
        // G0 free in the cube but forced through clauses: (G0 | G1) & !G1.
        let mut r = s27_lint("G0 | G1\n!G1\n");
        let rules: Vec<_> = r.diagnostics().iter().map(|d| d.rule_id).collect();
        assert!(rules.contains(&"constraint-const-pi"), "{rules:?}");
        // G1 is also forced (to 0) — both get reported, no unsat.
        assert!(!rules.contains(&"constraint-unsat"));
        let consts = r
            .diagnostics()
            .iter()
            .filter(|d| d.rule_id == "constraint-const-pi")
            .count();
        assert_eq!(consts, 2);
    }

    #[test]
    fn satisfiable_free_constraints_are_clean() {
        let mut r = s27_lint("G0 | G1\nG2 | !G3\n");
        assert!(r.is_empty(), "{:?}", r.diagnostics());
    }

    #[test]
    fn unknown_pi_reported_and_stops() {
        let mut r = s27_lint("G99 = 1\n");
        assert_eq!(r.diagnostics().len(), 1);
        assert_eq!(r.diagnostics()[0].rule_id, "constraint-unknown-pi");
    }
}
