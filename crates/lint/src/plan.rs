//! BIST test-plan lint rules.
//!
//! [`PlanSpec`] is a dependency-neutral snapshot of a built-in generation
//! plan: the TPG parameters of `fbt-bist` plus the budgets of the Chapter-4
//! driver. `fbt-core` converts its configuration into this struct before
//! generation, so `fbt-lint` can validate plans without depending on
//! `fbt-core` (which sits above this crate in the workspace DAG).

use fbt_bist::TpgSpec;

use crate::diag::{Diagnostic, LintReport, Severity};

/// A dependency-neutral description of a BIST plan to lint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanSpec {
    /// LFSR width in bits (the hardware seed register).
    pub lfsr_width: u32,
    /// Degree of the AND/OR input-biasing gates (paper §4.3).
    pub m: usize,
    /// Width of the primary-input cube `C` (must equal the PI count).
    pub cube_len: usize,
    /// Per-seed test sequence length `L` (broadside: must be even).
    pub seq_len: usize,
    /// Seed-search budget (0 = the search can never start).
    pub max_seeds: usize,
    /// Number of functional warm-up sequences.
    pub func_sequences: usize,
    /// Length of each functional warm-up sequence.
    pub func_len: usize,
}

impl PlanSpec {
    /// Snapshot the TPG-derived parameters of a plan; the caller fills in
    /// the driver budgets.
    pub fn from_tpg(
        spec: &TpgSpec,
        seq_len: usize,
        max_seeds: usize,
        func_sequences: usize,
        func_len: usize,
    ) -> Self {
        PlanSpec {
            lfsr_width: spec.lfsr_width,
            m: spec.m,
            cube_len: spec.cube.len(),
            seq_len,
            max_seeds,
            func_sequences,
            func_len,
        }
    }
}

/// Lint a plan against a circuit with `num_inputs` primary inputs.
pub fn run(subject: &str, num_inputs: usize, plan: &PlanSpec, report: &mut LintReport) {
    if plan.cube_len != num_inputs {
        report.push(
            Diagnostic::new(
                "plan-cube-width",
                Severity::Error,
                subject.to_string(),
                format!(
                    "input cube has {} entries but the circuit has {} primary input(s)",
                    plan.cube_len, num_inputs
                ),
            )
            .with_help("recompute the cube against this circuit (fbt_bist::cube::input_cube)"),
        );
    }
    if plan.lfsr_width == 0 || plan.lfsr_width > 64 {
        report.push(
            Diagnostic::new(
                "plan-lfsr-width",
                Severity::Error,
                subject.to_string(),
                format!(
                    "LFSR width {} is outside the supported range 1..=64",
                    plan.lfsr_width
                ),
            )
            .with_help("fbt_bist::Lfsr::new refuses widths of 0 or more than 64 bits"),
        );
    }
    if plan.seq_len == 0 || !plan.seq_len.is_multiple_of(2) {
        report.push(
            Diagnostic::new(
                "plan-seq-odd",
                Severity::Error,
                subject.to_string(),
                format!(
                    "per-seed sequence length L = {} must be even and positive",
                    plan.seq_len
                ),
            )
            .with_help("broadside tests pair frames: every seed contributes L/2 two-frame tests"),
        );
    }
    if plan.max_seeds == 0 || (plan.func_sequences > 0 && plan.func_len == 0) {
        report.push(
            Diagnostic::new(
                "plan-zero-budget",
                Severity::Error,
                subject.to_string(),
                format!(
                    "plan has a zero budget (max_seeds = {}, func_sequences = {}, func_len = {})",
                    plan.max_seeds, plan.func_sequences, plan.func_len
                ),
            )
            .with_help("a zero budget makes generation a no-op; raise it or drop the stage"),
        );
    }
    if plan.m < 2 {
        report.push(
            Diagnostic::new(
                "plan-m-degree",
                Severity::Warning,
                subject.to_string(),
                format!("biasing gate degree m = {} gives no bias", plan.m),
            )
            .with_help("the paper uses m >= 2; m < 2 degenerates the AND/OR biasing gates"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbt_bist::cube;

    fn good_plan(inputs: usize) -> PlanSpec {
        PlanSpec {
            lfsr_width: 16,
            m: 3,
            cube_len: inputs,
            seq_len: 100,
            max_seeds: 1000,
            func_sequences: 2,
            func_len: 10,
        }
    }

    #[test]
    fn good_plan_is_clean() {
        let mut r = LintReport::new("p");
        run("p", 4, &good_plan(4), &mut r);
        assert!(r.is_empty(), "{:?}", r.diagnostics());
    }

    #[test]
    fn each_defect_fires_its_rule() {
        let cases: Vec<(PlanSpec, &str)> = vec![
            (
                PlanSpec {
                    cube_len: 3,
                    ..good_plan(4)
                },
                "plan-cube-width",
            ),
            (
                PlanSpec {
                    lfsr_width: 0,
                    ..good_plan(4)
                },
                "plan-lfsr-width",
            ),
            (
                PlanSpec {
                    lfsr_width: 65,
                    ..good_plan(4)
                },
                "plan-lfsr-width",
            ),
            (
                PlanSpec {
                    seq_len: 101,
                    ..good_plan(4)
                },
                "plan-seq-odd",
            ),
            (
                PlanSpec {
                    max_seeds: 0,
                    ..good_plan(4)
                },
                "plan-zero-budget",
            ),
            (
                PlanSpec {
                    m: 1,
                    ..good_plan(4)
                },
                "plan-m-degree",
            ),
        ];
        for (plan, rule) in cases {
            let mut r = LintReport::new("p");
            run("p", 4, &plan, &mut r);
            assert_eq!(r.diagnostics().len(), 1, "{rule}");
            assert_eq!(r.diagnostics()[0].rule_id, rule);
        }
    }

    #[test]
    fn from_tpg_snapshot_matches_s27() {
        let net = fbt_netlist::s27();
        let spec = TpgSpec {
            lfsr_width: 16,
            m: 3,
            cube: cube::input_cube(&net),
        };
        let plan = PlanSpec::from_tpg(&spec, 100, 1000, 2, 10);
        let mut r = LintReport::new("s27");
        run("s27", net.num_inputs(), &plan, &mut r);
        assert!(r.is_empty(), "{:?}", r.diagnostics());
    }
}
