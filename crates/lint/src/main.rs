//! `fbt-lint` — static design-rule analysis for circuits, constraints and
//! BIST plans.
//!
//! ```text
//! fbt-lint [OPTIONS] SUBJECT...
//!
//! SUBJECT        a .bench file path, or a circuit name from the synthetic
//!                catalog (s27 resolves to the genuine ISCAS89 benchmark)
//!
//! --json         emit one machine-readable JSON report per subject to
//!                stdout (timing goes to stderr; stdout stays bit-identical
//!                across runs)
//! --constraints FILE
//!                also lint the PI constraint set in FILE against each
//!                subject (fixed `name = 0|1` lines and `a | !b` clauses)
//! --deny LEVEL|RULE
//!                fail (exit 1) on diagnostics at or above LEVEL
//!                (note|warning|error; default error), or on any finding of
//!                a specific RULE; repeatable
//! --allow RULE   silence a rule entirely; repeatable
//! --scale N      divide catalog circuit sizes by N (synthetic circuits)
//! --list-rules   print the rule registry and exit
//! ```
//!
//! Exit codes: 0 clean (under the active filter), 1 findings at or above
//! the deny threshold, 2 usage or I/O error.

use std::io::Write as _;
use std::time::Instant;

use fbt_lint::{lint_bench_text, lint_netlist, ConstraintSet, LintReport, RuleFilter, Severity};
use fbt_netlist::{synth, Netlist};

struct Options {
    subjects: Vec<String>,
    json: bool,
    constraints: Option<String>,
    filter: RuleFilter,
    scale: u64,
}

fn usage(code: i32) -> ! {
    eprintln!(
        "usage: fbt-lint [--json] [--constraints FILE] [--deny LEVEL|RULE]... \
         [--allow RULE]... [--scale N] [--list-rules] SUBJECT..."
    );
    std::process::exit(code)
}

fn parse_args() -> Options {
    let mut opts = Options {
        subjects: Vec::new(),
        json: false,
        constraints: None,
        filter: RuleFilter::default(),
        scale: 1,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--list-rules" => {
                let stdout = std::io::stdout();
                let mut out = stdout.lock();
                for r in fbt_lint::ALL_RULES {
                    if writeln!(
                        out,
                        "{:<22} {:<8} {}",
                        r.id,
                        r.severity.keyword(),
                        r.summary
                    )
                    .is_err()
                    {
                        // Downstream closed the pipe (e.g. `| head`).
                        std::process::exit(0);
                    }
                }
                std::process::exit(0);
            }
            "--constraints" => {
                let Some(path) = args.next() else { usage(2) };
                opts.constraints = Some(path);
            }
            "--deny" => {
                let Some(what) = args.next() else { usage(2) };
                if let Some(level) = Severity::from_keyword(&what) {
                    opts.filter.deny_level = level;
                } else if !opts.filter.deny_rule(&what) {
                    eprintln!("fbt-lint: unknown rule or level `{what}`");
                    std::process::exit(2);
                }
            }
            "--allow" => {
                let Some(rule) = args.next() else { usage(2) };
                if !opts.filter.allow(&rule) {
                    eprintln!("fbt-lint: unknown rule `{rule}`");
                    std::process::exit(2);
                }
            }
            "--scale" => {
                let Some(n) = args.next() else { usage(2) };
                match n.parse::<u64>() {
                    Ok(n) if n >= 1 => opts.scale = n,
                    _ => usage(2),
                }
            }
            "--help" | "-h" => usage(0),
            s if s.starts_with('-') => {
                eprintln!("fbt-lint: unknown option `{s}`");
                usage(2)
            }
            _ => opts.subjects.push(arg),
        }
    }
    if opts.subjects.is_empty() {
        usage(2);
    }
    opts
}

/// A resolved subject: its report, its name, and its primary-input names
/// (available even when the circuit is too broken to build a [`Netlist`],
/// so constraint linting still runs against it).
struct Resolved {
    report: LintReport,
    name: String,
    pi_names: Vec<String>,
}

fn resolve_net(net: Netlist) -> Resolved {
    let pi_names = net
        .inputs()
        .iter()
        .map(|&id| net.node_name(id).to_string())
        .collect();
    Resolved {
        report: lint_netlist(&net),
        name: net.name().to_string(),
        pi_names,
    }
}

fn lint_subject(subject: &str, scale: u64) -> Result<Resolved, String> {
    if subject.ends_with(".bench") || subject.contains('/') {
        let text = std::fs::read_to_string(subject)
            .map_err(|e| format!("cannot read `{subject}`: {e}"))?;
        let name = subject
            .rsplit('/')
            .next()
            .unwrap_or(subject)
            .trim_end_matches(".bench");
        let report = lint_bench_text(&text, name);
        let pi_names = match fbt_netlist::bench::parse_raw(&text, name) {
            Ok(raw) => {
                let c = fbt_lint::graph::RawCircuit::from_raw_bench(&raw);
                c.nodes
                    .iter()
                    .filter(|n| n.kind == Some(fbt_netlist::GateKind::Input))
                    .map(|n| n.name.clone())
                    .collect()
            }
            Err(_) => Vec::new(),
        };
        return Ok(Resolved {
            report,
            name: name.to_string(),
            pi_names,
        });
    }
    if subject == "s27" {
        return Ok(resolve_net(fbt_netlist::s27()));
    }
    match synth::find(subject) {
        Some(spec) => {
            let spec = if scale > 1 {
                spec.scaled(scale as usize)
            } else {
                spec
            };
            Ok(resolve_net(synth::generate(&spec)))
        }
        None => Err(format!(
            "`{subject}` is neither a .bench path nor a catalog circuit name"
        )),
    }
}

fn main() {
    let opts = parse_args();

    let constraint_text = opts.constraints.as_ref().map(|path| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("fbt-lint: cannot read `{path}`: {e}");
            std::process::exit(2);
        })
    });

    let mut failed = false;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for subject in &opts.subjects {
        let t0 = Instant::now();
        let resolved = match lint_subject(subject, opts.scale) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("fbt-lint: {e}");
                std::process::exit(2);
            }
        };
        let Resolved {
            mut report,
            name,
            pi_names,
        } = resolved;
        if let Some(text) = constraint_text.as_deref() {
            let mut creport = LintReport::new(&name);
            let set = ConstraintSet::parse(text, &name, &mut creport);
            let refs: Vec<&str> = pi_names.iter().map(String::as_str).collect();
            fbt_lint::constraints::run_names(&name, &refs, &set, &mut creport);
            report.extend(creport);
        }
        opts.filter.apply(&mut report);
        if opts.filter.fails(&mut report) {
            failed = true;
        }
        let wrote = if opts.json {
            writeln!(out, "{}", report.to_json())
        } else {
            write!(out, "{}", report.to_pretty())
        };
        if wrote.is_err() {
            // Downstream closed the pipe; report what we know so far.
            std::process::exit(i32::from(failed));
        }
        // Timing to stderr only: stdout must stay bit-identical across runs.
        eprintln!(
            "fbt-lint: {} in {} ms ({} finding(s))",
            subject,
            t0.elapsed().as_millis(),
            report.len()
        );
    }
    std::process::exit(i32::from(failed));
}
