//! A tolerant circuit graph for static analysis.
//!
//! [`fbt_netlist::Netlist`] refuses to exist in a broken state: duplicate
//! definitions, undriven nets and combinational cycles are construction
//! errors. A linter must instead see *all* of a document's problems at once,
//! so [`RawCircuit`] builds a best-effort graph from the syntax-level
//! [`RawBench`] statement stream — keeping the first definition of each
//! name, recording every later redefinition, and representing
//! referenced-but-never-defined nets as kind-less nodes.

use std::collections::HashMap;

use fbt_netlist::bench::{BenchStmt, RawBench};
use fbt_netlist::{GateKind, Netlist};

/// One signal in a [`RawCircuit`].
#[derive(Debug, Clone)]
pub struct RawNode {
    /// The signal name.
    pub name: String,
    /// The defining kind, or `None` when the signal is referenced but
    /// never defined (an undriven net).
    pub kind: Option<GateKind>,
    /// Fanin node indices, in source order.
    pub fanins: Vec<usize>,
    /// 1-based source line of the first definition, when parsed from text.
    pub line: Option<usize>,
}

/// A later definition of an already-defined name.
#[derive(Debug, Clone)]
pub struct Redefinition {
    /// Index of the node carrying the first (kept) definition.
    pub node: usize,
    /// 1-based source line of the redefinition, when parsed from text.
    pub line: Option<usize>,
    /// Whether the collision pairs a primary input with a gate or
    /// flip-flop output (silent shadowing) rather than two same-class
    /// definitions.
    pub shadows_input: bool,
}

/// A best-effort circuit graph that tolerates structural defects.
#[derive(Debug, Clone)]
pub struct RawCircuit {
    /// Circuit name.
    pub name: String,
    /// All signals, in first-mention order.
    pub nodes: Vec<RawNode>,
    /// Fanout adjacency, parallel to `nodes`.
    pub fanouts: Vec<Vec<usize>>,
    /// Primary-output references (node indices; duplicates preserved).
    pub outputs: Vec<usize>,
    /// Redefinitions dropped while keeping the first definition of each name.
    pub redefinitions: Vec<Redefinition>,
    name_to_idx: HashMap<String, usize>,
}

impl RawCircuit {
    /// Build from a syntax-level `.bench` parse.
    pub fn from_raw_bench(raw: &RawBench) -> Self {
        let mut c = RawCircuit {
            name: raw.name.clone(),
            nodes: Vec::new(),
            fanouts: Vec::new(),
            outputs: Vec::new(),
            redefinitions: Vec::new(),
            name_to_idx: HashMap::new(),
        };
        for (line, stmt) in &raw.stmts {
            match stmt {
                BenchStmt::Input(n) => c.define(n, GateKind::Input, &[], Some(*line)),
                BenchStmt::Output(n) => {
                    let idx = c.intern(n);
                    c.outputs.push(idx);
                }
                BenchStmt::Def { name, kind, args } => {
                    let arg_refs: Vec<&str> = args.iter().map(String::as_str).collect();
                    c.define(name, *kind, &arg_refs, Some(*line));
                }
            }
        }
        c.compute_fanouts();
        c
    }

    /// Build from an already-valid [`Netlist`] (no lines, no defects of the
    /// kinds the builder rejects — the structural rules still apply).
    pub fn from_netlist(net: &Netlist) -> Self {
        let mut c = RawCircuit {
            name: net.name().to_string(),
            nodes: Vec::with_capacity(net.num_nodes()),
            fanouts: Vec::new(),
            outputs: Vec::new(),
            redefinitions: Vec::new(),
            name_to_idx: HashMap::new(),
        };
        for id in net.node_ids() {
            let node = net.node(id);
            c.name_to_idx
                .insert(net.node_name(id).to_string(), id.index());
            c.nodes.push(RawNode {
                name: net.node_name(id).to_string(),
                kind: Some(node.kind()),
                fanins: node.fanins().iter().map(|f| f.index()).collect(),
                line: None,
            });
        }
        c.outputs = net.outputs().iter().map(|o| o.index()).collect();
        c.compute_fanouts();
        c
    }

    fn intern(&mut self, name: &str) -> usize {
        if let Some(&i) = self.name_to_idx.get(name) {
            return i;
        }
        let i = self.nodes.len();
        self.name_to_idx.insert(name.to_string(), i);
        self.nodes.push(RawNode {
            name: name.to_string(),
            kind: None,
            fanins: Vec::new(),
            line: None,
        });
        i
    }

    fn define(&mut self, name: &str, kind: GateKind, fanins: &[&str], line: Option<usize>) {
        let idx = self.intern(name);
        if let Some(prev_kind) = self.nodes[idx].kind {
            // Keep the first definition; record the collision.
            let shadows = (prev_kind == GateKind::Input) != (kind == GateKind::Input);
            self.redefinitions.push(Redefinition {
                node: idx,
                line,
                shadows_input: shadows,
            });
            return;
        }
        let fanin_idx: Vec<usize> = fanins.iter().map(|f| self.intern(f)).collect();
        let node = &mut self.nodes[idx];
        node.kind = Some(kind);
        node.fanins = fanin_idx;
        node.line = line;
    }

    fn compute_fanouts(&mut self) {
        self.fanouts = vec![Vec::new(); self.nodes.len()];
        for i in 0..self.nodes.len() {
            for k in 0..self.nodes[i].fanins.len() {
                let f = self.nodes[i].fanins[k];
                self.fanouts[f].push(i);
            }
        }
    }

    /// Node index by name.
    pub fn find(&self, name: &str) -> Option<usize> {
        self.name_to_idx.get(name).copied()
    }

    /// Whether the node is a source (primary input, flip-flop, or an
    /// undefined net — which the analyses must treat as an unknown source).
    pub fn is_source(&self, i: usize) -> bool {
        match self.nodes[i].kind {
            None => true,
            Some(k) => k.is_source(),
        }
    }

    /// Whether the node is a combinational gate with a known kind.
    pub fn is_gate(&self, i: usize) -> bool {
        matches!(self.nodes[i].kind, Some(k) if !k.is_source())
    }

    /// The location string for diagnostics: `circuit:line N` when the node
    /// has a source line, else `circuit:name`.
    pub fn location(&self, i: usize) -> String {
        match self.nodes[i].line {
            Some(l) => format!("{}:line {}", self.name, l),
            None => format!("{}:{}", self.name, self.nodes[i].name),
        }
    }

    /// Indices of every observable point: primary-output drivers and
    /// flip-flop D-drivers (observed at scan-out).
    pub fn observable_points(&self) -> Vec<usize> {
        let mut obs: Vec<usize> = self.outputs.clone();
        for (i, n) in self.nodes.iter().enumerate() {
            if n.kind == Some(GateKind::Dff) {
                obs.extend(self.nodes[i].fanins.iter().copied());
            }
        }
        obs.sort_unstable();
        obs.dedup();
        obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbt_netlist::bench::parse_raw;

    #[test]
    fn tolerates_undefined_and_duplicates() {
        let src = "INPUT(a)\ny = NOT(ghost)\ny = BUFF(a)\na = AND(a, y)\nOUTPUT(y)\n";
        let raw = parse_raw(src, "rough").unwrap();
        let c = RawCircuit::from_raw_bench(&raw);
        let ghost = c.find("ghost").unwrap();
        assert_eq!(c.nodes[ghost].kind, None);
        assert!(c.is_source(ghost));
        assert_eq!(c.redefinitions.len(), 2);
        assert!(!c.redefinitions[0].shadows_input); // y = NOT / y = BUFF
        assert!(c.redefinitions[1].shadows_input); // a: input vs AND
                                                   // First definition wins: y stays NOT(ghost).
        let y = c.find("y").unwrap();
        assert_eq!(c.nodes[y].kind, Some(GateKind::Not));
        assert_eq!(c.nodes[y].fanins, vec![ghost]);
    }

    #[test]
    fn from_netlist_matches_structure() {
        let net = fbt_netlist::s27();
        let c = RawCircuit::from_netlist(&net);
        assert_eq!(c.nodes.len(), net.num_nodes());
        assert!(c.redefinitions.is_empty());
        let obs = c.observable_points();
        // s27: one PO driver (G17) + three DFF D-drivers (G10, G11, G13),
        // all distinct.
        assert_eq!(obs.len(), 4);
    }

    #[test]
    fn locations_prefer_lines() {
        let raw = parse_raw("INPUT(a)\ny = NOT(a)\n", "c").unwrap();
        let c = RawCircuit::from_raw_bench(&raw);
        assert_eq!(c.location(c.find("y").unwrap()), "c:line 2");
        let net = fbt_netlist::s27();
        let cn = RawCircuit::from_netlist(&net);
        assert_eq!(cn.location(cn.find("G10").unwrap()), "s27:G10");
    }
}
