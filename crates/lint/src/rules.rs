//! The rule registry and rule filtering.
//!
//! Every rule the engine can emit is listed here with its identifier,
//! default severity and a one-line summary — the source of truth for
//! `fbt-lint --list-rules` and for validating `--allow`/`--deny`
//! arguments before a run.

use std::collections::BTreeSet;

use crate::diag::{LintReport, Severity};

/// Metadata for one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleInfo {
    /// Stable kebab-case identifier.
    pub id: &'static str,
    /// Severity the rule emits at.
    pub severity: Severity,
    /// One-line summary.
    pub summary: &'static str,
}

/// Every rule, sorted by identifier.
pub const ALL_RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "bench-parse",
        severity: Severity::Error,
        summary: "the .bench document is not syntactically valid",
    },
    RuleInfo {
        id: "comb-cycle",
        severity: Severity::Error,
        summary: "combinational feedback loop (strongly connected gate component)",
    },
    RuleInfo {
        id: "const-gate",
        severity: Severity::Warning,
        summary: "gate output is structurally constant; its transition faults are untestable",
    },
    RuleInfo {
        id: "constraint-const-pi",
        severity: Severity::Warning,
        summary: "constraints force a primary input to a single value",
    },
    RuleInfo {
        id: "constraint-parse",
        severity: Severity::Error,
        summary: "unparseable line in a constraint file",
    },
    RuleInfo {
        id: "constraint-unknown-pi",
        severity: Severity::Error,
        summary: "constraint references a net that is not a primary input",
    },
    RuleInfo {
        id: "constraint-unsat",
        severity: Severity::Error,
        summary: "the primary-input constraint set is unsatisfiable (SAT-proved)",
    },
    RuleInfo {
        id: "dangling-gate",
        severity: Severity::Warning,
        summary: "gate drives nothing and no primary output",
    },
    RuleInfo {
        id: "dup-cone",
        severity: Severity::Warning,
        summary: "structurally duplicate logic cones (SAT-confirmed equivalent)",
    },
    RuleInfo {
        id: "fanout-outlier",
        severity: Severity::Note,
        summary: "net with extreme fanout relative to the circuit average",
    },
    RuleInfo {
        id: "no-sources",
        severity: Severity::Error,
        summary: "circuit has no primary inputs and no flip-flops",
    },
    RuleInfo {
        id: "pi-shadowed",
        severity: Severity::Error,
        summary: "gate or flip-flop output collides with a primary input name",
    },
    RuleInfo {
        id: "plan-cube-width",
        severity: Severity::Error,
        summary: "TPG input-cube width differs from the circuit's PI count",
    },
    RuleInfo {
        id: "plan-lfsr-width",
        severity: Severity::Error,
        summary: "LFSR width outside the supported 1..=64 range",
    },
    RuleInfo {
        id: "plan-m-degree",
        severity: Severity::Warning,
        summary: "biasing gate degree m < 2 gives no bias",
    },
    RuleInfo {
        id: "plan-seq-odd",
        severity: Severity::Error,
        summary: "per-seed sequence length must be even and positive",
    },
    RuleInfo {
        id: "plan-zero-budget",
        severity: Severity::Error,
        summary: "a zero generation budget makes the plan a no-op",
    },
    RuleInfo {
        id: "redefined-net",
        severity: Severity::Error,
        summary: "signal defined more than once",
    },
    RuleInfo {
        id: "scoap-hard",
        severity: Severity::Note,
        summary: "cones whose SCOAP controllability/observability exceed the threshold",
    },
    RuleInfo {
        id: "undriven-net",
        severity: Severity::Error,
        summary: "net referenced but never driven",
    },
    RuleInfo {
        id: "unobservable-gate",
        severity: Severity::Warning,
        summary: "gate with no path to any primary output or flip-flop D-input",
    },
    RuleInfo {
        id: "x-source-ff",
        severity: Severity::Note,
        summary: "flip-flops that never initialize in three-valued simulation",
    },
];

/// Look up a rule by identifier.
pub fn find_rule(id: &str) -> Option<&'static RuleInfo> {
    ALL_RULES.iter().find(|r| r.id == id)
}

/// Which diagnostics to keep and what fails a run.
///
/// `allow`ed rules are removed from reports entirely; the run fails when
/// any remaining diagnostic is at or above `deny_level`, or matches an
/// explicitly denied rule id.
#[derive(Debug, Clone)]
pub struct RuleFilter {
    allowed: BTreeSet<String>,
    denied_rules: BTreeSet<String>,
    /// Severity at or above which a diagnostic fails the run.
    pub deny_level: Severity,
}

impl Default for RuleFilter {
    fn default() -> Self {
        RuleFilter {
            allowed: BTreeSet::new(),
            denied_rules: BTreeSet::new(),
            deny_level: Severity::Error,
        }
    }
}

impl RuleFilter {
    /// Silence a rule entirely. Returns `false` for unknown rule ids.
    pub fn allow(&mut self, rule: &str) -> bool {
        if find_rule(rule).is_none() {
            return false;
        }
        self.allowed.insert(rule.to_string());
        true
    }

    /// Fail the run on any finding of this rule (regardless of severity).
    /// Returns `false` for unknown rule ids.
    pub fn deny_rule(&mut self, rule: &str) -> bool {
        if find_rule(rule).is_none() {
            return false;
        }
        self.denied_rules.insert(rule.to_string());
        true
    }

    /// Remove allowed rules' diagnostics from the report.
    pub fn apply(&self, report: &mut LintReport) {
        report.retain(|d| !self.allowed.contains(d.rule_id));
    }

    /// Whether the (already filtered) report fails under this filter.
    pub fn fails(&self, report: &mut LintReport) -> bool {
        report
            .diagnostics()
            .iter()
            .any(|d| d.severity >= self.deny_level || self.denied_rules.contains(d.rule_id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Diagnostic;

    #[test]
    fn registry_is_sorted_and_unique() {
        for w in ALL_RULES.windows(2) {
            assert!(w[0].id < w[1].id, "{} !< {}", w[0].id, w[1].id);
        }
    }

    #[test]
    fn find_rule_roundtrips() {
        for r in ALL_RULES {
            assert_eq!(find_rule(r.id).unwrap().id, r.id);
        }
        assert!(find_rule("no-such-rule").is_none());
    }

    #[test]
    fn filter_allow_and_deny_semantics() {
        let mut r = LintReport::new("c");
        r.push(Diagnostic::new("const-gate", Severity::Warning, "c:g", "m"));
        r.push(Diagnostic::new("comb-cycle", Severity::Error, "c:h", "m"));

        let mut f = RuleFilter::default();
        assert!(f.fails(&mut r.clone())); // default: deny errors

        // Allowing the error rule silences it; warnings don't fail.
        assert!(f.allow("comb-cycle"));
        let mut r2 = r.clone();
        f.apply(&mut r2);
        assert_eq!(r2.len(), 1);
        assert!(!f.fails(&mut r2));

        // Denying a specific warning rule fails even below deny_level.
        let mut f2 = RuleFilter::default();
        assert!(f2.deny_rule("const-gate"));
        let mut r3 = r.clone();
        f2.apply(&mut r3);
        assert!(f2.fails(&mut r3));

        // Unknown rules are rejected.
        assert!(!f.allow("bogus"));
        assert!(!f2.deny_rule("bogus"));
    }

    #[test]
    fn deny_level_warning_catches_warnings() {
        let mut r = LintReport::new("c");
        r.push(Diagnostic::new("const-gate", Severity::Warning, "c:g", "m"));
        let f = RuleFilter {
            deny_level: Severity::Warning,
            ..RuleFilter::default()
        };
        let mut rr = r.clone();
        assert!(f.fails(&mut rr));
    }
}
