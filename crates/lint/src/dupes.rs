//! Duplicate logic-cone detection: structural hashing proposes candidate
//! pairs, a SAT XOR-miter confirms equivalence.
//!
//! Structural hashing canonicalizes each gate as `(kind, fanin keys)` —
//! sorting fanin keys for commutative kinds — and interns the keys, so two
//! gates with the same key compute the same function of the same sources
//! by construction. The candidates are nevertheless confirmed with an
//! XOR-miter UNSAT proof through `fbt-sat`, making the rule's evidence
//! machine-checked rather than hash-trusted (and catching any future drift
//! between hash canonicalization and gate semantics).

use std::collections::HashMap;

use fbt_netlist::{GateKind, Netlist, NodeId};
use fbt_sat::{CnfFormula, SatResult, Solver};

use crate::diag::{Diagnostic, LintReport, Severity};

/// Cap on reported duplicate pairs (each costs one SAT solve).
const PAIR_CAP: usize = 25;

/// Structurally duplicate gate pairs `(kept, duplicate)` in first-seen
/// order, before SAT confirmation.
pub fn candidate_pairs(net: &Netlist) -> Vec<(usize, usize)> {
    let n = net.num_nodes();
    // Key per node: sources are unique, gates intern (kind, fanin keys).
    let mut key = vec![usize::MAX; n];
    let mut interned: HashMap<(GateKind, Vec<usize>), usize> = HashMap::new();
    let mut first_node: HashMap<usize, usize> = HashMap::new();
    let mut pairs = Vec::new();
    let mut next_key = 0usize;
    for id in net.node_ids() {
        let node = net.node(id);
        if node.kind().is_source() {
            key[id.index()] = next_key;
            next_key += 1;
            continue;
        }
        let mut fanin_keys: Vec<usize> = node.fanins().iter().map(|f| key[f.index()]).collect();
        if !node.kind().is_unate_single() {
            fanin_keys.sort_unstable(); // commutative kinds
        }
        let entry = (node.kind(), fanin_keys);
        match interned.get(&entry) {
            Some(&k) => {
                key[id.index()] = k;
                pairs.push((first_node[&k], id.index()));
            }
            None => {
                interned.insert(entry, next_key);
                first_node.insert(next_key, id.index());
                key[id.index()] = next_key;
                next_key += 1;
            }
        }
    }
    pairs
}

/// Prove two nodes equivalent with an XOR miter over one combinational
/// frame (sources free). `true` means UNSAT — no assignment distinguishes
/// them.
pub fn confirm_equivalent(net: &Netlist, a: usize, b: usize) -> bool {
    let mut cnf = CnfFormula::new();
    let vars: Vec<_> = (0..net.num_nodes()).map(|_| cnf.new_var()).collect();
    for &g in net.eval_order() {
        let node = net.node(g);
        let ins: Vec<_> = node
            .fanins()
            .iter()
            .map(|f| vars[f.index()].pos())
            .collect();
        cnf.gate(node.kind(), vars[g.index()].pos(), &ins);
    }
    let m = cnf.new_var();
    cnf.xor2_gate(m.pos(), vars[a].pos(), vars[b].pos());
    cnf.add_clause(&[m.pos()]);
    matches!(Solver::from_cnf(&cnf).solve(), SatResult::Unsat)
}

/// `dup-cone`: report SAT-confirmed structurally duplicate gates.
pub fn run(net: &Netlist, report: &mut LintReport) {
    let pairs = candidate_pairs(net);
    let extra = pairs.len().saturating_sub(PAIR_CAP);
    for &(kept, dup) in pairs.iter().take(PAIR_CAP) {
        if !confirm_equivalent(net, kept, dup) {
            // Structural duplicates are equivalent by construction; reaching
            // here would mean the hash and the CNF encoding disagree.
            continue;
        }
        let dup_id = NodeId(dup as u32);
        let kept_id = NodeId(kept as u32);
        report.push(
            Diagnostic::new(
                "dup-cone",
                Severity::Warning,
                format!("{}:{}", net.name(), net.node_name(dup_id)),
                format!(
                    "gate `{}` duplicates `{}` (SAT-confirmed equivalent)",
                    net.node_name(dup_id),
                    net.node_name(kept_id)
                ),
            )
            .with_help("merge the duplicate cones; redundant logic inflates fault lists"),
        );
    }
    if extra > 0 {
        report.push(Diagnostic::new(
            "dup-cone",
            Severity::Note,
            net.name().to_string(),
            format!("{extra} additional `dup-cone` finding(s) suppressed"),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbt_netlist::NetlistBuilder;

    #[test]
    fn literal_duplicate_found_and_confirmed() {
        let mut b = NetlistBuilder::new("dup");
        b.input("a").unwrap();
        b.input("c").unwrap();
        b.gate(GateKind::And, "x", &["a", "c"]).unwrap();
        b.gate(GateKind::And, "y", &["c", "a"]).unwrap(); // commuted
        b.gate(GateKind::Or, "z", &["x", "y"]).unwrap();
        b.output("z").unwrap();
        let net = b.finish().unwrap();
        let mut r = LintReport::new("dup");
        run(&net, &mut r);
        assert_eq!(r.diagnostics().len(), 1);
        let d = &r.diagnostics()[0];
        assert_eq!(d.rule_id, "dup-cone");
        assert!(
            d.message.contains("`y`") && d.message.contains("`x`"),
            "{}",
            d.message
        );
    }

    #[test]
    fn chained_duplicates_dedupe_transitively() {
        // Two parallel NOT chains off the same input: both levels duplicate.
        let mut b = NetlistBuilder::new("chain");
        b.input("a").unwrap();
        b.gate(GateKind::Not, "n1", &["a"]).unwrap();
        b.gate(GateKind::Not, "n2", &["a"]).unwrap();
        b.gate(GateKind::Buf, "b1", &["n1"]).unwrap();
        b.gate(GateKind::Buf, "b2", &["n2"]).unwrap();
        b.gate(GateKind::Or, "y", &["b1", "b2"]).unwrap();
        b.output("y").unwrap();
        let net = b.finish().unwrap();
        let pairs = candidate_pairs(&net);
        // n2 duplicates n1; b2 duplicates b1 (through the duplicate key).
        assert_eq!(pairs.len(), 2);
        for &(x, y) in &pairs {
            assert!(confirm_equivalent(&net, x, y));
        }
    }

    #[test]
    fn different_functions_are_not_candidates() {
        let mut b = NetlistBuilder::new("no");
        b.input("a").unwrap();
        b.input("c").unwrap();
        b.gate(GateKind::And, "x", &["a", "c"]).unwrap();
        b.gate(GateKind::Or, "y", &["a", "c"]).unwrap();
        b.gate(GateKind::Xor, "z", &["x", "y"]).unwrap();
        b.output("z").unwrap();
        let net = b.finish().unwrap();
        assert!(candidate_pairs(&net).is_empty());
        assert!(!confirm_equivalent(&net, 2, 3)); // AND vs OR differ
    }

    #[test]
    fn s27_has_no_duplicate_cones() {
        let net = fbt_netlist::s27();
        let mut r = LintReport::new("s27");
        run(&net, &mut r);
        assert!(r.is_empty(), "{:?}", r.diagnostics());
    }
}
