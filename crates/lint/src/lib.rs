#![warn(missing_docs)]

//! Static design-rule analysis for netlists, PI constraints and BIST plans.
//!
//! Chapter 4's built-in generation pipeline assumes well-formed inputs —
//! acyclic combinational logic, driven nets, satisfiable constraint cubes,
//! intact TPG plumbing. Violations otherwise surface as wrong coverage
//! numbers or search budget burned on untestable-by-construction faults.
//! This crate front-loads those checks, production-DRC style:
//!
//! * [`diag`] — the shared diagnostics layer: [`Diagnostic`]s with rule id,
//!   severity, location, message and help, collected into [`LintReport`]s
//!   with deterministic ordering, a pretty printer and a JSON emitter;
//! * [`graph`] — [`graph::RawCircuit`], a tolerant circuit graph that can
//!   represent the broken circuits `Netlist` construction rejects;
//! * [`structural`] — graph-only passes: combinational cycles (Tarjan),
//!   undriven nets, duplicate definitions, input shadowing, dangling and
//!   unobservable logic, constant gates, X-source flip-flops, fanout
//!   outliers;
//! * [`scoap`] — SCOAP-style controllability/observability scoring;
//! * [`constraints`] / [`dupes`] — semantic passes backed by the `fbt-sat`
//!   CDCL engine: constraint-cube vacuity, constraint-implied constant
//!   inputs, and XOR-miter confirmation of duplicate cones;
//! * [`plan`] — BIST plan validation through the dependency-neutral
//!   [`plan::PlanSpec`];
//! * [`rules`] — the rule registry and `--allow`/`--deny` filtering;
//! * [`preflight`] — [`PreflightEvidence`], the per-line untestability
//!   oracle consumed by `fbt-atpg` and `fbt-core` before spending budget.
//!
//! # Example
//!
//! ```
//! use fbt_lint::{lint_bench_text, Severity};
//!
//! let mut report = lint_bench_text("INPUT(a)\nOUTPUT(x)\nx = AND(a, x)\n", "loopy");
//! assert!(report.any_at_least(Severity::Error)); // comb-cycle
//! ```

pub mod constraints;
pub mod diag;
pub mod dupes;
pub mod graph;
pub mod plan;
pub mod preflight;
pub mod rules;
pub mod scoap;
pub mod structural;

pub use constraints::ConstraintSet;
pub use diag::{Diagnostic, LintReport, Severity};
pub use preflight::PreflightEvidence;
pub use rules::{RuleFilter, RuleInfo, ALL_RULES};

use fbt_netlist::bench::RawBench;
use fbt_netlist::Netlist;

/// Lint a valid [`Netlist`]: all structural passes plus the SCOAP scoring,
/// X-source simulation and SAT-confirmed duplicate-cone pass.
pub fn lint_netlist(net: &Netlist) -> LintReport {
    let mut report = LintReport::new(net.name());
    let c = graph::RawCircuit::from_netlist(net);
    structural::run(&c, &mut report);
    scoap::run(&c, &mut report);
    structural::x_source_ffs(net, None, &mut report);
    dupes::run(net, &mut report);
    report.sort();
    report
}

/// Lint a syntax-level `.bench` parse: structural passes always run on the
/// tolerant graph; the simulation- and SAT-backed passes additionally run
/// when the document builds into a valid [`Netlist`].
pub fn lint_raw(raw: &RawBench) -> LintReport {
    let mut report = LintReport::new(&raw.name);
    let c = graph::RawCircuit::from_raw_bench(raw);
    structural::run(&c, &mut report);
    scoap::run(&c, &mut report);
    if let Ok(net) = raw.to_builder().and_then(|b| b.finish()) {
        structural::x_source_ffs(&net, None, &mut report);
        dupes::run(&net, &mut report);
    }
    report.sort();
    report
}

/// Lint `.bench` source text. A syntax error becomes a single `bench-parse`
/// error diagnostic; an unparseable document cannot be analyzed further.
pub fn lint_bench_text(text: &str, name: &str) -> LintReport {
    match fbt_netlist::bench::parse_raw(text, name) {
        Ok(raw) => lint_raw(&raw),
        Err(e) => {
            let mut report = LintReport::new(name);
            report.push(
                Diagnostic::new(
                    "bench-parse",
                    Severity::Error,
                    name.to_string(),
                    format!("not valid .bench syntax: {e}"),
                )
                .with_help("fix the syntax error; structural analysis needs a parseable document"),
            );
            report
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_netlist_clean_on_s27() {
        let mut r = lint_netlist(&fbt_netlist::s27());
        // s27 is structurally clean; its FFs are X-sources under all-X
        // inputs, which is only a note.
        assert!(!r.any_at_least(Severity::Warning), "{:?}", r.diagnostics());
    }

    #[test]
    fn lint_raw_runs_all_layers_on_valid_input() {
        let raw = fbt_netlist::bench::parse_raw(
            "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nx = AND(a, b)\ny = AND(b, a)\nz = OR(x, y)\n",
            "dup",
        )
        .unwrap();
        let mut r = lint_raw(&raw);
        assert!(r.diagnostics().iter().any(|d| d.rule_id == "dup-cone"));
    }

    #[test]
    fn lint_raw_still_reports_on_broken_input() {
        let raw = fbt_netlist::bench::parse_raw(
            "INPUT(a)\nOUTPUT(x)\nx = AND(a, x)\ny = NOT(ghost)\nOUTPUT(y)\n",
            "broken",
        )
        .unwrap();
        let mut r = lint_raw(&raw);
        let rules: Vec<_> = r.diagnostics().iter().map(|d| d.rule_id).collect();
        assert!(rules.contains(&"comb-cycle"), "{rules:?}");
        assert!(rules.contains(&"undriven-net"), "{rules:?}");
    }

    #[test]
    fn lint_bench_text_survives_syntax_errors() {
        let r = lint_bench_text("not bench at all", "junk");
        assert!(r.any_at_least(Severity::Error));
    }

    #[test]
    fn reports_are_bit_identical_across_runs() {
        let net = fbt_netlist::synth::generate(
            &fbt_netlist::synth::find("s298").expect("catalog circuit"),
        );
        let a = lint_netlist(&net).to_json();
        let b = lint_netlist(&net).to_json();
        assert_eq!(a, b);
    }
}
