//! Pre-flight fault screening for ATPG and the Chapter-4 driver.
//!
//! [`PreflightEvidence`] condenses two sound structural facts into a
//! per-line oracle that generation pipelines consult before spending any
//! simulation, branch-and-bound or SAT budget:
//!
//! * a **structurally constant** line can never launch a transition, so
//!   both the slow-to-rise and slow-to-fall transition faults on it are
//!   untestable;
//! * a line with **no combinational path to any observable point**
//!   (primary output or flip-flop D-input) can never propagate a fault
//!   effect — not in the capture frame, and not in any later frame either,
//!   since influence on future frames flows only through the flip-flops it
//!   cannot reach.
//!
//! Both facts hold for *every* test, so skipping these faults cannot change
//! which of the remaining faults are detectable — the projection the
//! Chapter-4 driver relies on for bit-identical outcomes.

use fbt_netlist::{Netlist, NodeId};

use crate::graph::RawCircuit;
use crate::structural::{observable_set, propagate_constants};

/// Structural untestability evidence for every line of a circuit.
#[derive(Debug, Clone)]
pub struct PreflightEvidence {
    constant: Vec<Option<bool>>,
    observable: Vec<bool>,
}

impl PreflightEvidence {
    /// Analyze a circuit: one constant-propagation fixpoint plus one
    /// reverse reachability sweep. Cost is linear-ish in circuit size.
    pub fn analyze(net: &Netlist) -> Self {
        let c = RawCircuit::from_netlist(net);
        PreflightEvidence {
            constant: propagate_constants(&c),
            observable: observable_set(&c),
        }
    }

    /// The line's structurally constant value, if it has one.
    pub fn constant(&self, line: NodeId) -> Option<bool> {
        self.constant[line.index()]
    }

    /// Whether the line has a combinational path to an observable point.
    pub fn observable(&self, line: NodeId) -> bool {
        self.observable[line.index()]
    }

    /// Whether both transition faults on this line are untestable by
    /// structural evidence.
    pub fn transition_untestable(&self, line: NodeId) -> bool {
        self.constant(line).is_some() || !self.observable(line)
    }

    /// Number of lines with untestable-by-construction transition faults.
    pub fn untestable_lines(&self) -> usize {
        (0..self.constant.len())
            .filter(|&i| self.transition_untestable(NodeId(i as u32)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbt_netlist::{GateKind, NetlistBuilder};

    /// A circuit with one constant gate (AND of complements) and one
    /// unobservable chain, alongside healthy logic.
    fn seeded_net() -> Netlist {
        let mut b = NetlistBuilder::new("seeded");
        b.input("a").unwrap();
        b.input("c").unwrap();
        b.gate(GateKind::Not, "na", &["a"]).unwrap();
        b.gate(GateKind::And, "k0", &["a", "na"]).unwrap(); // constant 0
        b.gate(GateKind::Or, "y", &["k0", "c"]).unwrap();
        b.gate(GateKind::Not, "dead", &["c"]).unwrap(); // dangles
        b.output("y").unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn constant_and_unobservable_lines_flagged() {
        let net = seeded_net();
        let ev = PreflightEvidence::analyze(&net);
        let k0 = net.find("k0").unwrap();
        let dead = net.find("dead").unwrap();
        let y = net.find("y").unwrap();
        let a = net.find("a").unwrap();
        assert_eq!(ev.constant(k0), Some(false));
        assert!(ev.transition_untestable(k0));
        assert!(!ev.observable(dead));
        assert!(ev.transition_untestable(dead));
        assert!(!ev.transition_untestable(y));
        assert!(!ev.transition_untestable(a));
        assert_eq!(ev.untestable_lines(), 2);
    }

    #[test]
    fn s27_has_no_untestable_lines() {
        // The genuine benchmark is clean — the existing ATPG counts
        // (23 detected / 33 undetectable TPDFs) must not shift.
        let ev = PreflightEvidence::analyze(&fbt_netlist::s27());
        assert_eq!(ev.untestable_lines(), 0);
    }

    /// Cross-check against the SAT engine: every line preflight calls
    /// untestable is proved untestable by the two-frame encoding.
    #[test]
    fn preflight_agrees_with_sat_on_seeded_circuit() {
        use fbt_fault::{Transition, TransitionFault};
        use fbt_sat::{solve_transition_fault, DetectionVerdict};
        let net = seeded_net();
        let ev = PreflightEvidence::analyze(&net);
        for id in net.node_ids() {
            if !ev.transition_untestable(id) {
                continue;
            }
            for tr in [Transition::Rise, Transition::Fall] {
                let fault = TransitionFault {
                    line: id,
                    transition: tr,
                };
                let (verdict, _) = solve_transition_fault(&net, &fault, None);
                assert!(
                    matches!(verdict, DetectionVerdict::Untestable),
                    "preflight calls {} untestable but SAT disagrees",
                    net.node_name(id)
                );
            }
        }
    }
}
