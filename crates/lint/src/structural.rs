//! Structural lint passes: everything that needs only the circuit graph,
//! no simulation and no SAT.
//!
//! * `comb-cycle` — combinational feedback loops, found as non-trivial
//!   strongly connected components (Tarjan, iterative) of the gate graph;
//! * `undriven-net` — nets referenced but never defined;
//! * `redefined-net` / `pi-shadowed` — duplicate definitions, with the
//!   input-vs-gate collision split out as its own rule;
//! * `no-sources` — a circuit with no primary inputs and no flip-flops;
//! * `dangling-gate` / `unobservable-gate` — logic that can never reach a
//!   primary output or a flip-flop D-input (the two observable point
//!   classes of scan-based testing);
//! * `const-gate` — gates whose output is structurally constant, found by a
//!   fixpoint of constant propagation with inverter-chain aliasing;
//! * `x-source-ff` — flip-flops that never reach a binary value in
//!   three-valued simulation from the all-X state;
//! * `fanout-outlier` — nets with extreme fanout relative to the average.

use fbt_netlist::{GateKind, Netlist};
use fbt_sim::{tv, Trit};

use crate::diag::{Diagnostic, LintReport, Severity};
use crate::graph::RawCircuit;

/// Cap on per-rule diagnostics; beyond it one aggregate note is emitted so
/// reports (and golden files) stay bounded on pathological inputs.
const PER_RULE_CAP: usize = 25;

fn push_capped(report: &mut LintReport, circuit: &str, rule: &'static str, diags: Vec<Diagnostic>) {
    let extra = diags.len().saturating_sub(PER_RULE_CAP);
    for d in diags.into_iter().take(PER_RULE_CAP) {
        report.push(d);
    }
    if extra > 0 {
        report.push(Diagnostic::new(
            rule,
            Severity::Note,
            circuit.to_string(),
            format!("{extra} additional `{rule}` finding(s) suppressed"),
        ));
    }
}

/// Run every graph-only structural pass over the tolerant circuit.
pub fn run(c: &RawCircuit, report: &mut LintReport) {
    undriven_nets(c, report);
    redefinitions(c, report);
    no_sources(c, report);
    comb_cycles(c, report);
    observability(c, report);
    const_gates(c, report);
    fanout_outliers(c, report);
}

fn undriven_nets(c: &RawCircuit, report: &mut LintReport) {
    let mut diags = Vec::new();
    for (i, n) in c.nodes.iter().enumerate() {
        if n.kind.is_none() {
            diags.push(
                Diagnostic::new(
                    "undriven-net",
                    Severity::Error,
                    format!("{}:{}", c.name, n.name),
                    format!("net `{}` is referenced but never driven", n.name),
                )
                .with_help("define the net with a gate, flip-flop or INPUT declaration"),
            );
        }
        let _ = i;
    }
    push_capped(report, &c.name, "undriven-net", diags);
}

fn redefinitions(c: &RawCircuit, report: &mut LintReport) {
    let mut shadow = Vec::new();
    let mut redef = Vec::new();
    for r in &c.redefinitions {
        let name = &c.nodes[r.node].name;
        let loc = match r.line {
            Some(l) => format!("{}:line {}", c.name, l),
            None => format!("{}:{}", c.name, name),
        };
        if r.shadows_input {
            shadow.push(
                Diagnostic::new(
                    "pi-shadowed",
                    Severity::Error,
                    loc,
                    format!("gate output `{name}` shadows a primary input of the same name"),
                )
                .with_help("rename the internal net; the builder rejects this as ShadowedInput"),
            );
        } else {
            redef.push(
                Diagnostic::new(
                    "redefined-net",
                    Severity::Error,
                    loc,
                    format!("signal `{name}` is defined more than once (first definition kept)"),
                )
                .with_help("remove or rename the duplicate definition"),
            );
        }
    }
    push_capped(report, &c.name, "pi-shadowed", shadow);
    push_capped(report, &c.name, "redefined-net", redef);
}

fn no_sources(c: &RawCircuit, report: &mut LintReport) {
    let has_source = c
        .nodes
        .iter()
        .any(|n| matches!(n.kind, Some(k) if k.is_source()));
    if !has_source {
        report.push(
            Diagnostic::new(
                "no-sources",
                Severity::Error,
                c.name.clone(),
                "circuit has no primary inputs and no flip-flops",
            )
            .with_help("a testable circuit needs at least one controllable source"),
        );
    }
}

/// Tarjan strongly-connected components over the combinational subgraph
/// (edges into flip-flops are sequential, not combinational). Iterative to
/// stay stack-safe on deep circuits.
fn comb_cycles(c: &RawCircuit, report: &mut LintReport) {
    let n = c.nodes.len();
    // succ[v]: combinational fanouts (gate consumers only).
    let succ: Vec<Vec<usize>> = (0..n)
        .map(|v| {
            c.fanouts[v]
                .iter()
                .copied()
                .filter(|&w| c.is_gate(w))
                .collect()
        })
        .collect();

    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();

    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&(v, pi)) = call.last() {
            if pi == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if pi < succ[v].len() {
                call.last_mut().unwrap().1 += 1;
                let w = succ[v][pi];
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(p, _)) = call.last() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("Tarjan stack underflow");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
            }
        }
    }

    let mut diags = Vec::new();
    for scc in &mut sccs {
        let cyclic = scc.len() > 1
            || (scc.len() == 1 && c.nodes[scc[0]].fanins.contains(&scc[0]) && c.is_gate(scc[0]));
        if !cyclic {
            continue;
        }
        let mut names: Vec<&str> = scc.iter().map(|&i| c.nodes[i].name.as_str()).collect();
        names.sort_unstable();
        let shown = names.iter().take(5).copied().collect::<Vec<_>>().join(", ");
        let suffix = if names.len() > 5 { ", ..." } else { "" };
        diags.push(
            Diagnostic::new(
                "comb-cycle",
                Severity::Error,
                format!("{}:{}", c.name, names[0]),
                format!(
                    "combinational cycle through {} gate(s): {shown}{suffix}",
                    names.len()
                ),
            )
            .with_help("break the loop with a flip-flop or remove the feedback path"),
        );
    }
    // Deterministic order: by location (the smallest member name).
    diags.sort_by(|a, b| a.location.cmp(&b.location));
    push_capped(report, &c.name, "comb-cycle", diags);
}

/// Reverse reachability from every observable point (PO drivers and
/// flip-flop D-drivers). Gates outside the reached set can never influence
/// a test response; those with no fanouts at all are `dangling-gate`, the
/// rest `unobservable-gate`.
fn observability(c: &RawCircuit, report: &mut LintReport) {
    let reached = observable_set(c);
    let mut dangling = Vec::new();
    let mut unobservable = Vec::new();
    for (i, n) in c.nodes.iter().enumerate() {
        if !c.is_gate(i) || reached[i] {
            continue;
        }
        if c.fanouts[i].is_empty() {
            dangling.push(
                Diagnostic::new(
                    "dangling-gate",
                    Severity::Warning,
                    c.location(i),
                    format!("gate `{}` drives nothing and no primary output", n.name),
                )
                .with_help("remove the gate or connect it to an output"),
            );
        } else {
            unobservable.push(
                Diagnostic::new(
                    "unobservable-gate",
                    Severity::Warning,
                    c.location(i),
                    format!(
                        "gate `{}` has no path to any primary output or flip-flop D-input",
                        n.name
                    ),
                )
                .with_help(
                    "faults on this gate are undetectable; ATPG budget spent here is wasted",
                ),
            );
        }
    }
    push_capped(report, &c.name, "dangling-gate", dangling);
    push_capped(report, &c.name, "unobservable-gate", unobservable);
}

/// The set of nodes with a combinational path to an observable point.
pub fn observable_set(c: &RawCircuit) -> Vec<bool> {
    let mut reached = vec![false; c.nodes.len()];
    let mut queue: Vec<usize> = c.observable_points();
    for &p in &queue {
        reached[p] = true;
    }
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        for &f in &c.nodes[v].fanins {
            // Fanins of a flip-flop D are themselves observable points
            // (already seeded); do not walk backwards *through* a DFF here.
            if c.nodes[v].kind == Some(GateKind::Dff) {
                continue;
            }
            if !reached[f] {
                reached[f] = true;
                queue.push(f);
            }
        }
    }
    reached
}

/// Structural constant propagation to a fixpoint.
///
/// Returns, per node, `Some(v)` when the node's value is `v` under every
/// input assignment. Sources (inputs, flip-flops, undriven nets) are free.
/// Beyond plain constant folding, inverter/buffer chains are resolved to
/// `(root, inverted)` aliases so complementary fanin pairs fold:
/// `AND(x, NOT(x))` is 0, `XOR(x, x)` is 0, `XNOR(x, NOT(x))` is 0.
pub fn propagate_constants(c: &RawCircuit) -> Vec<Option<bool>> {
    let n = c.nodes.len();
    let alias = compute_aliases(c);
    let mut val: Vec<Option<bool>> = vec![None; n];
    loop {
        let mut changed = false;
        for i in 0..n {
            if val[i].is_some() || !c.is_gate(i) {
                continue;
            }
            let kind = c.nodes[i].kind.expect("is_gate implies kind");
            if let Some(v) = eval_gate_const(c, kind, &c.nodes[i].fanins, &val, &alias) {
                val[i] = Some(v);
                changed = true;
            }
        }
        if !changed {
            return val;
        }
    }
}

fn eval_gate_const(
    c: &RawCircuit,
    kind: GateKind,
    fanins: &[usize],
    val: &[Option<bool>],
    alias: &[(usize, bool)],
) -> Option<bool> {
    let _ = c;
    // A controlling constant on any fanin decides AND/NAND/OR/NOR.
    if let (Some(cv), Some(co)) = (kind.controlling_value(), kind.controlled_output()) {
        if fanins.iter().any(|&f| val[f] == Some(cv)) {
            return Some(co);
        }
    }
    // All fanins constant: evaluate the gate.
    if fanins.iter().all(|&f| val[f].is_some()) && !fanins.is_empty() {
        let ins: Vec<bool> = fanins.iter().map(|&f| val[f].unwrap()).collect();
        return Some(kind.eval(&ins));
    }
    // Complementary or equal fanin pairs through inverter chains.
    match kind {
        GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
            for (a, &fa) in fanins.iter().enumerate() {
                for &fb in &fanins[a + 1..] {
                    let (ra, ia) = alias[fa];
                    let (rb, ib) = alias[fb];
                    if ra == rb && ia != ib && val[ra].is_none() {
                        // x AND !x = 0; x OR !x = 1.
                        return Some(match kind {
                            GateKind::And => false,
                            GateKind::Nand => true,
                            GateKind::Or => true,
                            GateKind::Nor => false,
                            _ => unreachable!(),
                        });
                    }
                }
            }
            None
        }
        GateKind::Xor | GateKind::Xnor if fanins.len() == 2 => {
            let (ra, ia) = alias[fanins[0]];
            let (rb, ib) = alias[fanins[1]];
            if ra == rb && val[ra].is_none() {
                let xor = ia != ib; // x XOR x = 0, x XOR !x = 1
                return Some(if kind == GateKind::Xor { xor } else { !xor });
            }
            None
        }
        _ => None,
    }
}

/// Resolve every node through buffer/inverter chains to `(root, inverted)`.
/// Cycles in the chain fall back to the node aliasing itself.
fn compute_aliases(c: &RawCircuit) -> Vec<(usize, bool)> {
    let n = c.nodes.len();
    let mut alias: Vec<Option<(usize, bool)>> = vec![None; n];
    for start in 0..n {
        if alias[start].is_some() {
            continue;
        }
        // Walk the chain; `path` collects (node, parity vs. chain end).
        let mut path: Vec<usize> = Vec::new();
        let mut cur = start;
        let (root, root_inv) = loop {
            if let Some(a) = alias[cur] {
                break a;
            }
            if path.contains(&cur) {
                break (cur, false); // chain cycle: fall back to self
            }
            let is_chain = matches!(c.nodes[cur].kind, Some(GateKind::Buf | GateKind::Not))
                && c.nodes[cur].fanins.len() == 1;
            if !is_chain {
                break (cur, false);
            }
            path.push(cur);
            cur = c.nodes[cur].fanins[0];
        };
        // Assign backwards, accumulating inversions.
        let mut inv = root_inv;
        for &v in path.iter().rev() {
            if c.nodes[v].kind == Some(GateKind::Not) {
                inv = !inv;
            }
            alias[v] = Some((root, inv));
        }
        if alias[start].is_none() {
            alias[start] = Some((root, root_inv));
        }
    }
    alias.into_iter().map(|a| a.expect("all aliased")).collect()
}

fn const_gates(c: &RawCircuit, report: &mut LintReport) {
    let val = propagate_constants(c);
    let mut diags = Vec::new();
    for (i, v) in val.iter().enumerate() {
        if let Some(b) = v {
            diags.push(
                Diagnostic::new(
                    "const-gate",
                    Severity::Warning,
                    c.location(i),
                    format!(
                        "gate `{}` is structurally constant {}",
                        c.nodes[i].name,
                        u8::from(*b)
                    ),
                )
                .with_help(
                    "no input can toggle this line; both transition faults on it are untestable",
                ),
            );
        }
    }
    push_capped(report, &c.name, "const-gate", diags);
}

fn fanout_outliers(c: &RawCircuit, report: &mut LintReport) {
    let counts: Vec<(usize, usize)> = (0..c.nodes.len())
        .filter(|&i| c.nodes[i].kind.is_some())
        .map(|i| (i, c.fanouts[i].len()))
        .filter(|&(_, k)| k > 0)
        .collect();
    if counts.len() < 2 {
        return;
    }
    let total: usize = counts.iter().map(|&(_, k)| k).sum();
    let &(worst, max) = counts
        .iter()
        .max_by_key(|&&(i, k)| (k, std::cmp::Reverse(i)))
        .expect("non-empty");
    // Average over the *other* nets, so the outlier does not mask itself.
    let avg = ((total - max) / (counts.len() - 1)).max(1);
    if max >= 16 && max >= 8 * avg {
        report.push(
            Diagnostic::new(
                "fanout-outlier",
                Severity::Note,
                c.location(worst),
                format!(
                    "net `{}` fans out to {max} sinks ({}x the average of {avg})",
                    c.nodes[worst].name,
                    max / avg,
                ),
            )
            .with_help("extreme fanout concentrates detection paths and skews SCOAP estimates"),
        );
    }
}

/// `x-source-ff`: three-valued simulation from the all-X state, primary
/// inputs held at `cube` (all-X when absent), for up to `2·|FF|+2` frames.
/// Flip-flops that never reach a binary value are reported in one
/// aggregate note — they depend entirely on scan for initialization, and a
/// signature register observing them may capture X.
pub fn x_source_ffs(net: &Netlist, cube: Option<&[Trit]>, report: &mut LintReport) {
    let n_ff = net.num_dffs();
    if n_ff == 0 {
        return;
    }
    let pi: Vec<Trit> = match cube {
        Some(c) => c.to_vec(),
        None => vec![Trit::X; net.num_inputs()],
    };
    if pi.len() != net.num_inputs() {
        return; // plan rules report the width mismatch
    }
    let frames = (2 * n_ff + 2).min(256);
    let mut state = vec![Trit::X; n_ff];
    let mut ever = vec![false; n_ff];
    let mut ran = 0usize;
    for _ in 0..frames {
        let (_, next) = tv::simulate_frame_tv(net, &pi, &state);
        for (k, t) in next.iter().enumerate() {
            if t.is_specified() {
                ever[k] = true;
            }
        }
        ran += 1;
        if next == state {
            break;
        }
        state = next;
    }
    let stuck: Vec<usize> = (0..n_ff).filter(|&k| !ever[k]).collect();
    if stuck.is_empty() {
        return;
    }
    let first = net.node_name(net.dffs()[stuck[0]]);
    report.push(
        Diagnostic::new(
            "x-source-ff",
            Severity::Note,
            format!("{}:{}", net.name(), first),
            format!(
                "{} of {} flip-flop(s) never reach a binary value in {} frame(s) of \
                 three-valued simulation from the all-X state (first: `{first}`)",
                stuck.len(),
                n_ff,
                ran
            ),
        )
        .with_help(
            "these flip-flops rely on scan for initialization; a signature register \
             observing them may capture X",
        ),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbt_netlist::bench::parse_raw;

    fn lint_src(src: &str) -> LintReport {
        let raw = parse_raw(src, "t").unwrap();
        let c = RawCircuit::from_raw_bench(&raw);
        let mut r = LintReport::new("t");
        run(&c, &mut r);
        r
    }

    fn rules_of(r: &mut LintReport) -> Vec<&'static str> {
        r.diagnostics().iter().map(|d| d.rule_id).collect()
    }

    #[test]
    fn clean_circuit_is_clean() {
        let mut r = lint_src("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n");
        assert!(r.diagnostics().is_empty(), "{:?}", r.diagnostics());
    }

    #[test]
    fn cycle_and_undriven_detected_together() {
        let mut r = lint_src(
            "INPUT(a)\nOUTPUT(x)\nx = AND(a, y)\ny = AND(a, x)\nz = NOT(ghost)\nOUTPUT(z)\n",
        );
        let rules = rules_of(&mut r);
        assert!(rules.contains(&"comb-cycle"), "{rules:?}");
        assert!(rules.contains(&"undriven-net"), "{rules:?}");
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut r = lint_src("INPUT(a)\nOUTPUT(x)\nx = AND(a, x)\n");
        assert!(rules_of(&mut r).contains(&"comb-cycle"));
    }

    #[test]
    fn sequential_loop_is_not_a_cycle() {
        let mut r = lint_src("INPUT(a)\nq = DFF(d)\nd = XOR(a, q)\nOUTPUT(q)\n");
        assert!(!rules_of(&mut r).contains(&"comb-cycle"));
    }

    #[test]
    fn shadowed_input_and_redefinition_distinguished() {
        let mut r =
            lint_src("INPUT(a)\nINPUT(b)\na = AND(a, b)\ny = NOT(a)\ny = BUFF(b)\nOUTPUT(y)\n");
        let rules = rules_of(&mut r);
        assert!(rules.contains(&"pi-shadowed"), "{rules:?}");
        assert!(rules.contains(&"redefined-net"), "{rules:?}");
    }

    #[test]
    fn dangling_and_unobservable_split() {
        // u feeds v; neither reaches the output.
        let mut r = lint_src("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\nu = NOT(a)\nv = NOT(u)\n");
        let rules = rules_of(&mut r);
        // v dangles (no fanout); u is unobservable (fans out into v only).
        assert!(rules.contains(&"dangling-gate"), "{rules:?}");
        assert!(rules.contains(&"unobservable-gate"), "{rules:?}");
    }

    #[test]
    fn dff_d_driver_is_observable() {
        let mut r = lint_src("INPUT(a)\nq = DFF(d)\nd = NOT(a)\nOUTPUT(q)\n");
        let rules = rules_of(&mut r);
        assert!(!rules.contains(&"dangling-gate"), "{rules:?}");
        assert!(!rules.contains(&"unobservable-gate"), "{rules:?}");
    }

    #[test]
    fn complementary_pair_is_constant() {
        let mut r = lint_src("INPUT(a)\nOUTPUT(y)\nnb = NOT(a)\nc = AND(a, nb)\ny = OR(c, a)\n");
        let mut found = false;
        for d in r.diagnostics() {
            if d.rule_id == "const-gate" {
                assert!(d.message.contains("`c`"), "{}", d.message);
                assert!(d.message.contains("constant 0"), "{}", d.message);
                found = true;
            }
        }
        assert!(found, "expected const-gate for c");
    }

    #[test]
    fn xor_of_same_net_is_constant_zero() {
        let mut r = lint_src("INPUT(a)\nOUTPUT(y)\nb = BUFF(a)\nz = XOR(a, b)\ny = OR(z, a)\n");
        assert!(rules_of(&mut r).contains(&"const-gate"));
    }

    #[test]
    fn constants_propagate_through_fixpoint() {
        // c = a AND !a = 0; d = OR(c, c) = 0; e = NOR(d, d) = 1.
        let mut r = lint_src(
            "INPUT(a)\nOUTPUT(y)\nna = NOT(a)\nc = AND(a, na)\nd = OR(c, c)\ne = NOR(d, d)\ny = AND(e, a)\n",
        );
        let consts: Vec<&str> = r
            .diagnostics()
            .iter()
            .filter(|d| d.rule_id == "const-gate")
            .map(|d| d.location.as_str())
            .collect();
        assert_eq!(consts.len(), 3, "{consts:?}");
    }

    #[test]
    fn s27_is_structurally_clean() {
        let net = fbt_netlist::s27();
        let c = RawCircuit::from_netlist(&net);
        let mut r = LintReport::new("s27");
        run(&c, &mut r);
        assert!(!r.any_at_least(Severity::Warning), "{:?}", r.diagnostics());
    }

    #[test]
    fn x_source_flags_uninitializable_ff() {
        // q feeds itself through an XOR with a PI: never initializes from X.
        let mut b = fbt_netlist::NetlistBuilder::new("xs");
        b.input("a").unwrap();
        b.dff("q", "d").unwrap();
        b.gate(GateKind::Xor, "d", &["a", "q"]).unwrap();
        b.output("q").unwrap();
        let net = b.finish().unwrap();
        let mut r = LintReport::new("xs");
        x_source_ffs(&net, None, &mut r);
        assert_eq!(r.diagnostics().len(), 1);
        assert_eq!(r.diagnostics()[0].rule_id, "x-source-ff");
    }

    #[test]
    fn x_source_quiet_when_cube_initializes_ff() {
        // With the TPG cube pinning a = 0, d = AND(a, b) resolves to 0 in
        // three-valued simulation, so the flip-flop initializes.
        let mut b = fbt_netlist::NetlistBuilder::new("init");
        b.input("a").unwrap();
        b.input("b").unwrap();
        b.dff("q", "d").unwrap();
        b.gate(GateKind::And, "d", &["a", "b"]).unwrap();
        b.output("q").unwrap();
        let net = b.finish().unwrap();
        let cube = vec![Trit::Zero, Trit::X];
        let mut r = LintReport::new("init");
        x_source_ffs(&net, Some(&cube), &mut r);
        assert!(r.is_empty(), "{:?}", r.diagnostics());
        // Without the cube the same flip-flop is an X-source.
        let mut r2 = LintReport::new("init");
        x_source_ffs(&net, None, &mut r2);
        assert_eq!(r2.diagnostics().len(), 1);
    }

    #[test]
    fn fanout_outlier_on_star_topology() {
        let mut src = String::from("INPUT(a)\nINPUT(b)\nh = AND(a, b)\n");
        for i in 0..20 {
            src.push_str(&format!("g{i} = NOT(h)\nOUTPUT(g{i})\n"));
        }
        let mut r = lint_src(&src);
        assert!(rules_of(&mut r).contains(&"fanout-outlier"));
    }

    #[test]
    fn per_rule_cap_adds_suppression_note() {
        let mut src = String::from("INPUT(a)\nOUTPUT(y)\ny = BUFF(a)\nna = NOT(a)\n");
        for i in 0..30 {
            src.push_str(&format!("k{i} = AND(a, na)\nOUTPUT(k{i})\n"));
        }
        let mut r = lint_src(&src);
        let consts = r
            .diagnostics()
            .iter()
            .filter(|d| d.rule_id == "const-gate")
            .count();
        assert_eq!(consts, 26); // 25 findings + 1 suppression note
        assert!(r
            .diagnostics()
            .iter()
            .any(|d| d.message.contains("suppressed")));
    }
}
