//! Golden-file tests: the lint reports for the seeded bad circuit and for
//! s27 must stay byte-identical to the JSON checked in under
//! `tests/golden/`. CI diffs the CLI output against the same files; these
//! tests prove the library produces the exact same bytes in-process.

use std::path::Path;

use fbt_lint::{lint_bench_text, lint_netlist, ConstraintSet, LintReport, RuleFilter};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn golden(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Rebuild the bad-circuit report exactly the way the CLI does: bench lint
/// plus constraint lint against the raw primary-input names.
fn bad_circuit_report() -> LintReport {
    let text = fixture("bad_circuit.bench");
    let mut report = lint_bench_text(&text, "bad_circuit");

    let raw = fbt_netlist::bench::parse_raw(&text, "bad_circuit").expect("syntax is fine");
    let circuit = fbt_lint::graph::RawCircuit::from_raw_bench(&raw);
    let pi_names: Vec<&str> = circuit
        .nodes
        .iter()
        .filter(|n| n.kind == Some(fbt_netlist::GateKind::Input))
        .map(|n| n.name.as_str())
        .collect();

    let ctext = fixture("bad_circuit.constraints");
    let mut creport = LintReport::new("bad_circuit");
    let set = ConstraintSet::parse(&ctext, "bad_circuit", &mut creport);
    fbt_lint::constraints::run_names("bad_circuit", &pi_names, &set, &mut creport);
    report.extend(creport);
    report
}

#[test]
fn bad_circuit_matches_golden_json() {
    let mut report = bad_circuit_report();
    assert_eq!(report.to_json() + "\n", golden("bad_circuit.json"));
}

#[test]
fn bad_circuit_fails_default_deny_filter() {
    let filter = RuleFilter::default();
    let mut report = bad_circuit_report();
    filter.apply(&mut report);
    assert!(
        filter.fails(&mut report),
        "seeded errors must fail the lint"
    );
    // The three seeded defect classes plus the unsatisfiable cube.
    let rules: Vec<_> = report.diagnostics().iter().map(|d| d.rule_id).collect();
    for want in [
        "comb-cycle",
        "undriven-net",
        "pi-shadowed",
        "constraint-unsat",
    ] {
        assert!(rules.contains(&want), "missing {want} in {rules:?}");
    }
}

#[test]
fn s27_matches_golden_json_and_passes() {
    let net = fbt_netlist::s27();
    let mut report = lint_netlist(&net);
    assert_eq!(report.to_json() + "\n", golden("s27.json"));
    let filter = RuleFilter::default();
    filter.apply(&mut report);
    assert!(!filter.fails(&mut report), "{:?}", report.diagnostics());
}

#[test]
fn reports_are_deterministic_across_runs() {
    let a = bad_circuit_report().to_json();
    let b = bad_circuit_report().to_json();
    assert_eq!(a, b);
}
