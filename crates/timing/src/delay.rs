//! Gate delay library.

use fbt_fault::Transition;
use fbt_netlist::{GateKind, Netlist, NodeId};

/// Rise/fall pin-to-pin delays (ns) for a generic 0.18 µm-style library.
///
/// The smallest delay in the library is the rising delay of an inverter,
/// 0.03 ns — the paper's Table 3.4 uses exactly this as its unit delay
/// ("the lowest delay of any gate is the rising delay of an inverter, and it
/// is equal to 0.03ns").
#[derive(Debug, Clone, PartialEq)]
pub struct DelayLibrary {
    /// Extra delay per fanout beyond the first (wire/load model).
    pub load_per_fanout: f64,
    /// Extra delay per input beyond the second.
    pub per_extra_input: f64,
    /// Flip-flop clock-to-Q delay (path launch from a state variable).
    pub clk_to_q: f64,
    /// Simultaneous-switching margin added per *toggle-capable* side input
    /// of a gate. Traditional STA must assume every neighbouring input may
    /// switch together with the on-path transition (crosstalk / supply
    /// droop margin); case analysis removes the term for side inputs proven
    /// stable — the mechanism by which recalculated delays shrink (§3.3.1).
    pub switching_margin: f64,
}

impl DelayLibrary {
    /// The default library used throughout the Chapter 3 experiments.
    pub const fn generic_018um() -> Self {
        DelayLibrary {
            load_per_fanout: 0.006,
            per_extra_input: 0.008,
            clk_to_q: 0.120,
            switching_margin: 0.010,
        }
    }

    /// Intrinsic pin-to-pin delay of `kind` producing a transition of
    /// `dir` at its output.
    pub fn intrinsic(&self, kind: GateKind, dir: Transition) -> f64 {
        use GateKind::*;
        use Transition::*;
        match (kind, dir) {
            (Not, Rise) => 0.030,
            (Not, Fall) => 0.050,
            (Buf, Rise) => 0.058,
            (Buf, Fall) => 0.062,
            (Nand, Rise) => 0.060,
            (Nand, Fall) => 0.080,
            (Nor, Rise) => 0.090,
            (Nor, Fall) => 0.070,
            (And, Rise) => 0.094,
            (And, Fall) => 0.102,
            (Or, Rise) => 0.112,
            (Or, Fall) => 0.096,
            (Xor, Rise) => 0.140,
            (Xor, Fall) => 0.150,
            (Xnor, Rise) => 0.150,
            (Xnor, Fall) => 0.142,
            (Input | Dff, _) => 0.0,
        }
    }

    /// Base delay of a transition `dir` appearing at the output of `node`
    /// (intrinsic + fanin-count and fanout-load terms, *excluding* the
    /// per-side-input switching margin, which depends on the sensitization
    /// constraint — see [`crate::sta::edge_delay`]). For sources this is the
    /// launch delay (0 for primary inputs, clock-to-Q for flip-flops).
    pub fn node_delay(&self, net: &Netlist, node: NodeId, dir: Transition) -> f64 {
        let nd = net.node(node);
        match nd.kind() {
            GateKind::Input => 0.0,
            GateKind::Dff => self.clk_to_q,
            kind => {
                self.intrinsic(kind, dir)
                    + self.per_extra_input * nd.fanins().len().saturating_sub(2) as f64
                    + self.load_per_fanout * nd.fanouts().len().saturating_sub(1) as f64
            }
        }
    }

    /// The paper's unit delay: the rising delay of an inverter.
    pub fn unit(&self) -> f64 {
        self.intrinsic(GateKind::Not, Transition::Rise)
    }
}

impl Default for DelayLibrary {
    fn default() -> Self {
        DelayLibrary::generic_018um()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbt_netlist::s27;

    #[test]
    fn inverter_rise_is_the_unit() {
        let lib = DelayLibrary::generic_018um();
        assert_eq!(lib.unit(), 0.03);
        // It is the smallest intrinsic delay in the library.
        for kind in GateKind::COMBINATIONAL {
            for dir in [Transition::Rise, Transition::Fall] {
                assert!(lib.intrinsic(kind, dir) >= lib.unit(), "{kind} {dir}");
            }
        }
    }

    #[test]
    fn load_and_fanin_terms() {
        let net = s27();
        let lib = DelayLibrary::generic_018um();
        // G8 = AND(G14, G6) drives G15 and G16 (2 fanouts): one load term.
        let g8 = net.find("G8").unwrap();
        let d = lib.node_delay(&net, g8, Transition::Rise);
        assert!((d - (0.094 + 0.006)).abs() < 1e-12);
        // Launch from a flip-flop costs clock-to-Q.
        let g5 = net.find("G5").unwrap();
        assert_eq!(lib.node_delay(&net, g5, Transition::Rise), 0.120);
        // Primary inputs launch for free.
        let g0 = net.find("G0").unwrap();
        assert_eq!(lib.node_delay(&net, g0, Transition::Fall), 0.0);
    }
}
