#![warn(missing_docs)]

//! Static timing analysis and critical-path selection (paper Chapter 3).
//!
//! Traditional static timing analysis computes path delays with every line
//! unspecified; during test application, the logic values a test must assign
//! to detect a path delay fault *reduce* the delays that can actually be
//! exhibited. This crate implements the paper's refinement: the *input
//! necessary assignments* of a fault (from [`fbt_atpg::necessary`]) are fed
//! back into STA as case-analysis constraints — the `set_case_analysis`
//! mechanism of §3.3.1 — yielding recalculated delays closer to silicon and
//! a better-ranked set of selected critical paths.
//!
//! * [`DelayLibrary`] — rise/fall pin-to-pin delays for a 0.18 µm-style
//!   library (the inverter rise delay, 0.03 ns, is the paper's unit delay);
//! * [`sta`] — arrival times and K-most-critical path enumeration;
//! * [`case`] — case analysis: constants and direction constraints derived
//!   from input necessary assignments;
//! * [`select`] — the path-selection procedure of Fig. 3.1.

pub mod case;
mod delay;
pub mod report;
pub mod select;
pub mod sta;

pub use delay::DelayLibrary;
pub use select::{select_paths, PathSelection, PathSelectionConfig, SelectedFault};
