//! Case analysis: feeding input necessary assignments back into STA
//! (paper §3.3.1, the `set_case_analysis` mechanism).
//!
//! The input necessary assignments of a path delay fault fix input values
//! under one or both patterns of the test. Propagating them through the
//! two-frame implication engine yields, for every line, its (possibly
//! partial) value under each pattern — from which the set of transitions the
//! line can still exhibit follows:
//!
//! * both patterns equal and specified → the line is **stable** (a case
//!   constant): no transition, all timing arcs through it die;
//! * `0 → 1` → only a **rising** transition; `1 → 0` → only **falling**;
//! * anything involving X → a direction is allowed iff it is consistent
//!   with the specified end.

use fbt_atpg::implic::Implicator;
use fbt_atpg::necessary::VarAssign;
use fbt_atpg::{var_of, Frame, TestCube};
use fbt_fault::Transition;
use fbt_netlist::{Netlist, NodeId};
use fbt_sim::Trit;

use crate::sta::TimingConstraint;

/// A per-line transition-direction constraint derived from assignments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseAnalysis {
    /// `allowed[node][0]` = rising permitted, `[1]` = falling permitted.
    allowed: Vec<[bool; 2]>,
}

impl CaseAnalysis {
    /// Derive the constraint from variable assignments (typically the input
    /// necessary assignments of a fault). Returns `None` when the
    /// assignments are self-contradictory.
    pub fn from_assignments(net: &Netlist, assigns: &[VarAssign]) -> Option<CaseAnalysis> {
        let mut imp = Implicator::new(net);
        for &(var, val) in assigns {
            if imp.assign(var, val).is_err() {
                return None;
            }
        }
        let n = net.num_nodes();
        let allowed = net
            .node_ids()
            .map(|id| {
                let v1 = imp.value(var_of(n, Frame::First, id));
                let v2 = imp.value(var_of(n, Frame::Second, id));
                let rise = v1 != Trit::One && v2 != Trit::Zero;
                let fall = v1 != Trit::Zero && v2 != Trit::One;
                [rise, fall]
            })
            .collect();
        Some(CaseAnalysis { allowed })
    }

    /// Derive the constraint from a (possibly partial) broadside test cube.
    pub fn from_cube(net: &Netlist, cube: &TestCube) -> Option<CaseAnalysis> {
        let n = net.num_nodes();
        let mut assigns: Vec<VarAssign> = Vec::new();
        for (i, &pi) in net.inputs().iter().enumerate() {
            if let Some(v) = cube.v1[i].to_bool() {
                assigns.push((var_of(n, Frame::First, pi), v));
            }
            if let Some(v) = cube.v2[i].to_bool() {
                assigns.push((var_of(n, Frame::Second, pi), v));
            }
        }
        for (i, &ff) in net.dffs().iter().enumerate() {
            if let Some(v) = cube.s1[i].to_bool() {
                assigns.push((var_of(n, Frame::First, ff), v));
            }
        }
        CaseAnalysis::from_assignments(net, &assigns)
    }

    /// Number of fully stable lines (case constants).
    pub fn stable_lines(&self) -> usize {
        self.allowed.iter().filter(|a| !a[0] && !a[1]).count()
    }
}

impl TimingConstraint for CaseAnalysis {
    #[inline]
    fn allows(&self, node: NodeId, dir: Transition) -> bool {
        self.allowed[node.index()][match dir {
            Transition::Rise => 0,
            Transition::Fall => 1,
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sta::{k_critical_paths, path_delay, Unconstrained};
    use crate::DelayLibrary;
    use fbt_netlist::s27;

    const LIB: DelayLibrary = DelayLibrary::generic_018um();

    #[test]
    fn no_assignments_allow_everything() {
        let net = s27();
        let ca = CaseAnalysis::from_assignments(&net, &[]).unwrap();
        for id in net.node_ids() {
            assert!(ca.allows(id, Transition::Rise));
            assert!(ca.allows(id, Transition::Fall));
        }
        assert_eq!(ca.stable_lines(), 0);
    }

    #[test]
    fn constant_input_kills_its_cone() {
        let net = s27();
        let n = net.num_nodes();
        let g0 = net.find("G0").unwrap();
        // G0 constant 1 under both patterns: G14 = NOT(G0) is stable 0, a
        // controlling value for G8 = AND(G14, G6) -> G8 stable too.
        let ca = CaseAnalysis::from_assignments(
            &net,
            &[
                (var_of(n, Frame::First, g0), true),
                (var_of(n, Frame::Second, g0), true),
            ],
        )
        .unwrap();
        let g14 = net.find("G14").unwrap();
        let g8 = net.find("G8").unwrap();
        assert!(!ca.allows(g14, Transition::Rise));
        assert!(!ca.allows(g14, Transition::Fall));
        assert!(!ca.allows(g8, Transition::Rise));
        assert!(!ca.allows(g8, Transition::Fall));
        assert!(ca.stable_lines() >= 3);
    }

    #[test]
    fn rising_constraint_restricts_direction() {
        let net = s27();
        let n = net.num_nodes();
        let g0 = net.find("G0").unwrap();
        // G0: 0 -> 1 (rising). G14 = NOT(G0) must fall.
        let ca = CaseAnalysis::from_assignments(
            &net,
            &[
                (var_of(n, Frame::First, g0), false),
                (var_of(n, Frame::Second, g0), true),
            ],
        )
        .unwrap();
        let g14 = net.find("G14").unwrap();
        assert!(ca.allows(g0, Transition::Rise));
        assert!(!ca.allows(g0, Transition::Fall));
        assert!(ca.allows(g14, Transition::Fall));
        assert!(!ca.allows(g14, Transition::Rise));
    }

    #[test]
    fn conflicting_assignments_return_none() {
        let net = s27();
        let n = net.num_nodes();
        let g0 = net.find("G0").unwrap();
        let g14 = net.find("G14").unwrap();
        // G0 = 1 and G14 = 1 in frame 1 contradict (G14 = NOT G0).
        let ca = CaseAnalysis::from_assignments(
            &net,
            &[
                (var_of(n, Frame::First, g0), true),
                (var_of(n, Frame::First, g14), true),
            ],
        );
        assert!(ca.is_none());
    }

    #[test]
    fn recalculated_delays_never_increase() {
        // The central §3.3 property: delays under case analysis are at most
        // the unconstrained delays, for every surviving path.
        let net = s27();
        let n = net.num_nodes();
        let g1 = net.find("G1").unwrap();
        let ca = CaseAnalysis::from_assignments(
            &net,
            &[
                (var_of(n, Frame::First, g1), false),
                (var_of(n, Frame::Second, g1), false),
            ],
        )
        .unwrap();
        let constrained = k_critical_paths(&net, &LIB, usize::MAX, &ca, 1_000_000);
        let free = k_critical_paths(&net, &LIB, usize::MAX, &Unconstrained, 1_000_000);
        assert!(constrained.len() <= free.len());
        assert!(!constrained.is_empty());
        for cp in &constrained {
            let unconstrained_delay =
                path_delay(&net, &LIB, &cp.path, cp.source_transition, &Unconstrained).unwrap();
            assert!(cp.delay <= unconstrained_delay + 1e-12);
        }
    }
}
