//! Arrival-time analysis and K-most-critical path enumeration.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use fbt_fault::{Path, Transition};
use fbt_netlist::{Netlist, NodeId};

use crate::DelayLibrary;

/// A sensitization constraint consulted during timing analysis — the hook
/// through which case analysis (paper §3.3.1) refines STA.
pub trait TimingConstraint {
    /// May a transition of direction `dir` appear on `node`?
    fn allows(&self, node: NodeId, dir: Transition) -> bool;

    /// May the node switch at all (either direction)? Stable lines stop
    /// contributing the simultaneous-switching margin of their consumers.
    fn can_toggle(&self, node: NodeId) -> bool {
        self.allows(node, Transition::Rise) || self.allows(node, Transition::Fall)
    }
}

/// No constraints: traditional static timing analysis.
#[derive(Debug, Clone, Copy, Default)]
pub struct Unconstrained;

impl TimingConstraint for Unconstrained {
    #[inline]
    fn allows(&self, _node: NodeId, _dir: Transition) -> bool {
        true
    }
}

/// A structural path annotated with its source transition and delay.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// The path.
    pub path: Path,
    /// Transition at the path source.
    pub source_transition: Transition,
    /// Total delay (ns) under the constraint in force when enumerated.
    pub delay: f64,
}

/// The transition direction at position `i` of a path, given the source
/// transition (polarity flips through inverting gates).
pub fn direction_at(net: &Netlist, path: &Path, source: Transition, i: usize) -> Transition {
    let mut dir = source;
    for &n in &path.nodes()[1..=i] {
        if net.node(n).kind().inverts() {
            dir = dir.flip();
        }
    }
    dir
}

/// The delay of a transition `dir` produced at `node` when it propagates in
/// through the fanin `via`: the base node delay plus the
/// simultaneous-switching margin for every *other* (side) input that the
/// constraint still allows to toggle. For sources (`via = None`) it is the
/// launch delay.
pub fn edge_delay(
    net: &Netlist,
    lib: &DelayLibrary,
    node: NodeId,
    dir: Transition,
    via: Option<NodeId>,
    constraint: &dyn TimingConstraint,
) -> f64 {
    let base = lib.node_delay(net, node, dir);
    let Some(via) = via else {
        return base;
    };
    let nd = net.node(node);
    let margin = nd
        .fanins()
        .iter()
        .filter(|&&f| f != via && constraint.can_toggle(f))
        .count() as f64
        * lib.switching_margin;
    base + margin
}

/// The delay of one path for a given source transition, `None` if the
/// constraint forbids the required transition on some on-path line.
pub fn path_delay(
    net: &Netlist,
    lib: &DelayLibrary,
    path: &Path,
    source: Transition,
    constraint: &dyn TimingConstraint,
) -> Option<f64> {
    let mut dir = source;
    let mut total = 0.0;
    for (i, &n) in path.nodes().iter().enumerate() {
        if i > 0 && net.node(n).kind().inverts() {
            dir = dir.flip();
        }
        if !constraint.allows(n, dir) {
            return None;
        }
        let via = if i > 0 {
            Some(path.nodes()[i - 1])
        } else {
            None
        };
        total += edge_delay(net, lib, n, dir, via, constraint);
    }
    Some(total)
}

fn dir_index(d: Transition) -> usize {
    match d {
        Transition::Rise => 0,
        Transition::Fall => 1,
    }
}

/// For every `(node, direction)`: is the node a capture point, and what is
/// the maximum remaining delay to any capture point (−∞ when no admissible
/// continuation exists)?
fn suffix_delays(
    net: &Netlist,
    lib: &DelayLibrary,
    constraint: &dyn TimingConstraint,
) -> (Vec<bool>, Vec<[f64; 2]>) {
    let n = net.num_nodes();
    let mut capture = vec![false; n];
    for &o in net.outputs() {
        capture[o.index()] = true;
    }
    for &d in net.dffs() {
        capture[net.node(d).fanins()[0].index()] = true;
    }
    let mut suffix = vec![[f64::NEG_INFINITY; 2]; n];
    // Reverse topological order over gates, then sources.
    let continue_from = |suffix: &Vec<[f64; 2]>, id: NodeId, dir: Transition| -> f64 {
        let mut best = if capture[id.index()] {
            0.0
        } else {
            f64::NEG_INFINITY
        };
        for &fo in net.node(id).fanouts() {
            let fo_node = net.node(fo);
            if fo_node.kind().is_source() {
                continue;
            }
            let out_dir = if fo_node.kind().inverts() {
                dir.flip()
            } else {
                dir
            };
            if !constraint.allows(fo, out_dir) {
                continue;
            }
            let d = edge_delay(net, lib, fo, out_dir, Some(id), constraint)
                + suffix[fo.index()][dir_index(out_dir)];
            if d > best {
                best = d;
            }
        }
        best
    };
    for &id in net.eval_order().iter().rev() {
        for dir in [Transition::Rise, Transition::Fall] {
            suffix[id.index()][dir_index(dir)] = continue_from(&suffix, id, dir);
        }
    }
    for &id in net.inputs().iter().chain(net.dffs()) {
        for dir in [Transition::Rise, Transition::Fall] {
            suffix[id.index()][dir_index(dir)] = continue_from(&suffix, id, dir);
        }
    }
    (capture, suffix)
}

/// Heap entry ordered by a finite f64 key.
struct Entry {
    key: f64,
    prefix: f64,
    dir: Transition,
    source: Transition,
    nodes: Vec<NodeId>,
    complete: bool,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key.partial_cmp(&other.key).unwrap_or(Ordering::Equal)
    }
}

/// Enumerate the `k` most critical path delay faults (paths × source
/// transitions), in non-increasing delay order, under a sensitization
/// constraint.
///
/// # Example
///
/// ```
/// use fbt_timing::sta::{k_critical_paths, Unconstrained};
/// use fbt_timing::DelayLibrary;
///
/// let net = fbt_netlist::s27();
/// let lib = DelayLibrary::generic_018um();
/// let top = k_critical_paths(&net, &lib, 5, &Unconstrained, 100_000);
/// assert_eq!(top.len(), 5);
/// assert!(top.windows(2).all(|w| w[0].delay >= w[1].delay));
/// ```
///
/// Best-first search with the exact remaining-delay bound as heuristic, so
/// paths are produced strictly in delay order; `max_expansions` caps the
/// search (a safety valve on pathological fanout structures).
pub fn k_critical_paths(
    net: &Netlist,
    lib: &DelayLibrary,
    k: usize,
    constraint: &dyn TimingConstraint,
    max_expansions: usize,
) -> Vec<CriticalPath> {
    let (capture, suffix) = suffix_delays(net, lib, constraint);
    let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
    for &launch in net.inputs().iter().chain(net.dffs()) {
        for dir in [Transition::Rise, Transition::Fall] {
            if !constraint.allows(launch, dir) {
                continue;
            }
            let prefix = lib.node_delay(net, launch, dir);
            // The suffix already accounts for "stop here" at capture points.
            let remain = suffix[launch.index()][dir_index(dir)];
            if remain == f64::NEG_INFINITY {
                continue;
            }
            let key = prefix + remain;
            heap.push(Entry {
                key,
                prefix,
                dir,
                source: dir,
                nodes: vec![launch],
                complete: false,
            });
        }
    }

    let mut out = Vec::with_capacity(k.min(1024));
    let mut expansions = 0usize;
    while let Some(e) = heap.pop() {
        if e.complete {
            out.push(CriticalPath {
                path: Path::new(net, e.nodes),
                source_transition: e.source,
                delay: e.prefix,
            });
            if out.len() >= k {
                break;
            }
            continue;
        }
        expansions += 1;
        if expansions > max_expansions {
            break;
        }
        let last = *e.nodes.last().expect("non-empty");
        if capture[last.index()] {
            heap.push(Entry {
                key: e.prefix,
                prefix: e.prefix,
                dir: e.dir,
                source: e.source,
                nodes: e.nodes.clone(),
                complete: true,
            });
        }
        for &fo in net.node(last).fanouts() {
            let fo_node = net.node(fo);
            if fo_node.kind().is_source() {
                continue;
            }
            let out_dir = if fo_node.kind().inverts() {
                e.dir.flip()
            } else {
                e.dir
            };
            if !constraint.allows(fo, out_dir) {
                continue;
            }
            let remain = suffix[fo.index()][dir_index(out_dir)];
            let step = edge_delay(net, lib, fo, out_dir, Some(last), constraint);
            if remain == f64::NEG_INFINITY {
                continue;
            }
            let prefix = e.prefix + step;
            let mut nodes = e.nodes.clone();
            nodes.push(fo);
            heap.push(Entry {
                key: prefix + remain,
                prefix,
                dir: out_dir,
                source: e.source,
                nodes,
                complete: false,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbt_netlist::s27;

    const LIB: DelayLibrary = DelayLibrary::generic_018um();

    #[test]
    fn paths_come_out_in_delay_order() {
        let net = s27();
        let paths = k_critical_paths(&net, &LIB, 100, &Unconstrained, 100_000);
        assert!(!paths.is_empty());
        for w in paths.windows(2) {
            assert!(w[0].delay >= w[1].delay - 1e-12);
        }
    }

    #[test]
    fn enumerated_delays_match_recomputation() {
        let net = s27();
        for cp in k_critical_paths(&net, &LIB, 56, &Unconstrained, 100_000) {
            let d = path_delay(&net, &LIB, &cp.path, cp.source_transition, &Unconstrained)
                .expect("unconstrained path always has a delay");
            assert!((d - cp.delay).abs() < 1e-9);
        }
    }

    #[test]
    fn full_enumeration_covers_all_path_faults() {
        // s27 has 28 structural paths -> 56 path delay faults.
        let net = s27();
        let paths = k_critical_paths(&net, &LIB, usize::MAX, &Unconstrained, 1_000_000);
        assert_eq!(paths.len(), 56);
    }

    #[test]
    fn top_path_is_the_structural_maximum() {
        let net = s27();
        let all = k_critical_paths(&net, &LIB, usize::MAX, &Unconstrained, 1_000_000);
        let brute_max = fbt_fault::path::enumerate_paths(&net, usize::MAX)
            .iter()
            .flat_map(|p| {
                [Transition::Rise, Transition::Fall]
                    .into_iter()
                    .map(|t| path_delay(&net, &LIB, p, t, &Unconstrained).unwrap())
            })
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((all[0].delay - brute_max).abs() < 1e-9);
    }

    #[test]
    fn direction_tracking_matches_polarity() {
        let net = s27();
        let cps = k_critical_paths(&net, &LIB, 10, &Unconstrained, 100_000);
        for cp in cps {
            // Recompute the final direction by parity and check it is what
            // direction_at reports for the last node.
            let last = cp.path.len() - 1;
            let d = direction_at(&net, &cp.path, cp.source_transition, last);
            let parity = cp.path.nodes()[1..]
                .iter()
                .filter(|&&n| net.node(n).kind().inverts())
                .count();
            let expect = if parity % 2 == 0 {
                cp.source_transition
            } else {
                cp.source_transition.flip()
            };
            assert_eq!(d, expect);
        }
    }
}
