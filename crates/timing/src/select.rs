//! The path-selection procedure of paper §3.3.2 (Fig. 3.1).
//!
//! 1. Traditional STA yields an initial set `FPo` of `M` most critical path
//!    delay faults.
//! 2. Input necessary assignments remove provably undetectable faults; the
//!    `N` most critical potentially detectable faults (plus delay ties)
//!    initialize `Target_PDF`.
//! 3. For every fault in `Target_PDF`, its delay is *recalculated* under its
//!    input necessary assignments (case analysis), and any potentially
//!    detectable path whose constrained delay is at least as high is added
//!    to the set — a transitive closure over "at least as critical under the
//!    conditions this fault imposes".
//! 4. Faults are finally ranked by recalculated delay.

use std::collections::HashSet;

use fbt_atpg::necessary::{tpdf_analysis, Analysis, VarAssign};
use fbt_fault::{Transition, TransitionPathDelayFault};
use fbt_netlist::{Netlist, NodeId};

use crate::case::CaseAnalysis;
use crate::sta::{k_critical_paths, path_delay, TimingConstraint, Unconstrained};
use crate::DelayLibrary;

/// Configuration of the selection procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathSelectionConfig {
    /// Number of faults wanted for test generation (`N`).
    pub n: usize,
    /// Size of the initial STA set (`M > N`).
    pub m: usize,
    /// Search budget for each critical-path enumeration.
    pub max_expansions: usize,
    /// Upper bound on the initial-set size `M` while it is being doubled in
    /// search of `N` potentially detectable faults (a cap on analysis work
    /// for circuits whose critical paths are almost all undetectable).
    pub m_cap: usize,
}

impl PathSelectionConfig {
    /// A configuration selecting `n` faults from an initial pool of `4 n`.
    pub fn for_n(n: usize) -> Self {
        PathSelectionConfig {
            n,
            m: 4 * n,
            max_expansions: 2_000_000,
            m_cap: 2_000 * n,
        }
    }
}

/// One selected fault with its delay history.
#[derive(Debug, Clone)]
pub struct SelectedFault {
    /// The fault.
    pub fault: TransitionPathDelayFault,
    /// Delay from traditional STA ("original" of Table 3.1).
    pub original_delay: f64,
    /// Delay recalculated under the fault's input necessary assignments
    /// ("final").
    pub final_delay: f64,
    /// Whether the fault entered `Target_PDF` only during recalculation
    /// (the "new paths" column of Table 3.1).
    pub added_during_recalculation: bool,
}

/// The outcome of the procedure.
#[derive(Debug, Clone)]
pub struct PathSelection {
    /// `Target_PDF` after the procedure, sorted by decreasing recalculated
    /// delay.
    pub target: Vec<SelectedFault>,
    /// Size of `Target_PDF` before recalculation (the "original" row of
    /// Table 3.2 — `N` plus delay ties).
    pub initial_count: usize,
    /// Faults from `FPo` skipped as provably undetectable.
    pub undetectable_skipped: usize,
}

impl PathSelection {
    /// The `n` most critical faults by recalculated delay (with ties).
    pub fn most_critical(&self, n: usize) -> &[SelectedFault] {
        if self.target.len() <= n {
            return &self.target;
        }
        let cutoff = self.target[n - 1].final_delay;
        let mut end = n;
        while end < self.target.len() && (self.target[end].final_delay - cutoff).abs() < 1e-12 {
            end += 1;
        }
        &self.target[..end]
    }
}

fn fault_key(f: &TransitionPathDelayFault) -> (Vec<NodeId>, Transition) {
    (f.path.nodes().to_vec(), f.source_transition)
}

/// Run the procedure.
///
/// # Example
///
/// ```
/// use fbt_timing::{select_paths, DelayLibrary, PathSelectionConfig};
///
/// let net = fbt_netlist::s27();
/// let lib = DelayLibrary::generic_018um();
/// let sel = select_paths(&net, &lib, &PathSelectionConfig::for_n(4));
/// for f in &sel.target {
///     assert!(f.final_delay <= f.original_delay); // §3.3: never increases
/// }
/// ```
///
/// # Panics
///
/// Panics if `cfg.n == 0` or `cfg.m < cfg.n`.
pub fn select_paths(net: &Netlist, lib: &DelayLibrary, cfg: &PathSelectionConfig) -> PathSelection {
    assert!(cfg.n > 0, "must select at least one fault");
    assert!(cfg.m >= cfg.n, "M must be at least N");
    let empty = HashSet::new();

    // Steps 1–2: traditional STA over M most critical faults, dropping
    // undetectable ones; if fewer than N potentially detectable faults are
    // obtained, M is increased (§3.3.2) until the circuit is exhausted.
    let mut m = cfg.m;
    let (fpo, undetectable_skipped, mut target, mut seen) = loop {
        let fpo = k_critical_paths(net, lib, m, &Unconstrained, cfg.max_expansions);
        let exhausted = fpo.len() < m;
        let mut undetectable_skipped = 0usize;
        let mut target: Vec<(TransitionPathDelayFault, f64, Vec<VarAssign>, bool)> = Vec::new();
        let mut seen: HashSet<(Vec<NodeId>, Transition)> = HashSet::new();
        let mut cutoff: Option<f64> = None;
        for cp in &fpo {
            if let Some(c) = cutoff {
                if cp.delay < c - 1e-12 {
                    break;
                }
            }
            let fault = TransitionPathDelayFault::new(cp.path.clone(), cp.source_transition);
            match tpdf_analysis(net, &fault, &empty) {
                Analysis::Undetectable => undetectable_skipped += 1,
                Analysis::Potential(sets) => {
                    seen.insert(fault_key(&fault));
                    target.push((fault, cp.delay, sets.input_necessary, false));
                    if target.len() == cfg.n {
                        cutoff = Some(cp.delay);
                    }
                }
            }
        }
        if target.len() >= cfg.n || exhausted || m >= cfg.m_cap {
            break (fpo, undetectable_skipped, target, seen);
        }
        m *= 2;
    };
    let _ = fpo;
    let initial_count = target.len();

    // Step 3: recalculation + transitive expansion.
    let mut results: Vec<SelectedFault> = Vec::new();
    let mut i = 0usize;
    while i < target.len() {
        let (fault, original, assigns, added) = target[i].clone();
        let constraint: Box<dyn TimingConstraint> =
            match CaseAnalysis::from_assignments(net, &assigns) {
                Some(ca) => Box::new(ca),
                None => Box::new(Unconstrained),
            };
        let final_delay = path_delay(
            net,
            lib,
            &fault.path,
            fault.source_transition,
            constraint.as_ref(),
        )
        .unwrap_or(original);

        // Paths at least as critical as this fault under its assignments.
        let peers = k_critical_paths(net, lib, cfg.m, constraint.as_ref(), cfg.max_expansions);
        for cp in peers {
            if cp.delay < final_delay - 1e-12 {
                break;
            }
            let candidate = TransitionPathDelayFault::new(cp.path.clone(), cp.source_transition);
            let key = fault_key(&candidate);
            if seen.contains(&key) {
                continue;
            }
            if let Analysis::Potential(sets) = tpdf_analysis(net, &candidate, &empty) {
                let orig = path_delay(
                    net,
                    lib,
                    &candidate.path,
                    candidate.source_transition,
                    &Unconstrained,
                )
                .expect("unconstrained delay exists");
                seen.insert(key);
                target.push((candidate, orig, sets.input_necessary, true));
            } else {
                seen.insert(key);
            }
        }

        results.push(SelectedFault {
            fault,
            original_delay: original,
            final_delay,
            added_during_recalculation: added,
        });
        i += 1;
    }

    // Step 4: rank by recalculated delay.
    results.sort_by(|a, b| {
        b.final_delay
            .partial_cmp(&a.final_delay)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    PathSelection {
        target: results,
        initial_count,
        undetectable_skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbt_netlist::{s27, synth};

    const LIB: DelayLibrary = DelayLibrary::generic_018um();

    #[test]
    fn selection_on_s27() {
        let net = s27();
        let sel = select_paths(&net, &LIB, &PathSelectionConfig::for_n(5));
        assert!(sel.target.len() >= 5);
        // Final delays never exceed originals (§3.3: "the delays never
        // increase since input necessary assignments constrain values").
        for f in &sel.target {
            assert!(
                f.final_delay <= f.original_delay + 1e-12,
                "{}: {} > {}",
                f.fault.path.display(&net),
                f.final_delay,
                f.original_delay
            );
        }
        // Ranked by final delay.
        for w in sel.target.windows(2) {
            assert!(w[0].final_delay >= w[1].final_delay - 1e-12);
        }
    }

    #[test]
    fn most_critical_respects_ties() {
        let net = s27();
        let sel = select_paths(&net, &LIB, &PathSelectionConfig::for_n(4));
        let top = sel.most_critical(4);
        assert!(top.len() >= 4);
        if top.len() > 4 {
            assert!((top[3].final_delay - top[4].final_delay).abs() < 1e-12);
        }
    }

    #[test]
    fn no_undetectable_fault_selected() {
        let net = s27();
        let sel = select_paths(&net, &LIB, &PathSelectionConfig::for_n(8));
        let empty = HashSet::new();
        for f in &sel.target {
            assert!(
                !tpdf_analysis(&net, &f.fault, &empty).is_undetectable(),
                "undetectable fault selected: {}",
                f.fault.path.display(&net)
            );
        }
    }

    #[test]
    fn synthetic_circuit_selection_expands_target() {
        // On a larger circuit the procedure typically grows Target_PDF
        // beyond the initial set ("final" >= "original" sizes, Table 3.2).
        let net = synth::generate(&synth::find("s386").unwrap().scaled(2));
        let sel = select_paths(&net, &LIB, &PathSelectionConfig::for_n(10));
        assert!(sel.target.len() >= sel.initial_count);
        assert!(sel.initial_count >= 10 || sel.target.len() < 10);
    }

    #[test]
    fn deterministic() {
        let net = s27();
        let a = select_paths(&net, &LIB, &PathSelectionConfig::for_n(6));
        let b = select_paths(&net, &LIB, &PathSelectionConfig::for_n(6));
        assert_eq!(a.target.len(), b.target.len());
        for (x, y) in a.target.iter().zip(&b.target) {
            assert_eq!(x.fault, y.fault);
            assert_eq!(x.final_delay, y.final_delay);
        }
    }
}
