//! Arrival-time and slack reporting — the everyday STA outputs surrounding
//! the path-selection flow.

use fbt_fault::Transition;
use fbt_netlist::{Netlist, NodeId};

use crate::sta::{edge_delay, TimingConstraint};
use crate::DelayLibrary;

/// Worst-case arrival times per node, per transition direction.
#[derive(Debug, Clone)]
pub struct ArrivalTimes {
    /// `at[node][0]` = worst rising arrival, `[1]` = worst falling; −∞ when
    /// no admissible transition of that direction can appear on the node.
    pub at: Vec<[f64; 2]>,
}

fn idx(d: Transition) -> usize {
    match d {
        Transition::Rise => 0,
        Transition::Fall => 1,
    }
}

/// Compute worst-case arrival times under a sensitization constraint.
pub fn arrival_times(
    net: &Netlist,
    lib: &DelayLibrary,
    constraint: &dyn TimingConstraint,
) -> ArrivalTimes {
    let n = net.num_nodes();
    let mut at = vec![[f64::NEG_INFINITY; 2]; n];
    for &src in net.inputs().iter().chain(net.dffs()) {
        for dir in [Transition::Rise, Transition::Fall] {
            if constraint.allows(src, dir) {
                at[src.index()][idx(dir)] = lib.node_delay(net, src, dir);
            }
        }
    }
    for &g in net.eval_order() {
        let node = net.node(g);
        for dir in [Transition::Rise, Transition::Fall] {
            if !constraint.allows(g, dir) {
                continue;
            }
            let in_dir = if node.kind().inverts() {
                dir.flip()
            } else {
                dir
            };
            let mut best = f64::NEG_INFINITY;
            for &f in node.fanins() {
                let a = at[f.index()][idx(in_dir)];
                if a == f64::NEG_INFINITY {
                    continue;
                }
                let d = a + edge_delay(net, lib, g, dir, Some(f), constraint);
                if d > best {
                    best = d;
                }
            }
            at[g.index()][idx(dir)] = best;
        }
    }
    ArrivalTimes { at }
}

impl ArrivalTimes {
    /// Worst arrival over both directions at a node (−∞ for dead nodes).
    pub fn worst(&self, node: NodeId) -> f64 {
        let [r, f] = self.at[node.index()];
        r.max(f)
    }
}

/// One endpoint's slack entry.
#[derive(Debug, Clone, PartialEq)]
pub struct SlackEntry {
    /// The capture point (primary-output driver or flip-flop D driver).
    pub endpoint: NodeId,
    /// Worst arrival time at the endpoint.
    pub arrival: f64,
    /// `clock_period − arrival` (negative = timing violation).
    pub slack: f64,
}

/// Slack report over all capture points, worst first.
pub fn slack_report(
    net: &Netlist,
    lib: &DelayLibrary,
    constraint: &dyn TimingConstraint,
    clock_period: f64,
) -> Vec<SlackEntry> {
    let at = arrival_times(net, lib, constraint);
    let mut endpoints: Vec<NodeId> = net.outputs().to_vec();
    for &d in net.dffs() {
        endpoints.push(net.node(d).fanins()[0]);
    }
    endpoints.sort_unstable();
    endpoints.dedup();
    let mut entries: Vec<SlackEntry> = endpoints
        .into_iter()
        .filter(|&e| at.worst(e) > f64::NEG_INFINITY)
        .map(|e| {
            let arrival = at.worst(e);
            SlackEntry {
                endpoint: e,
                arrival,
                slack: clock_period - arrival,
            }
        })
        .collect();
    entries.sort_by(|a, b| {
        a.slack
            .partial_cmp(&b.slack)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sta::{k_critical_paths, Unconstrained};
    use fbt_netlist::s27;

    const LIB: DelayLibrary = DelayLibrary::generic_018um();

    #[test]
    fn worst_arrival_equals_most_critical_path_delay() {
        let net = s27();
        let at = arrival_times(&net, &LIB, &Unconstrained);
        let worst_at = net
            .node_ids()
            .filter(|&n| {
                net.is_po_driver(n) || net.dffs().iter().any(|&d| net.node(d).fanins()[0] == n)
            })
            .map(|n| at.worst(n))
            .fold(f64::NEG_INFINITY, f64::max);
        let top = k_critical_paths(&net, &LIB, 1, &Unconstrained, 100_000);
        assert!((worst_at - top[0].delay).abs() < 1e-9);
    }

    #[test]
    fn arrival_monotone_along_fanin() {
        let net = s27();
        let at = arrival_times(&net, &LIB, &Unconstrained);
        for &g in net.eval_order() {
            for &f in net.node(g).fanins() {
                // A gate's worst arrival is at least any fanin's arrival
                // (delays are positive).
                assert!(at.worst(g) >= at.worst(f), "{}", net.node_name(g));
            }
        }
    }

    #[test]
    fn slack_report_sorted_and_signed() {
        let net = s27();
        let entries = slack_report(&net, &LIB, &Unconstrained, 0.5);
        assert!(!entries.is_empty());
        for w in entries.windows(2) {
            assert!(w[0].slack <= w[1].slack);
        }
        // With a generous clock everything meets timing.
        let relaxed = slack_report(&net, &LIB, &Unconstrained, 10.0);
        assert!(relaxed.iter().all(|e| e.slack > 0.0));
        // With an impossible clock everything violates.
        let tight = slack_report(&net, &LIB, &Unconstrained, 0.0);
        assert!(tight.iter().all(|e| e.slack < 0.0));
    }
}
