//! Differential suite for the deterministic speculative-batch seed search.
//!
//! The reference implementations below are verbatim ports of the serial
//! Chapter-4 loops as they existed before speculation was introduced (one
//! seed drawn and evaluated per iteration, no batching). The suite asserts
//! that `generate_unconstrained` / `generate_constrained` /
//! `generate_constrained_from` produce byte-identical outcomes for the same
//! `master_seed` across `threads ∈ {1, 2, 8}` and `batch ∈ {1, 4, 16}`, on
//! s27 plus a synthesized circuit — i.e. the speculative search is
//! bit-identical to the serial loop and independent of thread count.

use fbt_bist::{cube, Tpg, TpgSpec};
use fbt_core::extract::functional_tests;
use fbt_core::{
    generate_constrained, generate_constrained_from, generate_unconstrained, FunctionalBistConfig,
    SearchOptions,
};
use fbt_fault::{
    all_transition_faults, collapse, FaultSimEngine, FaultSimOptions, PackedParallelSim, TestSet,
};
use fbt_netlist::rng::Rng;
use fbt_netlist::{s27, synth, Netlist};
use fbt_sim::seq::simulate_sequence;
use fbt_sim::Bits;

const BATCHES: [usize; 3] = [1, 4, 16];
const THREADS: [usize; 3] = [1, 2, 8];

fn circuits() -> Vec<Netlist> {
    vec![
        s27(),
        synth::generate(&synth::find("s386").unwrap().scaled(2)),
    ]
}

/// The pre-speculation serial unconstrained loop (paper §4.3 / \[73\]).
fn reference_unconstrained(
    net: &Netlist,
    cfg: &FunctionalBistConfig,
) -> (Vec<u64>, Vec<bool>, usize, f64) {
    let spec = TpgSpec {
        lfsr_width: cfg.lfsr_width,
        m: cfg.m,
        cube: cube::input_cube(net),
    };
    let faults = collapse(net, &all_transition_faults(net));
    let mut detected = vec![false; faults.len()];
    let mut fsim = PackedParallelSim::new(net);
    let mut rng = Rng::new(cfg.master_seed);
    let zero = Bits::zeros(net.num_dffs());

    let mut kept: Vec<u64> = Vec::new();
    let mut useless = 0usize;
    let mut tried = 0usize;
    while useless < cfg.useless_seed_limit && tried < cfg.max_seeds {
        tried += 1;
        let seed = rng.next_u64();
        let pis = Tpg::new(spec.clone(), seed).sequence(cfg.seq_len);
        let traj = simulate_sequence(net, &zero, &pis);
        let tests = functional_tests(&pis, &traj.states);
        let newly = fsim
            .simulate(
                TestSet::Broadside(&tests),
                &faults,
                &mut detected,
                &FaultSimOptions::new(),
            )
            .newly_detected;
        if newly > 0 {
            kept.push(seed);
            useless = 0;
        } else {
            useless += 1;
        }
    }

    let mut final_detected = vec![false; faults.len()];
    let mut final_seeds: Vec<u64> = Vec::new();
    let mut tests_applied = 0usize;
    let mut peak_swa = 0.0f64;
    for &seed in kept.iter().rev() {
        let pis = Tpg::new(spec.clone(), seed).sequence(cfg.seq_len);
        let traj = simulate_sequence(net, &zero, &pis);
        let tests = functional_tests(&pis, &traj.states);
        let newly = fsim
            .simulate(
                TestSet::Broadside(&tests),
                &faults,
                &mut final_detected,
                &FaultSimOptions::new(),
            )
            .newly_detected;
        if newly > 0 {
            final_seeds.push(seed);
            tests_applied += tests.len();
            peak_swa = peak_swa.max(traj.peak_swa());
        }
    }
    final_seeds.reverse();
    (final_seeds, final_detected, tests_applied, peak_swa)
}

/// The serial switching-activity admissibility rule (paper §4.4).
fn admissible_prefix(net: &Netlist, bound: f64, start: &Bits, pis: &[Bits]) -> usize {
    let traj = simulate_sequence(net, start, pis);
    match traj
        .swa
        .iter()
        .position(|s| s.is_some_and(|v| v > bound + 1e-12))
    {
        Some(v) => (v.saturating_sub(1)) & !1usize,
        None => pis.len() & !1usize,
    }
}

/// One reference segment: (seed, len). A sequence is a Vec of segments.
type RefSeqs = Vec<(Bits, Vec<(u64, usize)>)>;

/// The pre-speculation serial constrained loop (Fig. 4.9).
fn reference_constrained(
    net: &Netlist,
    bound: f64,
    cfg: &FunctionalBistConfig,
    initial_states: &[Bits],
) -> (RefSeqs, Vec<bool>, usize, f64) {
    let spec = TpgSpec {
        lfsr_width: cfg.lfsr_width,
        m: cfg.m,
        cube: cube::input_cube(net),
    };
    let faults = collapse(net, &all_transition_faults(net));
    let mut detected = vec![false; faults.len()];
    let mut fsim = PackedParallelSim::new(net);
    let mut rng = Rng::new(cfg.master_seed);

    let mut sequences: RefSeqs = Vec::new();
    let mut tests_applied = 0usize;
    let mut peak_swa = 0.0f64;
    let mut attempt_failures = 0usize;
    let mut seeds_tried = 0usize;
    let mut attempts = 0usize;

    while attempt_failures < cfg.attempt_failure_limit && seeds_tried < cfg.max_seeds {
        let init = &initial_states[attempts % initial_states.len()];
        attempts += 1;
        let mut cur_state = init.clone();
        let mut segments: Vec<(u64, usize)> = Vec::new();
        let mut seed_failures = 0usize;
        while seed_failures < cfg.segment_failure_limit && seeds_tried < cfg.max_seeds {
            seeds_tried += 1;
            let seed = rng.next_u64();
            let pis = Tpg::new(spec.clone(), seed).sequence(cfg.seq_len);
            let len = admissible_prefix(net, bound, &cur_state, &pis);
            if len < 2 {
                seed_failures += 1;
                continue;
            }
            let prefix = &pis[..len];
            let traj = simulate_sequence(net, &cur_state, prefix);
            let tests = functional_tests(prefix, &traj.states);
            let newly = fsim
                .simulate(
                    TestSet::Broadside(&tests),
                    &faults,
                    &mut detected,
                    &FaultSimOptions::new(),
                )
                .newly_detected;
            if newly > 0 {
                tests_applied += tests.len();
                peak_swa = peak_swa.max(traj.peak_swa());
                cur_state = traj.states[len].clone();
                segments.push((seed, len));
                seed_failures = 0;
            } else {
                seed_failures += 1;
            }
        }
        if segments.is_empty() {
            attempt_failures += 1;
        } else {
            attempt_failures = 0;
            sequences.push((init.clone(), segments));
        }
    }
    (sequences, detected, tests_applied, peak_swa)
}

fn cfg_with(batch: usize, threads: usize, packed: bool) -> FunctionalBistConfig {
    FunctionalBistConfig {
        search: SearchOptions {
            batch,
            threads,
            packed,
        },
        ..FunctionalBistConfig::smoke()
    }
}

#[test]
fn unconstrained_is_bit_identical_to_the_serial_reference() {
    for net in circuits() {
        let (seeds, detected, tests_applied, peak_swa) =
            reference_unconstrained(&net, &FunctionalBistConfig::smoke());
        for packed in [false, true] {
            for batch in BATCHES {
                for threads in THREADS {
                    let out = generate_unconstrained(&net, &cfg_with(batch, threads, packed));
                    let label = format!(
                        "{} batch={batch} threads={threads} packed={packed}",
                        net.name()
                    );
                    assert_eq!(out.seeds, seeds, "{label}");
                    assert_eq!(out.detected, detected, "{label}");
                    assert_eq!(out.tests_applied, tests_applied, "{label}");
                    assert_eq!(out.peak_swa, peak_swa, "{label}");
                }
            }
        }
    }
}

#[test]
fn constrained_is_bit_identical_to_the_serial_reference() {
    for net in circuits() {
        // A bound tight enough to force truncation and rejections.
        let bound = 0.45;
        let zero = Bits::zeros(net.num_dffs());
        let (seqs, detected, tests_applied, peak_swa) = reference_constrained(
            &net,
            bound,
            &FunctionalBistConfig::smoke(),
            std::slice::from_ref(&zero),
        );
        for packed in [false, true] {
            for batch in BATCHES {
                for threads in THREADS {
                    let out = generate_constrained(&net, bound, &cfg_with(batch, threads, packed));
                    let label = format!(
                        "{} batch={batch} threads={threads} packed={packed}",
                        net.name()
                    );
                    let got: RefSeqs = out
                        .sequences
                        .iter()
                        .map(|s| {
                            (
                                s.initial_state.clone(),
                                s.segments.iter().map(|g| (g.seed, g.len)).collect(),
                            )
                        })
                        .collect();
                    assert_eq!(got, seqs, "{label}");
                    assert_eq!(out.detected, detected, "{label}");
                    assert_eq!(out.tests_applied, tests_applied, "{label}");
                    assert_eq!(out.peak_swa, peak_swa, "{label}");
                }
            }
        }
    }
}

#[test]
fn constrained_from_is_bit_identical_to_the_serial_reference() {
    for net in circuits() {
        // Derive a second reachable state by simulating two cycles from 0.
        let mut rng = Rng::new(7);
        let pis: Vec<Bits> = (0..2)
            .map(|_| (0..net.num_inputs()).map(|_| rng.bit()).collect())
            .collect();
        let zero = Bits::zeros(net.num_dffs());
        let traj = simulate_sequence(&net, &zero, &pis);
        let inits = vec![zero, traj.states[2].clone()];
        let bound = 0.6;
        let (seqs, detected, tests_applied, peak_swa) =
            reference_constrained(&net, bound, &FunctionalBistConfig::smoke(), &inits);
        for packed in [false, true] {
            for batch in BATCHES {
                for threads in THREADS {
                    let out = generate_constrained_from(
                        &net,
                        bound,
                        &cfg_with(batch, threads, packed),
                        &inits,
                    );
                    let label = format!(
                        "{} batch={batch} threads={threads} packed={packed}",
                        net.name()
                    );
                    let got: RefSeqs = out
                        .sequences
                        .iter()
                        .map(|s| {
                            (
                                s.initial_state.clone(),
                                s.segments.iter().map(|g| (g.seed, g.len)).collect(),
                            )
                        })
                        .collect();
                    assert_eq!(got, seqs, "{label}");
                    assert_eq!(out.detected, detected, "{label}");
                    assert_eq!(out.tests_applied, tests_applied, "{label}");
                    assert_eq!(out.peak_swa, peak_swa, "{label}");
                }
            }
        }
    }
}

#[test]
fn speculative_outcomes_are_independent_of_thread_count() {
    // Fixing the batch, every thread count must give the same counters too
    // (wasted_evals depends only on the batch size and the commit pattern).
    for net in circuits() {
        for packed in [false, true] {
            for batch in BATCHES {
                let reference = generate_unconstrained(&net, &cfg_with(batch, 1, packed));
                for threads in [2, 8] {
                    let out = generate_unconstrained(&net, &cfg_with(batch, threads, packed));
                    assert_eq!(out.seeds, reference.seeds);
                    assert_eq!(out.detected, reference.detected);
                    assert_eq!(out.stats.evals, reference.stats.evals);
                    assert_eq!(out.stats.wasted_evals, reference.stats.wasted_evals);
                    assert_eq!(out.stats.seeds_tried, reference.stats.seeds_tried);
                    assert_eq!(out.stats.fsim_calls, reference.stats.fsim_calls);
                    assert_eq!(out.stats.candidate_groups, reference.stats.candidate_groups);
                }
            }
        }
    }
}
