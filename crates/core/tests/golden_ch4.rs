//! Golden-outcome regression fixtures for the three Chapter-4 generation
//! modes.
//!
//! For s27, s298 and s344 this suite renders a deterministic JSON summary of
//! each mode's outcome — coverage, seeds, segment lengths, detection count
//! and the deterministic `GenerationStats` counters — and diffs it
//! *byte-exact* against a committed fixture. The fixtures were generated
//! from the pre-`GenerationEngine` implementations of the loops, so any
//! behavioral drift in the refactored engine fails this suite.
//!
//! Semantic outcome fields must be identical for every speculation setting;
//! the batch-dependent counters (`evals`, `wasted_evals`, `fsim_calls`,
//! `sim_cycles`) are pinned per batch size and must be independent of the
//! thread count. Both properties are asserted across
//! batch {1, 4, 16} × threads {1, 2, 8}.
//!
//! Regenerate with:
//! `FBT_GOLDEN_REGEN=1 cargo test -p fbt-core --test golden_ch4`

use std::fmt::Write as _;

use fbt_core::driver::{swafunc, DrivingBlock};
use fbt_core::{
    generate_constrained, generate_unconstrained, improve_with_holding, ConstrainedOutcome,
    FunctionalBistConfig, GenerationOutcome, GenerationStats, HoldingOutcome, SearchOptions,
};
use fbt_netlist::{s27, synth, Netlist};

const BATCHES: [usize; 3] = [1, 4, 16];
const THREADS: [usize; 3] = [1, 2, 8];

fn circuits() -> Vec<(&'static str, Netlist)> {
    vec![
        ("s27", s27()),
        ("s298", synth::generate(&synth::find("s298").unwrap())),
        ("s344", synth::generate(&synth::find("s344").unwrap())),
    ]
}

fn cfg_with(batch: usize, threads: usize) -> FunctionalBistConfig {
    FunctionalBistConfig {
        search: SearchOptions {
            batch,
            threads,
            packed: true,
        },
        ..FunctionalBistConfig::smoke()
    }
}

/// The deterministic counters of [`GenerationStats`] (wall times excluded:
/// they are measurements, not semantics).
fn stats_json(s: &GenerationStats) -> String {
    format!(
        "{{\"seeds_tried\":{},\"seeds_kept\":{},\"evals\":{},\"wasted_evals\":{},\
         \"fsim_calls\":{},\"candidate_groups\":{},\"faults_skipped_lint\":{},\
         \"sim_cycles\":{}}}",
        s.seeds_tried,
        s.seeds_kept,
        s.evals,
        s.wasted_evals,
        s.fsim_calls,
        s.candidate_groups,
        s.faults_skipped_lint,
        s.sim_cycles,
    )
}

fn detected_count(detected: &[bool]) -> usize {
    detected.iter().filter(|&&d| d).count()
}

/// Semantic summary of an unconstrained outcome — identical for every
/// speculation setting.
fn unconstrained_json(out: &GenerationOutcome) -> String {
    let seeds: Vec<String> = out.seeds.iter().map(u64::to_string).collect();
    format!(
        "{{\"coverage\":{},\"num_detected\":{},\"num_faults\":{},\"seeds\":[{}],\
         \"tests_applied\":{},\"peak_swa\":{}}}",
        out.fault_coverage(),
        out.num_detected(),
        out.faults.len(),
        seeds.join(","),
        out.tests_applied,
        out.peak_swa,
    )
}

/// Semantic summary of a constrained outcome.
fn constrained_json(out: &ConstrainedOutcome) -> String {
    let seqs: Vec<String> = out
        .sequences
        .iter()
        .map(|s| {
            let segs: Vec<String> = s
                .segments
                .iter()
                .map(|g| format!("[{},{}]", g.seed, g.len))
                .collect();
            format!("[{}]", segs.join(","))
        })
        .collect();
    format!(
        "{{\"coverage\":{},\"num_detected\":{},\"nmulti\":{},\"nsegmax\":{},\"lmax\":{},\
         \"nseeds\":{},\"sequences\":[{}],\"tests_applied\":{},\"peak_swa\":{}}}",
        out.fault_coverage(),
        out.num_detected(),
        out.nmulti(),
        out.nsegmax(),
        out.lmax(),
        out.nseeds(),
        seqs.join(","),
        out.tests_applied,
        out.peak_swa,
    )
}

/// Semantic summary of a holding outcome.
fn holding_json(out: &HoldingOutcome) -> String {
    let sets: Vec<String> = out
        .sets
        .iter()
        .map(|s| {
            let m: Vec<String> = s.members.iter().map(usize::to_string).collect();
            format!("[{}]", m.join(","))
        })
        .collect();
    format!(
        "{{\"base_coverage\":{},\"final_coverage\":{},\"num_detected\":{},\"nh\":{},\
         \"nbits\":{},\"nseeds\":{},\"sets\":[{}],\"tests_applied\":{},\"peak_swa\":{}}}",
        out.base_coverage,
        out.final_coverage(),
        detected_count(&out.detected),
        out.sets.len(),
        out.nbits(),
        out.nseeds(),
        sets.join(","),
        out.tests_applied,
        out.peak_swa,
    )
}

/// Build the full golden document for one circuit: semantic summaries from
/// the serial run plus per-batch deterministic counters, asserting along the
/// way that every batch/thread combination agrees.
fn golden_document(name: &str, net: &Netlist) -> String {
    let serial = cfg_with(1, 1);
    let bound = swafunc(net, &DrivingBlock::Buffers, &serial);
    // A deliberately tightened bound so holding has faults left to chase.
    let hold_bound = bound * 0.75;

    let u_ref = generate_unconstrained(net, &serial);
    let c_ref = generate_constrained(net, bound, &serial);
    let b_ref = generate_constrained(net, hold_bound, &serial);
    let h_ref = improve_with_holding(net, hold_bound, &serial, &b_ref);

    let mut per_batch = String::new();
    for (bi, &batch) in BATCHES.iter().enumerate() {
        let mut batch_stats: Option<(String, String, String)> = None;
        for &threads in &THREADS {
            let cfg = cfg_with(batch, threads);
            let label = format!("{name} batch={batch} threads={threads}");

            let u = generate_unconstrained(net, &cfg);
            assert_eq!(
                unconstrained_json(&u),
                unconstrained_json(&u_ref),
                "{label}"
            );
            let c = generate_constrained(net, bound, &cfg);
            assert_eq!(constrained_json(&c), constrained_json(&c_ref), "{label}");
            let b = generate_constrained(net, hold_bound, &cfg);
            let h = improve_with_holding(net, hold_bound, &cfg, &b);
            assert_eq!(holding_json(&h), holding_json(&h_ref), "{label}");

            let triple = (
                stats_json(&u.stats),
                stats_json(&c.stats),
                stats_json(&h.stats),
            );
            match &batch_stats {
                // Counters must be thread-independent for a fixed batch.
                Some(first) => assert_eq!(first, &triple, "{label}: counters vary with threads"),
                None => batch_stats = Some(triple),
            }
        }
        let (us, cs, hs) = batch_stats.unwrap();
        if bi > 0 {
            per_batch.push(',');
        }
        write!(
            per_batch,
            "{{\"batch\":{batch},\"unconstrained\":{us},\"constrained\":{cs},\"holding\":{hs}}}"
        )
        .unwrap();
    }

    format!(
        "{{\"circuit\":\"{name}\",\"config\":\"smoke\",\"swafunc\":{bound},\
         \"holding_bound\":{hold_bound},\n\"unconstrained\":{},\n\"constrained\":{},\n\
         \"holding\":{},\n\"stats_per_batch\":[{per_batch}]}}\n",
        unconstrained_json(&u_ref),
        constrained_json(&c_ref),
        holding_json(&h_ref),
    )
}

#[test]
fn golden_outcomes_match_committed_fixtures() {
    let regen = std::env::var("FBT_GOLDEN_REGEN").is_ok();
    for (name, net) in circuits() {
        let doc = golden_document(name, &net);
        let path = format!("{}/tests/golden/{name}.json", env!("CARGO_MANIFEST_DIR"));
        if regen {
            std::fs::write(&path, &doc).expect("write golden fixture");
            continue;
        }
        let expected = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden fixture {path}: {e}"));
        assert_eq!(
            doc, expected,
            "{name}: outcome drifted from the committed golden fixture \
             (regenerate deliberately with FBT_GOLDEN_REGEN=1 only if the \
             change is intended)"
        );
    }
}
