//! Instrumentation for the Chapter-4 generation loops.

use std::fmt;
use std::time::Duration;

/// Counters and per-phase wall-clock times collected by one generation run
/// (`generate_unconstrained`, `generate_constrained*`,
/// `improve_with_holding*`).
///
/// Counters are deterministic for a fixed configuration — including
/// `wasted_evals`, which depends only on the batch size, not on the thread
/// count. Wall-clock fields are measurements and vary run to run; equality
/// checks on outcomes should compare the semantic fields, not the stats.
#[derive(Debug, Clone, Default)]
pub struct GenerationStats {
    /// Candidate seeds consumed by the search (the serial loop's "tried").
    pub seeds_tried: usize,
    /// Candidates committed (selected seeds / segments).
    pub seeds_kept: usize,
    /// Speculative candidate evaluations performed (≥ `seeds_tried`).
    pub evals: usize,
    /// Evaluations whose results were discarded because an earlier
    /// candidate in the round committed first (`evals - seeds_tried`).
    pub wasted_evals: usize,
    /// Fault-simulation engine invocations actually issued. On the
    /// candidate-packed path one grouped call evaluates a whole speculative
    /// round, so this is far below [`GenerationStats::candidate_groups`];
    /// on the legacy per-candidate path the two counters are equal.
    pub fsim_calls: usize,
    /// Candidate test groups submitted to fault simulation (one per
    /// fault-simulated candidate, regardless of how the calls were
    /// batched). This is the counter `fsim_calls` used to conflate.
    pub candidate_groups: usize,
    /// Faults excluded from simulation because the lint pre-flight proved
    /// them untestable by construction (structurally constant or
    /// combinationally unobservable lines). They stay undetected in the
    /// outcome's full-length flags — exactly what simulating them would
    /// yield — so this only measures avoided work.
    pub faults_skipped_lint: usize,
    /// Logic-simulated clock cycles (TPG expansion + admissibility +
    /// trajectory replay).
    pub sim_cycles: usize,
    /// Wall time in the seed-selection / sequence-construction phase.
    pub select_wall: Duration,
    /// Wall time in the reverse-compaction phase (unconstrained method).
    pub compact_wall: Duration,
    /// Wall time of the whole run.
    pub total_wall: Duration,
}

impl GenerationStats {
    /// Fraction of speculative evaluations that were wasted, in `[0, 1]`.
    pub fn waste_ratio(&self) -> f64 {
        if self.evals == 0 {
            0.0
        } else {
            self.wasted_evals as f64 / self.evals as f64
        }
    }

    /// Accumulate another run's counters and times (used by the holding
    /// stage, which performs many construction runs).
    pub fn absorb(&mut self, other: &GenerationStats) {
        self.seeds_tried += other.seeds_tried;
        self.seeds_kept += other.seeds_kept;
        self.evals += other.evals;
        self.wasted_evals += other.wasted_evals;
        self.fsim_calls += other.fsim_calls;
        self.candidate_groups += other.candidate_groups;
        // The pre-flight verdict is a property of the circuit, not of the
        // run: absorbing another run over the same circuit must not double
        // the count.
        self.faults_skipped_lint = self.faults_skipped_lint.max(other.faults_skipped_lint);
        self.sim_cycles += other.sim_cycles;
        self.select_wall += other.select_wall;
        self.compact_wall += other.compact_wall;
        self.total_wall += other.total_wall;
    }

    /// Render as a JSON object (no external dependencies; all fields are
    /// numbers, durations in seconds).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seeds_tried\":{},\"seeds_kept\":{},\"evals\":{},\"wasted_evals\":{},\
             \"fsim_calls\":{},\"candidate_groups\":{},\"faults_skipped_lint\":{},\
             \"sim_cycles\":{},\"select_wall_s\":{:.6},\
             \"compact_wall_s\":{:.6},\"total_wall_s\":{:.6}}}",
            self.seeds_tried,
            self.seeds_kept,
            self.evals,
            self.wasted_evals,
            self.fsim_calls,
            self.candidate_groups,
            self.faults_skipped_lint,
            self.sim_cycles,
            self.select_wall.as_secs_f64(),
            self.compact_wall.as_secs_f64(),
            self.total_wall.as_secs_f64(),
        )
    }
}

impl fmt::Display for GenerationStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seeds {}/{} kept, {} evals ({} wasted, {:.0}%), {} fsim calls \
             ({} groups), {} faults lint-skipped, {} sim cycles, {:.3}s",
            self.seeds_kept,
            self.seeds_tried,
            self.evals,
            self.wasted_evals,
            100.0 * self.waste_ratio(),
            self.fsim_calls,
            self.candidate_groups,
            self.faults_skipped_lint,
            self.sim_cycles,
            self.total_wall.as_secs_f64(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waste_ratio_handles_empty_runs() {
        assert_eq!(GenerationStats::default().waste_ratio(), 0.0);
        let s = GenerationStats {
            evals: 4,
            wasted_evals: 1,
            ..GenerationStats::default()
        };
        assert!((s.waste_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn absorb_sums_counters() {
        let mut a = GenerationStats {
            seeds_tried: 3,
            evals: 5,
            fsim_calls: 5,
            ..GenerationStats::default()
        };
        let b = GenerationStats {
            seeds_tried: 2,
            evals: 2,
            fsim_calls: 2,
            wasted_evals: 1,
            ..GenerationStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.seeds_tried, 5);
        assert_eq!(a.evals, 7);
        assert_eq!(a.fsim_calls, 7);
        assert_eq!(a.wasted_evals, 1);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let j = GenerationStats::default().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"seeds_tried\":0"));
        assert!(j.contains("\"total_wall_s\":0.000000"));
    }
}
