//! Overtesting estimation (the limitation discussed in paper §4.6 and the
//! motivation for the §5.1 signal-transition-pattern metric).
//!
//! Bounding switching activity guarantees test power stays within the
//! functional envelope, but a state-transition can respect the bound while
//! still exercising *signal transitions that functional operation never
//! produces* — the residual overtesting channel. This module replays a
//! generated test program and counts, per applied clock cycle, whether its
//! pattern of signal-transitions is covered by the functional library.

use fbt_netlist::Netlist;
use fbt_sim::{comb, Bits};

use crate::constrained::ConstrainedOutcome;
use crate::engine::{SeedSource, TpgSeedSource};
use crate::stp::StpLibrary;
use crate::FunctionalBistConfig;

/// How functional the applied state-transitions were.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OvertestReport {
    /// Measurable applied clock cycles (segment-internal transitions).
    pub total_transitions: usize,
    /// Cycles whose signal-transition pattern is *not* a subset of any
    /// functional pattern — the residual overtesting exposure.
    pub non_functional: usize,
}

impl OvertestReport {
    /// Fraction of applied transitions outside the functional envelope.
    pub fn non_functional_fraction(&self) -> f64 {
        if self.total_transitions == 0 {
            0.0
        } else {
            self.non_functional as f64 / self.total_transitions as f64
        }
    }
}

/// Replay `outcome` and grade every applied state-transition against the
/// functional signal-transition library.
///
/// A run produced with [`crate::generate_constrained_with_library`] under
/// the same library reports zero non-functional transitions by
/// construction; SWA-bounded runs typically report a nonzero residue —
/// quantifying what the stricter metric buys.
pub fn estimate_overtesting(
    net: &Netlist,
    outcome: &ConstrainedOutcome,
    cfg: &FunctionalBistConfig,
    library: &StpLibrary,
) -> OvertestReport {
    let source = TpgSeedSource::for_circuit(net, cfg);
    let mut total = 0usize;
    let mut non_functional = 0usize;
    let mut vals = vec![false; net.num_nodes()];
    let mut prev = vec![false; net.num_nodes()];
    for seq in &outcome.sequences {
        let mut state = seq.initial_state.clone();
        for seg in &seq.segments {
            let pis = source.expand(seg.seed, cfg.seq_len);
            for (c, pi) in pis[..seg.len].iter().enumerate() {
                for (i, &id) in net.inputs().iter().enumerate() {
                    vals[id.index()] = pi.get(i);
                }
                for (i, &id) in net.dffs().iter().enumerate() {
                    vals[id.index()] = state.get(i);
                }
                comb::eval_scalar(net, &mut vals);
                if c > 0 {
                    total += 1;
                    let pattern: Vec<(u32, bool)> = prev
                        .iter()
                        .zip(&vals)
                        .enumerate()
                        .filter(|(_, (a, b))| a != b)
                        .map(|(i, (_, &b))| (i as u32, b))
                        .collect();
                    if !library.allows(&pattern) {
                        non_functional += 1;
                    }
                }
                state = net
                    .dffs()
                    .iter()
                    .map(|&d| vals[net.node(d).fanins()[0].index()])
                    .collect::<Bits>();
                std::mem::swap(&mut prev, &mut vals);
            }
        }
    }
    OvertestReport {
        total_transitions: total,
        non_functional,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{functional_sequences, DrivingBlock};
    use crate::{generate_constrained, generate_constrained_with_library, DeviationMetric};
    use fbt_netlist::s27;

    #[test]
    fn stp_generated_programs_have_zero_residue() {
        let net = s27();
        let cfg = FunctionalBistConfig {
            metric: DeviationMetric::SignalTransitionPatterns,
            ..FunctionalBistConfig::smoke()
        };
        let seqs = functional_sequences(&net, &DrivingBlock::Buffers, &cfg);
        let lib = StpLibrary::collect(&net, &fbt_sim::Bits::zeros(3), &seqs);
        let bound = lib.max_pattern_len() as f64 / net.num_nodes() as f64;
        let out = generate_constrained_with_library(&net, bound, &lib, &cfg);
        let report = estimate_overtesting(&net, &out, &cfg, &lib);
        assert_eq!(
            report.non_functional, 0,
            "STP-admitted transitions are functional by construction"
        );
    }

    #[test]
    fn swa_bounded_programs_can_leave_a_residue() {
        let net = s27();
        let cfg = FunctionalBistConfig::smoke();
        let seqs = functional_sequences(&net, &DrivingBlock::Buffers, &cfg);
        let lib = StpLibrary::collect(&net, &fbt_sim::Bits::zeros(3), &seqs);
        let out = generate_constrained(&net, 1.0, &cfg);
        let report = estimate_overtesting(&net, &out, &cfg, &lib);
        assert!(report.total_transitions > 0);
        assert!(report.non_functional_fraction() >= 0.0);
        assert!(report.non_functional_fraction() <= 1.0);
        // With an unconstrained bound and a tiny functional sample, some
        // transitions fall outside the library.
        assert!(
            report.non_functional > 0,
            "expected residual overtesting under bound = 100%"
        );
    }
}
