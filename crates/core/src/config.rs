//! Configuration for built-in test generation experiments.

use crate::search::SearchOptions;

/// The metric used to decide whether a state-transition deviates too far from
/// functional operation (paper §4.4 vs. the §5.1 future-work alternative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeviationMetric {
    /// Bound the per-cycle switching activity by `SWAfunc` (the paper's
    /// method).
    #[default]
    SwitchingActivity,
    /// Require each state-transition's *pattern of signal-transitions* to be
    /// a subset of one observed during functional operation (\[90\]); implies
    /// the switching-activity bound and additionally forbids non-functional
    /// signal transitions.
    SignalTransitionPatterns,
}

/// All tunables of the generation flow.
///
/// The paper's experiment parameters (§4.6) are available as
/// [`FunctionalBistConfig::paper`]; scaled-down presets keep CI fast.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionalBistConfig {
    /// LFSR width `NLFSR` (32 in the paper).
    pub lfsr_width: u32,
    /// Biasing gate fan-in `m` (3 in the paper).
    pub m: usize,
    /// Primary-input sequence length `L` per segment attempt (must be even).
    pub seq_len: usize,
    /// Unconstrained method: stop after this many consecutive useless seeds
    /// (`U`).
    pub useless_seed_limit: usize,
    /// Safety cap on the total number of seeds tried.
    pub max_seeds: usize,
    /// Constrained method: consecutive seed failures ending a sequence (`R`,
    /// 3 in the paper).
    pub segment_failure_limit: usize,
    /// Constrained method: consecutive failed sequence attempts ending the
    /// procedure (`Q`, 5 in the paper).
    pub attempt_failure_limit: usize,
    /// Number of functional input sequences used to estimate `SWAfunc`
    /// (30 in the paper).
    pub func_sequences: usize,
    /// Length of each functional input sequence (30 000 in the paper).
    pub func_len: usize,
    /// State holding period exponent `h`: hold every `2^h` cycles (2 in the
    /// paper: every 4 cycles).
    pub hold_period_log2: u32,
    /// Height `H` of the binary set-selection tree (6 in the paper).
    pub hold_tree_height: u32,
    /// Master seed for all pseudo-random decisions.
    pub master_seed: u64,
    /// Skip faults that static lint analysis proves untestable by
    /// construction (structurally constant or combinationally unobservable
    /// lines) before any simulation runs. Sound: skipped faults are
    /// undetectable under every test, so the outcome — seeds, sequences and
    /// the full-length detection flags — is bit-identical either way; only
    /// the simulated fault count shrinks (see
    /// [`crate::GenerationStats::faults_skipped_lint`]).
    pub lint_preflight: bool,
    /// Deviation metric for constrained generation.
    pub metric: DeviationMetric,
    /// Speculative seed-search tunables (batch size, worker threads). Any
    /// setting produces bit-identical outcomes; this only trades wasted
    /// speculative evaluations for wall-clock time.
    pub search: SearchOptions,
}

impl FunctionalBistConfig {
    /// The parameters of the paper's §4.6 experiments. Multi-hour runs on
    /// large circuits; prefer [`FunctionalBistConfig::default`] for routine use.
    pub fn paper() -> Self {
        FunctionalBistConfig {
            lfsr_width: 32,
            m: 3,
            seq_len: 18_000,
            useless_seed_limit: 10,
            max_seeds: 100_000,
            segment_failure_limit: 3,
            attempt_failure_limit: 5,
            func_sequences: 30,
            func_len: 30_000,
            hold_period_log2: 2,
            hold_tree_height: 6,
            master_seed: 0x0FB7_2011,
            lint_preflight: true,
            metric: DeviationMetric::SwitchingActivity,
            search: SearchOptions::default(),
        }
    }

    /// Scaled-down parameters suitable for benchmark-catalog circuits on a
    /// laptop (the `ExperimentScale::Default` of DESIGN.md).
    pub fn scaled() -> Self {
        FunctionalBistConfig {
            seq_len: 600,
            useless_seed_limit: 6,
            max_seeds: 400,
            func_sequences: 8,
            func_len: 1_500,
            hold_tree_height: 3,
            ..FunctionalBistConfig::paper()
        }
    }

    /// Minimal parameters for unit tests and doctests.
    pub fn smoke() -> Self {
        FunctionalBistConfig {
            seq_len: 60,
            useless_seed_limit: 3,
            max_seeds: 40,
            func_sequences: 2,
            func_len: 120,
            hold_tree_height: 2,
            ..FunctionalBistConfig::paper()
        }
    }

    /// Validate invariants (even `L`, non-zero budgets).
    ///
    /// # Panics
    ///
    /// Panics on invalid configurations; called by the generation entry
    /// points.
    pub fn validate(&self) {
        assert!(
            self.seq_len >= 2 && self.seq_len.is_multiple_of(2),
            "L must be even and >= 2"
        );
        assert!(self.max_seeds > 0, "seed budget must be positive");
        assert!(self.useless_seed_limit > 0, "U must be positive");
        assert!(self.segment_failure_limit > 0, "R must be positive");
        assert!(self.attempt_failure_limit > 0, "Q must be positive");
        assert!(self.hold_period_log2 >= 1, "h must be >= 1");
        assert!(self.m >= 2, "m must be >= 2");
        self.search.validate();
    }
}

impl Default for FunctionalBistConfig {
    fn default() -> Self {
        FunctionalBistConfig::scaled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        FunctionalBistConfig::paper().validate();
        FunctionalBistConfig::scaled().validate();
        FunctionalBistConfig::smoke().validate();
    }

    #[test]
    fn paper_matches_section_4_6() {
        let c = FunctionalBistConfig::paper();
        assert_eq!(c.lfsr_width, 32);
        assert_eq!(c.m, 3);
        assert_eq!(c.segment_failure_limit, 3);
        assert_eq!(c.attempt_failure_limit, 5);
        assert_eq!(c.func_sequences, 30);
        assert_eq!(c.func_len, 30_000);
        assert_eq!(c.hold_period_log2, 2);
        assert_eq!(c.hold_tree_height, 6);
    }

    #[test]
    #[should_panic(expected = "L must be even")]
    fn odd_length_rejected() {
        let c = FunctionalBistConfig {
            seq_len: 7,
            ..FunctionalBistConfig::smoke()
        };
        c.validate();
    }
}
