//! Patterns of signal-transitions — the §5.1 future-work deviation metric
//! (\[90\]).
//!
//! A *pattern of signal-transitions* of a state-transition is the set of
//! lines that switch, each tagged with its direction. Requiring every
//! state-transition during on-chip test generation to have a pattern that is
//! a **subset** of some pattern observed during functional operation is
//! strictly stronger than the switching-activity bound: it implies
//! `SWA ≤ SWAfunc` *and* forbids signal transitions that functional
//! operation never produces, addressing overtesting through slow
//! non-functional paths.

use std::collections::HashSet;

use fbt_netlist::Netlist;
use fbt_sim::{comb, Bits};

use crate::engine::StateOverlay;
use crate::policy::AdmissibilityPolicy;

/// A library of functional signal-transition patterns.
///
/// Each pattern is a sorted list of `(line, new_value)` pairs; patterns are
/// deduplicated on collection.
#[derive(Debug, Clone, Default)]
pub struct StpLibrary {
    patterns: Vec<Vec<(u32, bool)>>,
}

/// Compute the full node-value vector for one cycle.
fn cycle_values(net: &Netlist, state: &Bits, pi: &Bits, vals: &mut [bool]) {
    for (i, &id) in net.inputs().iter().enumerate() {
        vals[id.index()] = pi.get(i);
    }
    for (i, &id) in net.dffs().iter().enumerate() {
        vals[id.index()] = state.get(i);
    }
    comb::eval_scalar(net, vals);
}

/// The pattern of signal-transitions between two consecutive value vectors.
fn pattern_of(prev: &[bool], cur: &[bool]) -> Vec<(u32, bool)> {
    prev.iter()
        .zip(cur)
        .enumerate()
        .filter(|(_, (a, b))| a != b)
        .map(|(i, (_, &b))| (i as u32, b))
        .collect()
}

fn next_state(net: &Netlist, vals: &[bool]) -> Bits {
    net.dffs()
        .iter()
        .map(|&d| vals[net.node(d).fanins()[0].index()])
        .collect()
}

impl StpLibrary {
    /// Collect the library by simulating the functional input sequences from
    /// `initial` and recording every state-transition's pattern.
    pub fn collect(net: &Netlist, initial: &Bits, sequences: &[Vec<Bits>]) -> Self {
        let mut seen: HashSet<Vec<(u32, bool)>> = HashSet::new();
        let mut vals = vec![false; net.num_nodes()];
        let mut prev = vec![false; net.num_nodes()];
        for seq in sequences {
            let mut state = initial.clone();
            for (c, pi) in seq.iter().enumerate() {
                cycle_values(net, &state, pi, &mut vals);
                if c > 0 {
                    seen.insert(pattern_of(&prev, &vals));
                }
                state = next_state(net, &vals);
                std::mem::swap(&mut prev, &mut vals);
            }
        }
        let mut patterns: Vec<Vec<(u32, bool)>> = seen.into_iter().collect();
        // Longest first: a candidate can only be a subset of a pattern at
        // least as large, so lookups can stop early.
        patterns.sort_by_key(|p| std::cmp::Reverse(p.len()));
        StpLibrary { patterns }
    }

    /// Number of distinct functional patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Is `candidate` (sorted) a subset of some functional pattern?
    pub fn allows(&self, candidate: &[(u32, bool)]) -> bool {
        if candidate.is_empty() {
            return true;
        }
        for p in &self.patterns {
            if p.len() < candidate.len() {
                return false; // remaining patterns are even shorter
            }
            if is_subset(candidate, p) {
                return true;
            }
        }
        false
    }

    /// The largest functional pattern size — an upper bound on admissible
    /// switching activity (in lines).
    pub fn max_pattern_len(&self) -> usize {
        self.patterns.first().map_or(0, Vec::len)
    }
}

/// Merge-test: is sorted `a` a subset of sorted `b`?
fn is_subset(a: &[(u32, bool)], b: &[(u32, bool)]) -> bool {
    let mut bi = 0;
    'outer: for x in a {
        while bi < b.len() {
            match b[bi].cmp(x) {
                std::cmp::Ordering::Less => bi += 1,
                std::cmp::Ordering::Equal => {
                    bi += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

impl AdmissibilityPolicy for StpLibrary {
    fn admissible_prefix(
        &self,
        net: &Netlist,
        start: &Bits,
        pis: &[Bits],
        _overlay: &StateOverlay,
    ) -> usize {
        let mut vals = vec![false; net.num_nodes()];
        let mut prev = vec![false; net.num_nodes()];
        let mut state = start.clone();
        for (c, pi) in pis.iter().enumerate() {
            cycle_values(net, &state, pi, &mut vals);
            if c > 0 {
                let pat = pattern_of(&prev, &vals);
                if !self.allows(&pat) {
                    // Violation at cycle c: usable prefix is c-1 cycles,
                    // rounded down to even (same geometry as the SWA rule).
                    return (c - 1) & !1usize;
                }
            }
            state = next_state(net, &vals);
            std::mem::swap(&mut prev, &mut vals);
        }
        pis.len() & !1usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{functional_sequences, DrivingBlock};
    use crate::{generate_constrained_with_library, DeviationMetric, FunctionalBistConfig};
    use fbt_netlist::s27;

    #[test]
    fn subset_merge_test() {
        let b = [(1, true), (3, false), (7, true)];
        assert!(is_subset(&[(3, false)], &b));
        assert!(is_subset(&[(1, true), (7, true)], &b));
        assert!(is_subset(&[], &b));
        assert!(!is_subset(&[(3, true)], &b));
        assert!(!is_subset(&[(2, true)], &b));
        assert!(!is_subset(&[(1, true), (8, false)], &b));
    }

    #[test]
    fn functional_patterns_allow_themselves() {
        let net = s27();
        let cfg = FunctionalBistConfig::smoke();
        let seqs = functional_sequences(&net, &DrivingBlock::Buffers, &cfg);
        let lib = StpLibrary::collect(&net, &Bits::zeros(3), &seqs);
        assert!(!lib.is_empty());
        // Re-simulate the first sequence and check every cycle is allowed.
        let prefix =
            lib.admissible_prefix(&net, &Bits::zeros(3), &seqs[0], &StateOverlay::Identity);
        assert_eq!(prefix, seqs[0].len() & !1usize);
    }

    #[test]
    fn empty_pattern_always_allowed() {
        let lib = StpLibrary::default();
        assert!(lib.allows(&[]));
        assert!(!lib.allows(&[(0, true)]));
    }

    #[test]
    fn stp_constrained_generation_runs() {
        let net = s27();
        let cfg = FunctionalBistConfig {
            metric: DeviationMetric::SignalTransitionPatterns,
            ..FunctionalBistConfig::smoke()
        };
        let seqs = functional_sequences(&net, &DrivingBlock::Buffers, &cfg);
        let lib = StpLibrary::collect(&net, &Bits::zeros(3), &seqs);
        let bound = lib.max_pattern_len() as f64 / net.num_nodes() as f64;
        let out = generate_constrained_with_library(&net, bound, &lib, &cfg);
        // STP is stricter than SWA: activity stays within the largest
        // functional pattern.
        assert!(out.peak_swa <= bound + 1e-12);
    }

    #[test]
    fn stp_is_no_looser_than_swa() {
        let net = s27();
        let cfg = FunctionalBistConfig::smoke();
        let seqs = functional_sequences(&net, &DrivingBlock::Buffers, &cfg);
        let lib = StpLibrary::collect(&net, &Bits::zeros(3), &seqs);
        let swa_bound = lib.max_pattern_len() as f64 / net.num_nodes() as f64;
        let swa_rule = crate::policy::SwaRule { bound: swa_bound };
        // On any candidate segment, the STP prefix cannot exceed the SWA
        // prefix computed from the library's own activity ceiling.
        let mut tpg =
            fbt_bist::Tpg::new(fbt_bist::TpgSpec::standard(vec![fbt_sim::Trit::X; 4]), 42);
        let overlay = StateOverlay::Identity;
        for _ in 0..5 {
            let pis = tpg.sequence(40);
            let stp_len = lib.admissible_prefix(&net, &Bits::zeros(3), &pis, &overlay);
            let swa_len = swa_rule.admissible_prefix(&net, &Bits::zeros(3), &pis, &overlay);
            assert!(stp_len <= swa_len, "stp {stp_len} > swa {swa_len}");
        }
    }
}
