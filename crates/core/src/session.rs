//! Cycle-accurate replay of a generated test program through the BIST
//! hardware models (Figs. 4.2, 4.5, 4.6): TPG, clock-cycle counter, MISR
//! and scan chains.
//!
//! This is the bridge between the *software* view of the method (sequences,
//! tests, fault coverage) and the *hardware* that would apply it on-chip.
//! [`run_on_hardware`] drives the circuit from the TPG exactly as the
//! controller would — seed load and shift-register fill between segments,
//! the test-apply signal from the counter's low bit, response compaction
//! into the MISR every capture — and returns the applied tests, the final
//! signature, and the test-time budget. A matching fault-free signature is
//! the pass criterion of on-chip test (§4.2).

use fbt_bist::schedule::TestSchedule;
use fbt_bist::{CycleCounter, Misr, ScanChains, Tpg};
use fbt_fault::BroadsideTest;
use fbt_netlist::Netlist;
use fbt_sim::seq::SeqSim;

use crate::constrained::ConstrainedOutcome;
use crate::engine::TpgSeedSource;
use crate::FunctionalBistConfig;

/// The observable result of a hardware session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionResult {
    /// The broadside tests applied, in application order.
    pub tests: Vec<BroadsideTest>,
    /// The fault-free MISR signature after the whole session.
    pub signature: u64,
    /// Total tester clock cycles (functional cycles + seed loads +
    /// shift-register fills + scan/circular-shift cycles).
    pub total_cycles: usize,
    /// Mean scan shift activity across the session's scan loads — the
    /// shift-power figure the low-power scan literature targets.
    pub mean_shift_activity: f64,
}

/// Replay `outcome`'s multi-segment sequences through the hardware models.
///
/// The returned tests are bit-identical to
/// [`crate::constrained::replay_tests`] — asserted by the workspace's
/// integration tests — because the TPG model *is* the sequence generator
/// used during construction.
///
/// # Panics
///
/// Panics if `outcome` does not belong to `net` (width mismatches).
pub fn run_on_hardware(
    net: &Netlist,
    outcome: &ConstrainedOutcome,
    cfg: &FunctionalBistConfig,
) -> SessionResult {
    // The same TPG structure the generation flow builds sequences with —
    // the hardware session streams it cycle by cycle instead of expanding
    // whole sequences.
    let spec = TpgSeedSource::for_circuit(net, cfg).spec;
    let chains = ScanChains::paper_config(net.num_dffs());
    let schedule = TestSchedule::new(
        chains.longest(),
        spec.shift_register_len(),
        cfg.lfsr_width as usize,
    );
    let mut misr = Misr::new(32);
    let mut tests = Vec::with_capacity(outcome.tests_applied);
    let mut shift_activity_sum = 0.0f64;
    let mut shift_loads = 0usize;

    let zero = fbt_sim::Bits::zeros(net.num_dffs());
    let mut sim = SeqSim::new(net, &zero);
    for seq in &outcome.sequences {
        // Scan in the initial state (shift power measured against the
        // state left by the previous sequence).
        shift_activity_sum += chains.shift_activity(sim.state(), &seq.initial_state);
        shift_loads += 1;
        sim.set_state(&seq.initial_state);

        for seg in &seq.segments {
            // Seed load + shift-register initialization happen with the
            // circuit clock gated; the TPG constructor models both.
            let mut tpg = Tpg::new(spec.clone(), seg.seed);
            let mut counter = CycleCounter::new();
            let mut pending: Option<(fbt_sim::Bits, fbt_sim::Bits)> = None;
            for _ in 0..seg.len {
                let pi = tpg.next_vector();
                let launch = counter.test_apply(1);
                let state_before = sim.state().clone();
                let r = sim.step(&pi);
                if launch {
                    pending = Some((state_before, pi.clone()));
                } else if let Some((s1, v1)) = pending.take() {
                    // Capture cycle: the test completes; its response (the
                    // primary outputs under the second pattern and the
                    // captured final state) is compacted into the MISR.
                    tests.push(BroadsideTest::new(s1, v1, pi.clone()));
                    misr.absorb(&r.outputs);
                    misr.absorb(&r.next_state);
                }
                counter.tick();
            }
        }
    }

    let total_cycles = schedule.total_cycles(&outcome.segment_lengths());
    SessionResult {
        tests,
        signature: misr.signature(),
        total_cycles,
        mean_shift_activity: if shift_loads > 0 {
            shift_activity_sum / shift_loads as f64
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{swafunc, DrivingBlock};
    use crate::generate_constrained;
    use fbt_netlist::s27;

    #[test]
    fn hardware_session_reproduces_the_software_tests() {
        let net = s27();
        let cfg = FunctionalBistConfig::smoke();
        let bound = swafunc(&net, &DrivingBlock::Buffers, &cfg);
        let out = generate_constrained(&net, bound, &cfg);
        let session = run_on_hardware(&net, &out, &cfg);
        let replayed = crate::constrained::replay_tests(&net, &out, &cfg);
        assert_eq!(session.tests, replayed, "hardware and software disagree");
        assert_eq!(session.tests.len(), out.tests_applied);
        assert!(session.total_cycles > out.tests_applied); // scan overhead
    }

    #[test]
    fn signature_is_deterministic_and_fault_sensitive() {
        let net = s27();
        let cfg = FunctionalBistConfig::smoke();
        let out = generate_constrained(&net, 1.0, &cfg);
        let a = run_on_hardware(&net, &out, &cfg);
        let b = run_on_hardware(&net, &out, &cfg);
        assert_eq!(a.signature, b.signature);
        assert!(a.mean_shift_activity >= 0.0 && a.mean_shift_activity <= 1.0);
    }
}
