//! Extracting functional broadside tests from on-chip sequences (paper §4.3).
//!
//! A primary-input sequence `P = p(0) … p(L-1)` applied from a reachable
//! state takes the circuit through states `S = s(0) … s(L)`. Any two
//! consecutive cycles define the functional broadside test
//! `t(i) = <s(i), p(i), s(i+1), p(i+1)>`. To avoid hardware that would
//! rewind overlapping tests, tests are applied every `2^q` cycles; the paper
//! uses `q = 1`, i.e. `t(0), t(2), t(4), …`.

use fbt_fault::{BroadsideTest, TwoPatternTest};
use fbt_sim::Bits;

/// Extract the non-overlapping functional broadside tests (`q = 1`) from a
/// primary-input sequence and its recorded state sequence.
///
/// `states` must have length `pis.len() + 1` (the trajectory invariant).
/// Odd-length sequences lose their final cycle: a test needs both `p(i)` and
/// `p(i+1)`.
///
/// # Panics
///
/// Panics if `states.len() != pis.len() + 1`.
pub fn functional_tests(pis: &[Bits], states: &[Bits]) -> Vec<BroadsideTest> {
    assert_eq!(states.len(), pis.len() + 1, "trajectory length mismatch");
    (0..pis.len().saturating_sub(1))
        .step_by(2)
        .map(|i| BroadsideTest::new(states[i].clone(), pis[i].clone(), pis[i + 1].clone()))
        .collect()
}

/// Extract functional broadside tests applied every `2^q` cycles.
///
/// `q = 1` maximizes the number of tests (and is what the paper's
/// experiments use, via [`functional_tests`]); larger `q` trades tests for
/// cheaper control logic (Fig. 4.6 uses a `q`-input NOR on the clock-cycle
/// counter).
///
/// # Panics
///
/// Panics if `states.len() != pis.len() + 1` or `q == 0`.
pub fn functional_tests_every(pis: &[Bits], states: &[Bits], q: u32) -> Vec<BroadsideTest> {
    assert_eq!(states.len(), pis.len() + 1, "trajectory length mismatch");
    assert!((1..32).contains(&q), "q out of range");
    (0..pis.len().saturating_sub(1))
        .step_by(1 << q)
        .map(|i| BroadsideTest::new(states[i].clone(), pis[i].clone(), pis[i + 1].clone()))
        .collect()
}

/// Extract two-pattern tests with *explicit* second states — required when
/// the trajectory was simulated with state holding, so that `s(i+1)` can
/// deviate from the natural broadside response (paper §4.5.1).
///
/// # Panics
///
/// Panics if `states.len() != pis.len() + 1`.
pub fn held_tests(pis: &[Bits], states: &[Bits]) -> Vec<TwoPatternTest> {
    assert_eq!(states.len(), pis.len() + 1, "trajectory length mismatch");
    (0..pis.len().saturating_sub(1))
        .step_by(2)
        .map(|i| {
            TwoPatternTest::new(
                states[i].clone(),
                pis[i].clone(),
                states[i + 1].clone(),
                pis[i + 1].clone(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbt_netlist::s27;
    use fbt_sim::seq::simulate_sequence;

    fn pis(n: usize) -> Vec<Bits> {
        (0..n)
            .map(|i| Bits::from_bools(&[(i % 2) == 0, (i % 3) == 0, false, true]))
            .collect()
    }

    #[test]
    fn test_count_every_two_cycles() {
        let net = s27();
        let p = pis(10);
        let t = simulate_sequence(&net, &Bits::zeros(3), &p);
        let tests = functional_tests(&p, &t.states);
        assert_eq!(tests.len(), 5);
    }

    #[test]
    fn scan_in_states_are_on_the_trajectory() {
        // The defining property of functional broadside tests: every scan-in
        // state is reachable (it is literally a traversed state).
        let net = s27();
        let p = pis(12);
        let t = simulate_sequence(&net, &Bits::zeros(3), &p);
        let tests = functional_tests(&p, &t.states);
        for (k, test) in tests.iter().enumerate() {
            assert_eq!(test.scan_in, t.states[2 * k]);
            // And the broadside second state equals the traversed next state.
            assert_eq!(test.second_state(&net), t.states[2 * k + 1]);
        }
    }

    #[test]
    fn odd_length_sequence_drops_last_cycle() {
        let net = s27();
        let p = pis(7);
        let t = simulate_sequence(&net, &Bits::zeros(3), &p);
        let tests = functional_tests(&p, &t.states);
        assert_eq!(tests.len(), 3); // t(0), t(2), t(4); p(6) unusable
    }

    #[test]
    fn held_tests_carry_trajectory_states() {
        let net = s27();
        let p = pis(8);
        let t = simulate_sequence(&net, &Bits::zeros(3), &p);
        let held = held_tests(&p, &t.states);
        let plain = functional_tests(&p, &t.states);
        assert_eq!(held.len(), plain.len());
        for (h, b) in held.iter().zip(&plain) {
            assert_eq!(h.s1, b.scan_in);
            assert_eq!(h.s2, b.second_state(&net));
        }
    }

    #[test]
    fn q2_extracts_every_fourth_cycle() {
        let net = s27();
        let p = pis(16);
        let t = simulate_sequence(&net, &Bits::zeros(3), &p);
        let q1 = functional_tests_every(&p, &t.states, 1);
        let q2 = functional_tests_every(&p, &t.states, 2);
        assert_eq!(q1.len(), 8);
        assert_eq!(q2.len(), 4);
        // q = 2 tests are a subset of q = 1 tests (every other one).
        for (k, test) in q2.iter().enumerate() {
            assert_eq!(test, &q1[2 * k]);
        }
        assert_eq!(q1, functional_tests(&p, &t.states));
    }

    #[test]
    #[should_panic(expected = "trajectory length mismatch")]
    fn mismatched_lengths_panic() {
        let p = pis(4);
        let states = vec![Bits::zeros(3); 4];
        let _ = functional_tests(&p, &states);
    }
}
