//! Built-in generation of functional broadside tests with unconstrained
//! primary inputs — the method of \[73\] reviewed in paper §4.3, which is the
//! baseline the constrained method extends.
//!
//! The circuit is initialized into a reachable state (the all-0 state, per
//! §4.6); for each candidate LFSR seed the TPG produces a primary-input
//! sequence of fixed length `L`; the resulting functional broadside tests are
//! fault-simulated, and the seed is kept only if its tests detect new faults.
//! The procedure stops after `U` consecutive useless seeds, then a
//! forward-looking fault-simulation pass prunes seeds made redundant by later
//! ones.

use fbt_bist::{cube, Tpg, TpgSpec};
use fbt_fault::{all_transition_faults, collapse, TransitionFault};
use fbt_fault::{FaultSimEngine, PackedParallelSim};
use fbt_netlist::rng::Rng;
use fbt_netlist::Netlist;
use fbt_sim::seq::simulate_sequence;
use fbt_sim::Bits;

use crate::extract::functional_tests;
use crate::FunctionalBistConfig;

/// Result of a built-in generation run.
#[derive(Debug, Clone)]
pub struct GenerationOutcome {
    /// Selected LFSR seeds, in application order.
    pub seeds: Vec<u64>,
    /// Total number of tests applied on-chip.
    pub tests_applied: usize,
    /// Peak switching activity observed during the applied sequences.
    pub peak_swa: f64,
    /// The collapsed transition fault list.
    pub faults: Vec<TransitionFault>,
    /// Detection flag per fault.
    pub detected: Vec<bool>,
}

impl GenerationOutcome {
    /// Transition fault coverage in percent.
    pub fn fault_coverage(&self) -> f64 {
        fbt_fault::sim::coverage_percent(&self.detected)
    }

    /// Number of detected faults.
    pub fn num_detected(&self) -> usize {
        self.detected.iter().filter(|&&d| d).count()
    }
}

/// Run the unconstrained method of \[73\].
///
/// # Example
///
/// ```
/// use fbt_core::{generate_unconstrained, FunctionalBistConfig};
///
/// let net = fbt_netlist::s27();
/// let out = generate_unconstrained(&net, &FunctionalBistConfig::smoke());
/// assert!(!out.seeds.is_empty());
/// assert!(out.fault_coverage() > 0.0);
/// ```
///
/// # Panics
///
/// Panics on invalid configurations (see
/// [`FunctionalBistConfig::validate`]).
pub fn generate_unconstrained(net: &Netlist, cfg: &FunctionalBistConfig) -> GenerationOutcome {
    cfg.validate();
    let spec = TpgSpec {
        lfsr_width: cfg.lfsr_width,
        m: cfg.m,
        cube: cube::input_cube(net),
    };
    let faults = collapse(net, &all_transition_faults(net));
    let mut detected = vec![false; faults.len()];
    let mut fsim = PackedParallelSim::new(net);
    let mut rng = Rng::new(cfg.master_seed);
    let zero = Bits::zeros(net.num_dffs());

    // Seed selection.
    let mut kept: Vec<u64> = Vec::new();
    let mut useless = 0usize;
    let mut tried = 0usize;
    while useless < cfg.useless_seed_limit && tried < cfg.max_seeds {
        tried += 1;
        let seed = rng.next_u64();
        let pis = Tpg::new(spec.clone(), seed).sequence(cfg.seq_len);
        let traj = simulate_sequence(net, &zero, &pis);
        let tests = functional_tests(&pis, &traj.states);
        let newly = fsim.run(&tests, &faults, &mut detected);
        if newly > 0 {
            kept.push(seed);
            useless = 0;
        } else {
            useless += 1;
        }
    }

    // Forward-looking compaction: walk the kept seeds in reverse order with
    // a fresh fault list; a seed whose tests detect nothing beyond what the
    // later-applied sequences already detect is dropped. Coverage is
    // preserved by construction.
    let mut final_detected = vec![false; faults.len()];
    let mut final_seeds: Vec<u64> = Vec::new();
    let mut tests_applied = 0usize;
    let mut peak_swa = 0.0f64;
    for &seed in kept.iter().rev() {
        let pis = Tpg::new(spec.clone(), seed).sequence(cfg.seq_len);
        let traj = simulate_sequence(net, &zero, &pis);
        let tests = functional_tests(&pis, &traj.states);
        let newly = fsim.run(&tests, &faults, &mut final_detected);
        if newly > 0 {
            final_seeds.push(seed);
            tests_applied += tests.len();
            peak_swa = peak_swa.max(traj.peak_swa());
        }
    }
    final_seeds.reverse();

    GenerationOutcome {
        seeds: final_seeds,
        tests_applied,
        peak_swa,
        faults,
        detected: final_detected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbt_netlist::{s27, synth};

    #[test]
    fn s27_reaches_reasonable_coverage() {
        let net = s27();
        let out = generate_unconstrained(&net, &FunctionalBistConfig::smoke());
        assert!(
            out.fault_coverage() > 40.0,
            "coverage {}",
            out.fault_coverage()
        );
        assert!(!out.seeds.is_empty());
        assert!(out.tests_applied > 0);
        assert!(out.peak_swa > 0.0 && out.peak_swa <= 1.0);
    }

    #[test]
    fn deterministic_given_config() {
        let net = s27();
        let cfg = FunctionalBistConfig::smoke();
        let a = generate_unconstrained(&net, &cfg);
        let b = generate_unconstrained(&net, &cfg);
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.detected, b.detected);
    }

    #[test]
    fn compaction_preserves_coverage() {
        // Re-simulating exactly the final seeds must reproduce the reported
        // detection flags.
        let net = s27();
        let cfg = FunctionalBistConfig::smoke();
        let out = generate_unconstrained(&net, &cfg);
        let spec = fbt_bist::TpgSpec {
            lfsr_width: cfg.lfsr_width,
            m: cfg.m,
            cube: fbt_bist::cube::input_cube(&net),
        };
        let mut detected = vec![false; out.faults.len()];
        let mut fsim = PackedParallelSim::new(&net);
        let zero = Bits::zeros(net.num_dffs());
        for &seed in &out.seeds {
            let pis = Tpg::new(spec.clone(), seed).sequence(cfg.seq_len);
            let traj = simulate_sequence(&net, &zero, &pis);
            let tests = functional_tests(&pis, &traj.states);
            fsim.run(&tests, &out.faults, &mut detected);
        }
        assert_eq!(detected, out.detected);
    }

    #[test]
    fn larger_budget_does_not_reduce_coverage() {
        let net = synth::generate(&synth::find("s298").unwrap().scaled(2));
        let small = FunctionalBistConfig::smoke();
        let big = FunctionalBistConfig {
            seq_len: 200,
            useless_seed_limit: 6,
            ..small.clone()
        };
        let c_small = generate_unconstrained(&net, &small).fault_coverage();
        let c_big = generate_unconstrained(&net, &big).fault_coverage();
        assert!(c_big + 1e-9 >= c_small, "{c_big} vs {c_small}");
    }
}
