//! Built-in generation of functional broadside tests with unconstrained
//! primary inputs — the method of \[73\] reviewed in paper §4.3, which is the
//! baseline the constrained method extends.
//!
//! The circuit is initialized into a reachable state (the all-0 state, per
//! §4.6); for each candidate LFSR seed the TPG produces a primary-input
//! sequence of fixed length `L`; the resulting functional broadside tests are
//! fault-simulated, and the seed is kept only if its tests detect new faults.
//! The procedure stops after `U` consecutive useless seeds, then a
//! forward-looking fault-simulation pass prunes seeds made redundant by later
//! ones.
//!
//! Candidate seeds are evaluated with the deterministic speculative-batch
//! search of [`crate::search`]: per-seed expansion, simulation and detection
//! checking run concurrently against a snapshot of the detection flags, and
//! results commit serially in draw order, so the outcome is bit-identical to
//! the serial loop for every `SearchOptions` setting.

use std::time::Instant;

use fbt_bist::{cube, Tpg, TpgSpec};
use fbt_fault::{all_transition_faults, collapse, TransitionFault};
use fbt_fault::{BroadsideTest, FaultSimEngine, FaultSimOptions, TestSet};
use fbt_netlist::rng::Rng;
use fbt_netlist::Netlist;
use fbt_sim::seq::simulate_sequence;
use fbt_sim::Bits;

use crate::extract::functional_tests;
use crate::search::{BatchEvaluator, SeedQueue};
use crate::stats::GenerationStats;
use crate::FunctionalBistConfig;

/// Result of a built-in generation run.
#[derive(Debug, Clone)]
pub struct GenerationOutcome {
    /// Selected LFSR seeds, in application order.
    pub seeds: Vec<u64>,
    /// Total number of tests applied on-chip.
    pub tests_applied: usize,
    /// Peak switching activity observed during the applied sequences.
    pub peak_swa: f64,
    /// The collapsed transition fault list.
    pub faults: Vec<TransitionFault>,
    /// Detection flag per fault.
    pub detected: Vec<bool>,
    /// Instrumentation counters and wall times for this run.
    pub stats: GenerationStats,
}

impl GenerationOutcome {
    /// Transition fault coverage in percent.
    pub fn fault_coverage(&self) -> f64 {
        fbt_fault::sim::coverage_percent(&self.detected)
    }

    /// Number of detected faults.
    pub fn num_detected(&self) -> usize {
        self.detected.iter().filter(|&&d| d).count()
    }
}

/// One speculative candidate evaluation: everything the commit step needs,
/// computed against a snapshot of the detection flags.
struct Candidate {
    /// The extracted functional broadside tests (cached for compaction).
    tests: Vec<BroadsideTest>,
    /// Peak switching activity of the candidate's trajectory.
    peak_swa: f64,
    /// Faults this candidate newly detects relative to the snapshot
    /// (empty = reject).
    newly: Vec<usize>,
}

/// Run the unconstrained method of \[73\].
///
/// # Example
///
/// ```
/// use fbt_core::{generate_unconstrained, FunctionalBistConfig};
///
/// let net = fbt_netlist::s27();
/// let out = generate_unconstrained(&net, &FunctionalBistConfig::smoke());
/// assert!(!out.seeds.is_empty());
/// assert!(out.fault_coverage() > 0.0);
/// ```
///
/// # Panics
///
/// Panics on invalid configurations (see
/// [`FunctionalBistConfig::validate`]).
pub fn generate_unconstrained(net: &Netlist, cfg: &FunctionalBistConfig) -> GenerationOutcome {
    cfg.validate();
    let t0 = Instant::now();
    let spec = TpgSpec {
        lfsr_width: cfg.lfsr_width,
        m: cfg.m,
        cube: cube::input_cube(net),
    };
    let faults = collapse(net, &all_transition_faults(net));
    let mut detected = vec![false; faults.len()];
    // Lint pre-flight: faults the static analysis proves untestable never
    // enter the simulator. They stay `false` in the full-length `detected`
    // flags — exactly what simulating them would yield — so the outcome is
    // bit-identical with the pre-flight off.
    let (active_faults, active_idx) =
        crate::preflight::project_active(net, &faults, cfg.lint_preflight);
    let mut rng = Rng::new(cfg.master_seed);
    let zero = Bits::zeros(net.num_dffs());
    let mut stats = GenerationStats {
        faults_skipped_lint: faults.len() - active_faults.len(),
        ..GenerationStats::default()
    };

    let mut queue = SeedQueue::new();
    let mut evaluator = BatchEvaluator::new(net, &cfg.search);
    let inner = evaluator.inner_threads();

    // Seed selection: speculative rounds over the seed stream, committed in
    // draw order. Each kept seed's test vectors and peak activity are cached
    // so the compaction pass below never re-expands or re-simulates.
    let mut kept: Vec<(u64, Vec<BroadsideTest>, f64)> = Vec::new();
    let mut useless = 0usize;
    let mut tried = 0usize;
    'select: while useless < cfg.useless_seed_limit && tried < cfg.max_seeds {
        let batch = queue.draw(&mut rng, cfg.search.batch);
        let snapshot: &[bool] = &detected;
        let evals = evaluator.run(&batch, |engine, seed| {
            let pis = Tpg::new(spec.clone(), seed).sequence(cfg.seq_len);
            let traj = simulate_sequence(net, &zero, &pis);
            let tests = functional_tests(&pis, &traj.states);
            // Simulate only the lint-surviving faults; report newly detected
            // ones as indices into the full list.
            let mut local: Vec<bool> = active_idx.iter().map(|&i| snapshot[i]).collect();
            let newly = engine
                .simulate(
                    TestSet::Broadside(&tests),
                    &active_faults,
                    &mut local,
                    &FaultSimOptions::new().threads(inner),
                )
                .newly_detected;
            let newly = if newly > 0 {
                (0..local.len())
                    .filter(|&j| local[j] && !snapshot[active_idx[j]])
                    .map(|j| active_idx[j])
                    .collect()
            } else {
                Vec::new()
            };
            Candidate {
                tests,
                peak_swa: traj.peak_swa(),
                newly,
            }
        });
        stats.evals += evals.len();
        stats.fsim_calls += evals.len();
        stats.sim_cycles += evals.len() * cfg.seq_len;
        for (k, cand) in evals.into_iter().enumerate() {
            if useless >= cfg.useless_seed_limit || tried >= cfg.max_seeds {
                queue.requeue(&batch[k..]);
                break 'select;
            }
            tried += 1;
            if cand.newly.is_empty() {
                useless += 1;
            } else {
                for i in cand.newly {
                    detected[i] = true;
                }
                kept.push((batch[k], cand.tests, cand.peak_swa));
                useless = 0;
                // Later candidates in this round were evaluated against a
                // stale snapshot: requeue their seeds for re-evaluation.
                queue.requeue(&batch[k + 1..]);
                continue 'select;
            }
        }
    }
    stats.seeds_tried = tried;
    stats.seeds_kept = kept.len();
    stats.wasted_evals = stats.evals - tried;
    stats.select_wall = t0.elapsed();

    // Forward-looking compaction: walk the kept seeds in reverse order with
    // a fresh fault list; a seed whose tests detect nothing beyond what the
    // later-applied sequences already detect is dropped. Coverage is
    // preserved by construction. The cached test vectors from the selection
    // pass make this a pure fault-simulation pass: no TPG re-expansion, no
    // logic re-simulation.
    let tc = Instant::now();
    let mut active_final = vec![false; active_faults.len()];
    let mut final_seeds: Vec<u64> = Vec::new();
    let mut tests_applied = 0usize;
    let mut peak_swa = 0.0f64;
    let fsim = evaluator.engine();
    for (seed, tests, peak) in kept.iter().rev() {
        let newly = fsim.run(tests, &active_faults, &mut active_final);
        stats.fsim_calls += 1;
        if newly > 0 {
            final_seeds.push(*seed);
            tests_applied += tests.len();
            peak_swa = peak_swa.max(*peak);
        }
    }
    final_seeds.reverse();
    // Scatter the active-space flags back into the full-length list; the
    // skipped faults remain false.
    let mut final_detected = vec![false; faults.len()];
    for (j, &i) in active_idx.iter().enumerate() {
        final_detected[i] = active_final[j];
    }
    stats.compact_wall = tc.elapsed();
    stats.total_wall = t0.elapsed();

    GenerationOutcome {
        seeds: final_seeds,
        tests_applied,
        peak_swa,
        faults,
        detected: final_detected,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SearchOptions;
    use fbt_fault::PackedParallelSim;
    use fbt_netlist::{s27, synth};

    #[test]
    fn s27_reaches_reasonable_coverage() {
        let net = s27();
        let out = generate_unconstrained(&net, &FunctionalBistConfig::smoke());
        assert!(
            out.fault_coverage() > 40.0,
            "coverage {}",
            out.fault_coverage()
        );
        assert!(!out.seeds.is_empty());
        assert!(out.tests_applied > 0);
        assert!(out.peak_swa > 0.0 && out.peak_swa <= 1.0);
    }

    #[test]
    fn deterministic_given_config() {
        let net = s27();
        let cfg = FunctionalBistConfig::smoke();
        let a = generate_unconstrained(&net, &cfg);
        let b = generate_unconstrained(&net, &cfg);
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.detected, b.detected);
    }

    #[test]
    fn compaction_preserves_coverage() {
        // Re-simulating exactly the final seeds must reproduce the reported
        // detection flags.
        let net = s27();
        let cfg = FunctionalBistConfig::smoke();
        let out = generate_unconstrained(&net, &cfg);
        let spec = fbt_bist::TpgSpec {
            lfsr_width: cfg.lfsr_width,
            m: cfg.m,
            cube: fbt_bist::cube::input_cube(&net),
        };
        let mut detected = vec![false; out.faults.len()];
        let mut fsim = PackedParallelSim::new(&net);
        let zero = Bits::zeros(net.num_dffs());
        for &seed in &out.seeds {
            let pis = Tpg::new(spec.clone(), seed).sequence(cfg.seq_len);
            let traj = simulate_sequence(&net, &zero, &pis);
            let tests = functional_tests(&pis, &traj.states);
            fsim.run(&tests, &out.faults, &mut detected);
        }
        assert_eq!(detected, out.detected);
    }

    #[test]
    fn compaction_runs_on_cached_vectors() {
        // The selection pass is the only phase that logic-simulates: every
        // evaluation costs exactly L cycles, and the compaction pass adds
        // none (it reuses the cached test vectors).
        let net = s27();
        let cfg = FunctionalBistConfig::smoke();
        let out = generate_unconstrained(&net, &cfg);
        assert_eq!(out.stats.sim_cycles, out.stats.evals * cfg.seq_len);
        assert!(out.stats.seeds_tried <= out.stats.evals);
        assert_eq!(
            out.stats.wasted_evals,
            out.stats.evals - out.stats.seeds_tried
        );
    }

    #[test]
    fn speculation_matches_serial_exactly() {
        let net = s27();
        let serial_cfg = FunctionalBistConfig {
            search: SearchOptions::serial(),
            ..FunctionalBistConfig::smoke()
        };
        let reference = generate_unconstrained(&net, &serial_cfg);
        for batch in [2, 4, 16] {
            let cfg = FunctionalBistConfig {
                search: SearchOptions { batch, threads: 2 },
                ..FunctionalBistConfig::smoke()
            };
            let out = generate_unconstrained(&net, &cfg);
            assert_eq!(out.seeds, reference.seeds, "batch {batch}");
            assert_eq!(out.detected, reference.detected, "batch {batch}");
            assert_eq!(out.tests_applied, reference.tests_applied);
            assert_eq!(out.peak_swa, reference.peak_swa);
        }
    }

    /// An s27-like circuit with seeded dead logic: a structurally constant
    /// gate and a dangling chain, both on top of healthy sequential logic.
    fn seeded_dead_logic() -> Netlist {
        use fbt_netlist::{GateKind, NetlistBuilder};
        let mut b = NetlistBuilder::new("dead");
        b.input("a").unwrap();
        b.input("c").unwrap();
        b.gate(GateKind::Not, "na", &["a"]).unwrap();
        b.gate(GateKind::And, "k0", &["a", "na"]).unwrap(); // constant 0
        b.gate(GateKind::Or, "y", &["k0", "c"]).unwrap();
        b.gate(GateKind::Not, "dead", &["c"]).unwrap(); // never observed
        b.gate(GateKind::Xor, "nxt", &["y", "q"]).unwrap();
        b.dff("q", "nxt").unwrap();
        b.output("y").unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn lint_preflight_skips_faults_and_preserves_the_outcome() {
        let net = seeded_dead_logic();
        let on = FunctionalBistConfig::smoke();
        let off = FunctionalBistConfig {
            lint_preflight: false,
            ..on.clone()
        };
        let a = generate_unconstrained(&net, &on);
        let b = generate_unconstrained(&net, &off);
        // Both transition faults on `k0` and on `dead` (at least) are
        // untestable by construction and never reach the simulator.
        assert!(
            a.stats.faults_skipped_lint >= 2,
            "skipped {}",
            a.stats.faults_skipped_lint
        );
        assert_eq!(b.stats.faults_skipped_lint, 0);
        // The skip is pure work avoidance: full-length flags, seeds and
        // counters all agree.
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.detected, b.detected);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.tests_applied, b.tests_applied);
        assert_eq!(a.stats.seeds_tried, b.stats.seeds_tried);
        // No skipped fault is ever reported detected.
        let ev = fbt_lint::PreflightEvidence::analyze(&net);
        for (f, &d) in a.faults.iter().zip(&a.detected) {
            if ev.transition_untestable(f.line) {
                assert!(!d);
            }
        }
    }

    #[test]
    fn larger_budget_does_not_reduce_coverage() {
        let net = synth::generate(&synth::find("s298").unwrap().scaled(2));
        let small = FunctionalBistConfig::smoke();
        let big = FunctionalBistConfig {
            seq_len: 200,
            useless_seed_limit: 6,
            ..small.clone()
        };
        let c_small = generate_unconstrained(&net, &small).fault_coverage();
        let c_big = generate_unconstrained(&net, &big).fault_coverage();
        assert!(c_big + 1e-9 >= c_small, "{c_big} vs {c_small}");
    }
}
