//! Built-in generation of functional broadside tests with unconstrained
//! primary inputs — the method of \[73\] reviewed in paper §4.3, which is the
//! baseline the constrained method extends.
//!
//! The circuit is initialized into a reachable state (the all-0 state, per
//! §4.6); for each candidate LFSR seed the TPG produces a primary-input
//! sequence of fixed length `L`; the resulting functional broadside tests are
//! fault-simulated, and the seed is kept only if its tests detect new faults.
//! The procedure stops after `U` consecutive useless seeds, then a
//! forward-looking fault-simulation pass prunes seeds made redundant by later
//! ones.
//!
//! This is the [`GenerationEngine`] with the [`Unbounded`] admissibility
//! policy (no truncation, no probe simulation) in single-sequence mode:
//! every candidate runs from the reset state (`chain_state` off), the
//! useless-seed limit `U` plays the role of the paper's `R`, and accepted
//! segments cache their test vectors so the compaction pass never re-expands
//! or re-simulates.

use std::time::Instant;

use fbt_netlist::rng::Rng;
use fbt_netlist::Netlist;
use fbt_sim::Bits;

use crate::engine::{self, ConstructOptions, GenerationEngine, StateOverlay, TpgSeedSource};
use crate::outcome::{deref_summary, MultiSegmentSequence, OutcomeSummary, Segment};
use crate::policy::Unbounded;
use crate::FunctionalBistConfig;

/// Result of a built-in generation run.
#[derive(Debug, Clone)]
pub struct GenerationOutcome {
    /// Selected LFSR seeds, in application order.
    pub seeds: Vec<u64>,
    /// The shared outcome facts (fault list, detection flags, test count,
    /// peak activity, stats). Field access forwards via `Deref`.
    pub summary: OutcomeSummary,
}

deref_summary!(GenerationOutcome);

impl GenerationOutcome {
    /// The selected seeds as single-segment sequences from the reset state
    /// (the unconstrained method's degenerate sequence shape).
    pub fn as_sequences(
        &self,
        net: &Netlist,
        cfg: &FunctionalBistConfig,
    ) -> Vec<MultiSegmentSequence> {
        let zero = Bits::zeros(net.num_dffs());
        self.seeds
            .iter()
            .map(|&seed| MultiSegmentSequence {
                initial_state: zero.clone(),
                segments: vec![Segment {
                    seed,
                    len: cfg.seq_len,
                }],
            })
            .collect()
    }

    /// Replay the selected seeds and return the exact tests they apply
    /// (see [`engine::replay_tests`]).
    pub fn replay_tests(
        &self,
        net: &Netlist,
        cfg: &FunctionalBistConfig,
    ) -> Vec<fbt_fault::BroadsideTest> {
        engine::replay_tests(
            net,
            &TpgSeedSource::for_circuit(net, cfg),
            &StateOverlay::Identity,
            &self.as_sequences(net, cfg),
            cfg.seq_len,
        )
        .into_broadside()
    }
}

/// Run the unconstrained method of \[73\].
///
/// # Example
///
/// ```
/// use fbt_core::{generate_unconstrained, FunctionalBistConfig};
///
/// let net = fbt_netlist::s27();
/// let out = generate_unconstrained(&net, &FunctionalBistConfig::smoke());
/// assert!(!out.seeds.is_empty());
/// assert!(out.fault_coverage() > 0.0);
/// ```
///
/// # Panics
///
/// Panics on invalid configurations (see
/// [`FunctionalBistConfig::validate`]).
pub fn generate_unconstrained(net: &Netlist, cfg: &FunctionalBistConfig) -> GenerationOutcome {
    let t0 = Instant::now();
    let mut engine = GenerationEngine::new(net, cfg);
    let source = TpgSeedSource::for_circuit(net, cfg);
    let mut rng = Rng::new(cfg.master_seed);
    let zero = Bits::zeros(net.num_dffs());
    let mut detected = vec![false; engine.num_faults()];
    let run = engine.construct(
        &source,
        &Unbounded,
        &StateOverlay::Identity,
        std::slice::from_ref(&zero),
        &mut rng,
        &mut detected,
        &ConstructOptions {
            r_limit: cfg.useless_seed_limit,
            q_limit: 1,
            single_sequence: true,
            chain_state: false,
            keep_tests: true,
        },
    );
    let mut stats = run.stats;
    stats.select_wall = t0.elapsed();

    // Forward-looking compaction over the cached test vectors; coverage is
    // preserved by construction.
    let compaction = engine.compact(&run.kept, &mut stats);
    let seeds: Vec<u64> = compaction
        .kept_indices
        .iter()
        .map(|&i| run.kept[i].seed)
        .collect();
    stats.total_wall = t0.elapsed();

    GenerationOutcome {
        seeds,
        summary: OutcomeSummary {
            faults: engine.into_faults(),
            detected: compaction.detected,
            tests_applied: compaction.tests_applied,
            peak_swa: compaction.peak_swa,
            stats,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::functional_tests;
    use crate::SearchOptions;
    use fbt_bist::{cube, Tpg, TpgSpec};
    use fbt_fault::{FaultSimEngine, FaultSimOptions, PackedParallelSim, TestSet};
    use fbt_netlist::{s27, synth};
    use fbt_sim::seq::simulate_sequence;

    #[test]
    fn s27_reaches_reasonable_coverage() {
        let net = s27();
        let out = generate_unconstrained(&net, &FunctionalBistConfig::smoke());
        assert!(
            out.fault_coverage() > 40.0,
            "coverage {}",
            out.fault_coverage()
        );
        assert!(!out.seeds.is_empty());
        assert!(out.tests_applied > 0);
        assert!(out.peak_swa > 0.0 && out.peak_swa <= 1.0);
    }

    #[test]
    fn deterministic_given_config() {
        let net = s27();
        let cfg = FunctionalBistConfig::smoke();
        let a = generate_unconstrained(&net, &cfg);
        let b = generate_unconstrained(&net, &cfg);
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.detected, b.detected);
    }

    #[test]
    fn compaction_preserves_coverage() {
        // Re-simulating exactly the final seeds must reproduce the reported
        // detection flags.
        let net = s27();
        let cfg = FunctionalBistConfig::smoke();
        let out = generate_unconstrained(&net, &cfg);
        let spec = TpgSpec {
            lfsr_width: cfg.lfsr_width,
            m: cfg.m,
            cube: cube::input_cube(&net),
        };
        let mut detected = vec![false; out.faults.len()];
        let mut fsim = PackedParallelSim::new(&net);
        let zero = Bits::zeros(net.num_dffs());
        for &seed in &out.seeds {
            let pis = Tpg::new(spec.clone(), seed).sequence(cfg.seq_len);
            let traj = simulate_sequence(&net, &zero, &pis);
            let tests = functional_tests(&pis, &traj.states);
            fsim.simulate(
                TestSet::Broadside(&tests),
                &out.faults,
                &mut detected,
                &FaultSimOptions::new(),
            );
        }
        assert_eq!(detected, out.detected);
    }

    #[test]
    fn generic_replay_reproduces_detections() {
        // The engine-level replay (seeds as degenerate single-segment
        // sequences) must agree with the outcome's detection flags.
        let net = s27();
        let cfg = FunctionalBistConfig::smoke();
        let out = generate_unconstrained(&net, &cfg);
        let tests = out.replay_tests(&net, &cfg);
        assert_eq!(tests.len(), out.tests_applied);
        let mut detected = vec![false; out.faults.len()];
        let mut fsim = PackedParallelSim::new(&net);
        fsim.simulate(
            TestSet::Broadside(&tests),
            &out.faults,
            &mut detected,
            &FaultSimOptions::new(),
        );
        assert_eq!(detected, out.detected);
    }

    #[test]
    fn compaction_runs_on_cached_vectors() {
        // The selection pass is the only phase that logic-simulates: every
        // evaluation costs exactly L cycles, and the compaction pass adds
        // none (it reuses the cached test vectors).
        let net = s27();
        let cfg = FunctionalBistConfig::smoke();
        let out = generate_unconstrained(&net, &cfg);
        assert_eq!(out.stats.sim_cycles, out.stats.evals * cfg.seq_len);
        assert!(out.stats.seeds_tried <= out.stats.evals);
        assert_eq!(
            out.stats.wasted_evals,
            out.stats.evals - out.stats.seeds_tried
        );
    }

    #[test]
    fn speculation_matches_serial_exactly() {
        let net = s27();
        let serial_cfg = FunctionalBistConfig {
            search: SearchOptions::serial(),
            ..FunctionalBistConfig::smoke()
        };
        let reference = generate_unconstrained(&net, &serial_cfg);
        for batch in [2, 4, 16] {
            let cfg = FunctionalBistConfig {
                search: SearchOptions {
                    batch,
                    threads: 2,
                    packed: true,
                },
                ..FunctionalBistConfig::smoke()
            };
            let out = generate_unconstrained(&net, &cfg);
            assert_eq!(out.seeds, reference.seeds, "batch {batch}");
            assert_eq!(out.detected, reference.detected, "batch {batch}");
            assert_eq!(out.tests_applied, reference.tests_applied);
            assert_eq!(out.peak_swa, reference.peak_swa);
        }
    }

    /// An s27-like circuit with seeded dead logic: a structurally constant
    /// gate and a dangling chain, both on top of healthy sequential logic.
    fn seeded_dead_logic() -> Netlist {
        use fbt_netlist::{GateKind, NetlistBuilder};
        let mut b = NetlistBuilder::new("dead");
        b.input("a").unwrap();
        b.input("c").unwrap();
        b.gate(GateKind::Not, "na", &["a"]).unwrap();
        b.gate(GateKind::And, "k0", &["a", "na"]).unwrap(); // constant 0
        b.gate(GateKind::Or, "y", &["k0", "c"]).unwrap();
        b.gate(GateKind::Not, "dead", &["c"]).unwrap(); // never observed
        b.gate(GateKind::Xor, "nxt", &["y", "q"]).unwrap();
        b.dff("q", "nxt").unwrap();
        b.output("y").unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn lint_preflight_skips_faults_and_preserves_the_outcome() {
        let net = seeded_dead_logic();
        let on = FunctionalBistConfig::smoke();
        let off = FunctionalBistConfig {
            lint_preflight: false,
            ..on.clone()
        };
        let a = generate_unconstrained(&net, &on);
        let b = generate_unconstrained(&net, &off);
        // Both transition faults on `k0` and on `dead` (at least) are
        // untestable by construction and never reach the simulator.
        assert!(
            a.stats.faults_skipped_lint >= 2,
            "skipped {}",
            a.stats.faults_skipped_lint
        );
        assert_eq!(b.stats.faults_skipped_lint, 0);
        // The skip is pure work avoidance: full-length flags, seeds and
        // counters all agree.
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.detected, b.detected);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.tests_applied, b.tests_applied);
        assert_eq!(a.stats.seeds_tried, b.stats.seeds_tried);
        // No skipped fault is ever reported detected.
        let ev = fbt_lint::PreflightEvidence::analyze(&net);
        for (f, &d) in a.faults.iter().zip(&a.detected) {
            if ev.transition_untestable(f.line) {
                assert!(!d);
            }
        }
    }

    #[test]
    fn larger_budget_does_not_reduce_coverage() {
        let net = synth::generate(&synth::find("s298").unwrap().scaled(2));
        let small = FunctionalBistConfig::smoke();
        let big = FunctionalBistConfig {
            seq_len: 200,
            useless_seed_limit: 6,
            ..small.clone()
        };
        let c_small = generate_unconstrained(&net, &small).fault_coverage();
        let c_big = generate_unconstrained(&net, &big).fault_coverage();
        assert!(c_big + 1e-9 >= c_small, "{c_big} vs {c_small}");
    }
}
