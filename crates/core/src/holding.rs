//! Built-in test generation with state holding (paper §4.5).
//!
//! The exclusive use of functional broadside tests can leave faults
//! undetected that unrestricted broadside tests would catch. State holding
//! keeps selected flip-flops from capturing every `2^h` clock cycles during
//! on-chip generation, steering the circuit into (controlled) unreachable
//! states that detect some of those faults — while the switching-activity
//! bound `SWAfunc` continues to cap every applied cycle, so overtesting by
//! excessive power is still avoided. Hold sets are chosen with the
//! full-and-complete binary tree procedure of §4.5.2 (Fig. 4.12).
//!
//! Each construction run is the [`GenerationEngine`] with the same
//! [`SwaRule`] as the constrained method but a
//! [`StateOverlay::Hold`] — the admissibility geometry, seed search,
//! speculation and stats are shared; only the trajectory (and the resulting
//! two-pattern tests with explicit second states) differ.

use std::time::Instant;

use fbt_bist::holding::HoldSet;
use fbt_fault::TwoPatternTest;
use fbt_netlist::rng::Rng;
use fbt_netlist::Netlist;
use fbt_sim::Bits;

use crate::constrained::ConstrainedOutcome;
use crate::engine::{
    self, ConstructOptions, ConstructionRun, GenerationEngine, StateOverlay, TpgSeedSource,
};
use crate::outcome::{deref_summary, MultiSegmentSequence, OutcomeSummary};
use crate::policy::SwaRule;
use crate::stats::GenerationStats;
use crate::FunctionalBistConfig;

/// Result of the state-holding stage.
#[derive(Debug, Clone)]
pub struct HoldingOutcome {
    /// The selected non-overlapping hold sets (`Nh` of Table 4.4).
    pub sets: Vec<HoldSet>,
    /// The multi-segment sequences constructed for each selected set.
    pub sequences_per_set: Vec<Vec<MultiSegmentSequence>>,
    /// Coverage before holding, in percent.
    pub base_coverage: f64,
    /// The bound in force.
    pub swafunc: f64,
    /// The shared outcome facts: the base outcome's fault list, the final
    /// detection flags (functional broadside + holding), the holding-stage
    /// test count, the holding-stage peak activity (still ≤ `SWAfunc`) and
    /// the instrumentation aggregated over every construction run (probes
    /// and commitments). Field access forwards via `Deref`.
    pub summary: OutcomeSummary,
}

deref_summary!(HoldingOutcome);

impl HoldingOutcome {
    /// Final transition fault coverage in percent.
    pub fn final_coverage(&self) -> f64 {
        fbt_fault::sim::coverage_percent(&self.detected)
    }

    /// Coverage improvement contributed by state holding, in percent points
    /// ("FC Imp." of Table 4.4).
    pub fn improvement(&self) -> f64 {
        self.final_coverage() - self.base_coverage
    }

    /// Total held state variables (`Nbits` of Table 4.4).
    pub fn nbits(&self) -> usize {
        self.sets.iter().map(HoldSet::len).sum()
    }

    /// Total seeds across the holding stage.
    pub fn nseeds(&self) -> usize {
        self.sequences_per_set
            .iter()
            .flatten()
            .map(MultiSegmentSequence::num_segments)
            .sum()
    }

    /// Replay the holding-stage sequences (per selected set, under that
    /// set's hold overlay) and return the exact two-pattern tests they
    /// applied (see [`engine::replay_tests`]).
    pub fn replay_tests(&self, net: &Netlist, cfg: &FunctionalBistConfig) -> Vec<TwoPatternTest> {
        let source = TpgSeedSource::for_circuit(net, cfg);
        let n_ff = net.num_dffs();
        let mut all = Vec::with_capacity(self.tests_applied);
        for (set, seqs) in self.sets.iter().zip(&self.sequences_per_set) {
            let overlay = StateOverlay::Hold {
                mask: set.mask(n_ff),
                h: cfg.hold_period_log2,
            };
            all.extend(
                engine::replay_tests(net, &source, &overlay, seqs, cfg.seq_len).into_two_pattern(),
            );
        }
        all
    }
}

/// One construction run (the Fig. 4.9 procedure with holding): the unified
/// engine under a [`StateOverlay::Hold`], marking `detected`.
#[allow(clippy::too_many_arguments)]
fn construct(
    engine: &mut GenerationEngine<'_>,
    source: &TpgSeedSource,
    bound: f64,
    cfg: &FunctionalBistConfig,
    r_limit: usize,
    q_limit: usize,
    mask: &Bits,
    detected: &mut [bool],
    rng: &mut Rng,
) -> ConstructionRun {
    let overlay = StateOverlay::Hold {
        mask: mask.clone(),
        h: cfg.hold_period_log2,
    };
    let zero = Bits::zeros(engine.net().num_dffs());
    engine.construct(
        source,
        &SwaRule { bound },
        &overlay,
        std::slice::from_ref(&zero),
        rng,
        detected,
        &ConstructOptions {
            r_limit,
            q_limit,
            single_sequence: false,
            chain_state: true,
            keep_tests: false,
        },
    )
}

/// Run the optional state-holding stage after constrained generation.
///
/// # Example
///
/// ```
/// use fbt_core::driver::DrivingBlock;
/// use fbt_core::{generate_constrained, improve_with_holding, swafunc, FunctionalBistConfig};
///
/// let net = fbt_netlist::s27();
/// let cfg = FunctionalBistConfig::smoke();
/// let bound = swafunc(&net, &DrivingBlock::Buffers, &cfg) * 0.75;
/// let base = generate_constrained(&net, bound, &cfg);
/// let out = improve_with_holding(&net, bound, &cfg, &base);
/// assert!(out.final_coverage() >= base.fault_coverage());
/// assert!(out.peak_swa <= bound); // holding keeps the power envelope
/// ```
///
/// Implements the set-selection procedure of §4.5.2: a full and complete
/// binary tree of height `cfg.hold_tree_height` is built by randomly halving
/// the set of all state variables; each node's *detecting ability* (`Det`) is
/// probed with a single-attempt construction run (`R = Q = 1`); the tree is
/// then resolved bottom-up into a partition, and each resulting subset is
/// committed with full `R`/`Q` limits if it detects additional faults.
///
/// # Panics
///
/// Panics if `base` was produced for a different circuit (fault list length
/// mismatch).
pub fn improve_with_holding(
    net: &Netlist,
    swafunc: f64,
    cfg: &FunctionalBistConfig,
    base: &ConstrainedOutcome,
) -> HoldingOutcome {
    cfg.validate();
    assert_eq!(
        base.faults.len(),
        fbt_fault::collapse(net, &fbt_fault::all_transition_faults(net)).len(),
        "base outcome does not match this circuit"
    );
    let t0 = Instant::now();
    let source = TpgSeedSource::for_circuit(net, cfg);
    // The holding stage fault-simulates the full base fault list (no lint
    // projection): unreachable held states can expose faults the preflight's
    // reachable-operation reasoning does not cover conservatively.
    let mut engine = GenerationEngine::with_faults(net, cfg, base.faults.clone(), false);
    let mut stats = GenerationStats::default();
    let n_ff = net.num_dffs();
    let mut rng = Rng::new(cfg.master_seed ^ 0x401D);

    // Build the tree of candidate sets (heap layout, root at 0).
    let height = cfg.hold_tree_height as usize;
    let n_nodes = (1usize << (height + 1)) - 1;
    let n_internal = (1usize << height) - 1;
    let mut sets: Vec<Vec<usize>> = vec![Vec::new(); n_nodes];
    sets[0] = (0..n_ff).collect();
    for i in 0..n_internal {
        if sets[i].len() < 2 {
            continue;
        }
        let mut shuffled = sets[i].clone();
        rng.shuffle(&mut shuffled);
        let mid = shuffled.len() / 2;
        let (a, b) = shuffled.split_at(mid);
        let mut a = a.to_vec();
        let mut b = b.to_vec();
        a.sort_unstable();
        b.sort_unstable();
        sets[2 * i + 1] = a;
        sets[2 * i + 2] = b;
    }

    // Detecting ability per node (R = Q = 1 probes on a scratch fault list).
    let mut det = vec![0usize; n_nodes];
    for i in 0..n_nodes {
        if sets[i].is_empty() {
            continue;
        }
        let mask = HoldSet::new(sets[i].clone()).mask(n_ff);
        let mut scratch = base.detected.clone();
        let mut probe_rng = Rng::new(cfg.master_seed ^ (0xD37 + i as u64));
        let before = scratch.iter().filter(|&&d| d).count();
        let probe = construct(
            &mut engine,
            &source,
            swafunc,
            cfg,
            1,
            1,
            &mask,
            &mut scratch,
            &mut probe_rng,
        );
        stats.absorb(&probe.stats);
        det[i] = scratch.iter().filter(|&&d| d).count() - before;
    }

    // Bottom-up resolution into a partition (children have larger indices,
    // so a reverse scan visits them first).
    let mut selected: Vec<Vec<Vec<usize>>> = vec![Vec::new(); n_nodes];
    for i in (0..n_nodes).rev() {
        if i >= n_internal {
            if det[i] > 0 {
                selected[i] = vec![sets[i].clone()];
            }
        } else {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let dmax = det[l].max(det[r]);
            if det[i] <= dmax {
                let mut merged = selected[l].clone();
                merged.extend(selected[r].clone());
                selected[i] = merged;
                det[i] = dmax;
            } else if !sets[i].is_empty() {
                selected[i] = vec![sets[i].clone()];
            }
        }
    }
    let candidates = std::mem::take(&mut selected[0]);

    // Commit: each candidate subset is used with the full R/Q limits and
    // kept only if it detects additional faults.
    let mut detected = base.detected.clone();
    let mut kept_sets: Vec<HoldSet> = Vec::new();
    let mut sequences_per_set: Vec<Vec<MultiSegmentSequence>> = Vec::new();
    let mut tests_applied = 0usize;
    let mut peak_swa = 0.0f64;
    for subset in candidates {
        let mask = HoldSet::new(subset.clone()).mask(n_ff);
        let before = detected.iter().filter(|&&d| d).count();
        let mut commit_rng = rng.fork();
        let commit = construct(
            &mut engine,
            &source,
            swafunc,
            cfg,
            cfg.segment_failure_limit,
            cfg.attempt_failure_limit,
            &mask,
            &mut detected,
            &mut commit_rng,
        );
        stats.absorb(&commit.stats);
        let newly = detected.iter().filter(|&&d| d).count() - before;
        if newly > 0 {
            kept_sets.push(HoldSet::new(subset));
            sequences_per_set.push(commit.sequences);
            tests_applied += commit.tests_applied;
            peak_swa = peak_swa.max(commit.peak_swa);
        }
    }
    stats.total_wall = t0.elapsed();

    HoldingOutcome {
        sets: kept_sets,
        sequences_per_set,
        base_coverage: base.fault_coverage(),
        swafunc,
        summary: OutcomeSummary {
            faults: engine.into_faults(),
            detected,
            tests_applied,
            peak_swa,
            stats,
        },
    }
}

/// The §5.1 "advanced procedure" future-work item: greedy, coverage-adaptive
/// hold-set selection.
///
/// The binary-tree procedure probes every node against the *same* baseline,
/// so later subsets can re-target faults an earlier subset already detects
/// and "unnecessary state variables can be included" (§4.6, limitation 2).
/// The greedy variant re-probes the remaining candidate groups against the
/// *current* detection state after every commitment and stops when no group
/// helps — never selecting a set that contributes nothing.
///
/// Candidate granularity matches the tree's leaves: the flip-flops are
/// randomly partitioned into `2^H` groups.
pub fn improve_with_holding_greedy(
    net: &Netlist,
    swafunc: f64,
    cfg: &FunctionalBistConfig,
    base: &ConstrainedOutcome,
) -> HoldingOutcome {
    cfg.validate();
    let t0 = Instant::now();
    let source = TpgSeedSource::for_circuit(net, cfg);
    let mut engine = GenerationEngine::with_faults(net, cfg, base.faults.clone(), false);
    let mut stats = GenerationStats::default();
    let n_ff = net.num_dffs();
    let mut rng = Rng::new(cfg.master_seed ^ 0x93EED);

    // Random partition into 2^H groups (non-empty ones only).
    let n_groups = (1usize << cfg.hold_tree_height).min(n_ff.max(1));
    let mut order: Vec<usize> = (0..n_ff).collect();
    rng.shuffle(&mut order);
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n_groups];
    for (i, ff) in order.into_iter().enumerate() {
        groups[i % n_groups].push(ff);
    }
    groups.retain(|g| !g.is_empty());
    for g in &mut groups {
        g.sort_unstable();
    }

    let mut detected = base.detected.clone();
    let mut kept_sets: Vec<HoldSet> = Vec::new();
    let mut sequences_per_set: Vec<Vec<MultiSegmentSequence>> = Vec::new();
    let mut tests_applied = 0usize;
    let mut peak_swa = 0.0f64;

    loop {
        // Probe every remaining group against the current detection state.
        let mut best: Option<(usize, usize)> = None; // (gain, index)
        for (gi, g) in groups.iter().enumerate() {
            let mask = HoldSet::new(g.clone()).mask(n_ff);
            let mut scratch = detected.clone();
            let before = scratch.iter().filter(|&&d| d).count();
            let mut probe_rng = Rng::new(cfg.master_seed ^ (0x6EED + gi as u64));
            let probe = construct(
                &mut engine,
                &source,
                swafunc,
                cfg,
                1,
                1,
                &mask,
                &mut scratch,
                &mut probe_rng,
            );
            stats.absorb(&probe.stats);
            let gain = scratch.iter().filter(|&&d| d).count() - before;
            if gain > 0 && best.is_none_or(|(bg, _)| gain > bg) {
                best = Some((gain, gi));
            }
        }
        let Some((_, gi)) = best else { break };
        let subset = groups.remove(gi);
        let mask = HoldSet::new(subset.clone()).mask(n_ff);
        let before = detected.iter().filter(|&&d| d).count();
        let mut commit_rng = rng.fork();
        let commit = construct(
            &mut engine,
            &source,
            swafunc,
            cfg,
            cfg.segment_failure_limit,
            cfg.attempt_failure_limit,
            &mask,
            &mut detected,
            &mut commit_rng,
        );
        stats.absorb(&commit.stats);
        let newly = detected.iter().filter(|&&d| d).count() - before;
        if newly > 0 {
            kept_sets.push(HoldSet::new(subset));
            sequences_per_set.push(commit.sequences);
            tests_applied += commit.tests_applied;
            peak_swa = peak_swa.max(commit.peak_swa);
        }
        if groups.is_empty() {
            break;
        }
    }
    stats.total_wall = t0.elapsed();

    HoldingOutcome {
        sets: kept_sets,
        sequences_per_set,
        base_coverage: base.fault_coverage(),
        swafunc,
        summary: OutcomeSummary {
            faults: engine.into_faults(),
            detected,
            tests_applied,
            peak_swa,
            stats,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{swafunc as compute_swafunc, DrivingBlock};
    use crate::generate_constrained;
    use fbt_fault::{FaultSimEngine, FaultSimOptions, PackedParallelSim, TestSet};
    use fbt_netlist::s27;

    fn base_outcome() -> (
        fbt_netlist::Netlist,
        f64,
        FunctionalBistConfig,
        ConstrainedOutcome,
    ) {
        let net = s27();
        let cfg = FunctionalBistConfig::smoke();
        // A deliberately tight bound so functional broadside tests leave
        // faults on the table for holding to pick up.
        let bound = compute_swafunc(&net, &DrivingBlock::Buffers, &cfg) * 0.75;
        let base = generate_constrained(&net, bound, &cfg);
        (net, bound, cfg, base)
    }

    #[test]
    fn holding_never_reduces_coverage() {
        let (net, bound, cfg, base) = base_outcome();
        let out = improve_with_holding(&net, bound, &cfg, &base);
        assert!(out.final_coverage() + 1e-9 >= out.base_coverage);
        assert!(out.improvement() >= -1e-9);
    }

    #[test]
    fn holding_respects_the_activity_bound() {
        let (net, bound, cfg, base) = base_outcome();
        let out = improve_with_holding(&net, bound, &cfg, &base);
        assert!(
            out.peak_swa <= bound + 1e-12,
            "peak {} exceeds bound {}",
            out.peak_swa,
            bound
        );
    }

    #[test]
    fn selected_sets_are_non_overlapping() {
        let (net, bound, cfg, base) = base_outcome();
        let out = improve_with_holding(&net, bound, &cfg, &base);
        let mut seen = vec![false; net.num_dffs()];
        for s in &out.sets {
            for &m in &s.members {
                assert!(!seen[m], "flip-flop {m} in two sets");
                seen[m] = true;
            }
        }
        assert_eq!(
            out.nbits(),
            out.sets.iter().map(HoldSet::len).sum::<usize>()
        );
    }

    #[test]
    fn held_simulation_keeps_masked_ffs() {
        let net = s27();
        let mut mask = Bits::zeros(3);
        mask.set(1, true);
        let pis: Vec<Bits> = (0..8)
            .map(|i| Bits::from_bools(&[i % 2 == 0, true, false, i % 3 == 0]))
            .collect();
        let start = Bits::from_str01("010");
        let overlay = StateOverlay::Hold { mask, h: 1 };
        let (states, _) = overlay.simulate(&net, &start, &pis);
        // h = 1: every even cycle's update holds FF 1, so its value can only
        // change on odd-cycle updates.
        for c in (0..pis.len()).step_by(2) {
            assert_eq!(
                states[c + 1].get(1),
                states[c].get(1),
                "FF 1 changed on held update {c}"
            );
        }
    }

    #[test]
    fn replay_reproduces_the_holding_stage() {
        // Replaying the per-set sequences under their hold overlays must
        // reproduce the test count and re-detect everything beyond the base.
        let (net, bound, cfg, base) = base_outcome();
        let out = improve_with_holding(&net, bound, &cfg, &base);
        let tests = out.replay_tests(&net, &cfg);
        assert_eq!(tests.len(), out.tests_applied);
        let mut detected = base.detected.clone();
        let mut fsim = PackedParallelSim::new(&net);
        fsim.simulate(
            TestSet::TwoPattern(&tests),
            &out.faults,
            &mut detected,
            &FaultSimOptions::new(),
        );
        assert_eq!(detected, out.detected);
    }

    #[test]
    fn greedy_selection_never_keeps_useless_sets() {
        let (net, bound, cfg, base) = base_outcome();
        let out = improve_with_holding_greedy(&net, bound, &cfg, &base);
        assert!(out.final_coverage() + 1e-9 >= out.base_coverage);
        assert!(out.peak_swa <= bound + 1e-12);
        // Every kept set contributed: removing any one loses coverage is
        // hard to re-check cheaply, but at minimum each set is non-empty
        // and the sets are disjoint.
        let mut seen = vec![false; net.num_dffs()];
        for s in &out.sets {
            assert!(!s.is_empty());
            for &m in &s.members {
                assert!(!seen[m]);
                seen[m] = true;
            }
        }
    }

    #[test]
    fn greedy_is_deterministic() {
        let (net, bound, cfg, base) = base_outcome();
        let a = improve_with_holding_greedy(&net, bound, &cfg, &base);
        let b = improve_with_holding_greedy(&net, bound, &cfg, &base);
        assert_eq!(a.detected, b.detected);
        assert_eq!(a.sets.len(), b.sets.len());
    }

    #[test]
    fn deterministic() {
        let (net, bound, cfg, base) = base_outcome();
        let a = improve_with_holding(&net, bound, &cfg, &base);
        let b = improve_with_holding(&net, bound, &cfg, &base);
        assert_eq!(a.detected, b.detected);
        assert_eq!(a.sets.len(), b.sets.len());
    }

    #[test]
    fn speculation_matches_serial_exactly() {
        let (net, bound, cfg, base) = base_outcome();
        let serial_cfg = FunctionalBistConfig {
            search: crate::SearchOptions::serial(),
            ..cfg.clone()
        };
        let reference = improve_with_holding(&net, bound, &serial_cfg, &base);
        for (batch, threads) in [(4, 1), (16, 2)] {
            let spec_cfg = FunctionalBistConfig {
                search: crate::SearchOptions {
                    batch,
                    threads,
                    packed: true,
                },
                ..cfg.clone()
            };
            let out = improve_with_holding(&net, bound, &spec_cfg, &base);
            assert_eq!(out.detected, reference.detected, "batch {batch}");
            assert_eq!(out.sets, reference.sets, "batch {batch}");
            assert_eq!(out.sequences_per_set, reference.sequences_per_set);
            assert_eq!(out.tests_applied, reference.tests_applied);
        }
    }
}
