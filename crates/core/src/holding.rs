//! Built-in test generation with state holding (paper §4.5).
//!
//! The exclusive use of functional broadside tests can leave faults
//! undetected that unrestricted broadside tests would catch. State holding
//! keeps selected flip-flops from capturing every `2^h` clock cycles during
//! on-chip generation, steering the circuit into (controlled) unreachable
//! states that detect some of those faults — while the switching-activity
//! bound `SWAfunc` continues to cap every applied cycle, so overtesting by
//! excessive power is still avoided. Hold sets are chosen with the
//! full-and-complete binary tree procedure of §4.5.2 (Fig. 4.12).

use std::time::Instant;

use fbt_bist::holding::HoldSet;
use fbt_bist::{cube, Tpg, TpgSpec};
use fbt_fault::TransitionFault;
use fbt_fault::{FaultSimEngine, FaultSimOptions, TestSet, TwoPatternTest};
use fbt_netlist::rng::Rng;
use fbt_netlist::Netlist;
use fbt_sim::seq::SeqSim;
use fbt_sim::Bits;

use crate::constrained::{ConstrainedOutcome, MultiSegmentSequence, Segment};
use crate::extract::held_tests;
use crate::search::{BatchEvaluator, SeedQueue};
use crate::stats::GenerationStats;
use crate::FunctionalBistConfig;

/// Result of the state-holding stage.
#[derive(Debug, Clone)]
pub struct HoldingOutcome {
    /// The selected non-overlapping hold sets (`Nh` of Table 4.4).
    pub sets: Vec<HoldSet>,
    /// The multi-segment sequences constructed for each selected set.
    pub sequences_per_set: Vec<Vec<MultiSegmentSequence>>,
    /// The shared fault list (same as the base outcome's).
    pub faults: Vec<TransitionFault>,
    /// Final detection flags (functional broadside + holding).
    pub detected: Vec<bool>,
    /// Coverage before holding, in percent.
    pub base_coverage: f64,
    /// Tests applied during the holding stage.
    pub tests_applied: usize,
    /// Peak switching activity during the holding stage (still ≤ `SWAfunc`).
    pub peak_swa: f64,
    /// The bound in force.
    pub swafunc: f64,
    /// Instrumentation aggregated over every construction run (probes and
    /// commitments).
    pub stats: GenerationStats,
}

impl HoldingOutcome {
    /// Final transition fault coverage in percent.
    pub fn final_coverage(&self) -> f64 {
        fbt_fault::sim::coverage_percent(&self.detected)
    }

    /// Coverage improvement contributed by state holding, in percent points
    /// ("FC Imp." of Table 4.4).
    pub fn improvement(&self) -> f64 {
        self.final_coverage() - self.base_coverage
    }

    /// Total held state variables (`Nbits` of Table 4.4).
    pub fn nbits(&self) -> usize {
        self.sets.iter().map(HoldSet::len).sum()
    }

    /// Total seeds across the holding stage.
    pub fn nseeds(&self) -> usize {
        self.sequences_per_set
            .iter()
            .flatten()
            .map(MultiSegmentSequence::num_segments)
            .sum()
    }
}

/// Simulate a primary-input sequence with the hold mask applied on every
/// `2^h`-th cycle's state update; returns the traversed states and per-cycle
/// switching activity.
fn simulate_holding(
    net: &Netlist,
    start: &Bits,
    pis: &[Bits],
    mask: &Bits,
    h: u32,
) -> (Vec<Bits>, Vec<Option<f64>>) {
    let mut sim = SeqSim::new(net, start);
    let mut states = Vec::with_capacity(pis.len() + 1);
    let mut swa = Vec::with_capacity(pis.len());
    states.push(start.clone());
    for (c, pi) in pis.iter().enumerate() {
        let hold = (c as u64 & ((1 << h) - 1) == 0).then_some(mask);
        let r = sim.step_holding(pi, hold);
        states.push(r.next_state);
        swa.push(r.switching_activity);
    }
    (states, swa)
}

/// The longest even admissible prefix under holding: same geometry as the
/// constrained method's rule, evaluated on the *held* trajectory.
fn admissible_prefix_holding(
    net: &Netlist,
    bound: f64,
    start: &Bits,
    pis: &[Bits],
    mask: &Bits,
    h: u32,
) -> usize {
    let (_, swa) = simulate_holding(net, start, pis, mask, h);
    match swa
        .iter()
        .position(|s| s.is_some_and(|v| v > bound + 1e-12))
    {
        Some(v) => (v.saturating_sub(1)) & !1usize,
        None => pis.len() & !1usize,
    }
}

/// One speculative candidate evaluation under holding: everything the
/// commit step needs, computed against snapshots of the detection flags and
/// the sequence's current state.
struct HeldCandidate {
    /// Admissible prefix length (`< 2` = inadmissible).
    len: usize,
    /// The extracted two-pattern tests of the held prefix.
    tests: Vec<TwoPatternTest>,
    /// Faults newly detected relative to the snapshot (empty = reject).
    newly: Vec<usize>,
    /// Peak activity over the held prefix trajectory.
    peak_swa: f64,
    /// The state reached at the end of the prefix.
    next_state: Option<Bits>,
    /// Logic-simulated cycles this evaluation cost.
    cycles: usize,
}

/// One construction run (the Fig. 4.9 procedure with holding): returns the
/// sequences, tests applied, peak activity and search stats; marks
/// `detected`. Candidate seeds are evaluated with the deterministic
/// speculative-batch search of [`crate::search`].
#[allow(clippy::too_many_arguments)]
fn construct(
    net: &Netlist,
    bound: f64,
    cfg: &FunctionalBistConfig,
    r_limit: usize,
    q_limit: usize,
    mask: &Bits,
    spec: &TpgSpec,
    faults: &[TransitionFault],
    detected: &mut [bool],
    evaluator: &mut BatchEvaluator<'_>,
    rng: &mut Rng,
) -> (Vec<MultiSegmentSequence>, usize, f64, GenerationStats) {
    let h = cfg.hold_period_log2;
    let inner = evaluator.inner_threads();
    let zero = Bits::zeros(net.num_dffs());
    let mut queue = SeedQueue::new();
    let mut stats = GenerationStats::default();
    let t0 = Instant::now();
    let mut sequences = Vec::new();
    let mut tests_applied = 0usize;
    let mut peak = 0.0f64;
    let mut attempt_failures = 0usize;
    let mut seeds_tried = 0usize;
    while attempt_failures < q_limit && seeds_tried < cfg.max_seeds {
        let mut cur = zero.clone();
        let mut seq = MultiSegmentSequence::new(zero.clone());
        let mut seed_failures = 0usize;
        'segment: while seed_failures < r_limit && seeds_tried < cfg.max_seeds {
            let batch = queue.draw(rng, cfg.search.batch);
            let snapshot: &[bool] = detected;
            let start = &cur;
            let evals = evaluator.run(&batch, |engine, seed| {
                let pis = Tpg::new(spec.clone(), seed).sequence(cfg.seq_len);
                let len = admissible_prefix_holding(net, bound, start, &pis, mask, h);
                if len < 2 {
                    return HeldCandidate {
                        len,
                        tests: Vec::new(),
                        newly: Vec::new(),
                        peak_swa: 0.0,
                        next_state: None,
                        cycles: cfg.seq_len,
                    };
                }
                let prefix = &pis[..len];
                let (states, swa) = simulate_holding(net, start, prefix, mask, h);
                let tests = held_tests(prefix, &states);
                let mut local = snapshot.to_vec();
                let newly = engine
                    .simulate(
                        TestSet::TwoPattern(&tests),
                        faults,
                        &mut local,
                        &FaultSimOptions::new().threads(inner),
                    )
                    .newly_detected;
                let newly = if newly > 0 {
                    (0..local.len())
                        .filter(|&i| local[i] && !snapshot[i])
                        .collect()
                } else {
                    Vec::new()
                };
                HeldCandidate {
                    len,
                    tests,
                    newly,
                    peak_swa: swa.iter().flatten().fold(0.0f64, |a, &b| a.max(b)),
                    next_state: Some(states[len].clone()),
                    cycles: cfg.seq_len + len,
                }
            });
            stats.evals += evals.len();
            for ev in &evals {
                stats.sim_cycles += ev.cycles;
                if ev.len >= 2 {
                    stats.fsim_calls += 1;
                }
            }
            for (k, cand) in evals.into_iter().enumerate() {
                if seed_failures >= r_limit || seeds_tried >= cfg.max_seeds {
                    queue.requeue(&batch[k..]);
                    break 'segment;
                }
                seeds_tried += 1;
                stats.seeds_tried += 1;
                if cand.newly.is_empty() {
                    seed_failures += 1;
                } else {
                    for i in cand.newly {
                        detected[i] = true;
                    }
                    tests_applied += cand.tests.len();
                    peak = peak.max(cand.peak_swa);
                    cur = cand.next_state.expect("accepted candidates carry a state");
                    seq.segments.push(Segment {
                        seed: batch[k],
                        len: cand.len,
                    });
                    seed_failures = 0;
                    stats.seeds_kept += 1;
                    // Later candidates saw a stale snapshot: requeue them.
                    queue.requeue(&batch[k + 1..]);
                    continue 'segment;
                }
            }
        }
        if seq.segments.is_empty() {
            attempt_failures += 1;
        } else {
            attempt_failures = 0;
            sequences.push(seq);
        }
    }
    stats.wasted_evals = stats.evals - stats.seeds_tried;
    stats.select_wall = t0.elapsed();
    stats.total_wall = t0.elapsed();
    (sequences, tests_applied, peak, stats)
}

/// Run the optional state-holding stage after constrained generation.
///
/// # Example
///
/// ```
/// use fbt_core::driver::DrivingBlock;
/// use fbt_core::{generate_constrained, improve_with_holding, swafunc, FunctionalBistConfig};
///
/// let net = fbt_netlist::s27();
/// let cfg = FunctionalBistConfig::smoke();
/// let bound = swafunc(&net, &DrivingBlock::Buffers, &cfg) * 0.75;
/// let base = generate_constrained(&net, bound, &cfg);
/// let out = improve_with_holding(&net, bound, &cfg, &base);
/// assert!(out.final_coverage() >= base.fault_coverage());
/// assert!(out.peak_swa <= bound); // holding keeps the power envelope
/// ```
///
/// Implements the set-selection procedure of §4.5.2: a full and complete
/// binary tree of height `cfg.hold_tree_height` is built by randomly halving
/// the set of all state variables; each node's *detecting ability* (`Det`) is
/// probed with a single-attempt construction run (`R = Q = 1`); the tree is
/// then resolved bottom-up into a partition, and each resulting subset is
/// committed with full `R`/`Q` limits if it detects additional faults.
///
/// # Panics
///
/// Panics if `base` was produced for a different circuit (fault list length
/// mismatch).
pub fn improve_with_holding(
    net: &Netlist,
    swafunc: f64,
    cfg: &FunctionalBistConfig,
    base: &ConstrainedOutcome,
) -> HoldingOutcome {
    cfg.validate();
    assert_eq!(
        base.faults.len(),
        fbt_fault::collapse(net, &fbt_fault::all_transition_faults(net)).len(),
        "base outcome does not match this circuit"
    );
    let t0 = Instant::now();
    let spec = TpgSpec {
        lfsr_width: cfg.lfsr_width,
        m: cfg.m,
        cube: cube::input_cube(net),
    };
    let mut evaluator = BatchEvaluator::new(net, &cfg.search);
    let mut stats = GenerationStats::default();
    let n_ff = net.num_dffs();
    let mut rng = Rng::new(cfg.master_seed ^ 0x401D);

    // Build the tree of candidate sets (heap layout, root at 0).
    let height = cfg.hold_tree_height as usize;
    let n_nodes = (1usize << (height + 1)) - 1;
    let n_internal = (1usize << height) - 1;
    let mut sets: Vec<Vec<usize>> = vec![Vec::new(); n_nodes];
    sets[0] = (0..n_ff).collect();
    for i in 0..n_internal {
        if sets[i].len() < 2 {
            continue;
        }
        let mut shuffled = sets[i].clone();
        rng.shuffle(&mut shuffled);
        let mid = shuffled.len() / 2;
        let (a, b) = shuffled.split_at(mid);
        let mut a = a.to_vec();
        let mut b = b.to_vec();
        a.sort_unstable();
        b.sort_unstable();
        sets[2 * i + 1] = a;
        sets[2 * i + 2] = b;
    }

    // Detecting ability per node (R = Q = 1 probes on a scratch fault list).
    let mut det = vec![0usize; n_nodes];
    for i in 0..n_nodes {
        if sets[i].is_empty() {
            continue;
        }
        let mask = HoldSet::new(sets[i].clone()).mask(n_ff);
        let mut scratch = base.detected.clone();
        let mut probe_rng = Rng::new(cfg.master_seed ^ (0xD37 + i as u64));
        let before = scratch.iter().filter(|&&d| d).count();
        let (_, _, _, probe_stats) = construct(
            net,
            swafunc,
            cfg,
            1,
            1,
            &mask,
            &spec,
            &base.faults,
            &mut scratch,
            &mut evaluator,
            &mut probe_rng,
        );
        stats.absorb(&probe_stats);
        det[i] = scratch.iter().filter(|&&d| d).count() - before;
    }

    // Bottom-up resolution into a partition (children have larger indices,
    // so a reverse scan visits them first).
    let mut selected: Vec<Vec<Vec<usize>>> = vec![Vec::new(); n_nodes];
    for i in (0..n_nodes).rev() {
        if i >= n_internal {
            if det[i] > 0 {
                selected[i] = vec![sets[i].clone()];
            }
        } else {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let dmax = det[l].max(det[r]);
            if det[i] <= dmax {
                let mut merged = selected[l].clone();
                merged.extend(selected[r].clone());
                selected[i] = merged;
                det[i] = dmax;
            } else if !sets[i].is_empty() {
                selected[i] = vec![sets[i].clone()];
            }
        }
    }
    let candidates = std::mem::take(&mut selected[0]);

    // Commit: each candidate subset is used with the full R/Q limits and
    // kept only if it detects additional faults.
    let mut detected = base.detected.clone();
    let mut kept_sets: Vec<HoldSet> = Vec::new();
    let mut sequences_per_set: Vec<Vec<MultiSegmentSequence>> = Vec::new();
    let mut tests_applied = 0usize;
    let mut peak_swa = 0.0f64;
    for subset in candidates {
        let mask = HoldSet::new(subset.clone()).mask(n_ff);
        let before = detected.iter().filter(|&&d| d).count();
        let mut commit_rng = rng.fork();
        let (seqs, tests, peak, commit_stats) = construct(
            net,
            swafunc,
            cfg,
            cfg.segment_failure_limit,
            cfg.attempt_failure_limit,
            &mask,
            &spec,
            &base.faults,
            &mut detected,
            &mut evaluator,
            &mut commit_rng,
        );
        stats.absorb(&commit_stats);
        let newly = detected.iter().filter(|&&d| d).count() - before;
        if newly > 0 {
            kept_sets.push(HoldSet::new(subset));
            sequences_per_set.push(seqs);
            tests_applied += tests;
            peak_swa = peak_swa.max(peak);
        }
    }
    stats.total_wall = t0.elapsed();

    HoldingOutcome {
        sets: kept_sets,
        sequences_per_set,
        faults: base.faults.clone(),
        detected,
        base_coverage: base.fault_coverage(),
        tests_applied,
        peak_swa,
        swafunc,
        stats,
    }
}

/// The §5.1 "advanced procedure" future-work item: greedy, coverage-adaptive
/// hold-set selection.
///
/// The binary-tree procedure probes every node against the *same* baseline,
/// so later subsets can re-target faults an earlier subset already detects
/// and "unnecessary state variables can be included" (§4.6, limitation 2).
/// The greedy variant re-probes the remaining candidate groups against the
/// *current* detection state after every commitment and stops when no group
/// helps — never selecting a set that contributes nothing.
///
/// Candidate granularity matches the tree's leaves: the flip-flops are
/// randomly partitioned into `2^H` groups.
pub fn improve_with_holding_greedy(
    net: &Netlist,
    swafunc: f64,
    cfg: &FunctionalBistConfig,
    base: &ConstrainedOutcome,
) -> HoldingOutcome {
    cfg.validate();
    let t0 = Instant::now();
    let spec = TpgSpec {
        lfsr_width: cfg.lfsr_width,
        m: cfg.m,
        cube: cube::input_cube(net),
    };
    let mut evaluator = BatchEvaluator::new(net, &cfg.search);
    let mut stats = GenerationStats::default();
    let n_ff = net.num_dffs();
    let mut rng = Rng::new(cfg.master_seed ^ 0x93EED);

    // Random partition into 2^H groups (non-empty ones only).
    let n_groups = (1usize << cfg.hold_tree_height).min(n_ff.max(1));
    let mut order: Vec<usize> = (0..n_ff).collect();
    rng.shuffle(&mut order);
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n_groups];
    for (i, ff) in order.into_iter().enumerate() {
        groups[i % n_groups].push(ff);
    }
    groups.retain(|g| !g.is_empty());
    for g in &mut groups {
        g.sort_unstable();
    }

    let mut detected = base.detected.clone();
    let mut kept_sets: Vec<HoldSet> = Vec::new();
    let mut sequences_per_set: Vec<Vec<MultiSegmentSequence>> = Vec::new();
    let mut tests_applied = 0usize;
    let mut peak_swa = 0.0f64;

    loop {
        // Probe every remaining group against the current detection state.
        let mut best: Option<(usize, usize)> = None; // (gain, index)
        for (gi, g) in groups.iter().enumerate() {
            let mask = HoldSet::new(g.clone()).mask(n_ff);
            let mut scratch = detected.clone();
            let before = scratch.iter().filter(|&&d| d).count();
            let mut probe_rng = Rng::new(cfg.master_seed ^ (0x6EED + gi as u64));
            let (_, _, _, probe_stats) = construct(
                net,
                swafunc,
                cfg,
                1,
                1,
                &mask,
                &spec,
                &base.faults,
                &mut scratch,
                &mut evaluator,
                &mut probe_rng,
            );
            stats.absorb(&probe_stats);
            let gain = scratch.iter().filter(|&&d| d).count() - before;
            if gain > 0 && best.is_none_or(|(bg, _)| gain > bg) {
                best = Some((gain, gi));
            }
        }
        let Some((_, gi)) = best else { break };
        let subset = groups.remove(gi);
        let mask = HoldSet::new(subset.clone()).mask(n_ff);
        let before = detected.iter().filter(|&&d| d).count();
        let mut commit_rng = rng.fork();
        let (seqs, tests, peak, commit_stats) = construct(
            net,
            swafunc,
            cfg,
            cfg.segment_failure_limit,
            cfg.attempt_failure_limit,
            &mask,
            &spec,
            &base.faults,
            &mut detected,
            &mut evaluator,
            &mut commit_rng,
        );
        stats.absorb(&commit_stats);
        let newly = detected.iter().filter(|&&d| d).count() - before;
        if newly > 0 {
            kept_sets.push(HoldSet::new(subset));
            sequences_per_set.push(seqs);
            tests_applied += tests;
            peak_swa = peak_swa.max(peak);
        }
        if groups.is_empty() {
            break;
        }
    }
    stats.total_wall = t0.elapsed();

    HoldingOutcome {
        sets: kept_sets,
        sequences_per_set,
        faults: base.faults.clone(),
        detected,
        base_coverage: base.fault_coverage(),
        tests_applied,
        peak_swa,
        swafunc,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{swafunc as compute_swafunc, DrivingBlock};
    use crate::generate_constrained;
    use fbt_netlist::s27;

    fn base_outcome() -> (
        fbt_netlist::Netlist,
        f64,
        FunctionalBistConfig,
        ConstrainedOutcome,
    ) {
        let net = s27();
        let cfg = FunctionalBistConfig::smoke();
        // A deliberately tight bound so functional broadside tests leave
        // faults on the table for holding to pick up.
        let bound = compute_swafunc(&net, &DrivingBlock::Buffers, &cfg) * 0.75;
        let base = generate_constrained(&net, bound, &cfg);
        (net, bound, cfg, base)
    }

    #[test]
    fn holding_never_reduces_coverage() {
        let (net, bound, cfg, base) = base_outcome();
        let out = improve_with_holding(&net, bound, &cfg, &base);
        assert!(out.final_coverage() + 1e-9 >= out.base_coverage);
        assert!(out.improvement() >= -1e-9);
    }

    #[test]
    fn holding_respects_the_activity_bound() {
        let (net, bound, cfg, base) = base_outcome();
        let out = improve_with_holding(&net, bound, &cfg, &base);
        assert!(
            out.peak_swa <= bound + 1e-12,
            "peak {} exceeds bound {}",
            out.peak_swa,
            bound
        );
    }

    #[test]
    fn selected_sets_are_non_overlapping() {
        let (net, bound, cfg, base) = base_outcome();
        let out = improve_with_holding(&net, bound, &cfg, &base);
        let mut seen = vec![false; net.num_dffs()];
        for s in &out.sets {
            for &m in &s.members {
                assert!(!seen[m], "flip-flop {m} in two sets");
                seen[m] = true;
            }
        }
        assert_eq!(
            out.nbits(),
            out.sets.iter().map(HoldSet::len).sum::<usize>()
        );
    }

    #[test]
    fn held_simulation_keeps_masked_ffs() {
        let net = s27();
        let mut mask = Bits::zeros(3);
        mask.set(1, true);
        let pis: Vec<Bits> = (0..8)
            .map(|i| Bits::from_bools(&[i % 2 == 0, true, false, i % 3 == 0]))
            .collect();
        let start = Bits::from_str01("010");
        let (states, _) = simulate_holding(&net, &start, &pis, &mask, 1);
        // h = 1: every even cycle's update holds FF 1, so its value can only
        // change on odd-cycle updates.
        for c in (0..pis.len()).step_by(2) {
            assert_eq!(
                states[c + 1].get(1),
                states[c].get(1),
                "FF 1 changed on held update {c}"
            );
        }
    }

    #[test]
    fn greedy_selection_never_keeps_useless_sets() {
        let (net, bound, cfg, base) = base_outcome();
        let out = improve_with_holding_greedy(&net, bound, &cfg, &base);
        assert!(out.final_coverage() + 1e-9 >= out.base_coverage);
        assert!(out.peak_swa <= bound + 1e-12);
        // Every kept set contributed: removing any one loses coverage is
        // hard to re-check cheaply, but at minimum each set is non-empty
        // and the sets are disjoint.
        let mut seen = vec![false; net.num_dffs()];
        for s in &out.sets {
            assert!(!s.is_empty());
            for &m in &s.members {
                assert!(!seen[m]);
                seen[m] = true;
            }
        }
    }

    #[test]
    fn greedy_is_deterministic() {
        let (net, bound, cfg, base) = base_outcome();
        let a = improve_with_holding_greedy(&net, bound, &cfg, &base);
        let b = improve_with_holding_greedy(&net, bound, &cfg, &base);
        assert_eq!(a.detected, b.detected);
        assert_eq!(a.sets.len(), b.sets.len());
    }

    #[test]
    fn deterministic() {
        let (net, bound, cfg, base) = base_outcome();
        let a = improve_with_holding(&net, bound, &cfg, &base);
        let b = improve_with_holding(&net, bound, &cfg, &base);
        assert_eq!(a.detected, b.detected);
        assert_eq!(a.sets.len(), b.sets.len());
    }

    #[test]
    fn speculation_matches_serial_exactly() {
        let (net, bound, cfg, base) = base_outcome();
        let serial_cfg = FunctionalBistConfig {
            search: crate::SearchOptions::serial(),
            ..cfg.clone()
        };
        let reference = improve_with_holding(&net, bound, &serial_cfg, &base);
        for (batch, threads) in [(4, 1), (16, 2)] {
            let spec_cfg = FunctionalBistConfig {
                search: crate::SearchOptions { batch, threads },
                ..cfg.clone()
            };
            let out = improve_with_holding(&net, bound, &spec_cfg, &base);
            assert_eq!(out.detected, reference.detected, "batch {batch}");
            assert_eq!(out.sets, reference.sets, "batch {batch}");
            assert_eq!(out.sequences_per_set, reference.sequences_per_set);
            assert_eq!(out.tests_applied, reference.tests_applied);
        }
    }
}
