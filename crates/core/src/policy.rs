//! Admissibility policies for the unified [`crate::engine::GenerationEngine`].
//!
//! A policy decides how much of a candidate primary-input segment may be
//! applied: the constrained method truncates at the first clock cycle whose
//! switching activity would exceed `SWAfunc` (paper §4.4), the §5.1
//! signal-transition-pattern metric truncates at the first non-functional
//! pattern ([`crate::stp::StpLibrary`]), and the baseline unconstrained
//! method of \[73\] never truncates at all. All three are implementations of
//! one trait, so the engine's seed-search loop is written once.
//!
//! Truncation geometry is shared by every bounded policy (and was previously
//! duplicated between `constrained::SwaRule::admissible_prefix` and
//! `holding::admissible_prefix_holding`): a violation at cycle `v` (the
//! paper's `j+1`) leaves the usable prefix `p(0) … p(j-1)` of `v-1` cycles,
//! rounded down to even so the segment ends at the final state of its last
//! test; a clean trajectory keeps its full (even) length.

use fbt_netlist::Netlist;
use fbt_sim::Bits;

use crate::engine::StateOverlay;

/// The decision rule that truncates a candidate segment.
///
/// Implementations must be pure functions of their inputs: the engine
/// evaluates candidates speculatively across worker threads and commits
/// results in draw order, so a non-deterministic policy would break the
/// bit-identical-to-serial guarantee of [`crate::search`].
pub trait AdmissibilityPolicy: Sync {
    /// The longest even prefix of `pis`, applied from `start` under
    /// `overlay`, whose every measurable clock cycle is admissible.
    fn admissible_prefix(
        &self,
        net: &Netlist,
        start: &Bits,
        pis: &[Bits],
        overlay: &StateOverlay,
    ) -> usize;

    /// Logic-simulated cycles charged for the admissibility probe of one
    /// full-length candidate (the engine adds the accepted prefix's replay
    /// on top). Policies that simulate the whole candidate charge `seq_len`;
    /// [`Unbounded`] charges nothing because it never simulates.
    fn probe_cycles(&self, seq_len: usize) -> usize {
        seq_len
    }

    /// The admissible prefix as a pure function of a candidate's per-cycle
    /// switching-activity trace (`total` cycles), or `None` if this policy
    /// needs more than the trace (e.g. per-cycle node values) and must be
    /// probed through [`AdmissibilityPolicy::admissible_prefix`].
    ///
    /// `Some` enables the candidate-packed fast path of
    /// [`crate::engine::GenerationEngine::construct`]: the engine simulates
    /// a whole speculative batch in one multi-lane pass and derives each
    /// lane's prefix from its trace, so the value returned here must equal
    /// `admissible_prefix` over the trajectory that produced `swa`.
    fn admissible_prefix_from_trace(&self, swa: &[Option<f64>], total: usize) -> Option<usize> {
        let _ = (swa, total);
        None
    }
}

/// The shared truncation geometry: the longest even admissible prefix given
/// the per-cycle switching activities of a candidate trajectory of `total`
/// cycles.
///
/// This is the single implementation behind both the constrained method's
/// rule and the holding variant (which differs only in *how* the trajectory
/// is produced, via [`StateOverlay`]).
pub(crate) fn admissible_prefix_from_swa(swa: &[Option<f64>], total: usize, bound: f64) -> usize {
    match swa
        .iter()
        .position(|s| s.is_some_and(|v| v > bound + 1e-12))
    {
        // Violation at cycle v (paper's j+1): usable prefix is
        // p(0) … p(j-1), i.e. v-1 cycles, rounded down to even.
        Some(v) => (v.saturating_sub(1)) & !1usize,
        None => total & !1usize,
    }
}

/// Switching-activity bound (the paper's §4.4 rule): every measurable clock
/// cycle's switching activity must stay within `bound` (`SWAfunc`).
#[derive(Debug, Clone, Copy)]
pub struct SwaRule {
    /// The activity bound in force (`SWAfunc`).
    pub bound: f64,
}

impl AdmissibilityPolicy for SwaRule {
    fn admissible_prefix(
        &self,
        net: &Netlist,
        start: &Bits,
        pis: &[Bits],
        overlay: &StateOverlay,
    ) -> usize {
        let (_, swa) = overlay.simulate(net, start, pis);
        admissible_prefix_from_swa(&swa, pis.len(), self.bound)
    }

    fn admissible_prefix_from_trace(&self, swa: &[Option<f64>], total: usize) -> Option<usize> {
        Some(admissible_prefix_from_swa(swa, total, self.bound))
    }
}

/// No admissibility constraint — the unconstrained method of \[73\] (§4.3).
/// Every candidate keeps its full (even) length and no probe simulation is
/// performed.
#[derive(Debug, Clone, Copy, Default)]
pub struct Unbounded;

impl AdmissibilityPolicy for Unbounded {
    fn admissible_prefix(
        &self,
        _net: &Netlist,
        _start: &Bits,
        pis: &[Bits],
        _overlay: &StateOverlay,
    ) -> usize {
        pis.len() & !1usize
    }

    fn probe_cycles(&self, _seq_len: usize) -> usize {
        0
    }

    fn admissible_prefix_from_trace(&self, _swa: &[Option<f64>], total: usize) -> Option<usize> {
        Some(total & !1usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbt_netlist::s27;
    use fbt_sim::seq::{simulate_sequence, SeqSim};

    fn pis(n: usize) -> Vec<Bits> {
        (0..n)
            .map(|i| Bits::from_bools(&[i % 2 == 0, i % 3 == 0, i % 5 != 0, true]))
            .collect()
    }

    /// The pre-refactor `constrained::SwaRule::admissible_prefix`, verbatim.
    fn old_constrained_prefix(net: &Netlist, bound: f64, start: &Bits, pis: &[Bits]) -> usize {
        let traj = simulate_sequence(net, start, pis);
        match traj
            .swa
            .iter()
            .position(|s| s.is_some_and(|v| v > bound + 1e-12))
        {
            Some(v) => (v.saturating_sub(1)) & !1usize,
            None => pis.len() & !1usize,
        }
    }

    /// The pre-refactor `holding::admissible_prefix_holding`, verbatim.
    fn old_holding_prefix(
        net: &Netlist,
        bound: f64,
        start: &Bits,
        pis: &[Bits],
        mask: &Bits,
        h: u32,
    ) -> usize {
        let mut sim = SeqSim::new(net, start);
        let mut swa = Vec::with_capacity(pis.len());
        for (c, pi) in pis.iter().enumerate() {
            let hold = (c as u64 & ((1 << h) - 1) == 0).then_some(mask);
            swa.push(sim.step_holding(pi, hold).switching_activity);
        }
        match swa
            .iter()
            .position(|s| s.is_some_and(|v| v > bound + 1e-12))
        {
            Some(v) => (v.saturating_sub(1)) & !1usize,
            None => pis.len() & !1usize,
        }
    }

    #[test]
    fn swa_rule_pins_the_old_constrained_behavior() {
        // The deduplicated rule (SwaRule over the identity overlay) must
        // agree with the pre-refactor implementation on every bound, for
        // both truncated and full-length outcomes.
        let net = s27();
        let zero = Bits::zeros(3);
        let p = pis(31);
        for bound in [0.0, 0.05, 0.1, 0.2, 0.35, 0.5, 1.0] {
            let rule = SwaRule { bound };
            let new = rule.admissible_prefix(&net, &zero, &p, &StateOverlay::Identity);
            let old = old_constrained_prefix(&net, bound, &zero, &p);
            assert_eq!(new, old, "bound {bound}");
            assert_eq!(new % 2, 0);
            assert!(new <= p.len());
        }
    }

    #[test]
    fn swa_rule_pins_the_old_holding_behavior() {
        // The same rule over a Hold overlay must agree with the pre-refactor
        // `admissible_prefix_holding` — one geometry, two trajectories.
        let net = s27();
        let zero = Bits::zeros(3);
        let p = pis(24);
        let mut mask = Bits::zeros(3);
        mask.set(0, true);
        mask.set(2, true);
        for h in [1u32, 2] {
            let overlay = StateOverlay::Hold {
                mask: mask.clone(),
                h,
            };
            for bound in [0.0, 0.05, 0.1, 0.2, 0.35, 1.0] {
                let rule = SwaRule { bound };
                let new = rule.admissible_prefix(&net, &zero, &p, &overlay);
                let old = old_holding_prefix(&net, bound, &zero, &p, &mask, h);
                assert_eq!(new, old, "bound {bound} h {h}");
            }
        }
    }

    #[test]
    fn violation_geometry_is_even_and_excludes_the_violating_cycle() {
        // Synthetic activities: violation at cycle index 5 leaves the 4-cycle
        // prefix; at index 1 or 0 leaves nothing.
        let mk = |v: usize, n: usize| -> Vec<Option<f64>> {
            (0..n)
                .map(|i| Some(if i == v { 0.9 } else { 0.1 }))
                .collect()
        };
        assert_eq!(admissible_prefix_from_swa(&mk(5, 10), 10, 0.5), 4);
        assert_eq!(admissible_prefix_from_swa(&mk(4, 10), 10, 0.5), 2);
        assert_eq!(admissible_prefix_from_swa(&mk(1, 10), 10, 0.5), 0);
        assert_eq!(admissible_prefix_from_swa(&mk(0, 10), 10, 0.5), 0);
        // No violation: full length, rounded down to even.
        assert_eq!(admissible_prefix_from_swa(&mk(11, 10), 10, 0.5), 10);
        assert_eq!(admissible_prefix_from_swa(&mk(11, 9), 9, 0.5), 8);
        // Immeasurable cycles (None) never violate.
        let none = vec![None; 6];
        assert_eq!(admissible_prefix_from_swa(&none, 6, 0.0), 6);
    }

    #[test]
    fn trace_prefix_agrees_with_the_probe_for_every_trace_policy() {
        // The candidate-packed fast path derives prefixes from a lane's
        // switching-activity trace instead of re-probing; the two answers
        // must coincide for every policy that offers a trace rule.
        let net = s27();
        let zero = Bits::zeros(3);
        let p = pis(30);
        let traj = simulate_sequence(&net, &zero, &p);
        for bound in [0.0, 0.05, 0.1, 0.2, 0.35, 0.5, 1.0] {
            let rule = SwaRule { bound };
            assert_eq!(
                rule.admissible_prefix_from_trace(&traj.swa, p.len()),
                Some(rule.admissible_prefix(&net, &zero, &p, &StateOverlay::Identity)),
                "bound {bound}"
            );
        }
        assert_eq!(
            Unbounded.admissible_prefix_from_trace(&traj.swa, p.len()),
            Some(Unbounded.admissible_prefix(&net, &zero, &p, &StateOverlay::Identity))
        );
        assert_eq!(Unbounded.admissible_prefix_from_trace(&[], 13), Some(12));
    }

    #[test]
    fn unbounded_keeps_the_full_even_length_for_free() {
        let net = s27();
        let zero = Bits::zeros(3);
        assert_eq!(
            Unbounded.admissible_prefix(&net, &zero, &pis(12), &StateOverlay::Identity),
            12
        );
        assert_eq!(
            Unbounded.admissible_prefix(&net, &zero, &pis(13), &StateOverlay::Identity),
            12
        );
        assert_eq!(Unbounded.probe_cycles(60), 0);
        assert_eq!(SwaRule { bound: 0.5 }.probe_cycles(60), 60);
    }
}
