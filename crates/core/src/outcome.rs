//! Shared outcome data for the three Chapter-4 generation modes.
//!
//! Every generation entry point reports the same core facts — the collapsed
//! fault list, the detection flags, the applied test count, the peak
//! switching activity and the search instrumentation. [`OutcomeSummary`]
//! holds them once; the mode-specific outcome structs embed it and
//! `Deref` into it, so `out.fault_coverage()`, `out.detected`, `out.stats`
//! etc. read identically across all three modes.

use fbt_fault::TransitionFault;
use fbt_sim::Bits;

use crate::stats::GenerationStats;

/// One primary-input segment: an LFSR seed and the (even) number of cycles
/// applied from it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// The LFSR seed loaded for this segment.
    pub seed: u64,
    /// Number of clock cycles applied (always even, so the segment ends at
    /// the final state of its last test).
    pub len: usize,
}

/// A multi-segment primary-input sequence `Pmulti = Pseg(0) … Pseg(Nseg-1)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiSegmentSequence {
    /// The reachable state the circuit is initialized into before this
    /// sequence (the all-0 state in the paper's experiments; §4.4 notes
    /// several reachable states can be used when scan-in storage allows).
    pub initial_state: Bits,
    /// The segments, in application order.
    pub segments: Vec<Segment>,
}

impl MultiSegmentSequence {
    /// An empty sequence starting from `initial_state`.
    pub fn new(initial_state: Bits) -> Self {
        MultiSegmentSequence {
            initial_state,
            segments: Vec::new(),
        }
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Total applied cycles.
    pub fn total_len(&self) -> usize {
        self.segments.iter().map(|s| s.len).sum()
    }
}

/// The facts every generation run reports, independent of mode.
#[derive(Debug, Clone)]
pub struct OutcomeSummary {
    /// The collapsed transition fault list.
    pub faults: Vec<TransitionFault>,
    /// Detection flag per fault.
    pub detected: Vec<bool>,
    /// Total number of tests applied on-chip.
    pub tests_applied: usize,
    /// Peak switching activity observed during the applied sequences.
    pub peak_swa: f64,
    /// Instrumentation counters and wall times for this run.
    pub stats: GenerationStats,
}

impl OutcomeSummary {
    /// Transition fault coverage in percent.
    pub fn fault_coverage(&self) -> f64 {
        fbt_fault::sim::coverage_percent(&self.detected)
    }

    /// Number of detected faults.
    pub fn num_detected(&self) -> usize {
        self.detected.iter().filter(|&&d| d).count()
    }
}

/// Forward field and method access from a mode-specific outcome struct to
/// its embedded [`OutcomeSummary`].
macro_rules! deref_summary {
    ($outcome:ty) => {
        impl std::ops::Deref for $outcome {
            type Target = $crate::outcome::OutcomeSummary;
            fn deref(&self) -> &$crate::outcome::OutcomeSummary {
                &self.summary
            }
        }
        impl std::ops::DerefMut for $outcome {
            fn deref_mut(&mut self) -> &mut $crate::outcome::OutcomeSummary {
                &mut self.summary
            }
        }
    };
}
pub(crate) use deref_summary;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_counts_and_coverage() {
        let s = OutcomeSummary {
            faults: Vec::new(),
            detected: vec![true, false, true, true],
            tests_applied: 7,
            peak_swa: 0.25,
            stats: GenerationStats::default(),
        };
        assert_eq!(s.num_detected(), 3);
        assert!((s.fault_coverage() - 75.0).abs() < 1e-12);
    }

    #[test]
    fn sequence_accessors() {
        let mut seq = MultiSegmentSequence::new(Bits::zeros(3));
        assert_eq!(seq.num_segments(), 0);
        assert_eq!(seq.total_len(), 0);
        seq.segments.push(Segment { seed: 1, len: 4 });
        seq.segments.push(Segment { seed: 2, len: 6 });
        assert_eq!(seq.num_segments(), 2);
        assert_eq!(seq.total_len(), 10);
    }
}
