//! Embedded-block modelling and `SWAfunc` estimation (paper §4.4, Fig. 4.1).
//!
//! A circuit embedded in a larger design has its primary inputs driven by
//! surrounding logic, which constrains the input sequences it can see. The
//! paper captures those constraints through *functional input sequences* of
//! the complete design: the peak switching activity the target circuit
//! exhibits under them, `SWAfunc`, bounds the activity allowed during
//! on-chip test generation.
//!
//! Following §4.6, primary-input constraints are created by pairing circuits:
//! all primary inputs of the target are driven by primary outputs of the
//! driving block. The unconstrained case uses a block of `buffers`.

use fbt_netlist::rng::Rng;
use fbt_netlist::Netlist;
use fbt_sim::seq::simulate_sequence;
use fbt_sim::Bits;

use crate::engine::{SeedSource, TpgSeedSource};
use crate::FunctionalBistConfig;

/// What drives the target circuit's primary inputs during functional
/// operation.
#[derive(Debug, Clone)]
pub enum DrivingBlock {
    /// No constraints: buffers at the primary inputs (the paper's "buffers"
    /// rows, used for comparison).
    Buffers,
    /// Another circuit whose primary outputs drive the target's primary
    /// inputs.
    Circuit(Netlist),
}

impl DrivingBlock {
    /// The row label used in the experiment tables.
    pub fn label(&self) -> &str {
        match self {
            DrivingBlock::Buffers => "buffers",
            DrivingBlock::Circuit(c) => c.name(),
        }
    }

    /// Check the §4.6 pairing rule: the driving block must have at least as
    /// many primary outputs as the target has primary inputs.
    pub fn can_drive(&self, target: &Netlist) -> bool {
        match self {
            DrivingBlock::Buffers => true,
            DrivingBlock::Circuit(c) => c.num_outputs() >= target.num_inputs(),
        }
    }
}

/// Generate the target's primary-input sequences under functional operation
/// of the complete design.
///
/// With `Buffers`, the TPG designed for the target drives it directly. With
/// a driving circuit, the TPG designed for the *driving block* drives that
/// block from the all-0 state and the target sees (a prefix-width slice of)
/// the block's primary-output sequence — the §4.6 simplification.
///
/// # Panics
///
/// Panics if the driving block cannot drive the target.
pub fn functional_sequences(
    target: &Netlist,
    driver: &DrivingBlock,
    cfg: &FunctionalBistConfig,
) -> Vec<Vec<Bits>> {
    assert!(driver.can_drive(target), "driving block too narrow");
    let mut rng = Rng::new(cfg.master_seed ^ 0x5EED_F00D);
    match driver {
        DrivingBlock::Buffers => {
            let source = TpgSeedSource::for_circuit(target, cfg);
            (0..cfg.func_sequences)
                .map(|_| source.expand(rng.next_u64(), cfg.func_len))
                .collect()
        }
        DrivingBlock::Circuit(block) => {
            let source = TpgSeedSource::for_circuit(block, cfg);
            let zero = Bits::zeros(block.num_dffs());
            (0..cfg.func_sequences)
                .map(|_| {
                    let pis = source.expand(rng.next_u64(), cfg.func_len);
                    let traj = simulate_sequence(block, &zero, &pis);
                    traj.outputs
                        .iter()
                        .map(|po| {
                            (0..target.num_inputs())
                                .map(|i| po.get(i))
                                .collect::<Bits>()
                        })
                        .collect()
                })
                .collect()
        }
    }
}

/// Estimate `SWAfunc`: the peak per-cycle switching activity of the target
/// under the design's functional input sequences (applied from the all-0
/// state, which the paper assumes reachable via global reset).
pub fn swafunc(target: &Netlist, driver: &DrivingBlock, cfg: &FunctionalBistConfig) -> f64 {
    let sequences = functional_sequences(target, driver, cfg);
    let zero = Bits::zeros(target.num_dffs());
    fbt_sim::activity::peak_activity(target, &zero, &sequences)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbt_netlist::{s27, synth};

    #[test]
    fn buffers_always_drive() {
        let net = s27();
        assert!(DrivingBlock::Buffers.can_drive(&net));
        assert_eq!(DrivingBlock::Buffers.label(), "buffers");
    }

    #[test]
    fn pairing_rule_enforced() {
        let target = synth::generate(&synth::find("s641").unwrap()); // 35 PIs
        let narrow = synth::generate(&synth::find("s298").unwrap()); // 6 POs
        let wide = synth::generate(&synth::find("s13207").unwrap()); // 152 POs
        assert!(!DrivingBlock::Circuit(narrow).can_drive(&target));
        assert!(DrivingBlock::Circuit(wide).can_drive(&target));
    }

    #[test]
    fn swafunc_is_a_valid_bound_and_reflects_the_driver() {
        // SWAfunc is a well-formed activity fraction, deterministic, and
        // sensitive to which block drives the target. (The paper's
        // observation that constrained SWAfunc is *lower* than the
        // unconstrained peak is an empirical property of its benchmark
        // pairings, not a theorem — a lively driver can out-toggle the
        // target's own cube-biased TPG.)
        let cfg = FunctionalBistConfig::smoke();
        let target = s27();
        let unconstrained = swafunc(&target, &DrivingBlock::Buffers, &cfg);
        let driver = synth::generate(&synth::find("s298").unwrap()); // 6 POs >= 4 PIs
        let constrained = swafunc(&target, &DrivingBlock::Circuit(driver.clone()), &cfg);
        assert!(unconstrained > 0.0 && unconstrained <= 1.0);
        assert!(constrained > 0.0 && constrained <= 1.0);
        assert_eq!(
            constrained,
            swafunc(&target, &DrivingBlock::Circuit(driver), &cfg),
            "SWAfunc must be deterministic"
        );
    }

    #[test]
    fn sequences_have_requested_shape() {
        let cfg = FunctionalBistConfig::smoke();
        let target = s27();
        let seqs = functional_sequences(&target, &DrivingBlock::Buffers, &cfg);
        assert_eq!(seqs.len(), cfg.func_sequences);
        assert!(seqs.iter().all(|s| s.len() == cfg.func_len));
        assert!(seqs.iter().flatten().all(|v| v.len() == 4));
    }

    #[test]
    fn driven_sequences_come_from_block_outputs() {
        let cfg = FunctionalBistConfig::smoke();
        let target = s27();
        let block = synth::generate(&synth::find("s298").unwrap());
        let seqs = functional_sequences(&target, &DrivingBlock::Circuit(block.clone()), &cfg);
        assert_eq!(seqs.len(), cfg.func_sequences);
        assert!(seqs
            .iter()
            .flatten()
            .all(|v| v.len() == target.num_inputs()));
    }
}
