//! The unified, policy-driven generation engine behind every Chapter-4 mode.
//!
//! The three generation procedures — unconstrained (§4.3), PI-constrained
//! multi-segment (§4.4, Fig. 4.9) and state-holding (§4.5) — are variants of
//! one seed-search loop: draw a candidate LFSR seed, expand it into a
//! primary-input sequence, truncate it to its admissible prefix, simulate
//! and fault-simulate the prefix, and commit the seed only if its tests
//! detect new faults. [`GenerationEngine::construct`] owns that loop once,
//! including the deterministic speculative-batch evaluation of
//! [`crate::search`], the lint preflight projection (`crate::preflight`)
//! and the [`GenerationStats`] accounting, parameterized by three small
//! policies:
//!
//! * [`SeedSource`] — how a drawn seed becomes a primary-input sequence
//!   (the biased TPG of Fig. 4.4, a weighted TPG, …);
//! * [`crate::policy::AdmissibilityPolicy`] — how much of a candidate may be
//!   applied (`SWAfunc` bound, signal-transition patterns, or unbounded);
//! * [`StateOverlay`] — how the circuit's state evolves (plain functional
//!   simulation, or the §4.5 hold-mask DFT every `2^h` cycles).
//!
//! The loop's outcome is bit-identical to the three pre-engine loops for
//! every `(circuit, config, batch, threads)` combination — pinned by the
//! differential suites and the committed golden fixtures of
//! `tests/golden_ch4.rs`.

use std::time::Instant;

use fbt_bist::{cube, Tpg, TpgSpec, Weight, WeightedTpg};
use fbt_fault::{all_transition_faults, collapse, TransitionFault};
use fbt_fault::{
    BroadsideTest, FaultSimEngine, FaultSimOptions, TestGroup, TestSet, TwoPatternTest,
};
use fbt_netlist::rng::Rng;
use fbt_netlist::Netlist;
use fbt_sim::lanes::{extract_lane, LaneSeqSim};
use fbt_sim::seq::{simulate_sequence, SeqSim};
use fbt_sim::Bits;

use crate::extract::{functional_tests, held_tests};
use crate::outcome::{MultiSegmentSequence, Segment};
use crate::policy::AdmissibilityPolicy;
use crate::search::{BatchEvaluator, SeedQueue};
use crate::stats::GenerationStats;
use crate::FunctionalBistConfig;

/// How a drawn seed becomes a primary-input sequence.
///
/// Implementations must be pure: the engine evaluates candidates
/// speculatively across worker threads, so `expand` must yield the same
/// sequence for the same seed on every call.
pub trait SeedSource: Sync {
    /// Expand `seed` into a primary-input sequence of `len` cycles.
    fn expand(&self, seed: u64, len: usize) -> Vec<Bits>;
}

/// The paper's on-chip TPG (Fig. 4.4): an LFSR feeding `m`-input biasing
/// gates under the driving block's input cube.
#[derive(Debug, Clone)]
pub struct TpgSeedSource {
    /// The TPG structure each seed is loaded into.
    pub spec: TpgSpec,
}

impl TpgSeedSource {
    /// A source from an explicit TPG structure.
    pub fn new(spec: TpgSpec) -> Self {
        TpgSeedSource { spec }
    }

    /// The TPG the generation flow uses for `net` under `cfg`: LFSR width
    /// `NLFSR`, biasing fan-in `m`, and the circuit's input cube.
    pub fn for_circuit(net: &Netlist, cfg: &FunctionalBistConfig) -> Self {
        TpgSeedSource {
            spec: TpgSpec {
                lfsr_width: cfg.lfsr_width,
                m: cfg.m,
                cube: cube::input_cube(net),
            },
        }
    }
}

impl SeedSource for TpgSeedSource {
    fn expand(&self, seed: u64, len: usize) -> Vec<Bits> {
        Tpg::new(self.spec.clone(), seed).sequence(len)
    }
}

/// A weighted-random source: per-input signal probabilities instead of the
/// LFSR-plus-biasing-gate structure.
#[derive(Debug, Clone)]
pub struct WeightedSeedSource {
    /// Per-input weights.
    pub weights: Vec<Weight>,
}

impl WeightedSeedSource {
    /// A source with explicit per-input weights.
    pub fn new(weights: Vec<Weight>) -> Self {
        WeightedSeedSource { weights }
    }
}

impl SeedSource for WeightedSeedSource {
    fn expand(&self, seed: u64, len: usize) -> Vec<Bits> {
        WeightedTpg::new(self.weights.clone(), seed).sequence(len)
    }
}

/// How the circuit's state evolves while a candidate sequence is applied.
#[derive(Debug, Clone)]
pub enum StateOverlay {
    /// Plain functional simulation: every flip-flop captures every cycle.
    /// Trajectories stay reachable, tests are functional broadside tests.
    Identity,
    /// The §4.5 state-holding DFT: the masked flip-flops skip the state
    /// update on every `2^h`-th cycle, steering the circuit into controlled
    /// unreachable states. Tests carry explicit second states
    /// ([`TwoPatternTest`]).
    Hold {
        /// Held flip-flops (1 = hold).
        mask: Bits,
        /// Hold period exponent: hold on cycles `c` with `c % 2^h == 0`.
        h: u32,
    },
}

impl StateOverlay {
    /// The hold mask in force at clock cycle `c`, if any — the single
    /// definition of the §4.5 hold schedule, shared by
    /// [`StateOverlay::simulate`] and the multi-lane candidate-packed path.
    pub fn hold_mask_at(&self, c: usize) -> Option<&Bits> {
        match self {
            StateOverlay::Identity => None,
            StateOverlay::Hold { mask, h } => (c as u64 & ((1 << h) - 1) == 0).then_some(mask),
        }
    }

    /// Apply `pis` from `start` and return the traversed states
    /// (`pis.len() + 1` entries) and per-cycle switching activities.
    pub fn simulate(
        &self,
        net: &Netlist,
        start: &Bits,
        pis: &[Bits],
    ) -> (Vec<Bits>, Vec<Option<f64>>) {
        match self {
            StateOverlay::Identity => {
                let traj = simulate_sequence(net, start, pis);
                (traj.states, traj.swa)
            }
            StateOverlay::Hold { .. } => {
                let mut sim = SeqSim::new(net, start);
                let mut states = Vec::with_capacity(pis.len() + 1);
                let mut swa = Vec::with_capacity(pis.len());
                states.push(start.clone());
                for (c, pi) in pis.iter().enumerate() {
                    let r = sim.step_holding(pi, self.hold_mask_at(c));
                    states.push(r.next_state);
                    swa.push(r.switching_activity);
                }
                (states, swa)
            }
        }
    }

    /// Extract the non-overlapping tests of a simulated prefix. Identity
    /// trajectories yield functional broadside tests; held trajectories
    /// need explicit second states (§4.5.1).
    pub fn extract_tests(&self, pis: &[Bits], states: &[Bits]) -> OwnedTests {
        match self {
            StateOverlay::Identity => OwnedTests::Broadside(functional_tests(pis, states)),
            StateOverlay::Hold { .. } => OwnedTests::TwoPattern(held_tests(pis, states)),
        }
    }

    /// An empty test container of the variant this overlay produces.
    fn empty_tests(&self) -> OwnedTests {
        match self {
            StateOverlay::Identity => OwnedTests::Broadside(Vec::new()),
            StateOverlay::Hold { .. } => OwnedTests::TwoPattern(Vec::new()),
        }
    }
}

/// An owned set of extracted tests, broadside or two-pattern depending on
/// the [`StateOverlay`] that produced them.
#[derive(Debug, Clone)]
pub enum OwnedTests {
    /// Functional broadside tests (identity overlay).
    Broadside(Vec<BroadsideTest>),
    /// Two-pattern tests with explicit second states (hold overlay).
    TwoPattern(Vec<TwoPatternTest>),
}

impl Default for OwnedTests {
    fn default() -> Self {
        OwnedTests::Broadside(Vec::new())
    }
}

impl OwnedTests {
    /// Number of tests.
    pub fn len(&self) -> usize {
        match self {
            OwnedTests::Broadside(t) => t.len(),
            OwnedTests::TwoPattern(t) => t.len(),
        }
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A borrowed view for the fault-simulation engine.
    pub fn as_set(&self) -> TestSet<'_> {
        match self {
            OwnedTests::Broadside(t) => TestSet::Broadside(t),
            OwnedTests::TwoPattern(t) => TestSet::TwoPattern(t),
        }
    }

    /// Unwrap as broadside tests.
    ///
    /// # Panics
    ///
    /// Panics if the tests are two-pattern tests.
    pub fn into_broadside(self) -> Vec<BroadsideTest> {
        match self {
            OwnedTests::Broadside(t) => t,
            OwnedTests::TwoPattern(_) => panic!("expected broadside tests, got two-pattern tests"),
        }
    }

    /// Unwrap as two-pattern tests.
    ///
    /// # Panics
    ///
    /// Panics if the tests are broadside tests.
    pub fn into_two_pattern(self) -> Vec<TwoPatternTest> {
        match self {
            OwnedTests::TwoPattern(t) => t,
            OwnedTests::Broadside(_) => panic!("expected two-pattern tests, got broadside tests"),
        }
    }

    /// Append `other` (same variant required).
    ///
    /// # Panics
    ///
    /// Panics on a variant mismatch.
    pub fn append(&mut self, other: OwnedTests) {
        match (self, other) {
            (OwnedTests::Broadside(a), OwnedTests::Broadside(b)) => a.extend(b),
            (OwnedTests::TwoPattern(a), OwnedTests::TwoPattern(b)) => a.extend(b),
            _ => panic!("cannot mix broadside and two-pattern tests"),
        }
    }
}

/// The loop-shape knobs distinguishing the three Chapter-4 modes. The
/// engine's search semantics (draw order, commit order, stopping conditions,
/// stats) are identical across modes; only these vary.
#[derive(Debug, Clone, Copy)]
pub struct ConstructOptions {
    /// Consecutive seed failures ending a sequence (the paper's `R`; the
    /// unconstrained method's useless-seed limit `U`).
    pub r_limit: usize,
    /// Consecutive failed sequence attempts ending the run (the paper's
    /// `Q`; `1` for single-sequence modes).
    pub q_limit: usize,
    /// Stop after the first sequence attempt (the unconstrained method
    /// builds one flat seed list, not a set of multi-segment sequences).
    pub single_sequence: bool,
    /// Chain segments: each accepted segment's final state becomes the next
    /// candidate's start state (§4.4's held-state seed reload). Off, every
    /// candidate starts from the sequence's initial state.
    pub chain_state: bool,
    /// Cache every accepted segment's extracted tests in the run result —
    /// required by the unconstrained method's reverse compaction, wasteful
    /// for the multi-segment modes.
    pub keep_tests: bool,
}

/// One accepted segment, in commit order.
#[derive(Debug, Clone)]
pub struct KeptSegment {
    /// The committed seed.
    pub seed: u64,
    /// The admissible prefix length applied from it.
    pub len: usize,
    /// The extracted tests (empty unless [`ConstructOptions::keep_tests`]).
    pub tests: OwnedTests,
    /// Peak switching activity over the applied prefix.
    pub peak_swa: f64,
}

/// The result of one [`GenerationEngine::construct`] run.
#[derive(Debug, Clone)]
pub struct ConstructionRun {
    /// The constructed multi-segment sequences.
    pub sequences: Vec<MultiSegmentSequence>,
    /// Every accepted segment in commit order (tests populated only with
    /// [`ConstructOptions::keep_tests`]).
    pub kept: Vec<KeptSegment>,
    /// Tests applied across all accepted segments.
    pub tests_applied: usize,
    /// Peak switching activity across all accepted segments.
    pub peak_swa: f64,
    /// Search instrumentation for this run.
    pub stats: GenerationStats,
}

/// The result of a reverse-compaction pass over kept segments.
#[derive(Debug, Clone)]
pub struct Compaction {
    /// Indices into the kept list that survive, in application order.
    pub kept_indices: Vec<usize>,
    /// Full-length detection flags of the surviving segments.
    pub detected: Vec<bool>,
    /// Tests applied by the surviving segments.
    pub tests_applied: usize,
    /// Peak switching activity over the surviving segments.
    pub peak_swa: f64,
}

/// One speculative candidate evaluation: everything the commit step needs,
/// computed against snapshots of the detection flags and the sequence's
/// current state.
struct Candidate {
    /// Admissible prefix length (`< 2` = inadmissible).
    len: usize,
    /// The extracted tests of the prefix.
    tests: OwnedTests,
    /// Faults newly detected relative to the snapshot, as indices into the
    /// full fault list (empty = reject).
    newly: Vec<usize>,
    /// Peak activity over the prefix trajectory.
    peak_swa: f64,
    /// The state reached at the end of the prefix.
    next_state: Option<Bits>,
    /// Logic-simulated cycles this evaluation cost.
    cycles: usize,
}

/// The unified seed-search engine: owns the collapsed fault list, its lint
/// preflight projection and the speculative batch evaluator, and runs the
/// Fig. 4.9 construction loop under any policy combination.
#[derive(Debug)]
pub struct GenerationEngine<'n> {
    net: &'n Netlist,
    cfg: &'n FunctionalBistConfig,
    faults: Vec<TransitionFault>,
    active_faults: Vec<TransitionFault>,
    active_idx: Vec<usize>,
    evaluator: BatchEvaluator<'n>,
}

impl<'n> GenerationEngine<'n> {
    /// An engine over the circuit's own collapsed transition-fault list,
    /// with the lint preflight as configured.
    ///
    /// # Panics
    ///
    /// Panics on invalid configurations (see
    /// [`FunctionalBistConfig::validate`]).
    pub fn new(net: &'n Netlist, cfg: &'n FunctionalBistConfig) -> Self {
        cfg.validate();
        let faults = collapse(net, &all_transition_faults(net));
        Self::with_faults(net, cfg, faults, cfg.lint_preflight)
    }

    /// An engine over an explicit fault list. `lint_preflight` controls the
    /// static projection: faults the lint analysis proves untestable never
    /// enter the simulator but stay `false` in the full-length detection
    /// flags, so outcomes are bit-identical either way.
    pub fn with_faults(
        net: &'n Netlist,
        cfg: &'n FunctionalBistConfig,
        faults: Vec<TransitionFault>,
        lint_preflight: bool,
    ) -> Self {
        cfg.validate();
        let (active_faults, active_idx) =
            crate::preflight::project_active(net, &faults, lint_preflight);
        GenerationEngine {
            net,
            cfg,
            faults,
            active_faults,
            active_idx,
            evaluator: BatchEvaluator::new(net, &cfg.search),
        }
    }

    /// The circuit under test.
    pub fn net(&self) -> &'n Netlist {
        self.net
    }

    /// The full collapsed fault list.
    pub fn faults(&self) -> &[TransitionFault] {
        &self.faults
    }

    /// Number of faults in the full list.
    pub fn num_faults(&self) -> usize {
        self.faults.len()
    }

    /// Consume the engine, yielding the fault list for the outcome.
    pub fn into_faults(self) -> Vec<TransitionFault> {
        self.faults
    }

    /// Run the construction loop: build multi-segment sequences whose
    /// accepted segments detect new faults, marking `detected` (full-length
    /// flags) as commits happen.
    ///
    /// Candidates are drawn from `rng` via the order-preserving
    /// `SeedQueue` and evaluated speculatively in batches of
    /// `cfg.search.batch`; results commit serially in draw order, so the
    /// outcome is bit-identical to the serial loop for every batch size and
    /// thread count.
    ///
    /// # Panics
    ///
    /// Panics if `initial_states` is empty or `detected` does not match the
    /// fault list length.
    #[allow(clippy::too_many_arguments)]
    pub fn construct<S, P>(
        &mut self,
        source: &S,
        policy: &P,
        overlay: &StateOverlay,
        initial_states: &[Bits],
        rng: &mut Rng,
        detected: &mut [bool],
        opts: &ConstructOptions,
    ) -> ConstructionRun
    where
        S: SeedSource + ?Sized,
        P: AdmissibilityPolicy + ?Sized,
    {
        assert!(
            !initial_states.is_empty(),
            "need at least one initial state"
        );
        assert_eq!(
            detected.len(),
            self.faults.len(),
            "detection flags length mismatch"
        );
        let t0 = Instant::now();
        let net = self.net;
        let cfg = self.cfg;
        let evaluator = &mut self.evaluator;
        let active_faults = &self.active_faults;
        let active_idx = &self.active_idx;
        let inner = evaluator.inner_threads();
        let mut queue = SeedQueue::new();
        let mut stats = GenerationStats {
            faults_skipped_lint: self.faults.len() - active_faults.len(),
            ..GenerationStats::default()
        };

        // The candidate-packed fast path needs the policy to derive each
        // lane's prefix from its switching-activity trace; policies that
        // probe per-cycle node values (e.g. signal-transition patterns)
        // keep the legacy per-candidate passes.
        let use_packed = cfg.search.packed && policy.admissible_prefix_from_trace(&[], 0).is_some();

        let mut sequences: Vec<MultiSegmentSequence> = Vec::new();
        let mut kept: Vec<KeptSegment> = Vec::new();
        let mut tests_applied = 0usize;
        let mut peak_swa = 0.0f64;
        let mut attempt_failures = 0usize;
        let mut seeds_tried = 0usize;
        let mut attempts = 0usize;

        'run: while attempt_failures < opts.q_limit && seeds_tried < cfg.max_seeds {
            // Construct one multi-segment sequence, starting from a
            // reachable initial state (round-robin over the provided set).
            let init = &initial_states[attempts % initial_states.len()];
            attempts += 1;
            let mut cur_state = init.clone();
            let mut seq = MultiSegmentSequence::new(init.clone());
            let mut seed_failures = 0usize;
            'segment: while seed_failures < opts.r_limit && seeds_tried < cfg.max_seeds {
                let batch = queue.draw(rng, cfg.search.batch);
                let snapshot: &[bool] = detected;
                let start = &cur_state;
                let evals = if use_packed {
                    packed_round(
                        net,
                        cfg,
                        source,
                        policy,
                        overlay,
                        &batch,
                        start,
                        snapshot,
                        active_faults,
                        active_idx,
                        evaluator,
                    )
                } else {
                    evaluator.run(&batch, |engine, seed| {
                        let pis = source.expand(seed, cfg.seq_len);
                        let len = policy.admissible_prefix(net, start, &pis, overlay);
                        if len < 2 {
                            return Candidate {
                                len,
                                tests: overlay.empty_tests(),
                                newly: Vec::new(),
                                peak_swa: 0.0,
                                next_state: None,
                                cycles: policy.probe_cycles(cfg.seq_len),
                            };
                        }
                        let prefix = &pis[..len];
                        let (states, swa) = overlay.simulate(net, start, prefix);
                        let tests = overlay.extract_tests(prefix, &states);
                        // Simulate only the lint-surviving faults; report newly
                        // detected ones as indices into the full list.
                        let mut local: Vec<bool> =
                            active_idx.iter().map(|&i| snapshot[i]).collect();
                        let newly = engine
                            .simulate(
                                tests.as_set(),
                                active_faults,
                                &mut local,
                                &FaultSimOptions::new().threads(inner),
                            )
                            .newly_detected;
                        let newly = if newly > 0 {
                            (0..local.len())
                                .filter(|&j| local[j] && !snapshot[active_idx[j]])
                                .map(|j| active_idx[j])
                                .collect()
                        } else {
                            Vec::new()
                        };
                        Candidate {
                            len,
                            tests,
                            newly,
                            peak_swa: swa.iter().flatten().fold(0.0f64, |a, &b| a.max(b)),
                            next_state: Some(states[len].clone()),
                            cycles: policy.probe_cycles(cfg.seq_len) + len,
                        }
                    })
                };
                stats.evals += evals.len();
                for ev in &evals {
                    stats.sim_cycles += ev.cycles;
                }
                // One group per fault-simulated candidate; the packed path
                // submits the whole round as a single engine invocation.
                let n_groups = evals.iter().filter(|e| e.len >= 2).count();
                stats.candidate_groups += n_groups;
                stats.fsim_calls += if use_packed {
                    usize::from(n_groups > 0)
                } else {
                    n_groups
                };
                for (k, cand) in evals.into_iter().enumerate() {
                    if seed_failures >= opts.r_limit || seeds_tried >= cfg.max_seeds {
                        queue.requeue(&batch[k..]);
                        break 'segment;
                    }
                    seeds_tried += 1;
                    stats.seeds_tried += 1;
                    if cand.newly.is_empty() {
                        seed_failures += 1;
                    } else {
                        for i in cand.newly {
                            detected[i] = true;
                        }
                        tests_applied += cand.tests.len();
                        peak_swa = peak_swa.max(cand.peak_swa);
                        if opts.chain_state {
                            cur_state = cand.next_state.expect("accepted candidates carry a state");
                        }
                        seq.segments.push(Segment {
                            seed: batch[k],
                            len: cand.len,
                        });
                        kept.push(KeptSegment {
                            seed: batch[k],
                            len: cand.len,
                            tests: if opts.keep_tests {
                                cand.tests
                            } else {
                                overlay.empty_tests()
                            },
                            peak_swa: cand.peak_swa,
                        });
                        seed_failures = 0;
                        stats.seeds_kept += 1;
                        // Later candidates saw a stale snapshot: requeue them.
                        queue.requeue(&batch[k + 1..]);
                        continue 'segment;
                    }
                }
            }
            if opts.single_sequence {
                if !seq.segments.is_empty() {
                    sequences.push(seq);
                }
                break 'run;
            }
            if seq.segments.is_empty() {
                attempt_failures += 1;
            } else {
                attempt_failures = 0;
                sequences.push(seq);
            }
        }
        stats.wasted_evals = stats.evals - stats.seeds_tried;
        stats.select_wall = t0.elapsed();
        stats.total_wall = t0.elapsed();

        ConstructionRun {
            sequences,
            kept,
            tests_applied,
            peak_swa,
            stats,
        }
    }

    /// Forward-looking reverse compaction over kept segments (the §4.3
    /// pruning pass): walk the segments in reverse application order with a
    /// fresh fault list; a segment whose cached tests detect nothing beyond
    /// what the later-applied ones already detect is dropped. Coverage is
    /// preserved by construction, and the cached test vectors make this a
    /// pure fault-simulation pass: no TPG re-expansion, no logic
    /// re-simulation.
    ///
    /// Requires the run to have used [`ConstructOptions::keep_tests`].
    pub fn compact(&mut self, kept: &[KeptSegment], stats: &mut GenerationStats) -> Compaction {
        let tc = Instant::now();
        let active_faults = &self.active_faults;
        let mut active_final = vec![false; active_faults.len()];
        let mut kept_indices: Vec<usize> = Vec::new();
        let mut tests_applied = 0usize;
        let mut peak_swa = 0.0f64;
        let fsim = self.evaluator.engine();
        for (i, seg) in kept.iter().enumerate().rev() {
            let newly = fsim
                .simulate(
                    seg.tests.as_set(),
                    active_faults,
                    &mut active_final,
                    &FaultSimOptions::new(),
                )
                .newly_detected;
            stats.fsim_calls += 1;
            stats.candidate_groups += 1;
            if newly > 0 {
                kept_indices.push(i);
                tests_applied += seg.tests.len();
                peak_swa = peak_swa.max(seg.peak_swa);
            }
        }
        kept_indices.reverse();
        // Scatter the active-space flags back into the full-length list;
        // the lint-skipped faults remain false.
        let mut detected = vec![false; self.faults.len()];
        for (j, &i) in self.active_idx.iter().enumerate() {
            detected[i] = active_final[j];
        }
        stats.compact_wall = tc.elapsed();
        Compaction {
            kept_indices,
            detected,
            tests_applied,
            peak_swa,
        }
    }
}

/// One candidate-packed speculative round.
///
/// **Stage A** expands every candidate seed and simulates all of them as
/// lanes of one [`LaneSeqSim`] pass (chunks of 64 for larger batches): a
/// single levelized evaluation per cycle serves the whole batch, and each
/// lane's admissible prefix falls out of its switching-activity trace via
/// [`AdmissibilityPolicy::admissible_prefix_from_trace`].
///
/// **Stage B** submits all admissible candidates as one grouped
/// fault-simulation call: each candidate is an independent [`TestGroup`]
/// credited against the shared detection snapshot, packed across the
/// engine's 64 bit-lanes with lane-masked dropping. `until_first_accept`
/// skips the words past the first accepting group — the commit loop
/// discards those results anyway (their snapshots are stale).
///
/// Per-candidate results are identical to the legacy per-candidate passes:
/// same prefix lengths, same tests, same newly-detected sets, bit-identical
/// `peak_swa`, same logical cycle accounting.
#[allow(clippy::too_many_arguments)]
fn packed_round<S, P>(
    net: &Netlist,
    cfg: &FunctionalBistConfig,
    source: &S,
    policy: &P,
    overlay: &StateOverlay,
    seeds: &[u64],
    start: &Bits,
    snapshot: &[bool],
    active_faults: &[TransitionFault],
    active_idx: &[usize],
    evaluator: &mut BatchEvaluator<'_>,
) -> Vec<Candidate>
where
    S: SeedSource + ?Sized,
    P: AdmissibilityPolicy + ?Sized,
{
    let seq_len = cfg.seq_len;
    let probe = policy.probe_cycles(seq_len);
    let mut cands: Vec<Candidate> = Vec::with_capacity(seeds.len());
    for chunk in seeds.chunks(64) {
        let lanes = chunk.len();
        let pis: Vec<Vec<Bits>> = chunk.iter().map(|&s| source.expand(s, seq_len)).collect();
        let mut sim = LaneSeqSim::new(net, lanes);
        sim.broadcast_state(start);
        // One flat buffer for the per-cycle packed states: cycle `c` lives at
        // `[c * sw .. (c + 1) * sw]`. A single up-front allocation instead of
        // `seq_len` small vectors per chunk.
        let sw = sim.state_words().len();
        let mut state_words: Vec<u64> = Vec::with_capacity(seq_len * sw);
        let mut swa: Vec<Vec<Option<f64>>> = vec![Vec::with_capacity(seq_len); lanes];
        // `c` indexes the inner (cycle) axis of `pis` inside the closure;
        // there is no outer slice to iterate.
        #[allow(clippy::needless_range_loop)]
        for c in 0..seq_len {
            sim.step_with(|l| &pis[l][c], overlay.hold_mask_at(c));
            state_words.extend_from_slice(sim.state_words());
            match sim.swa() {
                Some(s) => {
                    for (l, t) in swa.iter_mut().enumerate() {
                        t.push(Some(s[l]));
                    }
                }
                None => {
                    for t in swa.iter_mut() {
                        t.push(None);
                    }
                }
            }
        }
        for (l, seed_pis) in pis.iter().enumerate() {
            let len = policy
                .admissible_prefix_from_trace(&swa[l], seq_len)
                .expect("packed path requires a trace-based policy");
            if len < 2 {
                cands.push(Candidate {
                    len,
                    tests: overlay.empty_tests(),
                    newly: Vec::new(),
                    peak_swa: 0.0,
                    next_state: None,
                    cycles: probe,
                });
                continue;
            }
            // The lane's state trajectory s(0) … s(len).
            let mut states: Vec<Bits> = Vec::with_capacity(len + 1);
            states.push(start.clone());
            for c in 0..len {
                states.push(extract_lane(&state_words[c * sw..(c + 1) * sw], l));
            }
            let prefix = &seed_pis[..len];
            let tests = overlay.extract_tests(prefix, &states);
            let peak_swa = swa[l][..len]
                .iter()
                .flatten()
                .fold(0.0f64, |a, &b| a.max(b));
            cands.push(Candidate {
                len,
                tests,
                newly: Vec::new(),
                peak_swa,
                next_state: Some(states[len].clone()),
                cycles: probe + len,
            });
        }
    }

    let groups: Vec<TestGroup<'_>> = cands
        .iter()
        .filter(|c| c.len >= 2)
        .map(|c| TestGroup::new(c.tests.as_set()))
        .collect();
    if groups.is_empty() {
        return cands;
    }
    // Project the snapshot to the lint-surviving faults, exactly like the
    // legacy per-candidate passes.
    let base: Vec<bool> = active_idx.iter().map(|&i| snapshot[i]).collect();
    let outs = evaluator.simulate_groups(
        &groups,
        active_faults,
        &base,
        &FaultSimOptions::new()
            .threads(cfg.search.threads)
            .until_first_accept(true),
    );
    let mut it = outs.into_iter();
    for cand in cands.iter_mut().filter(|c| c.len >= 2) {
        let out = it.next().expect("one outcome per group");
        cand.newly = out.newly.iter().map(|&j| active_idx[j]).collect();
    }
    cands
}

/// Replay constructed sequences and return their extracted tests — works
/// for every mode: pass the mode's [`SeedSource`] and [`StateOverlay`].
/// Used by verification and by downstream stages that need the exact test
/// set an outcome applied.
pub fn replay_tests<S: SeedSource + ?Sized>(
    net: &Netlist,
    source: &S,
    overlay: &StateOverlay,
    sequences: &[MultiSegmentSequence],
    seq_len: usize,
) -> OwnedTests {
    let mut all = overlay.empty_tests();
    for seq in sequences {
        let mut cur = seq.initial_state.clone();
        for seg in &seq.segments {
            let pis = source.expand(seg.seed, seq_len);
            let prefix = &pis[..seg.len];
            let (states, _) = overlay.simulate(net, &cur, prefix);
            all.append(overlay.extract_tests(prefix, &states));
            cur = states[seg.len].clone();
        }
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{SwaRule, Unbounded};
    use fbt_netlist::s27;

    #[test]
    fn owned_tests_roundtrip() {
        let mut t = OwnedTests::default();
        assert!(t.is_empty());
        assert!(matches!(t.as_set(), TestSet::Broadside(&[])));
        t.append(OwnedTests::Broadside(Vec::new()));
        assert_eq!(t.into_broadside().len(), 0);
        let h = OwnedTests::TwoPattern(Vec::new());
        assert!(matches!(h.as_set(), TestSet::TwoPattern(&[])));
        assert_eq!(h.into_two_pattern().len(), 0);
    }

    #[test]
    #[should_panic(expected = "cannot mix")]
    fn owned_tests_reject_variant_mixing() {
        OwnedTests::default().append(OwnedTests::TwoPattern(Vec::new()));
    }

    #[test]
    fn identity_overlay_matches_plain_simulation() {
        let net = s27();
        let zero = Bits::zeros(3);
        let pis: Vec<Bits> = (0..10)
            .map(|i| Bits::from_bools(&[i % 2 == 0, true, false, i % 3 == 0]))
            .collect();
        let (states, swa) = StateOverlay::Identity.simulate(&net, &zero, &pis);
        let traj = simulate_sequence(&net, &zero, &pis);
        assert_eq!(states, traj.states);
        assert_eq!(swa, traj.swa);
    }

    #[test]
    fn hold_overlay_freezes_masked_ffs_on_hold_cycles() {
        let net = s27();
        let mut mask = Bits::zeros(3);
        mask.set(1, true);
        let pis: Vec<Bits> = (0..8)
            .map(|i| Bits::from_bools(&[i % 2 == 0, true, false, i % 3 == 0]))
            .collect();
        let overlay = StateOverlay::Hold { mask, h: 1 };
        let (states, _) = overlay.simulate(&net, &Bits::from_str01("010"), &pis);
        // h = 1: every even cycle's update holds FF 1.
        for c in (0..pis.len()).step_by(2) {
            assert_eq!(states[c + 1].get(1), states[c].get(1), "held update {c}");
        }
    }

    #[test]
    fn tpg_source_matches_direct_expansion() {
        let net = s27();
        let cfg = FunctionalBistConfig::smoke();
        let source = TpgSeedSource::for_circuit(&net, &cfg);
        let direct = Tpg::new(source.spec.clone(), 42).sequence(20);
        assert_eq!(source.expand(42, 20), direct);
        // Pure: repeated expansion is identical.
        assert_eq!(source.expand(42, 20), direct);
    }

    #[test]
    fn construct_marks_detected_and_reports_consistent_counts() {
        let net = s27();
        let cfg = FunctionalBistConfig::smoke();
        let mut engine = GenerationEngine::new(&net, &cfg);
        let n = engine.num_faults();
        let mut detected = vec![false; n];
        let mut rng = Rng::new(cfg.master_seed);
        let zero = Bits::zeros(3);
        let source = TpgSeedSource::for_circuit(&net, &cfg);
        let run = engine.construct(
            &source,
            &SwaRule { bound: 1.0 },
            &StateOverlay::Identity,
            std::slice::from_ref(&zero),
            &mut rng,
            &mut detected,
            &ConstructOptions {
                r_limit: cfg.segment_failure_limit,
                q_limit: cfg.attempt_failure_limit,
                single_sequence: false,
                chain_state: true,
                keep_tests: false,
            },
        );
        assert!(detected.iter().any(|&d| d));
        assert_eq!(run.stats.seeds_kept, run.kept.len());
        assert_eq!(
            run.kept.len(),
            run.sequences
                .iter()
                .map(|s| s.num_segments())
                .sum::<usize>()
        );
        let total_cycles: usize = run.sequences.iter().map(|s| s.total_len()).sum();
        assert_eq!(run.tests_applied, total_cycles / 2);
        // keep_tests off: no cached vectors.
        assert!(run.kept.iter().all(|k| k.tests.is_empty()));
    }

    #[test]
    fn compact_preserves_coverage_of_kept_segments() {
        let net = s27();
        let cfg = FunctionalBistConfig::smoke();
        let mut engine = GenerationEngine::new(&net, &cfg);
        let mut detected = vec![false; engine.num_faults()];
        let mut rng = Rng::new(cfg.master_seed);
        let zero = Bits::zeros(3);
        let source = TpgSeedSource::for_circuit(&net, &cfg);
        let run = engine.construct(
            &source,
            &Unbounded,
            &StateOverlay::Identity,
            std::slice::from_ref(&zero),
            &mut rng,
            &mut detected,
            &ConstructOptions {
                r_limit: cfg.useless_seed_limit,
                q_limit: 1,
                single_sequence: true,
                chain_state: false,
                keep_tests: true,
            },
        );
        let mut stats = run.stats.clone();
        let compaction = engine.compact(&run.kept, &mut stats);
        // Compaction never loses coverage relative to the selection pass.
        assert_eq!(compaction.detected, detected);
        assert!(compaction.kept_indices.len() <= run.kept.len());
        assert!(compaction.tests_applied <= run.tests_applied);
    }
}
