#![warn(missing_docs)]

//! Built-in generation of functional broadside tests — the paper's method.
//!
//! Functional broadside tests are scan-based two-pattern tests whose scan-in
//! state is *reachable*: test application then keeps the circuit in states it
//! can visit during functional operation, which eliminates overtesting and
//! bounds test power by functional power (paper §4.1). This crate implements
//! the full on-chip generation flow:
//!
//! * [`extract`] — obtaining a functional broadside test from every two
//!   consecutive clock cycles of an on-chip primary-input sequence (§4.3);
//! * [`driver`] — embedded-block modelling: a [`driver::DrivingBlock`]
//!   constrains the target's primary inputs, and its functional input
//!   sequences define the peak switching activity `SWAfunc` (§4.4);
//! * [`engine`] — the policy-driven [`engine::GenerationEngine`] that owns
//!   the seed-search loop shared by all three Chapter-4 generation modes
//!   (candidate draw, speculative batch evaluation, admissibility, fault
//!   simulation, compaction, stats);
//! * [`policy`] — the [`policy::AdmissibilityPolicy`] implementations: the
//!   `SWAfunc` rule of the constrained method and the unbounded baseline;
//! * [`unconstrained`] — the baseline method of \[73\] (single-segment
//!   sequences, seed selection, forward-looking compaction);
//! * [`constrained`] — **the contribution**: multi-segment primary-input
//!   sequences whose every clock cycle respects `SWAfunc` (Fig. 4.9);
//! * [`holding`] — the optional state-holding DFT that recovers coverage by
//!   introducing controlled unreachable states (§4.5), with the binary-tree
//!   hold-set selection of Fig. 4.12;
//! * [`stp`] — the signal-transition-pattern deviation metric sketched as
//!   future work (§5.1, \[90\]);
//! * [`experiment`] — the harness producing the rows of Tables 4.2–4.4;
//! * [`certify`] — SAT-backed bounded-reachability certification that every
//!   generated test's scan-in state really is reachable from reset within a
//!   cycle bound, independently of the simulator.

pub mod certify;
mod config;
pub mod constrained;
pub mod curve;
pub mod domains;
pub mod driver;
pub mod engine;
pub mod experiment;
pub mod extract;
pub mod holding;
pub mod outcome;
pub mod overtest;
pub mod policy;
mod preflight;
pub mod search;
pub mod session;
pub mod stats;
pub mod stp;
pub mod unconstrained;

pub use certify::{certify_state, certify_tests, CertificationReport, TestCertificate};
pub use config::{DeviationMetric, FunctionalBistConfig};
pub use constrained::{
    generate_constrained, generate_constrained_from, generate_constrained_with_library,
    ConstrainedOutcome,
};
pub use driver::{swafunc, DrivingBlock};
pub use engine::{
    GenerationEngine, OwnedTests, SeedSource, StateOverlay, TpgSeedSource, WeightedSeedSource,
};
pub use fbt_netlist::Error;
pub use holding::{improve_with_holding, improve_with_holding_greedy, HoldingOutcome};
pub use outcome::{MultiSegmentSequence, OutcomeSummary, Segment};
pub use overtest::{estimate_overtesting, OvertestReport};
pub use policy::{AdmissibilityPolicy, SwaRule, Unbounded};
pub use search::SearchOptions;
pub use session::{run_on_hardware, SessionResult};
pub use stats::GenerationStats;
pub use unconstrained::{generate_unconstrained, GenerationOutcome};
