//! Multi-clock-domain operation — the paper's third §5.1 future-work item.
//!
//! "For circuits with multiple clock domains, the frequency difference
//! between clock domains must be taken into account during on-chip test
//! generation. The clock domains should operate at their own speeds so that
//! reachable states can be obtained properly."
//!
//! This module implements that investigation's substrate: a clock-domain
//! overlay on a netlist, multi-rate functional simulation in which each
//! domain's flip-flops capture only on their own clock ticks (so traversed
//! states are reachable under multi-rate operation), classification of
//! transition faults into intra- and inter-domain, and extraction of
//! functional broadside tests for one domain at its own rate — the
//! single-domain building block the paper says multi-cycle test application
//! would be built from.

use fbt_fault::{TransitionFault, TwoPatternTest};
use fbt_netlist::{Netlist, NodeId};
use fbt_sim::seq::SeqSim;
use fbt_sim::Bits;

/// A clock-domain overlay: every flip-flop belongs to one domain, and each
/// domain's clock ticks once every `period` base cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClockDomains {
    /// Domain index per flip-flop (in `net.dffs()` order).
    assignment: Vec<usize>,
    /// Tick period per domain, in base (fastest) cycles; the fastest domain
    /// has period 1.
    periods: Vec<usize>,
}

impl ClockDomains {
    /// Create an overlay.
    ///
    /// # Panics
    ///
    /// Panics if any domain index is out of range, any period is zero, or no
    /// domain has period 1 (there must be a fastest domain defining the base
    /// rate).
    pub fn new(assignment: Vec<usize>, periods: Vec<usize>) -> Self {
        assert!(
            assignment.iter().all(|&d| d < periods.len()),
            "domain index out of range"
        );
        assert!(periods.iter().all(|&p| p > 0), "periods must be positive");
        assert!(
            periods.contains(&1),
            "some domain must run at the base rate"
        );
        ClockDomains {
            assignment,
            periods,
        }
    }

    /// A single-domain overlay (every flip-flop at the base rate) —
    /// multi-rate simulation then degenerates to plain operation.
    pub fn single(n_ff: usize) -> Self {
        ClockDomains {
            assignment: vec![0; n_ff],
            periods: vec![1],
        }
    }

    /// Number of domains.
    pub fn num_domains(&self) -> usize {
        self.periods.len()
    }

    /// The domain of flip-flop `ff`.
    pub fn domain_of(&self, ff: usize) -> usize {
        self.assignment[ff]
    }

    /// Does domain `d` capture on base cycle `cycle`?
    pub fn ticks(&self, d: usize, cycle: usize) -> bool {
        cycle.is_multiple_of(self.periods[d])
    }

    /// The hold mask for base cycle `cycle`: flip-flops whose domain does
    /// *not* tick keep their value.
    pub fn hold_mask(&self, cycle: usize) -> Bits {
        self.assignment
            .iter()
            .map(|&d| !self.ticks(d, cycle))
            .collect()
    }
}

/// A multi-rate functional trajectory.
#[derive(Debug, Clone)]
pub struct MultiRateTrajectory {
    /// `states[i]` before base cycle `i`; length `L + 1`.
    pub states: Vec<Bits>,
    /// Per-base-cycle switching activity (`None` where undefined).
    pub swa: Vec<Option<f64>>,
}

/// Simulate `pis` (one vector per base cycle) with each domain capturing at
/// its own rate. All traversed states are reachable under multi-rate
/// functional operation by construction.
///
/// # Panics
///
/// Panics on width mismatches.
pub fn simulate_multi_rate(
    net: &Netlist,
    domains: &ClockDomains,
    initial: &Bits,
    pis: &[Bits],
) -> MultiRateTrajectory {
    assert_eq!(domains.assignment.len(), net.num_dffs(), "overlay width");
    let mut sim = SeqSim::new(net, initial);
    let mut states = Vec::with_capacity(pis.len() + 1);
    let mut swa = Vec::with_capacity(pis.len());
    states.push(initial.clone());
    for (c, pi) in pis.iter().enumerate() {
        let mask = domains.hold_mask(c);
        let r = sim.step_holding(pi, Some(&mask));
        states.push(r.next_state);
        swa.push(r.switching_activity);
    }
    MultiRateTrajectory { states, swa }
}

/// Classify the faults of a fault list into intra-domain (launchable and
/// capturable within one domain) and inter-domain (the fault's cone crosses
/// domains, needing the paper's multi-cycle inter-domain tests).
///
/// A fault is *intra-domain in `d`* when every flip-flop that can capture
/// its effect belongs to `d`; observation at a primary output counts as
/// intra for any domain.
pub fn classify_faults(
    net: &Netlist,
    domains: &ClockDomains,
    faults: &[TransitionFault],
) -> (Vec<TransitionFault>, Vec<TransitionFault>) {
    // For each node: the set of domains among the flip-flops it can reach.
    let mut intra = Vec::new();
    let mut inter = Vec::new();
    for &f in faults {
        let cone = net.fanout_cone(f.line);
        let mut domains_seen: Vec<usize> = Vec::new();
        for &c in &cone {
            for (i, &d) in net.dffs().iter().enumerate() {
                if net.node(d).fanins()[0] == c {
                    let dom = domains.domain_of(i);
                    if !domains_seen.contains(&dom) {
                        domains_seen.push(dom);
                    }
                }
            }
        }
        // The launching state variables' domain matters too when the fault
        // sits on a flip-flop output.
        if let Some(i) = net.dffs().iter().position(|&d| d == f.line) {
            let dom = domains.domain_of(i);
            if !domains_seen.contains(&dom) {
                domains_seen.push(dom);
            }
        }
        if domains_seen.len() <= 1 {
            intra.push(f);
        } else {
            inter.push(f);
        }
    }
    (intra, inter)
}

/// Extract functional broadside tests for domain `d` from a multi-rate
/// trajectory: two *consecutive ticks of `d`* form the two patterns, with
/// the explicitly recorded (multi-rate) intermediate state as the second
/// pattern's state — a multi-cycle test at the base rate, two-cycle at
/// domain `d`'s rate.
pub fn domain_tests(
    domains: &ClockDomains,
    d: usize,
    pis: &[Bits],
    traj: &MultiRateTrajectory,
) -> Vec<TwoPatternTest> {
    let period = domains.periods[d];
    let mut out = Vec::new();
    // Ticks of domain d happen at cycles 0, period, 2*period, …; a test
    // needs two consecutive ticks with both launch and capture inside the
    // sequence, and tests must not overlap (the §4.3 rule, scaled to the
    // domain's rate).
    let mut t = 0usize;
    while t + 2 * period <= pis.len() {
        out.push(TwoPatternTest::new(
            traj.states[t].clone(),
            pis[t].clone(),
            traj.states[t + period].clone(),
            pis[t + period].clone(),
        ));
        t += 2 * period;
    }
    out
}

/// Convenience: a round-robin domain overlay for experiments (`n_domains`
/// domains with periods 1, 2, 4, …).
pub fn round_robin(net: &Netlist, n_domains: usize) -> ClockDomains {
    assert!(n_domains >= 1, "need at least one domain");
    let periods: Vec<usize> = (0..n_domains).map(|d| 1usize << d).collect();
    let assignment: Vec<usize> = (0..net.num_dffs()).map(|i| i % n_domains).collect();
    ClockDomains::new(assignment, periods)
}

/// The lines of a netlist reached by node `seed` — re-exported convenience
/// for domain analyses.
pub fn reachable_captures(net: &Netlist, seed: NodeId) -> Vec<usize> {
    let cone = net.fanout_cone(seed);
    let mut out = Vec::new();
    for (i, &d) in net.dffs().iter().enumerate() {
        if cone.contains(&net.node(d).fanins()[0]) {
            out.push(i);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbt_fault::all_transition_faults;
    use fbt_netlist::s27;
    use fbt_sim::seq::simulate_sequence;

    fn pis(n: usize) -> Vec<Bits> {
        (0..n)
            .map(|i| Bits::from_bools(&[i % 2 == 0, i % 3 == 0, i % 5 == 0, true]))
            .collect()
    }

    #[test]
    fn single_domain_degenerates_to_plain_simulation() {
        let net = s27();
        let domains = ClockDomains::single(3);
        let p = pis(12);
        let multi = simulate_multi_rate(&net, &domains, &Bits::zeros(3), &p);
        let plain = simulate_sequence(&net, &Bits::zeros(3), &p);
        assert_eq!(multi.states, plain.states);
    }

    #[test]
    fn slow_domain_ffs_only_change_on_their_ticks() {
        let net = s27();
        // FF 0 fast (period 1), FFs 1 and 2 slow (period 2).
        let domains = ClockDomains::new(vec![0, 1, 1], vec![1, 2]);
        let p = pis(12);
        let traj = simulate_multi_rate(&net, &domains, &Bits::zeros(3), &p);
        for c in 0..p.len() {
            if !domains.ticks(1, c) {
                for ff in [1usize, 2] {
                    assert_eq!(
                        traj.states[c + 1].get(ff),
                        traj.states[c].get(ff),
                        "slow FF {ff} changed off-tick at cycle {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn classification_partitions_the_fault_list() {
        let net = s27();
        let domains = round_robin(&net, 2);
        let faults = all_transition_faults(&net);
        let (intra, inter) = classify_faults(&net, &domains, &faults);
        assert_eq!(intra.len() + inter.len(), faults.len());
        // s27's logic is tightly coupled: some faults must cross domains.
        assert!(!inter.is_empty());
        assert!(!intra.is_empty());
    }

    #[test]
    fn domain_tests_take_states_from_the_trajectory() {
        let net = s27();
        let domains = ClockDomains::new(vec![0, 1, 1], vec![1, 2]);
        let p = pis(16);
        let traj = simulate_multi_rate(&net, &domains, &Bits::zeros(3), &p);
        // Fast domain: like q=1 extraction.
        let fast = domain_tests(&domains, 0, &p, &traj);
        assert_eq!(fast.len(), 8);
        for (k, t) in fast.iter().enumerate() {
            assert_eq!(t.s1, traj.states[2 * k]);
            assert_eq!(t.s2, traj.states[2 * k + 1]);
        }
        // Slow domain: tests every 4 base cycles with a 2-cycle gap.
        let slow = domain_tests(&domains, 1, &p, &traj);
        assert_eq!(slow.len(), 4);
        for (k, t) in slow.iter().enumerate() {
            assert_eq!(t.s1, traj.states[4 * k]);
            assert_eq!(t.s2, traj.states[4 * k + 2]);
        }
    }

    #[test]
    fn domain_tests_are_simulatable_as_two_pattern_tests() {
        // The extracted tests feed straight into the two-pattern fault
        // simulator — the building block for multi-domain coverage.
        let net = s27();
        let domains = round_robin(&net, 2);
        let p = pis(20);
        let traj = simulate_multi_rate(&net, &domains, &Bits::zeros(3), &p);
        let tests = domain_tests(&domains, 0, &p, &traj);
        let faults = all_transition_faults(&net);
        let mut detected = vec![false; faults.len()];
        use fbt_fault::{FaultSimEngine, FaultSimOptions, TestSet};
        let mut fsim = fbt_fault::SerialSim::new(&net);
        fsim.simulate(
            TestSet::TwoPattern(&tests),
            &faults,
            &mut detected,
            &FaultSimOptions::new(),
        );
        assert!(detected.iter().any(|&d| d));
    }

    #[test]
    #[should_panic(expected = "some domain must run at the base rate")]
    fn missing_base_rate_rejected() {
        let _ = ClockDomains::new(vec![0, 0, 0], vec![2]);
    }

    #[test]
    fn reachable_captures_reports_ff_indices() {
        let net = s27();
        // G10 drives the D input of G5 (flip-flop 0).
        let g10 = net.find("G10").unwrap();
        assert!(reachable_captures(&net, g10).contains(&0));
    }
}
