//! Coverage growth curves: transition fault coverage as a function of the
//! number of applied tests.
//!
//! The paper's discussion of test budgets ("the number of applied tests
//! varies from hundreds to hundreds of thousands … the target circuits have
//! different numbers of random pattern resistant faults", §4.6) is about the
//! shape of this curve; exposing it lets a user pick a budget and lets the
//! experiments show saturation explicitly.

use fbt_fault::{FaultSimEngine, FaultSimOptions, PackedParallelSim, TestSet};
use fbt_netlist::Netlist;

use crate::constrained::{replay_tests, ConstrainedOutcome};
use crate::FunctionalBistConfig;

/// One point on a coverage curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Tests applied so far.
    pub tests: usize,
    /// Transition fault coverage (percent) after those tests.
    pub coverage: f64,
}

/// Replay a constrained outcome and sample coverage every `stride` tests.
///
/// The final point always equals the outcome's own coverage (asserted by a
/// test), so the curve is an exact decomposition of the reported number.
///
/// # Panics
///
/// Panics if `stride == 0`.
pub fn coverage_curve(
    net: &Netlist,
    outcome: &ConstrainedOutcome,
    cfg: &FunctionalBistConfig,
    stride: usize,
) -> Vec<CurvePoint> {
    assert!(stride > 0, "stride must be positive");
    let tests = replay_tests(net, outcome, cfg);
    let mut fsim = PackedParallelSim::new(net);
    let mut detected = vec![false; outcome.faults.len()];
    let mut curve = Vec::with_capacity(tests.len() / stride + 2);
    curve.push(CurvePoint {
        tests: 0,
        coverage: 0.0,
    });
    let mut applied = 0usize;
    for chunk in tests.chunks(stride) {
        fsim.simulate(
            TestSet::Broadside(chunk),
            &outcome.faults,
            &mut detected,
            &FaultSimOptions::new(),
        );
        applied += chunk.len();
        curve.push(CurvePoint {
            tests: applied,
            coverage: fbt_fault::sim::coverage_percent(&detected),
        });
    }
    curve
}

/// The smallest number of applied tests reaching `fraction` (0..=1) of the
/// final coverage — the "knee" metric of a growth curve.
pub fn tests_to_reach(curve: &[CurvePoint], fraction: f64) -> Option<usize> {
    let last = curve.last()?.coverage;
    let target = last * fraction;
    curve
        .iter()
        .find(|p| p.coverage >= target - 1e-12)
        .map(|p| p.tests)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{swafunc, DrivingBlock};
    use crate::generate_constrained;
    use fbt_netlist::s27;

    fn outcome() -> (
        fbt_netlist::Netlist,
        FunctionalBistConfig,
        ConstrainedOutcome,
    ) {
        let net = s27();
        let cfg = FunctionalBistConfig::smoke();
        let bound = swafunc(&net, &DrivingBlock::Buffers, &cfg);
        let out = generate_constrained(&net, bound, &cfg);
        (net, cfg, out)
    }

    #[test]
    fn curve_is_monotone_and_lands_on_the_final_coverage() {
        let (net, cfg, out) = outcome();
        let curve = coverage_curve(&net, &out, &cfg, 5);
        assert!(curve.len() >= 2);
        for w in curve.windows(2) {
            assert!(w[1].coverage >= w[0].coverage - 1e-12);
            assert!(w[1].tests > w[0].tests);
        }
        let last = curve.last().unwrap();
        assert_eq!(last.tests, out.tests_applied);
        assert!((last.coverage - out.fault_coverage()).abs() < 1e-9);
    }

    #[test]
    fn knee_metric() {
        let (net, cfg, out) = outcome();
        let curve = coverage_curve(&net, &out, &cfg, 5);
        let t50 = tests_to_reach(&curve, 0.5).unwrap();
        let t100 = tests_to_reach(&curve, 1.0).unwrap();
        assert!(t50 <= t100);
        assert!(t100 <= out.tests_applied);
        // Random-pattern coverage grows fastest early.
        assert!(t50 * 2 <= t100.max(1) * 2); // trivially true; documents intent
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_rejected() {
        let (net, cfg, out) = outcome();
        let _ = coverage_curve(&net, &out, &cfg, 0);
    }
}
