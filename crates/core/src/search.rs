//! Deterministic speculative-batch seed search.
//!
//! The Chapter-4 generation loops all share one shape: draw an LFSR seed
//! from a reproducible [`Rng`] stream, do expensive per-candidate work (TPG
//! expansion, logic simulation, admissibility checking, test extraction,
//! fault simulation against the current detection flags), and *commit* the
//! candidate only if it detects new faults. The commit mutates shared state
//! (`detected`, the circuit's current state), but a **rejected** candidate
//! mutates nothing — which makes the expensive work speculatable.
//!
//! The harness here draws a batch of `K` candidate seeds ahead of time from
//! the same stream, evaluates them concurrently against a snapshot of the
//! shared state, and then consumes the results serially *in draw order*:
//!
//! * a candidate whose speculative result is a reject is consumed as-is —
//!   the snapshot it was evaluated against is exactly the state the serial
//!   loop would have had, because no earlier candidate in the round
//!   committed;
//! * the **first** candidate whose result is an accept is committed, and
//!   every later candidate's result is discarded (their snapshots are now
//!   stale). Their *seeds* are pushed back onto the queue and re-evaluated
//!   against the new state in the next round, exactly as the serial loop
//!   would have drawn them next.
//!
//! Stopping conditions are re-checked before each candidate is consumed, so
//! the search consumes precisely the prefix of the seed stream the serial
//! loop would have. The outcome is therefore bit-identical to the serial
//! search for **every** batch size and thread count; speculation only
//! trades wasted evaluations for wall-clock time.

use std::collections::VecDeque;

use fbt_fault::{
    FaultSimEngine, FaultSimOptions, PackedParallelSim, SimOutcome, TestGroup, TransitionFault,
};
use fbt_netlist::rng::Rng;
use fbt_netlist::Netlist;

/// Tunables of the speculative seed search, carried by
/// [`crate::FunctionalBistConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchOptions {
    /// Number of candidate seeds evaluated speculatively per round. `1`
    /// reproduces the serial loop with zero speculation overhead.
    pub batch: usize,
    /// Worker threads evaluating candidates; `0` resolves to
    /// [`std::thread::available_parallelism`].
    pub threads: usize,
    /// Evaluate each round as one candidate-packed grouped fault-simulation
    /// call ([`fbt_fault::FaultSimEngine::simulate_groups`]) instead of one
    /// scoped-thread PPSFP pass per candidate. Outcomes are bit-identical
    /// either way; packing only removes the per-candidate pass overhead.
    /// Ignored (legacy per-candidate passes) for admissibility policies that
    /// cannot report a prefix from a switching-activity trace.
    pub packed: bool,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            batch: 1,
            threads: 0,
            packed: true,
        }
    }
}

impl SearchOptions {
    /// A serial search (batch of one, one thread, per-candidate passes).
    pub fn serial() -> Self {
        SearchOptions {
            batch: 1,
            threads: 1,
            packed: false,
        }
    }

    /// A speculative search with the given batch size, automatic threads and
    /// candidate packing.
    pub fn speculative(batch: usize) -> Self {
        SearchOptions {
            batch,
            threads: 0,
            packed: true,
        }
    }

    /// The thread count resolved against the machine.
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }

    /// Validate invariants.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn validate(&self) {
        assert!(self.batch >= 1, "speculation batch must be >= 1");
    }
}

/// An order-preserving queue over a [`Rng`] seed stream.
///
/// Seeds drawn for a speculative round but not consumed (their results were
/// invalidated by an earlier commit, or the search stopped) are requeued at
/// the front, so the sequence of *consumed* seeds is always a prefix of the
/// underlying stream in draw order — the determinism invariant.
#[derive(Debug, Default)]
pub(crate) struct SeedQueue {
    pending: VecDeque<u64>,
}

impl SeedQueue {
    pub(crate) fn new() -> Self {
        SeedQueue::default()
    }

    /// Take the next `n` seeds, drawing fresh ones from `rng` as needed.
    pub(crate) fn draw(&mut self, rng: &mut Rng, n: usize) -> Vec<u64> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            out.push(self.pending.pop_front().unwrap_or_else(|| rng.next_u64()));
        }
        out
    }

    /// Return unconsumed seeds to the front of the queue, preserving order.
    pub(crate) fn requeue(&mut self, seeds: &[u64]) {
        for &s in seeds.iter().rev() {
            self.pending.push_front(s);
        }
    }
}

/// A pool of per-worker fault-simulation engines that evaluates one batch of
/// candidate seeds concurrently with [`std::thread::scope`].
///
/// Engines persist across rounds (and across calls), so their lazily built
/// fanout-cone caches amortize over the whole search.
#[derive(Debug)]
pub(crate) struct BatchEvaluator<'n> {
    threads: usize,
    engines: Vec<PackedParallelSim<'n>>,
}

impl<'n> BatchEvaluator<'n> {
    pub(crate) fn new(net: &'n Netlist, opts: &SearchOptions) -> Self {
        let threads = opts.resolved_threads().max(1);
        BatchEvaluator {
            threads,
            engines: (0..threads).map(|_| PackedParallelSim::new(net)).collect(),
        }
    }

    /// Thread count the *inner* fault simulation should use: when candidates
    /// are already spread across workers, each engine runs single-threaded
    /// to avoid oversubscription; a lone worker keeps automatic threading.
    pub(crate) fn inner_threads(&self) -> usize {
        if self.threads > 1 {
            1
        } else {
            0
        }
    }

    /// The first worker's engine, for serial fault-simulation passes that
    /// should share the search's fanout-cone caches.
    pub(crate) fn engine(&mut self) -> &mut PackedParallelSim<'n> {
        &mut self.engines[0]
    }

    /// Submit one speculative round as a single candidate-packed grouped
    /// call on the primary engine: every candidate is one [`TestGroup`]
    /// with its own detection credit against the shared `baseline`, and the
    /// engine packs tests from different groups into the same 64-lane
    /// words. The engine's own fault-sharded threading replaces the scoped
    /// per-candidate workers of [`BatchEvaluator::run`].
    pub(crate) fn simulate_groups(
        &mut self,
        groups: &[TestGroup<'_>],
        faults: &[TransitionFault],
        baseline: &[bool],
        opts: &FaultSimOptions,
    ) -> Vec<SimOutcome> {
        self.engines[0].simulate_groups(groups, faults, baseline, opts)
    }

    /// Evaluate `seeds` with `f`, returning results in seed order.
    ///
    /// `f` must be a pure function of the seed and whatever immutable
    /// snapshot it captures — results for the same seed and snapshot must
    /// not depend on which worker runs it.
    pub(crate) fn run<R, F>(&mut self, seeds: &[u64], f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut PackedParallelSim<'n>, u64) -> R + Sync,
    {
        let workers = self.threads.min(seeds.len());
        if workers <= 1 {
            let engine = &mut self.engines[0];
            return seeds.iter().map(|&s| f(engine, s)).collect();
        }
        let chunk = seeds.len().div_ceil(workers);
        let per_worker: Vec<Vec<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .engines
                .iter_mut()
                .zip(seeds.chunks(chunk))
                .map(|(engine, chunk_seeds)| {
                    let f = &f;
                    scope.spawn(move || {
                        chunk_seeds
                            .iter()
                            .map(|&s| f(engine, s))
                            .collect::<Vec<R>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("seed-search worker panicked"))
                .collect()
        });
        per_worker.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbt_netlist::s27;

    #[test]
    fn seed_queue_preserves_stream_order() {
        let mut q = SeedQueue::new();
        let mut rng = Rng::new(1);
        let batch = q.draw(&mut rng, 4);
        // Consume two, requeue the rest; the next draw must replay them.
        q.requeue(&batch[2..]);
        let next = q.draw(&mut rng, 4);
        assert_eq!(next[0], batch[2]);
        assert_eq!(next[1], batch[3]);
        // And the fresh tail continues the same stream.
        let mut reference = Rng::new(1);
        let direct: Vec<u64> = (0..6).map(|_| reference.next_u64()).collect();
        assert_eq!(&direct[..4], &batch[..]);
        assert_eq!(&direct[4..], &next[2..]);
    }

    #[test]
    fn evaluator_returns_results_in_seed_order() {
        let net = s27();
        let seeds: Vec<u64> = (0..23).collect();
        for threads in [1, 2, 8] {
            let opts = SearchOptions {
                batch: 8,
                threads,
                packed: false,
            };
            let mut ev = BatchEvaluator::new(&net, &opts);
            let out = ev.run(&seeds, |_, s| s * 3);
            assert_eq!(out, seeds.iter().map(|s| s * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn serial_options_resolve_to_one_thread() {
        let o = SearchOptions::serial();
        assert_eq!(o.resolved_threads(), 1);
        o.validate();
        assert!(SearchOptions::speculative(16).resolved_threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "batch must be >= 1")]
    fn zero_batch_rejected() {
        SearchOptions {
            batch: 0,
            threads: 1,
            packed: false,
        }
        .validate();
    }
}
