//! Experiment harness producing the rows of Tables 4.2, 4.3 and 4.4.

use fbt_bist::area::{circuit_area, BistHardware, CellLibrary};
use fbt_bist::cube;
use fbt_netlist::Netlist;

use crate::constrained::ConstrainedOutcome;
use crate::driver::{swafunc, DrivingBlock};
use crate::holding::HoldingOutcome;
use crate::{generate_constrained, improve_with_holding, FunctionalBistConfig};

/// A row of Table 4.2: benchmark circuit parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitParamsRow {
    /// Circuit name.
    pub name: String,
    /// Number of primary outputs (`NPO`).
    pub npo: usize,
    /// Number of primary inputs (`NPI` / `Nin`).
    pub npi: usize,
    /// Number of cube-specified inputs (`NSP` / `Np`, the biasing gates).
    pub nsp: usize,
    /// Number of state variables (`NSV`).
    pub nsv: usize,
}

/// Compute the Table 4.2 row for a circuit.
pub fn circuit_params(net: &Netlist) -> CircuitParamsRow {
    let c = cube::input_cube(net);
    CircuitParamsRow {
        name: net.name().to_string(),
        npo: net.num_outputs(),
        npi: net.num_inputs(),
        nsp: cube::specified_count(&c),
        nsv: net.num_dffs(),
    }
}

/// The §4.6 scan configuration: at most 10 scan chains, each of length at
/// least 100, approximately equal; returns the longest chain length `Lsc`.
pub fn scan_chain_length(nsv: usize) -> usize {
    if nsv == 0 {
        return 0;
    }
    let chains = (nsv / 100).clamp(1, 10);
    nsv.div_ceil(chains)
}

/// A row of Table 4.3: constrained built-in generation results.
#[derive(Debug, Clone)]
pub struct ConstrainedRow {
    /// Target circuit name.
    pub target: String,
    /// Total collapsed transition faults.
    pub num_faults: usize,
    /// Longest scan chain `Lsc`.
    pub lsc: usize,
    /// Driving block label.
    pub driver: String,
    /// Number of multi-segment sequences `Nmulti`.
    pub nmulti: usize,
    /// Most segments in a sequence `Nsegmax`.
    pub nsegmax: usize,
    /// Longest segment `Lmax`.
    pub lmax: usize,
    /// The bound `SWAfunc`, percent.
    pub swafunc_pct: f64,
    /// Selected LFSR seeds `Nseeds`.
    pub nseeds: usize,
    /// Applied tests `Ntests`.
    pub ntests: usize,
    /// Peak activity during test application, percent.
    pub swa_pct: f64,
    /// Transition fault coverage, percent.
    pub fc_pct: f64,
    /// BIST hardware area, µm².
    pub hw_area: f64,
    /// Hardware area as a percentage of the circuit area.
    pub overhead_pct: f64,
}

/// Run the full constrained experiment for one (target, driver) pair.
///
/// Computes `SWAfunc` from functional input sequences, runs the constrained
/// generation, sizes the hardware and prices it.
pub fn run_constrained_experiment(
    target: &Netlist,
    driver: &DrivingBlock,
    cfg: &FunctionalBistConfig,
) -> (ConstrainedRow, ConstrainedOutcome) {
    let lib = CellLibrary::generic_018um();
    let bound = swafunc(target, driver, cfg);
    let out = generate_constrained(target, bound, cfg);
    let params = circuit_params(target);
    let lsc = scan_chain_length(params.nsv);
    let hw = BistHardware::for_program(
        cfg.lfsr_width as usize,
        cfg.m,
        params.nsp,
        out.lmax().max(2),
        lsc,
        out.nsegmax().max(1),
        out.nmulti().max(1),
        0,
    );
    let hw_area = hw.area(&lib);
    let circ = circuit_area(target, &lib);
    let row = ConstrainedRow {
        target: params.name,
        num_faults: out.faults.len(),
        lsc,
        driver: driver.label().to_string(),
        nmulti: out.nmulti(),
        nsegmax: out.nsegmax(),
        lmax: out.lmax(),
        swafunc_pct: bound * 100.0,
        nseeds: out.nseeds(),
        ntests: out.tests_applied,
        swa_pct: out.peak_swa * 100.0,
        fc_pct: out.fault_coverage(),
        hw_area,
        overhead_pct: 100.0 * hw_area / circ,
    };
    (row, out)
}

/// A row of Table 4.4: built-in test generation with state holding.
#[derive(Debug, Clone)]
pub struct HoldingRow {
    /// Target circuit name.
    pub target: String,
    /// Driving block label.
    pub driver: String,
    /// Number of selected hold sets `Nh`.
    pub nh: usize,
    /// Total held state variables `Nbits`.
    pub nbits: usize,
    /// Multi-segment sequences applied during holding `Nmulti`.
    pub nmulti: usize,
    /// Most segments in a sequence `Nsegmax`.
    pub nsegmax: usize,
    /// Longest segment `Lmax`.
    pub lmax: usize,
    /// Seeds used during holding `Nseeds`.
    pub nseeds: usize,
    /// Tests applied during holding `Ntests`.
    pub ntests: usize,
    /// Peak activity during holding, percent.
    pub swa_pct: f64,
    /// Coverage improvement, percent points ("FC Imp.").
    pub fc_improvement_pct: f64,
    /// Final coverage, percent.
    pub final_fc_pct: f64,
    /// Total hardware area (base + holding), µm².
    pub hw_area: f64,
    /// Overhead percentage.
    pub overhead_pct: f64,
}

/// Run the state-holding stage on top of a constrained outcome and size the
/// combined hardware.
pub fn run_holding_experiment(
    target: &Netlist,
    driver: &DrivingBlock,
    cfg: &FunctionalBistConfig,
    base: &ConstrainedOutcome,
) -> (HoldingRow, HoldingOutcome) {
    let lib = CellLibrary::generic_018um();
    let out = improve_with_holding(target, base.swafunc, cfg, base);
    let params = circuit_params(target);
    let lsc = scan_chain_length(params.nsv);
    let all_seqs: Vec<&crate::MultiSegmentSequence> =
        out.sequences_per_set.iter().flatten().collect();
    let nmulti = all_seqs.len();
    let nsegmax = all_seqs.iter().map(|s| s.num_segments()).max().unwrap_or(0);
    let lmax = all_seqs
        .iter()
        .flat_map(|s| s.segments.iter().map(|g| g.len))
        .max()
        .unwrap_or(0);
    let hw = BistHardware::for_program(
        cfg.lfsr_width as usize,
        cfg.m,
        params.nsp,
        lmax.max(base.lmax()).max(2),
        lsc,
        nsegmax.max(base.nsegmax()).max(1),
        (nmulti + base.nmulti()).max(1),
        out.sets.len(),
    );
    let hw_area = hw.area(&lib);
    let circ = circuit_area(target, &lib);
    let row = HoldingRow {
        target: params.name,
        driver: driver.label().to_string(),
        nh: out.sets.len(),
        nbits: out.nbits(),
        nmulti,
        nsegmax,
        lmax,
        nseeds: out.nseeds(),
        ntests: out.tests_applied,
        swa_pct: out.peak_swa * 100.0,
        fc_improvement_pct: out.improvement(),
        final_fc_pct: out.final_coverage(),
        hw_area,
        overhead_pct: 100.0 * hw_area / circ,
    };
    (row, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbt_netlist::s27;

    #[test]
    fn scan_chain_rules() {
        assert_eq!(scan_chain_length(0), 0);
        assert_eq!(scan_chain_length(50), 50); // one chain, shorter than 100
        assert_eq!(scan_chain_length(229), 115); // spi: 2 chains of ~115
        assert_eq!(scan_chain_length(1728), 173); // s35932: 10 chains (Table 4.3)
        assert_eq!(scan_chain_length(8808), 881); // des_perf (Table 4.3)
    }

    #[test]
    fn s38584_lsc_matches_paper() {
        // Table 4.3 reports Lsc = 117 for s38584 (1164 state variables).
        assert_eq!(scan_chain_length(1164), 117);
    }

    #[test]
    fn params_row_for_s27() {
        let row = circuit_params(&s27());
        assert_eq!(row.npi, 4);
        assert_eq!(row.npo, 1);
        assert_eq!(row.nsv, 3);
        assert!(row.nsp <= row.npi);
    }

    #[test]
    fn constrained_experiment_row_is_coherent() {
        let net = s27();
        let cfg = FunctionalBistConfig::smoke();
        let (row, out) = run_constrained_experiment(&net, &DrivingBlock::Buffers, &cfg);
        assert!(row.swa_pct <= row.swafunc_pct + 1e-9);
        assert_eq!(row.ntests, out.tests_applied);
        assert!(row.fc_pct > 0.0);
        assert!(row.hw_area > 0.0);
        assert!(row.overhead_pct > 0.0);
        assert_eq!(row.driver, "buffers");
    }

    #[test]
    fn holding_experiment_extends_base() {
        let net = s27();
        let cfg = FunctionalBistConfig::smoke();
        let bound = crate::driver::swafunc(&net, &DrivingBlock::Buffers, &cfg) * 0.75;
        let base = crate::generate_constrained(&net, bound, &cfg);
        let (row, out) = run_holding_experiment(&net, &DrivingBlock::Buffers, &cfg, &base);
        assert!(row.final_fc_pct + 1e-9 >= base.fault_coverage());
        assert_eq!(row.nh, out.sets.len());
        assert!(row.swa_pct <= row_bound_pct(bound) + 1e-9);
    }

    fn row_bound_pct(bound: f64) -> f64 {
        bound * 100.0
    }
}
