//! Built-in generation of functional broadside tests **considering primary
//! input constraints** — the paper's contribution (§4.4, Fig. 4.9).
//!
//! Arbitrary on-chip sequences can drive the embedded circuit through
//! state-transitions whose switching activity exceeds anything functional
//! operation can produce, causing overtesting. The constrained method builds
//! *multi-segment* primary-input sequences: each segment comes from a
//! different LFSR seed, is truncated just before the first clock cycle whose
//! switching activity would exceed `SWAfunc`, and is kept only if its tests
//! detect new faults. Between segments the circuit's state is held (its clock
//! is gated) while the new seed is loaded, so the next segment continues from
//! the final state of the previous one and the whole trajectory remains
//! reachable.

use std::time::Instant;

use fbt_bist::{cube, Tpg, TpgSpec};
use fbt_fault::{all_transition_faults, collapse, TransitionFault};
use fbt_fault::{BroadsideTest, FaultSimEngine, FaultSimOptions, TestSet};
use fbt_netlist::rng::Rng;
use fbt_netlist::Netlist;
use fbt_sim::seq::simulate_sequence;
use fbt_sim::Bits;

use crate::extract::functional_tests;
use crate::search::{BatchEvaluator, SeedQueue};
use crate::stats::GenerationStats;
use crate::stp::StpLibrary;
use crate::{DeviationMetric, FunctionalBistConfig};

/// One primary-input segment: an LFSR seed and the (even) number of cycles
/// applied from it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// The LFSR seed loaded for this segment.
    pub seed: u64,
    /// Number of clock cycles applied (always even, so the segment ends at
    /// the final state of its last test).
    pub len: usize,
}

/// A multi-segment primary-input sequence `Pmulti = Pseg(0) … Pseg(Nseg-1)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiSegmentSequence {
    /// The reachable state the circuit is initialized into before this
    /// sequence (the all-0 state in the paper's experiments; §4.4 notes
    /// several reachable states can be used when scan-in storage allows).
    pub initial_state: Bits,
    /// The segments, in application order.
    pub segments: Vec<Segment>,
}

impl MultiSegmentSequence {
    /// An empty sequence starting from `initial_state`.
    pub fn new(initial_state: Bits) -> Self {
        MultiSegmentSequence {
            initial_state,
            segments: Vec::new(),
        }
    }
}

impl MultiSegmentSequence {
    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Total applied cycles.
    pub fn total_len(&self) -> usize {
        self.segments.iter().map(|s| s.len).sum()
    }
}

/// The decision rule that truncates a candidate segment (pluggable so the
/// §5.1 signal-transition-pattern metric can replace plain switching
/// activity).
pub(crate) trait SegmentRule {
    /// The longest even prefix of `pis`, applied from `start`, whose every
    /// measurable clock cycle is admissible.
    fn admissible_prefix(&self, net: &Netlist, start: &Bits, pis: &[Bits]) -> usize;
}

/// Switching-activity bound (the paper's rule).
pub(crate) struct SwaRule {
    pub bound: f64,
}

impl SegmentRule for SwaRule {
    fn admissible_prefix(&self, net: &Netlist, start: &Bits, pis: &[Bits]) -> usize {
        let traj = simulate_sequence(net, start, pis);
        match traj
            .swa
            .iter()
            .position(|s| s.is_some_and(|v| v > self.bound + 1e-12))
        {
            // Violation at cycle v (paper's j+1): usable prefix is
            // p(0) … p(j-1), i.e. v-1 cycles, rounded down to even.
            Some(v) => (v.saturating_sub(1)) & !1usize,
            None => pis.len() & !1usize,
        }
    }
}

/// Result of a constrained generation run.
#[derive(Debug, Clone)]
pub struct ConstrainedOutcome {
    /// The constructed multi-segment sequences.
    pub sequences: Vec<MultiSegmentSequence>,
    /// The switching-activity bound used (`SWAfunc`).
    pub swafunc: f64,
    /// The collapsed transition fault list.
    pub faults: Vec<TransitionFault>,
    /// Detection flag per fault.
    pub detected: Vec<bool>,
    /// Total number of tests applied on-chip.
    pub tests_applied: usize,
    /// Peak switching activity during test application (≤ `swafunc` by
    /// construction when the SWA metric is used).
    pub peak_swa: f64,
    /// Instrumentation counters and wall times for this run.
    pub stats: GenerationStats,
}

impl ConstrainedOutcome {
    /// Transition fault coverage in percent.
    pub fn fault_coverage(&self) -> f64 {
        fbt_fault::sim::coverage_percent(&self.detected)
    }

    /// Number of detected faults.
    pub fn num_detected(&self) -> usize {
        self.detected.iter().filter(|&&d| d).count()
    }

    /// `Nmulti`: number of multi-segment sequences.
    pub fn nmulti(&self) -> usize {
        self.sequences.len()
    }

    /// `Nsegmax`: most segments in any one sequence.
    pub fn nsegmax(&self) -> usize {
        self.sequences
            .iter()
            .map(MultiSegmentSequence::num_segments)
            .max()
            .unwrap_or(0)
    }

    /// `Lmax`: longest segment.
    pub fn lmax(&self) -> usize {
        self.sequences
            .iter()
            .flat_map(|s| s.segments.iter().map(|g| g.len))
            .max()
            .unwrap_or(0)
    }

    /// `Nseeds`: total number of selected seeds (= total segments).
    pub fn nseeds(&self) -> usize {
        self.sequences
            .iter()
            .map(MultiSegmentSequence::num_segments)
            .sum()
    }

    /// Segment lengths per sequence (for the controller's cycle budget).
    pub fn segment_lengths(&self) -> Vec<Vec<usize>> {
        self.sequences
            .iter()
            .map(|s| s.segments.iter().map(|g| g.len).collect())
            .collect()
    }
}

/// Run the constrained method with a precomputed `SWAfunc` bound, starting
/// every sequence from the all-0 reset state.
///
/// # Example
///
/// ```
/// use fbt_core::driver::DrivingBlock;
/// use fbt_core::{generate_constrained, swafunc, FunctionalBistConfig};
///
/// let net = fbt_netlist::s27();
/// let cfg = FunctionalBistConfig::smoke();
/// let bound = swafunc(&net, &DrivingBlock::Buffers, &cfg);
/// let out = generate_constrained(&net, bound, &cfg);
/// assert!(out.peak_swa <= bound);            // the §4.4 guarantee
/// assert!(out.fault_coverage() > 0.0);
/// ```
///
/// When `cfg.metric` is [`DeviationMetric::SignalTransitionPatterns`], an
/// [`StpLibrary`] must be supplied via [`generate_constrained_with_library`];
/// this entry point always uses the switching-activity rule.
///
/// # Panics
///
/// Panics on invalid configurations.
pub fn generate_constrained(
    net: &Netlist,
    swafunc: f64,
    cfg: &FunctionalBistConfig,
) -> ConstrainedOutcome {
    let rule = SwaRule { bound: swafunc };
    let zero = Bits::zeros(net.num_dffs());
    run(net, swafunc, cfg, &rule, std::slice::from_ref(&zero))
}

/// Like [`generate_constrained`], but round-robins sequence attempts over a
/// set of *reachable* initial states (§4.4: "several different reachable
/// states can be used as initial states if the amount of required memory for
/// storing these states is not a concern").
///
/// # Panics
///
/// Panics on invalid configurations, an empty `initial_states` slice, or a
/// state-width mismatch. Reachability of the supplied states is the
/// caller's responsibility — an unreachable state would silently break the
/// functional-broadside guarantee.
pub fn generate_constrained_from(
    net: &Netlist,
    swafunc: f64,
    cfg: &FunctionalBistConfig,
    initial_states: &[Bits],
) -> ConstrainedOutcome {
    assert!(
        !initial_states.is_empty(),
        "need at least one initial state"
    );
    for s in initial_states {
        assert_eq!(s.len(), net.num_dffs(), "initial state width mismatch");
    }
    let rule = SwaRule { bound: swafunc };
    run(net, swafunc, cfg, &rule, initial_states)
}

/// Run the constrained method with the signal-transition-pattern rule of
/// §5.1 (\[90\]): a state-transition is admissible only if its pattern of
/// signal-transitions is a subset of one observed during functional
/// operation.
///
/// # Panics
///
/// Panics if `cfg.metric` is not
/// [`DeviationMetric::SignalTransitionPatterns`].
pub fn generate_constrained_with_library(
    net: &Netlist,
    swafunc: f64,
    library: &StpLibrary,
    cfg: &FunctionalBistConfig,
) -> ConstrainedOutcome {
    assert_eq!(
        cfg.metric,
        DeviationMetric::SignalTransitionPatterns,
        "library-based generation requires the STP metric"
    );
    let zero = Bits::zeros(net.num_dffs());
    run(net, swafunc, cfg, library, std::slice::from_ref(&zero))
}

/// One speculative segment-candidate evaluation (see [`crate::search`]):
/// everything the commit step needs, computed against snapshots of the
/// detection flags and the sequence's current state.
struct SegmentCandidate {
    /// Admissible prefix length (`< 2` = inadmissible).
    len: usize,
    /// The extracted functional broadside tests of the prefix.
    tests: Vec<BroadsideTest>,
    /// Faults newly detected relative to the snapshot (empty = reject).
    newly: Vec<usize>,
    /// Peak activity over the prefix trajectory.
    peak_swa: f64,
    /// The state reached at the end of the prefix.
    next_state: Option<Bits>,
    /// Logic-simulated cycles this evaluation cost.
    cycles: usize,
}

fn run(
    net: &Netlist,
    swafunc: f64,
    cfg: &FunctionalBistConfig,
    rule: &(dyn SegmentRule + Sync),
    initial_states: &[Bits],
) -> ConstrainedOutcome {
    cfg.validate();
    let t0 = Instant::now();
    let spec = TpgSpec {
        lfsr_width: cfg.lfsr_width,
        m: cfg.m,
        cube: cube::input_cube(net),
    };
    let faults = collapse(net, &all_transition_faults(net));
    let mut detected = vec![false; faults.len()];
    // Lint pre-flight: statically untestable faults never enter the
    // simulator; they stay `false` in the full-length flags, so the outcome
    // is bit-identical with the pre-flight off (see [`crate::preflight`]).
    let (active_faults, active_idx) =
        crate::preflight::project_active(net, &faults, cfg.lint_preflight);
    let mut rng = Rng::new(cfg.master_seed);
    let mut stats = GenerationStats {
        faults_skipped_lint: faults.len() - active_faults.len(),
        ..GenerationStats::default()
    };

    let mut queue = SeedQueue::new();
    let mut evaluator = BatchEvaluator::new(net, &cfg.search);
    let inner = evaluator.inner_threads();

    let mut sequences: Vec<MultiSegmentSequence> = Vec::new();
    let mut tests_applied = 0usize;
    let mut peak_swa = 0.0f64;
    let mut attempt_failures = 0usize;
    let mut seeds_tried = 0usize;
    let mut attempts = 0usize;

    while attempt_failures < cfg.attempt_failure_limit && seeds_tried < cfg.max_seeds {
        // Construct one multi-segment sequence, starting from a reachable
        // initial state (round-robin over the provided set).
        let init = &initial_states[attempts % initial_states.len()];
        attempts += 1;
        let mut cur_state = init.clone();
        let mut seq = MultiSegmentSequence::new(init.clone());
        let mut seed_failures = 0usize;
        'segment: while seed_failures < cfg.segment_failure_limit && seeds_tried < cfg.max_seeds {
            let batch = queue.draw(&mut rng, cfg.search.batch);
            let snapshot: &[bool] = &detected;
            let start = &cur_state;
            let evals = evaluator.run(&batch, |engine, seed| {
                let pis = Tpg::new(spec.clone(), seed).sequence(cfg.seq_len);
                let len = rule.admissible_prefix(net, start, &pis);
                if len < 2 {
                    return SegmentCandidate {
                        len,
                        tests: Vec::new(),
                        newly: Vec::new(),
                        peak_swa: 0.0,
                        next_state: None,
                        cycles: cfg.seq_len,
                    };
                }
                let prefix = &pis[..len];
                let traj = simulate_sequence(net, start, prefix);
                let tests = functional_tests(prefix, &traj.states);
                // Simulate only the lint-surviving faults; report newly
                // detected ones as indices into the full list.
                let mut local: Vec<bool> = active_idx.iter().map(|&i| snapshot[i]).collect();
                let newly = engine
                    .simulate(
                        TestSet::Broadside(&tests),
                        &active_faults,
                        &mut local,
                        &FaultSimOptions::new().threads(inner),
                    )
                    .newly_detected;
                let newly = if newly > 0 {
                    (0..local.len())
                        .filter(|&j| local[j] && !snapshot[active_idx[j]])
                        .map(|j| active_idx[j])
                        .collect()
                } else {
                    Vec::new()
                };
                SegmentCandidate {
                    len,
                    tests,
                    newly,
                    peak_swa: traj.peak_swa(),
                    next_state: Some(traj.states[len].clone()),
                    cycles: cfg.seq_len + len,
                }
            });
            stats.evals += evals.len();
            for ev in &evals {
                stats.sim_cycles += ev.cycles;
                if ev.len >= 2 {
                    stats.fsim_calls += 1;
                }
            }
            for (k, cand) in evals.into_iter().enumerate() {
                if seed_failures >= cfg.segment_failure_limit || seeds_tried >= cfg.max_seeds {
                    queue.requeue(&batch[k..]);
                    break 'segment;
                }
                seeds_tried += 1;
                stats.seeds_tried += 1;
                if cand.newly.is_empty() {
                    seed_failures += 1;
                } else {
                    for i in cand.newly {
                        detected[i] = true;
                    }
                    tests_applied += cand.tests.len();
                    peak_swa = peak_swa.max(cand.peak_swa);
                    cur_state = cand.next_state.expect("accepted candidates carry a state");
                    seq.segments.push(Segment {
                        seed: batch[k],
                        len: cand.len,
                    });
                    seed_failures = 0;
                    stats.seeds_kept += 1;
                    // Later candidates saw a stale snapshot: requeue them.
                    queue.requeue(&batch[k + 1..]);
                    continue 'segment;
                }
            }
        }
        if seq.segments.is_empty() {
            attempt_failures += 1;
        } else {
            attempt_failures = 0;
            sequences.push(seq);
        }
    }
    stats.wasted_evals = stats.evals - stats.seeds_tried;
    stats.select_wall = t0.elapsed();
    stats.total_wall = t0.elapsed();

    ConstrainedOutcome {
        sequences,
        swafunc,
        faults,
        detected,
        tests_applied,
        peak_swa,
        stats,
    }
}

/// Replay a constrained outcome's sequences and return the per-sequence
/// trajectories' tests — used by verification and by the state-holding stage
/// to know the remaining undetected faults exactly.
pub fn replay_tests(
    net: &Netlist,
    outcome: &ConstrainedOutcome,
    cfg: &FunctionalBistConfig,
) -> Vec<fbt_fault::BroadsideTest> {
    let spec = TpgSpec {
        lfsr_width: cfg.lfsr_width,
        m: cfg.m,
        cube: cube::input_cube(net),
    };
    let mut all = Vec::with_capacity(outcome.tests_applied);
    for seq in &outcome.sequences {
        let mut cur = seq.initial_state.clone();
        for seg in &seq.segments {
            let pis = Tpg::new(spec.clone(), seg.seed).sequence(cfg.seq_len);
            let prefix = &pis[..seg.len];
            let traj = simulate_sequence(net, &cur, prefix);
            all.extend(functional_tests(prefix, &traj.states));
            cur = traj.states[seg.len].clone();
        }
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{swafunc as compute_swafunc, DrivingBlock};
    use crate::SearchOptions;
    use fbt_fault::PackedParallelSim;
    use fbt_netlist::{s27, synth};

    #[test]
    fn every_applied_cycle_respects_the_bound() {
        let net = s27();
        let cfg = FunctionalBistConfig::smoke();
        let bound = compute_swafunc(&net, &DrivingBlock::Buffers, &cfg) * 0.8;
        let out = generate_constrained(&net, bound, &cfg);
        assert!(
            out.peak_swa <= bound + 1e-12,
            "peak {} exceeds bound {}",
            out.peak_swa,
            bound
        );
    }

    #[test]
    fn segments_have_even_lengths() {
        let net = s27();
        let cfg = FunctionalBistConfig::smoke();
        let bound = compute_swafunc(&net, &DrivingBlock::Buffers, &cfg) * 0.7;
        let out = generate_constrained(&net, bound, &cfg);
        for seq in &out.sequences {
            for seg in &seq.segments {
                assert_eq!(seg.len % 2, 0);
                assert!(seg.len >= 2);
                assert!(seg.len <= cfg.seq_len);
            }
        }
    }

    #[test]
    fn tighter_bound_means_harder_generation() {
        let net = synth::generate(&synth::find("s386").unwrap());
        let cfg = FunctionalBistConfig::smoke();
        let loose = compute_swafunc(&net, &DrivingBlock::Buffers, &cfg);
        let out_loose = generate_constrained(&net, loose, &cfg);
        let out_tight = generate_constrained(&net, loose * 0.55, &cfg);
        // A tight bound can only lose (or tie) coverage relative to a loose
        // bound, and segments get shorter.
        assert!(out_tight.fault_coverage() <= out_loose.fault_coverage() + 1e-9);
        if out_tight.lmax() > 0 {
            assert!(out_tight.lmax() <= cfg.seq_len);
        }
    }

    #[test]
    fn unconstrained_bound_yields_full_length_segments() {
        // With bound = 1.0 (100% activity allowed) nothing is ever truncated:
        // each selected segment has the full length L.
        let net = s27();
        let cfg = FunctionalBistConfig::smoke();
        let out = generate_constrained(&net, 1.0, &cfg);
        for seq in &out.sequences {
            for seg in &seq.segments {
                assert_eq!(seg.len, cfg.seq_len);
            }
        }
        assert!(out.fault_coverage() > 40.0);
    }

    #[test]
    fn replay_reproduces_detections() {
        let net = s27();
        let cfg = FunctionalBistConfig::smoke();
        let bound = compute_swafunc(&net, &DrivingBlock::Buffers, &cfg);
        let out = generate_constrained(&net, bound, &cfg);
        let tests = replay_tests(&net, &out, &cfg);
        assert_eq!(tests.len(), out.tests_applied);
        let mut detected = vec![false; out.faults.len()];
        let mut fsim = PackedParallelSim::new(&net);
        fsim.run(&tests, &out.faults, &mut detected);
        assert_eq!(detected, out.detected);
    }

    #[test]
    fn statistics_are_consistent() {
        let net = s27();
        let cfg = FunctionalBistConfig::smoke();
        let out = generate_constrained(&net, 1.0, &cfg);
        assert_eq!(
            out.nseeds(),
            out.sequences
                .iter()
                .map(|s| s.num_segments())
                .sum::<usize>()
        );
        assert!(out.nsegmax() <= out.nseeds());
        assert_eq!(out.nmulti(), out.sequences.len());
        let total_cycles: usize = out.sequences.iter().map(|s| s.total_len()).sum();
        assert_eq!(out.tests_applied, total_cycles / 2);
    }

    #[test]
    fn multiple_initial_states_round_robin() {
        let net = s27();
        let cfg = FunctionalBistConfig::smoke();
        // Derive a second reachable state by simulating two cycles from 0.
        let pis = vec![
            fbt_sim::Bits::from_str01("1010"),
            fbt_sim::Bits::from_str01("0101"),
        ];
        let traj = fbt_sim::seq::simulate_sequence(&net, &fbt_sim::Bits::zeros(3), &pis);
        let inits = vec![fbt_sim::Bits::zeros(3), traj.states[2].clone()];
        let out = generate_constrained_from(&net, 1.0, &cfg, &inits);
        assert!(out.peak_swa <= 1.0);
        // Every sequence's initial state is one of the provided ones.
        for seq in &out.sequences {
            assert!(inits.contains(&seq.initial_state));
        }
        // Replay agrees.
        let tests = replay_tests(&net, &out, &cfg);
        assert_eq!(tests.len(), out.tests_applied);
        let mut detected = vec![false; out.faults.len()];
        let mut fsim = PackedParallelSim::new(&net);
        fsim.run(&tests, &out.faults, &mut detected);
        assert_eq!(detected, out.detected);
    }

    #[test]
    #[should_panic(expected = "at least one initial state")]
    fn empty_initial_states_rejected() {
        let net = s27();
        let _ = generate_constrained_from(&net, 1.0, &FunctionalBistConfig::smoke(), &[]);
    }

    #[test]
    fn lint_preflight_preserves_constrained_outcome() {
        // Same circuit shape as the unconstrained pre-flight test: healthy
        // sequential logic plus a constant gate and a dangling chain.
        use fbt_netlist::{GateKind, NetlistBuilder};
        let mut b = NetlistBuilder::new("dead");
        b.input("a").unwrap();
        b.input("c").unwrap();
        b.gate(GateKind::Not, "na", &["a"]).unwrap();
        b.gate(GateKind::And, "k0", &["a", "na"]).unwrap();
        b.gate(GateKind::Or, "y", &["k0", "c"]).unwrap();
        b.gate(GateKind::Not, "dead", &["c"]).unwrap();
        b.gate(GateKind::Xor, "nxt", &["y", "q"]).unwrap();
        b.dff("q", "nxt").unwrap();
        b.output("y").unwrap();
        let net = b.finish().unwrap();

        let on = FunctionalBistConfig::smoke();
        let off = FunctionalBistConfig {
            lint_preflight: false,
            ..on.clone()
        };
        let a = generate_constrained(&net, 1.0, &on);
        let b = generate_constrained(&net, 1.0, &off);
        assert!(a.stats.faults_skipped_lint >= 2);
        assert_eq!(b.stats.faults_skipped_lint, 0);
        assert_eq!(a.sequences, b.sequences);
        assert_eq!(a.detected, b.detected);
        assert_eq!(a.tests_applied, b.tests_applied);
        assert_eq!(a.stats.seeds_tried, b.stats.seeds_tried);
    }

    #[test]
    fn deterministic() {
        let net = s27();
        let cfg = FunctionalBistConfig::smoke();
        let a = generate_constrained(&net, 0.5, &cfg);
        let b = generate_constrained(&net, 0.5, &cfg);
        assert_eq!(a.sequences, b.sequences);
        assert_eq!(a.detected, b.detected);
    }

    #[test]
    fn speculation_matches_serial_exactly() {
        let net = s27();
        let bound = compute_swafunc(&net, &DrivingBlock::Buffers, &FunctionalBistConfig::smoke());
        let serial_cfg = FunctionalBistConfig {
            search: SearchOptions::serial(),
            ..FunctionalBistConfig::smoke()
        };
        let reference = generate_constrained(&net, bound, &serial_cfg);
        for (batch, threads) in [(2, 1), (4, 2), (16, 8)] {
            let cfg = FunctionalBistConfig {
                search: SearchOptions { batch, threads },
                ..FunctionalBistConfig::smoke()
            };
            let out = generate_constrained(&net, bound, &cfg);
            assert_eq!(out.sequences, reference.sequences, "batch {batch}");
            assert_eq!(out.detected, reference.detected, "batch {batch}");
            assert_eq!(out.tests_applied, reference.tests_applied);
            assert_eq!(out.peak_swa, reference.peak_swa);
            assert_eq!(out.stats.seeds_tried, reference.stats.seeds_tried);
        }
    }
}
