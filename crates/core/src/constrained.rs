//! Built-in generation of functional broadside tests **considering primary
//! input constraints** — the paper's contribution (§4.4, Fig. 4.9).
//!
//! Arbitrary on-chip sequences can drive the embedded circuit through
//! state-transitions whose switching activity exceeds anything functional
//! operation can produce, causing overtesting. The constrained method builds
//! *multi-segment* primary-input sequences: each segment comes from a
//! different LFSR seed, is truncated just before the first clock cycle whose
//! switching activity would exceed `SWAfunc`, and is kept only if its tests
//! detect new faults. Between segments the circuit's state is held (its clock
//! is gated) while the new seed is loaded, so the next segment continues from
//! the final state of the previous one and the whole trajectory remains
//! reachable.
//!
//! This is the [`GenerationEngine`] with a bounded
//! [`crate::policy::AdmissibilityPolicy`] ([`SwaRule`] here, or the §5.1
//! [`StpLibrary`]) in multi-sequence mode with state chaining.

use std::time::Instant;

use fbt_netlist::rng::Rng;
use fbt_netlist::Netlist;
use fbt_sim::Bits;

use crate::engine::{self, ConstructOptions, GenerationEngine, StateOverlay, TpgSeedSource};
use crate::outcome::{deref_summary, OutcomeSummary};
use crate::policy::{AdmissibilityPolicy, SwaRule};
use crate::stp::StpLibrary;
use crate::{DeviationMetric, FunctionalBistConfig};

pub use crate::outcome::{MultiSegmentSequence, Segment};

/// Result of a constrained generation run.
#[derive(Debug, Clone)]
pub struct ConstrainedOutcome {
    /// The constructed multi-segment sequences.
    pub sequences: Vec<MultiSegmentSequence>,
    /// The switching-activity bound used (`SWAfunc`).
    pub swafunc: f64,
    /// The shared outcome facts (fault list, detection flags, test count,
    /// peak activity ≤ `swafunc` under the SWA metric, stats). Field access
    /// forwards via `Deref`.
    pub summary: OutcomeSummary,
}

deref_summary!(ConstrainedOutcome);

impl ConstrainedOutcome {
    /// `Nmulti`: number of multi-segment sequences.
    pub fn nmulti(&self) -> usize {
        self.sequences.len()
    }

    /// `Nsegmax`: most segments in any one sequence.
    pub fn nsegmax(&self) -> usize {
        self.sequences
            .iter()
            .map(MultiSegmentSequence::num_segments)
            .max()
            .unwrap_or(0)
    }

    /// `Lmax`: longest segment.
    pub fn lmax(&self) -> usize {
        self.sequences
            .iter()
            .flat_map(|s| s.segments.iter().map(|g| g.len))
            .max()
            .unwrap_or(0)
    }

    /// `Nseeds`: total number of selected seeds (= total segments).
    pub fn nseeds(&self) -> usize {
        self.sequences
            .iter()
            .map(MultiSegmentSequence::num_segments)
            .sum()
    }

    /// Segment lengths per sequence (for the controller's cycle budget).
    pub fn segment_lengths(&self) -> Vec<Vec<usize>> {
        self.sequences
            .iter()
            .map(|s| s.segments.iter().map(|g| g.len).collect())
            .collect()
    }
}

/// Run the constrained method with a precomputed `SWAfunc` bound, starting
/// every sequence from the all-0 reset state.
///
/// # Example
///
/// ```
/// use fbt_core::driver::DrivingBlock;
/// use fbt_core::{generate_constrained, swafunc, FunctionalBistConfig};
///
/// let net = fbt_netlist::s27();
/// let cfg = FunctionalBistConfig::smoke();
/// let bound = swafunc(&net, &DrivingBlock::Buffers, &cfg);
/// let out = generate_constrained(&net, bound, &cfg);
/// assert!(out.peak_swa <= bound);            // the §4.4 guarantee
/// assert!(out.fault_coverage() > 0.0);
/// ```
///
/// When `cfg.metric` is [`DeviationMetric::SignalTransitionPatterns`], an
/// [`StpLibrary`] must be supplied via [`generate_constrained_with_library`];
/// this entry point always uses the switching-activity rule.
///
/// # Panics
///
/// Panics on invalid configurations.
pub fn generate_constrained(
    net: &Netlist,
    swafunc: f64,
    cfg: &FunctionalBistConfig,
) -> ConstrainedOutcome {
    let rule = SwaRule { bound: swafunc };
    let zero = Bits::zeros(net.num_dffs());
    run(net, swafunc, cfg, &rule, std::slice::from_ref(&zero))
}

/// Like [`generate_constrained`], but round-robins sequence attempts over a
/// set of *reachable* initial states (§4.4: "several different reachable
/// states can be used as initial states if the amount of required memory for
/// storing these states is not a concern").
///
/// # Panics
///
/// Panics on invalid configurations, an empty `initial_states` slice, or a
/// state-width mismatch. Reachability of the supplied states is the
/// caller's responsibility — an unreachable state would silently break the
/// functional-broadside guarantee.
pub fn generate_constrained_from(
    net: &Netlist,
    swafunc: f64,
    cfg: &FunctionalBistConfig,
    initial_states: &[Bits],
) -> ConstrainedOutcome {
    assert!(
        !initial_states.is_empty(),
        "need at least one initial state"
    );
    for s in initial_states {
        assert_eq!(s.len(), net.num_dffs(), "initial state width mismatch");
    }
    let rule = SwaRule { bound: swafunc };
    run(net, swafunc, cfg, &rule, initial_states)
}

/// Run the constrained method with the signal-transition-pattern rule of
/// §5.1 (\[90\]): a state-transition is admissible only if its pattern of
/// signal-transitions is a subset of one observed during functional
/// operation.
///
/// # Panics
///
/// Panics if `cfg.metric` is not
/// [`DeviationMetric::SignalTransitionPatterns`].
pub fn generate_constrained_with_library(
    net: &Netlist,
    swafunc: f64,
    library: &StpLibrary,
    cfg: &FunctionalBistConfig,
) -> ConstrainedOutcome {
    assert_eq!(
        cfg.metric,
        DeviationMetric::SignalTransitionPatterns,
        "library-based generation requires the STP metric"
    );
    let zero = Bits::zeros(net.num_dffs());
    run(net, swafunc, cfg, library, std::slice::from_ref(&zero))
}

fn run<P: AdmissibilityPolicy + ?Sized>(
    net: &Netlist,
    swafunc: f64,
    cfg: &FunctionalBistConfig,
    policy: &P,
    initial_states: &[Bits],
) -> ConstrainedOutcome {
    let t0 = Instant::now();
    let mut engine = GenerationEngine::new(net, cfg);
    let source = TpgSeedSource::for_circuit(net, cfg);
    let mut rng = Rng::new(cfg.master_seed);
    let mut detected = vec![false; engine.num_faults()];
    let run = engine.construct(
        &source,
        policy,
        &StateOverlay::Identity,
        initial_states,
        &mut rng,
        &mut detected,
        &ConstructOptions {
            r_limit: cfg.segment_failure_limit,
            q_limit: cfg.attempt_failure_limit,
            single_sequence: false,
            chain_state: true,
            keep_tests: false,
        },
    );
    let mut stats = run.stats;
    stats.select_wall = t0.elapsed();
    stats.total_wall = t0.elapsed();

    ConstrainedOutcome {
        sequences: run.sequences,
        swafunc,
        summary: OutcomeSummary {
            faults: engine.into_faults(),
            detected,
            tests_applied: run.tests_applied,
            peak_swa: run.peak_swa,
            stats,
        },
    }
}

/// Replay a constrained outcome's sequences and return the per-sequence
/// trajectories' tests — used by verification and by the state-holding stage
/// to know the remaining undetected faults exactly. A thin wrapper over the
/// mode-generic [`engine::replay_tests`].
pub fn replay_tests(
    net: &Netlist,
    outcome: &ConstrainedOutcome,
    cfg: &FunctionalBistConfig,
) -> Vec<fbt_fault::BroadsideTest> {
    engine::replay_tests(
        net,
        &TpgSeedSource::for_circuit(net, cfg),
        &StateOverlay::Identity,
        &outcome.sequences,
        cfg.seq_len,
    )
    .into_broadside()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{swafunc as compute_swafunc, DrivingBlock};
    use crate::SearchOptions;
    use fbt_fault::{FaultSimEngine, FaultSimOptions, PackedParallelSim, TestSet};
    use fbt_netlist::{s27, synth};

    #[test]
    fn every_applied_cycle_respects_the_bound() {
        let net = s27();
        let cfg = FunctionalBistConfig::smoke();
        let bound = compute_swafunc(&net, &DrivingBlock::Buffers, &cfg) * 0.8;
        let out = generate_constrained(&net, bound, &cfg);
        assert!(
            out.peak_swa <= bound + 1e-12,
            "peak {} exceeds bound {}",
            out.peak_swa,
            bound
        );
    }

    #[test]
    fn segments_have_even_lengths() {
        let net = s27();
        let cfg = FunctionalBistConfig::smoke();
        let bound = compute_swafunc(&net, &DrivingBlock::Buffers, &cfg) * 0.7;
        let out = generate_constrained(&net, bound, &cfg);
        for seq in &out.sequences {
            for seg in &seq.segments {
                assert_eq!(seg.len % 2, 0);
                assert!(seg.len >= 2);
                assert!(seg.len <= cfg.seq_len);
            }
        }
    }

    #[test]
    fn tighter_bound_means_harder_generation() {
        let net = synth::generate(&synth::find("s386").unwrap());
        let cfg = FunctionalBistConfig::smoke();
        let loose = compute_swafunc(&net, &DrivingBlock::Buffers, &cfg);
        let out_loose = generate_constrained(&net, loose, &cfg);
        let out_tight = generate_constrained(&net, loose * 0.55, &cfg);
        // A tight bound can only lose (or tie) coverage relative to a loose
        // bound, and segments get shorter.
        assert!(out_tight.fault_coverage() <= out_loose.fault_coverage() + 1e-9);
        if out_tight.lmax() > 0 {
            assert!(out_tight.lmax() <= cfg.seq_len);
        }
    }

    #[test]
    fn unconstrained_bound_yields_full_length_segments() {
        // With bound = 1.0 (100% activity allowed) nothing is ever truncated:
        // each selected segment has the full length L.
        let net = s27();
        let cfg = FunctionalBistConfig::smoke();
        let out = generate_constrained(&net, 1.0, &cfg);
        for seq in &out.sequences {
            for seg in &seq.segments {
                assert_eq!(seg.len, cfg.seq_len);
            }
        }
        assert!(out.fault_coverage() > 40.0);
    }

    #[test]
    fn replay_reproduces_detections() {
        let net = s27();
        let cfg = FunctionalBistConfig::smoke();
        let bound = compute_swafunc(&net, &DrivingBlock::Buffers, &cfg);
        let out = generate_constrained(&net, bound, &cfg);
        let tests = replay_tests(&net, &out, &cfg);
        assert_eq!(tests.len(), out.tests_applied);
        let mut detected = vec![false; out.faults.len()];
        let mut fsim = PackedParallelSim::new(&net);
        fsim.simulate(
            TestSet::Broadside(&tests),
            &out.faults,
            &mut detected,
            &FaultSimOptions::new(),
        );
        assert_eq!(detected, out.detected);
    }

    #[test]
    fn statistics_are_consistent() {
        let net = s27();
        let cfg = FunctionalBistConfig::smoke();
        let out = generate_constrained(&net, 1.0, &cfg);
        assert_eq!(
            out.nseeds(),
            out.sequences
                .iter()
                .map(|s| s.num_segments())
                .sum::<usize>()
        );
        assert!(out.nsegmax() <= out.nseeds());
        assert_eq!(out.nmulti(), out.sequences.len());
        let total_cycles: usize = out.sequences.iter().map(|s| s.total_len()).sum();
        assert_eq!(out.tests_applied, total_cycles / 2);
    }

    #[test]
    fn multiple_initial_states_round_robin() {
        let net = s27();
        let cfg = FunctionalBistConfig::smoke();
        // Derive a second reachable state by simulating two cycles from 0.
        let pis = vec![
            fbt_sim::Bits::from_str01("1010"),
            fbt_sim::Bits::from_str01("0101"),
        ];
        let traj = fbt_sim::seq::simulate_sequence(&net, &fbt_sim::Bits::zeros(3), &pis);
        let inits = vec![fbt_sim::Bits::zeros(3), traj.states[2].clone()];
        let out = generate_constrained_from(&net, 1.0, &cfg, &inits);
        assert!(out.peak_swa <= 1.0);
        // Every sequence's initial state is one of the provided ones.
        for seq in &out.sequences {
            assert!(inits.contains(&seq.initial_state));
        }
        // Replay agrees.
        let tests = replay_tests(&net, &out, &cfg);
        assert_eq!(tests.len(), out.tests_applied);
        let mut detected = vec![false; out.faults.len()];
        let mut fsim = PackedParallelSim::new(&net);
        fsim.simulate(
            TestSet::Broadside(&tests),
            &out.faults,
            &mut detected,
            &FaultSimOptions::new(),
        );
        assert_eq!(detected, out.detected);
    }

    #[test]
    #[should_panic(expected = "at least one initial state")]
    fn empty_initial_states_rejected() {
        let net = s27();
        let _ = generate_constrained_from(&net, 1.0, &FunctionalBistConfig::smoke(), &[]);
    }

    #[test]
    fn lint_preflight_preserves_constrained_outcome() {
        // Same circuit shape as the unconstrained pre-flight test: healthy
        // sequential logic plus a constant gate and a dangling chain.
        use fbt_netlist::{GateKind, NetlistBuilder};
        let mut b = NetlistBuilder::new("dead");
        b.input("a").unwrap();
        b.input("c").unwrap();
        b.gate(GateKind::Not, "na", &["a"]).unwrap();
        b.gate(GateKind::And, "k0", &["a", "na"]).unwrap();
        b.gate(GateKind::Or, "y", &["k0", "c"]).unwrap();
        b.gate(GateKind::Not, "dead", &["c"]).unwrap();
        b.gate(GateKind::Xor, "nxt", &["y", "q"]).unwrap();
        b.dff("q", "nxt").unwrap();
        b.output("y").unwrap();
        let net = b.finish().unwrap();

        let on = FunctionalBistConfig::smoke();
        let off = FunctionalBistConfig {
            lint_preflight: false,
            ..on.clone()
        };
        let a = generate_constrained(&net, 1.0, &on);
        let b = generate_constrained(&net, 1.0, &off);
        assert!(a.stats.faults_skipped_lint >= 2);
        assert_eq!(b.stats.faults_skipped_lint, 0);
        assert_eq!(a.sequences, b.sequences);
        assert_eq!(a.detected, b.detected);
        assert_eq!(a.tests_applied, b.tests_applied);
        assert_eq!(a.stats.seeds_tried, b.stats.seeds_tried);
    }

    #[test]
    fn deterministic() {
        let net = s27();
        let cfg = FunctionalBistConfig::smoke();
        let a = generate_constrained(&net, 0.5, &cfg);
        let b = generate_constrained(&net, 0.5, &cfg);
        assert_eq!(a.sequences, b.sequences);
        assert_eq!(a.detected, b.detected);
    }

    #[test]
    fn speculation_matches_serial_exactly() {
        let net = s27();
        let bound = compute_swafunc(&net, &DrivingBlock::Buffers, &FunctionalBistConfig::smoke());
        let serial_cfg = FunctionalBistConfig {
            search: SearchOptions::serial(),
            ..FunctionalBistConfig::smoke()
        };
        let reference = generate_constrained(&net, bound, &serial_cfg);
        for (batch, threads) in [(2, 1), (4, 2), (16, 8)] {
            let cfg = FunctionalBistConfig {
                search: SearchOptions {
                    batch,
                    threads,
                    packed: true,
                },
                ..FunctionalBistConfig::smoke()
            };
            let out = generate_constrained(&net, bound, &cfg);
            assert_eq!(out.sequences, reference.sequences, "batch {batch}");
            assert_eq!(out.detected, reference.detected, "batch {batch}");
            assert_eq!(out.tests_applied, reference.tests_applied);
            assert_eq!(out.peak_swa, reference.peak_swa);
            assert_eq!(out.stats.seeds_tried, reference.stats.seeds_tried);
        }
    }
}
