//! SAT-backed certification that generated tests are *functional* broadside
//! tests.
//!
//! The defining property of a functional broadside test is that its scan-in
//! state is reachable during functional operation (paper §4.1). The on-chip
//! generation flow guarantees this by construction — states are taken from a
//! simulated functional trajectory — but the guarantee rests on the
//! simulator. This module closes the loop independently: for every test it
//! asks `fbt-sat`'s time-frame-expansion engine whether the scan-in state is
//! reachable from the all-0 reset state within `k` functional cycles, under
//! an optional primary-input constraint cube. A SAT model yields a replayable
//! input-sequence *witness*; an UNSAT verdict within the bound **flags** the
//! test as potentially unreachable (and therefore a source of overtesting).
//!
//! Certification is deterministic: repeated runs produce identical
//! certificates and identical solver statistics.

use std::collections::HashMap;

use fbt_fault::BroadsideTest;
use fbt_netlist::Netlist;
use fbt_sat::{bounded_reach, replay_witness, Reachability, SolverStats};
use fbt_sim::{Bits, Trit};

/// Verdict for one test's scan-in state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCertificate {
    /// The state is reachable: `pis` is a primary-input sequence driving the
    /// circuit from the all-0 reset state into it in `pis.len()` cycles.
    Certified {
        /// Witness input vectors, one per cycle (empty for the reset state).
        pis: Vec<Bits>,
    },
    /// Proved unreachable within `bound` cycles — the test is not known to
    /// be a functional broadside test and may cause overtesting.
    Flagged {
        /// The exhausted cycle bound.
        bound: usize,
    },
    /// The solver's conflict budget ran out before a verdict.
    Unknown {
        /// The cycle bound that was being attempted.
        bound: usize,
    },
}

impl TestCertificate {
    /// True for [`TestCertificate::Certified`].
    pub fn is_certified(&self) -> bool {
        matches!(self, TestCertificate::Certified { .. })
    }
}

/// Outcome of certifying a batch of tests against one circuit.
#[derive(Debug, Clone)]
pub struct CertificationReport {
    /// One certificate per input test, in order.
    pub certificates: Vec<TestCertificate>,
    /// The cycle bound `k` the certification ran with.
    pub bound: usize,
    /// Accumulated solver statistics (identical across repeated runs).
    pub solver: SolverStats,
}

impl CertificationReport {
    /// Number of certified tests.
    pub fn num_certified(&self) -> usize {
        self.certificates
            .iter()
            .filter(|c| c.is_certified())
            .count()
    }

    /// Number of flagged (proved-unreachable-within-bound) tests.
    pub fn num_flagged(&self) -> usize {
        self.certificates
            .iter()
            .filter(|c| matches!(c, TestCertificate::Flagged { .. }))
            .count()
    }

    /// Number of budget-exhausted verdicts.
    pub fn num_unknown(&self) -> usize {
        self.certificates
            .iter()
            .filter(|c| matches!(c, TestCertificate::Unknown { .. }))
            .count()
    }

    /// True when every test was certified reachable.
    pub fn all_certified(&self) -> bool {
        self.num_certified() == self.certificates.len()
    }
}

/// Certify a single scan-in state.
///
/// Searches depths `0..=k`; a witness is re-simulated before being returned,
/// so a `Certified` verdict is trustworthy even if the encoding were wrong.
pub fn certify_state(
    net: &Netlist,
    state: &Bits,
    k: usize,
    pi_cube: Option<&[Trit]>,
    conflict_limit: Option<u64>,
) -> (TestCertificate, SolverStats) {
    let (reach, stats) = bounded_reach(net, state, k, pi_cube, conflict_limit);
    let cert = match reach {
        Reachability::Reachable { pis } => {
            assert_eq!(
                &replay_witness(net, &pis),
                state,
                "SAT witness failed to replay; encoding bug"
            );
            TestCertificate::Certified { pis }
        }
        Reachability::Unreachable { bound } => TestCertificate::Flagged { bound },
        Reachability::Unknown { bound } => TestCertificate::Unknown { bound },
    };
    (cert, stats)
}

/// Certify every test's scan-in state, memoizing repeated states.
///
/// `pi_cube`, when given, restricts the witness search to primary-input
/// vectors matching the cube in every cycle — the §4.4 setting where an
/// embedded block only ever sees constrained inputs. `conflict_limit` bounds
/// each solver query; exhausting it yields [`TestCertificate::Unknown`]
/// rather than a wrong verdict.
pub fn certify_tests(
    net: &Netlist,
    tests: &[BroadsideTest],
    k: usize,
    pi_cube: Option<&[Trit]>,
    conflict_limit: Option<u64>,
) -> CertificationReport {
    let mut solver = SolverStats::default();
    let mut memo: HashMap<Bits, TestCertificate> = HashMap::new();
    let certificates = tests
        .iter()
        .map(|t| {
            if let Some(c) = memo.get(&t.scan_in) {
                return c.clone();
            }
            let (cert, stats) = certify_state(net, &t.scan_in, k, pi_cube, conflict_limit);
            solver.absorb(&stats);
            memo.insert(t.scan_in.clone(), cert.clone());
            cert
        })
        .collect();
    CertificationReport {
        certificates,
        bound: k,
        solver,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbt_bist::{cube, Tpg, TpgSpec};
    use fbt_netlist::s27;
    use fbt_sim::seq::simulate_sequence;

    use crate::extract::functional_tests;

    /// Tests extracted from a functional trajectory from reset.
    fn trajectory_tests(net: &Netlist, seed: u64, len: usize) -> Vec<BroadsideTest> {
        let spec = TpgSpec {
            lfsr_width: 16,
            m: 2,
            cube: cube::input_cube(net),
        };
        let pis = Tpg::new(spec, seed).sequence(len);
        let zero = Bits::zeros(net.num_dffs());
        let traj = simulate_sequence(net, &zero, &pis);
        functional_tests(&pis, &traj.states)
    }

    #[test]
    fn extracted_tests_are_certified() {
        let net = s27();
        let tests = trajectory_tests(&net, 0xC0FFEE, 12);
        assert!(!tests.is_empty());
        let report = certify_tests(&net, &tests, 12, None, None);
        assert!(
            report.all_certified(),
            "states on a functional trajectory must certify: {report:?}"
        );
        assert_eq!(report.num_flagged() + report.num_unknown(), 0);
    }

    #[test]
    fn unreachable_state_is_flagged() {
        let net = s27();
        let k = 4;
        // Exhaustively enumerate the states reachable within k cycles.
        let n_pi = net.num_inputs();
        let mut frontier = vec![Bits::zeros(net.num_dffs())];
        let mut seen: std::collections::HashSet<Bits> = frontier.iter().cloned().collect();
        for _ in 0..k {
            let mut next = Vec::new();
            for s in &frontier {
                for a in 0..1u64 << n_pi {
                    let pi: Bits = (0..n_pi).map(|i| (a >> i) & 1 == 1).collect();
                    let traj = simulate_sequence(&net, s, &[pi]);
                    let ns = traj.states[1].clone();
                    if seen.insert(ns.clone()) {
                        next.push(ns);
                    }
                }
            }
            frontier = next;
        }
        let unreachable: Vec<Bits> = (0..1u64 << net.num_dffs())
            .map(|a| (0..net.num_dffs()).map(|i| (a >> i) & 1 == 1).collect())
            .filter(|s: &Bits| !seen.contains(s))
            .collect();
        assert!(!unreachable.is_empty(), "need an unreachable state at k=4");
        let bad = BroadsideTest::new(unreachable[0].clone(), Bits::zeros(n_pi), Bits::zeros(n_pi));
        let report = certify_tests(&net, &[bad], k, None, None);
        assert_eq!(
            report.certificates[0],
            TestCertificate::Flagged { bound: k },
            "a state outside the k-step reachable set must be flagged"
        );
    }

    #[test]
    fn constraint_cube_can_flag_otherwise_reachable_states() {
        let net = s27();
        let tests = trajectory_tests(&net, 0xC0FFEE, 12);
        let free = certify_tests(&net, &tests, 12, None, None);
        assert!(free.all_certified());
        // Pin every primary input to 0: only states on the all-0-input
        // trajectory remain certifiable.
        let cube = vec![Trit::Zero; net.num_inputs()];
        let pinned = certify_tests(&net, &tests, 12, Some(&cube), None);
        assert!(
            pinned.num_certified() <= free.num_certified(),
            "constraints can only shrink the certifiable set"
        );
        for cert in &pinned.certificates {
            if let TestCertificate::Certified { pis } = cert {
                for pi in pis {
                    assert!(pi.iter().all(|b| !b), "witness must honour the cube");
                }
            }
        }
    }

    #[test]
    fn certification_is_deterministic() {
        let net = s27();
        let tests = trajectory_tests(&net, 0xBEEF, 10);
        let a = certify_tests(&net, &tests, 10, None, None);
        let b = certify_tests(&net, &tests, 10, None, None);
        assert_eq!(a.certificates, b.certificates);
        assert_eq!(a.solver, b.solver, "solver statistics must be identical");
    }

    #[test]
    fn memoization_does_not_change_verdicts() {
        let net = s27();
        let tests = trajectory_tests(&net, 0xBEEF, 10);
        let mut doubled = tests.clone();
        doubled.extend(tests.iter().cloned());
        let once = certify_tests(&net, &tests, 10, None, None);
        let twice = certify_tests(&net, &doubled, 10, None, None);
        assert_eq!(&twice.certificates[..tests.len()], &once.certificates[..],);
        assert_eq!(
            &twice.certificates[tests.len()..],
            &once.certificates[..],
            "repeated scan-in states reuse the memoized certificate"
        );
        assert_eq!(once.solver, twice.solver, "memoized queries are free");
    }
}
