//! Lint pre-flight projection for the generation loops.
//!
//! [`fbt_lint::PreflightEvidence`] proves some transition faults untestable
//! by construction (structurally constant or combinationally unobservable
//! lines). Such faults are undetectable under *every* test, so excluding
//! them from fault simulation cannot change which of the remaining faults
//! any candidate detects — seed selection, segment construction and the
//! full-length detection flags stay bit-identical; only the simulated fault
//! count shrinks.

use fbt_fault::TransitionFault;
use fbt_netlist::Netlist;

/// The faults worth simulating, plus their indices into the full collapsed
/// list. With the pre-flight disabled this is the identity projection.
pub(crate) fn project_active(
    net: &Netlist,
    faults: &[TransitionFault],
    enabled: bool,
) -> (Vec<TransitionFault>, Vec<usize>) {
    if !enabled {
        return (faults.to_vec(), (0..faults.len()).collect());
    }
    let evidence = fbt_lint::PreflightEvidence::analyze(net);
    let mut active = Vec::with_capacity(faults.len());
    let mut idx = Vec::with_capacity(faults.len());
    for (i, f) in faults.iter().enumerate() {
        if !evidence.transition_untestable(f.line) {
            active.push(*f);
            idx.push(i);
        }
    }
    (active, idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbt_fault::{all_transition_faults, collapse};

    #[test]
    fn s27_projection_is_identity() {
        let net = fbt_netlist::s27();
        let faults = collapse(&net, &all_transition_faults(&net));
        let (active, idx) = project_active(&net, &faults, true);
        assert_eq!(active, faults);
        assert_eq!(idx, (0..faults.len()).collect::<Vec<_>>());
    }

    #[test]
    fn disabled_projection_is_identity() {
        let net = fbt_netlist::s27();
        let faults = collapse(&net, &all_transition_faults(&net));
        let (active, idx) = project_active(&net, &faults, false);
        assert_eq!(active, faults);
        assert_eq!(idx.len(), faults.len());
    }
}
