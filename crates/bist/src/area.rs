//! Gate-equivalent area model (the paper's Design Compiler runs).
//!
//! The paper synthesizes both the benchmark circuits and the test hardware
//! with a generic 0.18 µm library and reports the hardware area in µm² plus
//! its percentage of the circuit area (Tables 4.3 / 4.4). This module prices
//! the same inventory with per-cell areas representative of such a library
//! (scan-equivalent flip-flops, 2-input gates, clock-gating cells). Absolute
//! numbers are a model, not a sign-off; the *trend* — hardware area roughly
//! constant across circuits, overhead shrinking with circuit size, state
//! holding adding little — is what the tables check.

use fbt_netlist::{GateKind, Netlist};

/// Per-cell areas in µm² for a generic 0.18 µm-style standard-cell library.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellLibrary {
    /// Inverter.
    pub inv: f64,
    /// Buffer.
    pub buf: f64,
    /// 2-input NAND / NOR.
    pub nand2: f64,
    /// 2-input AND / OR.
    pub and2: f64,
    /// 2-input XOR / XNOR.
    pub xor2: f64,
    /// Area added per input beyond the second.
    pub per_extra_input: f64,
    /// Scan-equivalent D flip-flop.
    pub dff: f64,
    /// Transparent latch.
    pub latch: f64,
    /// Latch-based clock-gating cell (Fig. 4.10).
    pub clock_gate: f64,
    /// 2-to-1 multiplexer.
    pub mux2: f64,
}

impl CellLibrary {
    /// The default library used by all experiments.
    pub const fn generic_018um() -> Self {
        CellLibrary {
            inv: 13.0,
            buf: 16.0,
            nand2: 16.0,
            and2: 21.0,
            xor2: 36.0,
            per_extra_input: 8.0,
            dff: 100.0,
            latch: 50.0,
            clock_gate: 60.0,
            mux2: 33.0,
        }
    }

    /// Area of one combinational gate of `kind` with `fanin` inputs.
    pub fn gate(&self, kind: GateKind, fanin: usize) -> f64 {
        let extra = self.per_extra_input * fanin.saturating_sub(2) as f64;
        match kind {
            GateKind::Not => self.inv,
            GateKind::Buf => self.buf,
            GateKind::Nand | GateKind::Nor => self.nand2 + extra,
            GateKind::And | GateKind::Or => self.and2 + extra,
            GateKind::Xor | GateKind::Xnor => self.xor2 + extra,
            GateKind::Dff => self.dff,
            GateKind::Input => 0.0,
        }
    }
}

impl Default for CellLibrary {
    fn default() -> Self {
        CellLibrary::generic_018um()
    }
}

/// Total standard-cell area of a circuit (µm²).
pub fn circuit_area(net: &Netlist, lib: &CellLibrary) -> f64 {
    net.node_ids()
        .map(|id| {
            let node = net.node(id);
            lib.gate(node.kind(), node.fanins().len())
        })
        .sum()
}

/// Inventory of the on-chip test generation hardware.
///
/// Matching the paper's accounting (§4.6): the MISR and the primary-input
/// shift register are *excluded* (reusing existing registers), the biasing
/// gates inserted for the cube `C` are *included*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BistHardware {
    /// LFSR width (`NLFSR`).
    pub lfsr_width: usize,
    /// Biasing gate fan-in `m`.
    pub m: usize,
    /// Number of specified cube entries (`NSP`, one biasing gate each).
    pub biasing_gates: usize,
    /// Clock-cycle counter width: `log2(Lmax)` bits.
    pub cycle_counter_bits: usize,
    /// Shift counter width: `log2(Lsc)` bits.
    pub shift_counter_bits: usize,
    /// Segment counter width: `log2(Nsegmax)` bits.
    pub segment_counter_bits: usize,
    /// Sequence counter width: `log2(Nmulti)` bits.
    pub sequence_counter_bits: usize,
    /// Number of hold sets (`Nh`; 0 when state holding is not used).
    pub hold_sets: usize,
}

impl BistHardware {
    /// Size the hardware for a test program.
    ///
    /// `lmax` — longest segment; `lsc` — longest scan chain; `nsegmax` —
    /// most segments in one sequence; `nmulti` — number of sequences;
    /// `nsp` — specified cube entries; `nh` — hold sets.
    #[allow(clippy::too_many_arguments)] // mirrors the table's parameter list
    pub fn for_program(
        lfsr_width: usize,
        m: usize,
        nsp: usize,
        lmax: usize,
        lsc: usize,
        nsegmax: usize,
        nmulti: usize,
        nh: usize,
    ) -> Self {
        let bits = |n: usize| (usize::BITS - n.max(1).leading_zeros()) as usize;
        BistHardware {
            lfsr_width,
            m,
            biasing_gates: nsp,
            cycle_counter_bits: bits(lmax),
            shift_counter_bits: bits(lsc),
            segment_counter_bits: bits(nsegmax),
            sequence_counter_bits: bits(nmulti),
            hold_sets: nh,
        }
    }

    /// Price the hardware (µm²).
    pub fn area(&self, lib: &CellLibrary) -> f64 {
        // LFSR: one DFF per stage plus feedback XORs (up to 3 taps beyond
        // the output stage for the tabulated polynomials).
        let lfsr = self.lfsr_width as f64 * lib.dff + 3.0 * lib.xor2;
        // Counter: DFF + increment logic (half-adder: XOR + AND) per bit,
        // plus a terminal-count comparator (XNOR + AND tree).
        let counter = |bits: usize| {
            bits as f64 * (lib.dff + lib.xor2 + lib.and2) + bits as f64 * (lib.xor2 + lib.inv)
        };
        let counters = counter(self.cycle_counter_bits)
            + counter(self.shift_counter_bits)
            + counter(self.segment_counter_bits)
            + counter(self.sequence_counter_bits);
        // Biasing gates: one m-input AND/OR per specified input.
        let bias = self.biasing_gates as f64
            * (lib.and2 + lib.per_extra_input * self.m.saturating_sub(2) as f64);
        // Control FSM + clock gating of TPG / counters / circuit: a fixed
        // block (state register, next-state logic, mode decoding).
        let fsm = 8.0 * lib.dff + 60.0 * lib.nand2 + 6.0 * lib.clock_gate;
        // State holding: set counter handled above only if used; price the
        // per-set clock-gating cells, the decoder and the set counter.
        let hold = if self.hold_sets > 0 {
            let set_bits = (usize::BITS - self.hold_sets.leading_zeros()) as usize;
            counter(set_bits)
                + self.hold_sets as f64 * (lib.clock_gate + lib.and2)
                + self.hold_sets as f64 * lib.and2 // decoder outputs
        } else {
            0.0
        };
        lfsr + counters + bias + fsm + hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbt_netlist::synth;

    const LIB: CellLibrary = CellLibrary::generic_018um();

    #[test]
    fn circuit_area_scales_with_size() {
        let small = synth::generate(&synth::find("s298").unwrap());
        let large = synth::generate(&synth::find("s1494").unwrap());
        let a_small = circuit_area(&small, &LIB);
        let a_large = circuit_area(&large, &LIB);
        assert!(a_large > 3.0 * a_small);
    }

    #[test]
    fn hardware_area_in_paper_ballpark() {
        // Table 4.3 reports 12 000 – 16 000 µm² across all circuits for the
        // base configuration (NLFSR = 32, m = 3).
        let hw = BistHardware::for_program(32, 3, 2, 18_000, 117, 50, 22, 0);
        let a = hw.area(&LIB);
        assert!(a > 6_000.0 && a < 20_000.0, "area {a}");
    }

    #[test]
    fn state_holding_adds_little() {
        let base = BistHardware::for_program(32, 3, 2, 18_000, 117, 50, 22, 0);
        let held = BistHardware::for_program(32, 3, 2, 18_000, 117, 50, 22, 4);
        let a0 = base.area(&LIB);
        let a1 = held.area(&LIB);
        assert!(a1 > a0);
        assert!(
            a1 < a0 * 1.25,
            "holding overhead should be small: {a0} -> {a1}"
        );
    }

    #[test]
    fn overhead_shrinks_with_circuit_size() {
        let hw = BistHardware::for_program(32, 3, 1, 6_000, 173, 1, 1, 0).area(&LIB);
        let small = circuit_area(&synth::generate(&synth::find("s1423").unwrap()), &LIB);
        let large = circuit_area(&synth::generate(&synth::find("s13207").unwrap()), &LIB);
        assert!(hw / large < hw / small);
    }

    #[test]
    fn gate_pricing_monotone_in_fanin() {
        assert!(LIB.gate(GateKind::Nand, 4) > LIB.gate(GateKind::Nand, 2));
        assert_eq!(LIB.gate(GateKind::Input, 0), 0.0);
        assert_eq!(LIB.gate(GateKind::Dff, 1), LIB.dff);
    }

    #[test]
    fn cube_sizing_consistency() {
        use fbt_sim::Trit;
        // NSP biasing gates: one per specified trit.
        let cube = [Trit::One, Trit::X, Trit::Zero, Trit::X];
        let nsp = crate::cube::specified_count(&cube);
        let hw = BistHardware::for_program(32, 3, nsp, 100, 10, 1, 1, 0);
        assert_eq!(hw.biasing_gates, 2);
    }
}
