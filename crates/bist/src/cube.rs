//! Primary input cube computation (paper §4.3).
//!
//! *Repeated synchronization* occurs when a primary-input value forces a
//! state variable to a fixed value; if that input value keeps appearing in
//! the pseudo-random sequence, the state variable keeps being re-synchronized
//! and faults behind it escape detection. The cube `C` records, per primary
//! input, the value that should appear *more often* — the one that
//! synchronizes **fewer** state variables — and the TPG biases the input
//! toward it with an `m`-input AND/OR gate.

use fbt_netlist::Netlist;
use fbt_sim::{tv, Trit};

/// Compute the primary input cube `C`.
///
/// For each input `i` and value `b`, a three-valued single-frame simulation
/// with only `i = b` specified counts the specified next-state variables.
/// `C(i)` is the value with the *smaller* count; equal counts yield `X`
/// (no biasing gate).
pub fn input_cube(net: &Netlist) -> Vec<Trit> {
    let n_pi = net.num_inputs();
    let state_x = vec![Trit::X; net.num_dffs()];
    (0..n_pi)
        .map(|i| {
            let count = |b: Trit| {
                let mut pi = vec![Trit::X; n_pi];
                pi[i] = b;
                let (_, next) = tv::simulate_frame_tv(net, &pi, &state_x);
                next.iter().filter(|t| t.is_specified()).count()
            };
            let zero_syncs = count(Trit::Zero);
            let one_syncs = count(Trit::One);
            match zero_syncs.cmp(&one_syncs) {
                std::cmp::Ordering::Less => Trit::Zero,
                std::cmp::Ordering::Greater => Trit::One,
                std::cmp::Ordering::Equal => Trit::X,
            }
        })
        .collect()
}

/// The number of specified entries in a cube — `NSP` of Table 4.2, which is
/// also the number of biasing gates inserted in the TPG.
pub fn specified_count(cube: &[Trit]) -> usize {
    cube.iter().filter(|t| t.is_specified()).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbt_netlist::{GateKind, NetlistBuilder};

    /// `a = 0` forces the AND-driven flip-flop to 0 (synchronizes it), so C(a)
    /// must be 1 (the value to appear more often).
    #[test]
    fn synchronizing_value_is_avoided() {
        let mut b = NetlistBuilder::new("sync");
        b.input("a").unwrap();
        b.input("c").unwrap();
        b.dff("q", "d").unwrap();
        b.gate(GateKind::And, "d", &["a", "c"]).unwrap();
        b.output("q").unwrap();
        let net = b.finish().unwrap();
        let cube = input_cube(&net);
        // a=0 -> d=0 specified (1 sync); a=1 -> d=X (0 syncs). Prefer a=1.
        assert_eq!(cube[0], Trit::One);
        assert_eq!(cube[1], Trit::One);
        assert_eq!(specified_count(&cube), 2);
    }

    #[test]
    fn symmetric_input_gets_x() {
        let mut b = NetlistBuilder::new("sym");
        b.input("a").unwrap();
        b.dff("q", "d").unwrap();
        b.gate(GateKind::Xor, "d", &["a", "q"]).unwrap();
        b.output("q").unwrap();
        let net = b.finish().unwrap();
        let cube = input_cube(&net);
        // XOR with an X state is X either way: no synchronization at all.
        assert_eq!(cube[0], Trit::X);
        assert_eq!(specified_count(&cube), 0);
    }

    #[test]
    fn nor_prefers_zero() {
        let mut b = NetlistBuilder::new("nor");
        b.input("a").unwrap();
        b.input("c").unwrap();
        b.dff("q", "d").unwrap();
        b.gate(GateKind::Nor, "d", &["a", "c"]).unwrap();
        b.output("q").unwrap();
        let net = b.finish().unwrap();
        let cube = input_cube(&net);
        // a=1 -> d=0 specified; a=0 -> d=X. Prefer a=0.
        assert_eq!(cube[0], Trit::Zero);
    }

    #[test]
    fn s27_cube_is_small() {
        // Table 4.2 shows NSP is small relative to NPI for real circuits.
        let net = fbt_netlist::s27();
        let cube = input_cube(&net);
        assert_eq!(cube.len(), 4);
        assert!(specified_count(&cube) <= 4);
    }
}
