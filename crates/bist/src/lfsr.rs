//! The n-stage LFSR of Fig. 4.3.

use fbt_sim::Bits;

/// Maximal-length feedback tap positions (1-indexed stage numbers) for
/// supported widths. Each entry yields a characteristic polynomial whose
/// LFSR cycles through all `2^n - 1` non-zero states.
const MAXIMAL_TAPS: &[(u32, &[u32])] = &[
    (2, &[2, 1]),
    (3, &[3, 2]),
    (4, &[4, 3]),
    (5, &[5, 3]),
    (6, &[6, 5]),
    (7, &[7, 6]),
    (8, &[8, 6, 5, 4]),
    (9, &[9, 5]),
    (10, &[10, 7]),
    (11, &[11, 9]),
    (12, &[12, 6, 4, 1]),
    (13, &[13, 4, 3, 1]),
    (14, &[14, 5, 3, 1]),
    (15, &[15, 14]),
    (16, &[16, 15, 13, 4]),
    (17, &[17, 14]),
    (18, &[18, 11]),
    (19, &[19, 6, 2, 1]),
    (20, &[20, 17]),
    (21, &[21, 19]),
    (22, &[22, 21]),
    (23, &[23, 18]),
    (24, &[24, 23, 22, 17]),
    (25, &[25, 22]),
    (26, &[26, 6, 2, 1]),
    (27, &[27, 5, 2, 1]),
    (28, &[28, 25]),
    (29, &[29, 27]),
    (30, &[30, 6, 4, 1]),
    (31, &[31, 28]),
    (32, &[32, 22, 2, 1]),
    (64, &[64, 63, 61, 60]),
];

/// The tabulated maximal-length taps for `width`, if supported.
pub(crate) fn taps_for(width: u32) -> Option<&'static [u32]> {
    MAXIMAL_TAPS
        .iter()
        .find(|&&(w, _)| w == width)
        .map(|&(_, t)| t)
}

/// A Fibonacci-style linear feedback shift register with a maximal-length
/// characteristic polynomial.
///
/// The developed TPG (paper §4.3) uses a *fixed-width* LFSR (32 stages in the
/// experiments) regardless of the number of primary inputs; its serial output
/// feeds a shift register.
///
/// # Example
///
/// ```
/// use fbt_bist::Lfsr;
/// let mut l = Lfsr::new(8, 0x5A).unwrap();
/// let first = l.step();
/// let mut l2 = Lfsr::new(8, 0x5A).unwrap();
/// assert_eq!(first, l2.step()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lfsr {
    width: u32,
    taps: &'static [u32],
    state: u64,
}

impl Lfsr {
    /// Create an LFSR of the given width, seeded with the low `width` bits of
    /// `seed` (forced non-zero: the all-0 state is not on the maximal cycle).
    ///
    /// Returns `None` for widths without a tabulated maximal polynomial.
    pub fn new(width: u32, seed: u64) -> Option<Self> {
        let taps = MAXIMAL_TAPS
            .iter()
            .find(|&&(w, _)| w == width)
            .map(|&(_, t)| t)?;
        let mask = if width == 64 { !0 } else { (1u64 << width) - 1 };
        let mut state = seed & mask;
        if state == 0 {
            state = 1;
        }
        Some(Lfsr { width, taps, state })
    }

    /// The register width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The current state (stage `i` in bit `i`).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Load a new seed (forced non-zero), e.g. between primary-input
    /// segments of a multi-segment sequence.
    pub fn reseed(&mut self, seed: u64) {
        let mask = if self.width == 64 {
            !0
        } else {
            (1u64 << self.width) - 1
        };
        self.state = seed & mask;
        if self.state == 0 {
            self.state = 1;
        }
    }

    /// Advance one clock; returns the serial output bit (the last stage
    /// before the shift).
    pub fn step(&mut self) -> bool {
        let out = (self.state >> (self.width - 1)) & 1 == 1;
        let feedback = self
            .taps
            .iter()
            .fold(0u64, |acc, &t| acc ^ (self.state >> (t - 1)));
        self.state = ((self.state << 1) | (feedback & 1))
            & if self.width == 64 {
                !0
            } else {
                (1u64 << self.width) - 1
            };
        out
    }

    /// The state as a bitvector (stage 0 first).
    pub fn state_bits(&self) -> Bits {
        (0..self.width as usize)
            .map(|i| (self.state >> i) & 1 == 1)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn maximal_period_small_widths() {
        for width in 2..=16u32 {
            let mut l = Lfsr::new(width, 1).unwrap();
            let start = l.state();
            let mut period = 0u64;
            loop {
                l.step();
                period += 1;
                if l.state() == start {
                    break;
                }
                assert!(period <= 1 << width, "runaway at width {width}");
            }
            assert_eq!(period, (1u64 << width) - 1, "width {width}");
        }
    }

    #[test]
    fn never_all_zero() {
        let mut l = Lfsr::new(12, 0).unwrap();
        assert_ne!(l.state(), 0, "zero seed is coerced");
        for _ in 0..10_000 {
            l.step();
            assert_ne!(l.state(), 0);
        }
    }

    #[test]
    fn visits_all_states_width_8() {
        let mut l = Lfsr::new(8, 7).unwrap();
        let mut seen = HashSet::new();
        for _ in 0..255 {
            seen.insert(l.state());
            l.step();
        }
        assert_eq!(seen.len(), 255);
    }

    #[test]
    fn unsupported_width_returns_none() {
        assert!(Lfsr::new(33, 1).is_none());
        assert!(Lfsr::new(0, 1).is_none());
        assert!(Lfsr::new(64, 123).is_some());
    }

    #[test]
    fn reseed_restarts_stream() {
        let mut a = Lfsr::new(16, 0xBEEF).unwrap();
        let s1: Vec<bool> = (0..32).map(|_| a.step()).collect();
        a.reseed(0xBEEF);
        let s2: Vec<bool> = (0..32).map(|_| a.step()).collect();
        assert_eq!(s1, s2);
    }

    #[test]
    fn state_bits_layout() {
        let l = Lfsr::new(8, 0b1010_0001).unwrap();
        let b = l.state_bits();
        assert!(b.get(0));
        assert!(!b.get(1));
        assert!(b.get(5));
        assert!(b.get(7));
    }
}
