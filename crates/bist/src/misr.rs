//! The multiple-input signature register of Fig. 4.4.

use fbt_sim::Bits;

/// An n-stage MISR compacting test responses into a signature.
///
/// Each clock, the register shifts with LFSR feedback while XOR-ing the
/// response bits into the stages (`Di` into stage `i`); responses wider than
/// the register fold around modulo the width. After test application the
/// final state is compared against the fault-free signature (paper §4.2).
///
/// # Example
///
/// ```
/// use fbt_bist::Misr;
/// use fbt_sim::Bits;
///
/// let mut good = Misr::new(16);
/// let mut bad = Misr::new(16);
/// good.absorb(&Bits::from_str01("1011"));
/// bad.absorb(&Bits::from_str01("1010")); // one response bit differs
/// assert_ne!(good.signature(), bad.signature());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Misr {
    width: u32,
    taps: Vec<u32>,
    state: u64,
}

impl Misr {
    /// Create a zero-initialised MISR. Widths follow the same tap table as
    /// [`crate::Lfsr`]; unsupported widths fall back to a dense polynomial.
    pub fn new(width: u32) -> Self {
        assert!((2..=64).contains(&width), "width out of range");
        let taps = match crate::lfsr::taps_for(width) {
            Some(t) => t.to_vec(),
            None => vec![width, 1],
        };
        Misr {
            width,
            taps,
            state: 0,
        }
    }

    /// Absorb one response vector.
    pub fn absorb(&mut self, response: &Bits) {
        let mask = if self.width == 64 {
            !0
        } else {
            (1u64 << self.width) - 1
        };
        let feedback = self
            .taps
            .iter()
            .fold(0u64, |acc, &t| acc ^ (self.state >> (t - 1)))
            & 1;
        let mut folded = 0u64;
        for (i, bit) in response.iter().enumerate() {
            if bit {
                folded ^= 1 << (i as u32 % self.width);
            }
        }
        self.state = (((self.state << 1) | feedback) ^ folded) & mask;
    }

    /// The current signature.
    pub fn signature(&self) -> u64 {
        self.state
    }

    /// Reset to the all-zero state.
    pub fn reset(&mut self) {
        self.state = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_sensitivity() {
        let a = Bits::from_str01("1100");
        let b = Bits::from_str01("0011");
        let mut m1 = Misr::new(16);
        m1.absorb(&a);
        m1.absorb(&b);
        let mut m2 = Misr::new(16);
        m2.absorb(&b);
        m2.absorb(&a);
        assert_ne!(m1.signature(), m2.signature());
    }

    #[test]
    fn single_bit_flip_changes_signature() {
        // For every position of a 24-bit response absorbed over 3 cycles,
        // flipping exactly one bit must change the signature (no masking in
        // a single-error scenario).
        let base: Vec<Bits> = vec![
            Bits::from_str01("10110010"),
            Bits::from_str01("01101001"),
            Bits::from_str01("11100011"),
        ];
        let mut good = Misr::new(16);
        for r in &base {
            good.absorb(r);
        }
        for cycle in 0..3 {
            for bit in 0..8 {
                let mut m = Misr::new(16);
                for (c, r) in base.iter().enumerate() {
                    let mut r = r.clone();
                    if c == cycle {
                        r.set(bit, !r.get(bit));
                    }
                    m.absorb(&r);
                }
                assert_ne!(m.signature(), good.signature(), "cycle {cycle} bit {bit}");
            }
        }
    }

    #[test]
    fn folding_wide_responses() {
        let mut m = Misr::new(4);
        m.absorb(&Bits::from_str01("100010001000")); // 12 bits folded into 4
                                                     // bits 0, 4, 8 are set -> all fold onto stage 0 -> cancel to 1 bit.
        assert_eq!(m.signature(), 0b0001); // three XORs of stage 0 = 1
    }

    #[test]
    fn reset_clears() {
        let mut m = Misr::new(8);
        m.absorb(&Bits::from_str01("1111"));
        assert_ne!(m.signature(), 0);
        m.reset();
        assert_eq!(m.signature(), 0);
    }
}
