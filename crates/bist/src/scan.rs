//! Scan-chain structure and shift behaviour (paper §1.3, Fig. 1.8).
//!
//! The experiments' scan configuration (§4.6) allows at most 10 chains of at
//! least 100 cells each, approximately balanced. Shifting is modelled
//! cycle-accurately so that scan (shift) power — the subject of the
//! low-power scan literature the paper builds on (\[78\]–\[80\]) — can be
//! measured, and so that the test-time accounting of
//! [`crate::schedule::TestSchedule`] rests on a real structure.

use fbt_sim::Bits;

/// A partition of the flip-flops into scan chains.
///
/// Chain entries are flip-flop positions (indices into the netlist's
/// `dffs()` order), listed from scan-in to scan-out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanChains {
    chains: Vec<Vec<usize>>,
    n_ff: usize,
}

impl ScanChains {
    /// Partition `n_ff` flip-flops into balanced chains per the §4.6 rule:
    /// as many chains as `n_ff / min_len` allows, at most `max_chains`,
    /// at least one.
    pub fn balanced(n_ff: usize, max_chains: usize, min_len: usize) -> Self {
        assert!(max_chains >= 1, "need at least one chain");
        if n_ff == 0 {
            return ScanChains {
                chains: vec![Vec::new()],
                n_ff,
            };
        }
        let n_chains = (n_ff / min_len.max(1)).clamp(1, max_chains);
        let mut chains = vec![Vec::new(); n_chains];
        for ff in 0..n_ff {
            chains[ff % n_chains].push(ff);
        }
        ScanChains { chains, n_ff }
    }

    /// The paper's configuration: at most 10 chains of at least 100 cells.
    pub fn paper_config(n_ff: usize) -> Self {
        ScanChains::balanced(n_ff, 10, 100)
    }

    /// Number of chains.
    pub fn num_chains(&self) -> usize {
        self.chains.len()
    }

    /// Length of the longest chain (`Lsc`, the shift cost per load).
    pub fn longest(&self) -> usize {
        self.chains.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The chains themselves.
    pub fn chains(&self) -> &[Vec<usize>] {
        &self.chains
    }

    /// The per-cycle flip-flop states while shifting from state `from` to
    /// state `to` (exclusive of `from`, inclusive of the fully-loaded `to`).
    /// Shift-in bits are fed so that after `longest()` cycles every cell
    /// holds its target value; shorter chains idle-pad at the front.
    ///
    /// # Panics
    ///
    /// Panics on state-width mismatches.
    pub fn shift_states(&self, from: &Bits, to: &Bits) -> Vec<Bits> {
        assert_eq!(from.len(), self.n_ff, "state width mismatch");
        assert_eq!(to.len(), self.n_ff, "state width mismatch");
        let total = self.longest();
        let mut cur = from.clone();
        let mut out = Vec::with_capacity(total);
        for t in 0..total {
            let mut next = cur.clone();
            for chain in &self.chains {
                let l = chain.len();
                if l == 0 {
                    continue;
                }
                // Shift toward scan-out (the end of the list).
                for j in (1..l).rev() {
                    next.set(chain[j], cur.get(chain[j - 1]));
                }
                // The bit entering now must land in cell j after the
                // remaining shifts: with `total - t` shifts left (including
                // this one) it ends at position total - t - 1... padded for
                // short chains so the last `l` entering bits are
                // to[chain[l-1]], …, to[chain[0]].
                let remaining_after = total - t - 1;
                let incoming = if remaining_after < l {
                    to.get(chain[remaining_after])
                } else {
                    false // idle padding for short chains
                };
                next.set(chain[0], incoming);
            }
            out.push(next.clone());
            cur = next;
        }
        out
    }

    /// Mean per-cycle flip-flop toggle fraction while shifting between two
    /// states — the scan shift activity the low-power scan techniques
    /// (\[78\]–\[80\]) target.
    pub fn shift_activity(&self, from: &Bits, to: &Bits) -> f64 {
        let states = self.shift_states(from, to);
        if states.is_empty() || self.n_ff == 0 {
            return 0.0;
        }
        let mut prev = from.clone();
        let mut toggles = 0usize;
        for s in &states {
            toggles += prev.hamming(s);
            prev = s.clone();
        }
        toggles as f64 / (states.len() * self.n_ff) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbt_netlist::rng::Rng;

    #[test]
    fn balanced_partition_matches_paper_rule() {
        let sc = ScanChains::paper_config(1728); // s35932
        assert_eq!(sc.num_chains(), 10);
        assert_eq!(sc.longest(), 173);
        let sc = ScanChains::paper_config(229); // spi
        assert_eq!(sc.num_chains(), 2);
        assert_eq!(sc.longest(), 115);
        let sc = ScanChains::paper_config(50); // shorter than min_len
        assert_eq!(sc.num_chains(), 1);
        assert_eq!(sc.longest(), 50);
    }

    #[test]
    fn every_ff_in_exactly_one_chain() {
        let sc = ScanChains::balanced(137, 10, 10);
        let mut seen = [false; 137];
        for c in sc.chains() {
            for &ff in c {
                assert!(!seen[ff]);
                seen[ff] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shifting_loads_the_target_state() {
        let mut rng = Rng::new(77);
        for n_ff in [1usize, 7, 64, 201] {
            let sc = ScanChains::balanced(n_ff, 4, 16);
            let from: Bits = (0..n_ff).map(|_| rng.bit()).collect();
            let to: Bits = (0..n_ff).map(|_| rng.bit()).collect();
            let states = sc.shift_states(&from, &to);
            assert_eq!(states.len(), sc.longest());
            assert_eq!(states.last().unwrap(), &to, "n_ff = {n_ff}");
        }
    }

    #[test]
    fn shift_activity_zero_for_constant_zero_states() {
        let sc = ScanChains::balanced(32, 4, 8);
        let zero = Bits::zeros(32);
        assert_eq!(sc.shift_activity(&zero, &zero), 0.0);
    }

    #[test]
    fn shift_activity_positive_for_alternating_load() {
        let sc = ScanChains::balanced(32, 2, 8);
        let zero = Bits::zeros(32);
        let alt: Bits = (0..32).map(|i| i % 2 == 0).collect();
        let a = sc.shift_activity(&zero, &alt);
        assert!(a > 0.0 && a <= 1.0);
    }
}
