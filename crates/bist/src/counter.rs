//! The clock-cycle counter with derived control signals (Figs. 4.6, 4.11).

/// A clock-cycle counter whose low-order bits generate the test-apply signal
/// (a `q`-input NOR over the rightmost `q` bits, Fig. 4.6) and the holding
/// enable signal (an `h`-input NOR over the rightmost `h` bits, Fig. 4.11).
///
/// With `q = 1` — the setting used throughout the paper's experiments so the
/// largest number of tests is obtained — the rightmost counter bit itself
/// serves as the apply signal and no extra NOR gate is needed.
///
/// # Example
///
/// ```
/// use fbt_bist::CycleCounter;
/// let mut c = CycleCounter::new();
/// assert!(c.test_apply(1)); // cycle 0: apply
/// c.tick();
/// assert!(!c.test_apply(1)); // cycle 1: don't
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CycleCounter {
    count: u64,
}

impl CycleCounter {
    /// A counter at cycle 0.
    pub fn new() -> Self {
        CycleCounter { count: 0 }
    }

    /// Current cycle number.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Advance one clock.
    pub fn tick(&mut self) {
        self.count += 1;
    }

    /// Reset to cycle 0 (loading a new segment).
    pub fn reset(&mut self) {
        self.count = 0;
    }

    /// The test-apply signal: tests are applied every `2^q` cycles, i.e. when
    /// the rightmost `q` bits are all zero.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0` or `q > 63`.
    pub fn test_apply(&self, q: u32) -> bool {
        assert!(q > 0 && q < 64, "q out of range");
        self.count & ((1 << q) - 1) == 0
    }

    /// The holding-enable signal: state holding is performed every `2^h`
    /// cycles (the hold takes effect on the state update leaving the current
    /// cycle).
    ///
    /// # Panics
    ///
    /// Panics if `h == 0` or `h > 63`.
    pub fn hold_enable(&self, h: u32) -> bool {
        assert!(h > 0 && h < 64, "h out of range");
        self.count & ((1 << h) - 1) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_every_two_cycles_with_q1() {
        let mut c = CycleCounter::new();
        let pattern: Vec<bool> = (0..8)
            .map(|_| {
                let a = c.test_apply(1);
                c.tick();
                a
            })
            .collect();
        assert_eq!(
            pattern,
            [true, false, true, false, true, false, true, false]
        );
    }

    #[test]
    fn apply_every_four_cycles_with_q2() {
        let mut c = CycleCounter::new();
        let hits: Vec<u64> = (0..12)
            .filter_map(|_| {
                let v = c.test_apply(2).then_some(c.count());
                c.tick();
                v
            })
            .collect();
        assert_eq!(hits, [0, 4, 8]);
    }

    #[test]
    fn hold_every_2h_cycles() {
        let mut c = CycleCounter::new();
        let hits: Vec<u64> = (0..20)
            .filter_map(|_| {
                let v = c.hold_enable(2).then_some(c.count());
                c.tick();
                v
            })
            .collect();
        assert_eq!(hits, [0, 4, 8, 12, 16]);
    }

    #[test]
    fn hold_cycles_are_launch_cycles_not_capture_cycles() {
        // Tests start at even cycles (q = 1). The capture transition of test
        // t(i) leaves cycle i+1 (odd). Hold cycles with h >= 1 are multiples
        // of 2^h, always even, so a capture transition is never held — the
        // §4.5.1 requirement.
        let c = CycleCounter::new();
        let _ = c;
        for h in 1..5u32 {
            let mut c = CycleCounter::new();
            for _ in 0..64 {
                if c.hold_enable(h) {
                    assert!(
                        c.count().is_multiple_of(2),
                        "hold at odd cycle {}",
                        c.count()
                    );
                }
                c.tick();
            }
        }
    }

    #[test]
    fn reset_returns_to_zero() {
        let mut c = CycleCounter::new();
        c.tick();
        c.tick();
        c.reset();
        assert_eq!(c.count(), 0);
        assert!(c.test_apply(1));
    }
}
