//! The TPG architecture of \[73\] (paper Fig. 4.7), kept for ablation.
//!
//! In \[73\] each primary input owns a *dedicated* group of `d` LFSR stages:
//! inputs with a specified cube value take `m ≤ d` of their stages through
//! an AND/OR biasing gate, unbiased inputs tap one stage directly. The LFSR
//! is therefore `d · NPI` stages long — which is exactly why the developed
//! method (Fig. 4.8) replaced it with a fixed-width LFSR feeding a shift
//! register. The `ablation_tpg` experiment compares the two on coverage and
//! area.

use fbt_sim::{Bits, Trit};

/// A Fibonacci LFSR of arbitrary width (multi-word state).
///
/// Unlike [`crate::Lfsr`], whose tabulated polynomials guarantee the maximal
/// period, arbitrary widths use a fixed dense tap pattern chosen for long
/// (but not provably maximal) periods — adequate for pseudo-random pattern
/// generation, which is all \[73\]'s architecture needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WideLfsr {
    width: usize,
    state: Vec<u64>,
}

impl WideLfsr {
    /// Create a register of `width` stages seeded from `seed` (expanded via
    /// the workspace PRNG; forced non-zero).
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn new(width: usize, seed: u64) -> Self {
        assert!(width > 0, "width must be positive");
        let mut rng = fbt_netlist::rng::Rng::new(seed);
        let mut state: Vec<u64> = (0..width.div_ceil(64)).map(|_| rng.next_u64()).collect();
        let tail_bits = width % 64;
        if tail_bits != 0 {
            let last = state.len() - 1;
            state[last] &= (1u64 << tail_bits) - 1;
        }
        if state.iter().all(|&w| w == 0) {
            state[0] = 1;
        }
        WideLfsr { width, state }
    }

    /// The register width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Read stage `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    #[inline]
    pub fn stage(&self, i: usize) -> bool {
        assert!(i < self.width, "stage out of range");
        (self.state[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Advance one clock. Feedback taps: the last stage XOR three fixed
    /// interior stages (spread across the register).
    pub fn step(&mut self) {
        let w = self.width;
        let taps = [w - 1, (w * 3) / 4, w / 2, w / 5];
        let mut fb = false;
        for &t in &taps {
            fb ^= self.stage(t.min(w - 1));
        }
        // Shift left by one (stage i+1 <- stage i), insert feedback at 0.
        let mut carry = fb;
        for word in self.state.iter_mut() {
            let out = (*word >> 63) & 1 == 1;
            *word = (*word << 1) | carry as u64;
            carry = out;
        }
        let tail_bits = w % 64;
        if tail_bits != 0 {
            let last = self.state.len() - 1;
            self.state[last] &= (1u64 << tail_bits) - 1;
        }
        if self.state.iter().all(|&x| x == 0) {
            self.state[0] = 1;
        }
    }
}

/// The Fig. 4.7 test pattern generator of \[73\].
#[derive(Debug, Clone)]
pub struct Tpg73 {
    lfsr: WideLfsr,
    cube: Vec<Trit>,
    /// LFSR stages per input (`d`).
    pub d: usize,
    /// Biasing gate fan-in (`m`), `2 ≤ m ≤ d`.
    pub m: usize,
}

impl Tpg73 {
    /// Build the generator. The LFSR is `d · NPI` stages.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= m <= d`.
    pub fn new(cube: Vec<Trit>, d: usize, m: usize, seed: u64) -> Self {
        assert!(m >= 2 && m <= d, "need 2 <= m <= d");
        let width = (d * cube.len()).max(1);
        Tpg73 {
            lfsr: WideLfsr::new(width, seed),
            cube,
            d,
            m,
        }
    }

    /// Total LFSR stages (`NLFSR = d · NPI` — the area cost this
    /// architecture pays and Fig. 4.8 avoids).
    pub fn lfsr_width(&self) -> usize {
        self.lfsr.width()
    }

    /// Advance one clock and produce the primary-input vector.
    pub fn next_vector(&mut self) -> Bits {
        self.lfsr.step();
        let mut out = Bits::zeros(self.cube.len());
        for (i, &c) in self.cube.iter().enumerate() {
            let base = i * self.d;
            let v = match c {
                Trit::X => self.lfsr.stage(base),
                Trit::Zero => (0..self.m).all(|k| self.lfsr.stage(base + k)),
                Trit::One => (0..self.m).any(|k| self.lfsr.stage(base + k)),
            };
            out.set(i, v);
        }
        out
    }

    /// Generate a sequence of `len` vectors.
    pub fn sequence(&mut self, len: usize) -> Vec<Bits> {
        (0..len).map(|_| self.next_vector()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide_lfsr_is_deterministic_and_nonzero() {
        let mut a = WideLfsr::new(100, 5);
        let mut b = WideLfsr::new(100, 5);
        for _ in 0..2000 {
            a.step();
            b.step();
            assert_eq!(a, b);
            assert!((0..100).any(|i| a.stage(i)), "reached all-zero");
        }
    }

    #[test]
    fn wide_lfsr_has_long_period_at_small_width() {
        let mut l = WideLfsr::new(24, 9);
        let start = l.clone();
        let mut period = 0u64;
        loop {
            l.step();
            period += 1;
            if l == start || period > 2_000_000 {
                break;
            }
        }
        assert!(period > 10_000, "period {period} too short");
    }

    #[test]
    fn tpg73_biasing_matches_expectations() {
        let cube = vec![Trit::One, Trit::Zero, Trit::X];
        let mut t = Tpg73::new(cube, 4, 3, 0xFEED);
        assert_eq!(t.lfsr_width(), 12);
        let n = 4000;
        let mut ones = [0usize; 3];
        for _ in 0..n {
            let v = t.next_vector();
            for (i, o) in ones.iter_mut().enumerate() {
                if v.get(i) {
                    *o += 1;
                }
            }
        }
        let f = |i: usize| ones[i] as f64 / n as f64;
        assert!((f(0) - 0.875).abs() < 0.06, "OR-biased {}", f(0));
        assert!((f(1) - 0.125).abs() < 0.06, "AND-biased {}", f(1));
        assert!((f(2) - 0.5).abs() < 0.06, "unbiased {}", f(2));
    }

    #[test]
    fn lfsr_width_scales_with_inputs_unlike_fig_4_8() {
        let narrow = Tpg73::new(vec![Trit::X; 8], 3, 2, 1);
        let wide = Tpg73::new(vec![Trit::X; 128], 3, 2, 1);
        assert_eq!(narrow.lfsr_width(), 24);
        assert_eq!(wide.lfsr_width(), 384); // grows linearly: the ablation point
    }
}
