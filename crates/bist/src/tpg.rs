//! The test pattern generator of the developed method (paper Fig. 4.8).
//!
//! A fixed-width LFSR drives a shift register; primary inputs are driven from
//! dedicated shift-register bits — one bit directly when `C(i) = x`, or `m`
//! bits through an AND (`C(i) = 0`) or OR (`C(i) = 1`) biasing gate, making
//! the preferred value appear with probability `1 - 1/2^m`.

use fbt_sim::{Bits, Trit};

use crate::Lfsr;

/// Static configuration of a TPG instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TpgSpec {
    /// LFSR width (`NLFSR`; 32 in the paper's experiments).
    pub lfsr_width: u32,
    /// Biasing gate fan-in `m` (3 in the paper's experiments).
    pub m: usize,
    /// The primary input cube `C`.
    pub cube: Vec<Trit>,
}

impl TpgSpec {
    /// Standard configuration used in §4.6: `NLFSR = 32`, `m = 3`.
    pub fn standard(cube: Vec<Trit>) -> Self {
        TpgSpec {
            lfsr_width: 32,
            m: 3,
            cube,
        }
    }

    /// Number of primary inputs driven.
    pub fn num_inputs(&self) -> usize {
        self.cube.len()
    }

    /// Number of specified cube entries (`NSP`).
    pub fn specified(&self) -> usize {
        self.cube.iter().filter(|t| t.is_specified()).count()
    }

    /// Shift register length: `m·NSP + (NPI − NSP)` (paper §4.3).
    pub fn shift_register_len(&self) -> usize {
        let nsp = self.specified();
        self.m * nsp + (self.num_inputs() - nsp)
    }
}

/// The cycle-accurate TPG model.
///
/// # Example
///
/// ```
/// use fbt_bist::{Tpg, TpgSpec};
/// use fbt_sim::Trit;
///
/// let spec = TpgSpec::standard(vec![Trit::X, Trit::One, Trit::Zero]);
/// let mut tpg = Tpg::new(spec, 0xACE1);
/// let v = tpg.next_vector();
/// assert_eq!(v.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Tpg {
    spec: TpgSpec,
    lfsr: Lfsr,
    shift_reg: Vec<bool>,
    /// For each PI: the range of shift-register bits allocated to it.
    alloc: Vec<(usize, usize)>,
}

impl Tpg {
    /// Build the TPG and perform initialization: the seed is loaded into the
    /// LFSR, then the shift register is filled over `shift_register_len()`
    /// clock cycles (paper §4.3).
    ///
    /// # Panics
    ///
    /// Panics if the LFSR width is unsupported.
    pub fn new(spec: TpgSpec, seed: u64) -> Self {
        let lfsr = Lfsr::new(spec.lfsr_width, seed).expect("TPG requires a supported LFSR width");
        let mut alloc = Vec::with_capacity(spec.num_inputs());
        let mut next = 0usize;
        for c in &spec.cube {
            let width = if c.is_specified() { spec.m } else { 1 };
            alloc.push((next, width));
            next += width;
        }
        let mut tpg = Tpg {
            shift_reg: vec![false; spec.shift_register_len()],
            spec,
            lfsr,
            alloc,
        };
        tpg.fill_shift_register();
        tpg
    }

    /// The static configuration.
    pub fn spec(&self) -> &TpgSpec {
        &self.spec
    }

    /// Load a new LFSR seed and re-initialize the shift register — the
    /// between-segments operation of multi-segment sequences (§4.4).
    pub fn reseed(&mut self, seed: u64) {
        self.lfsr.reseed(seed);
        self.fill_shift_register();
    }

    fn fill_shift_register(&mut self) {
        // Equivalent to `shift_register_len()` calls of `shift_once` (after
        // which `reg[j]` holds the `(n-1-j)`-th LFSR output), without the
        // quadratic per-shift rotation.
        let n = self.shift_reg.len();
        for j in 0..n {
            self.shift_reg[n - 1 - j] = self.lfsr.step();
        }
    }

    fn shift_once(&mut self) {
        let incoming = self.lfsr.step();
        self.shift_reg.rotate_right(1);
        self.shift_reg[0] = incoming;
    }

    /// Advance one clock and produce the primary-input vector for this cycle.
    pub fn next_vector(&mut self) -> Bits {
        self.shift_once();
        let shift_reg = &self.shift_reg;
        self.spec
            .cube
            .iter()
            .zip(&self.alloc)
            .map(|(&c, &(start, width))| {
                let bits = &shift_reg[start..start + width];
                match c {
                    Trit::X => bits[0],
                    Trit::Zero => bits.iter().all(|&b| b), // m-input AND
                    Trit::One => bits.iter().any(|&b| b),  // m-input OR
                }
            })
            .collect()
    }

    /// Generate a primary-input sequence of length `len`.
    ///
    /// Equivalent to `len` calls of [`Tpg::next_vector`] (same vectors, same
    /// final TPG state), but computed from a single packed LFSR bitstream so
    /// the per-cycle shift-register rotation disappears. The register after
    /// `t + 1` shifts holds `reg[j] = stream[shifts - 1 - j]`, so input bit
    /// reads become sliding-window field extractions on the stream.
    pub fn sequence(&mut self, len: usize) -> Vec<Bits> {
        let n = self.shift_reg.len();
        let total = n + len;
        let mut stream = vec![0u64; total.div_ceil(64).max(1)];
        // Local stream indexing: bits 0..n are the current register contents
        // (oldest first), bits n.. are future LFSR output.
        for j in 0..n {
            if self.shift_reg[n - 1 - j] {
                stream[j / 64] |= 1 << (j % 64);
            }
        }
        for j in n..total {
            if self.lfsr.step() {
                stream[j / 64] |= 1 << (j % 64);
            }
        }
        let bit = |i: usize| (stream[i / 64] >> (i % 64)) & 1 == 1;
        // Bits `[hi - w + 1 ..= hi]` of the stream as a `w`-bit field.
        let field = |hi: usize, w: usize| -> u64 {
            let lo = hi + 1 - w;
            let (wi, sh) = (lo / 64, lo % 64);
            let mut f = stream[wi] >> sh;
            if sh != 0 && wi + 1 < stream.len() {
                f |= stream[wi + 1] << (64 - sh);
            }
            if w == 64 {
                f
            } else {
                f & ((1u64 << w) - 1)
            }
        };
        // Unspecified inputs are single shift-register bits at consecutive
        // positions, so a run of them is a bit-reversed stream window: one
        // field extraction + `reverse_bits` covers up to 64 inputs at once.
        enum Run {
            /// `w` consecutive X inputs at PI positions `out..out + w`,
            /// reading register positions `s0..s0 + w`.
            X { out: usize, w: usize, s0: usize },
            /// One biased input: an AND (`one == false`) or OR over register
            /// positions `s..s + w`.
            Biased {
                out: usize,
                s: usize,
                w: usize,
                one: bool,
            },
        }
        let mut runs: Vec<Run> = Vec::new();
        for (i, (&c, &(start, width))) in self.spec.cube.iter().zip(&self.alloc).enumerate() {
            match c {
                Trit::X => match runs.last_mut() {
                    Some(Run::X { out, w, .. }) if *out + *w == i && *w < 64 => *w += 1,
                    _ => runs.push(Run::X {
                        out: i,
                        w: 1,
                        s0: start,
                    }),
                },
                Trit::Zero | Trit::One => runs.push(Run::Biased {
                    out: i,
                    s: start,
                    w: width,
                    one: c == Trit::One,
                }),
            }
        }
        let npi = self.spec.num_inputs();
        let out: Vec<Bits> = (0..len)
            .map(|t| {
                let mut words = vec![0u64; npi.div_ceil(64)];
                for run in &runs {
                    match *run {
                        Run::X { out, w, s0 } => {
                            // After cycle `t`, reg[j] = stream[n + t - j], so
                            // PI bit `out + j` = stream[n + t - s0 - j]: the
                            // reverse of the field topped at `n + t - s0`.
                            let f = field(n + t - s0, w);
                            let v = f.reverse_bits() >> (64 - w);
                            let sh = out % 64;
                            words[out / 64] |= v << sh;
                            if sh + w > 64 {
                                words[out / 64 + 1] |= v >> (64 - sh);
                            }
                        }
                        Run::Biased { out, s, w, one } => {
                            let f = field(n + t - s, w);
                            let mask = if w == 64 { !0u64 } else { (1u64 << w) - 1 };
                            let v = if one { f != 0 } else { f == mask };
                            if v {
                                words[out / 64] |= 1 << (out % 64);
                            }
                        }
                    }
                }
                Bits::from_words(words, npi)
            })
            .collect();
        // Restore the step-wise invariant: the register ends as if
        // `next_vector` had been called `len` times.
        for j in 0..n {
            self.shift_reg[j] = bit(n + len - 1 - j);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_register_length_formula() {
        let spec = TpgSpec::standard(vec![Trit::Zero, Trit::X, Trit::One, Trit::X, Trit::X]);
        // NSP = 2, NPI = 5, m = 3 -> 3*2 + 3 = 9.
        assert_eq!(spec.shift_register_len(), 9);
    }

    #[test]
    fn sequence_matches_stepwise_next_vector() {
        // The stream-based fast path must produce the exact vectors of
        // repeated `next_vector` calls AND leave the TPG in the same state,
        // so interleaving the two APIs stays well-defined.
        let cube = vec![
            Trit::X,
            Trit::One,
            Trit::Zero,
            Trit::X,
            Trit::Zero,
            Trit::X,
            Trit::One,
        ];
        // A wide cube too: X-runs longer than 64 cross both output-word and
        // stream-word boundaries.
        let mut wide = vec![Trit::X; 130];
        wide[70] = Trit::One;
        wide[128] = Trit::Zero;
        for cube in [cube, wide] {
            for seed in [1u64, 0xACE1, u64::MAX] {
                let mut fast = Tpg::new(TpgSpec::standard(cube.clone()), seed);
                let mut slow = Tpg::new(TpgSpec::standard(cube.clone()), seed);
                for len in [0usize, 1, 5, 70, 130] {
                    let s = fast.sequence(len);
                    let reference: Vec<Bits> = (0..len).map(|_| slow.next_vector()).collect();
                    assert_eq!(s, reference, "seed {seed:#x} len {len}");
                    // Same state afterwards: the next vector must also agree.
                    assert_eq!(fast.next_vector(), slow.next_vector(), "post-state");
                }
            }
        }
    }

    #[test]
    fn reseed_reproduces_sequence() {
        let spec = TpgSpec::standard(vec![Trit::X; 6]);
        let mut t = Tpg::new(spec, 0x1234_5678);
        let s1 = t.sequence(50);
        t.reseed(0x1234_5678);
        let s2 = t.sequence(50);
        assert_eq!(s1, s2);
    }

    #[test]
    fn different_seeds_differ() {
        let spec = TpgSpec::standard(vec![Trit::X; 6]);
        let a = Tpg::new(spec.clone(), 1).sequence(30);
        let b = Tpg::new(spec, 2).sequence(30);
        assert_ne!(a, b);
    }

    #[test]
    fn biasing_probabilities() {
        // With m = 3 the preferred value should appear with probability
        // about 1 - 1/8 = 0.875.
        let spec = TpgSpec::standard(vec![Trit::One, Trit::Zero, Trit::X]);
        let mut t = Tpg::new(spec, 0xDEAD_BEEF);
        let n = 4000;
        let mut ones = [0usize; 3];
        for _ in 0..n {
            let v = t.next_vector();
            for (i, o) in ones.iter_mut().enumerate() {
                if v.get(i) {
                    *o += 1;
                }
            }
        }
        let f0 = ones[0] as f64 / n as f64; // biased toward 1
        let f1 = ones[1] as f64 / n as f64; // biased toward 0
        let fx = ones[2] as f64 / n as f64; // unbiased
        assert!((f0 - 0.875).abs() < 0.05, "OR-biased input freq {f0}");
        assert!((f1 - 0.125).abs() < 0.05, "AND-biased input freq {f1}");
        assert!((fx - 0.5).abs() < 0.05, "unbiased input freq {fx}");
    }

    #[test]
    fn adjacent_unbiased_inputs_are_decorrelated() {
        let spec = TpgSpec::standard(vec![Trit::X; 4]);
        let mut t = Tpg::new(spec, 0xABCD);
        let n = 4000;
        let mut agree = 0usize;
        for _ in 0..n {
            let v = t.next_vector();
            if v.get(0) == v.get(1) {
                agree += 1;
            }
        }
        let f = agree as f64 / n as f64;
        assert!((f - 0.5).abs() < 0.06, "adjacent agreement {f}");
    }
}
