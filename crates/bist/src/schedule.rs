//! The controller's cycle budget for on-chip test application.
//!
//! The control FSM of §4.4 gates the clocks of the TPG, the counters and the
//! circuit through a sequence of operation modes: seed loading, shift
//! register initialization, circuit initialization, primary input sequence
//! application and circular shifting. This module accounts the total test
//! time in clock cycles for a generated test program.

/// Cycle accounting for one on-chip test session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TestSchedule {
    /// Length of the longest scan chain (`Lsc`), which is the cost of one
    /// scan load/unload or circular shift.
    pub scan_len: usize,
    /// Shift-register length of the TPG (initialization cost per seed).
    pub shift_reg_len: usize,
    /// Cycles to serially load one LFSR seed.
    pub seed_load: usize,
}

impl TestSchedule {
    /// A schedule with a given scan length and TPG shift-register length;
    /// seeds load serially over the LFSR width.
    pub fn new(scan_len: usize, shift_reg_len: usize, lfsr_width: usize) -> Self {
        TestSchedule {
            scan_len,
            shift_reg_len,
            seed_load: lfsr_width,
        }
    }

    /// Cycles to start one segment: load the seed and fill the shift
    /// register (the circuit clock is disabled meanwhile, holding its state).
    pub fn segment_setup(&self) -> usize {
        self.seed_load + self.shift_reg_len
    }

    /// Cycles to apply one segment of length `l` (the functional cycles) plus
    /// the per-test capture/unload circular shifts: tests are obtained every
    /// two cycles, each followed by a circular shift of `scan_len` cycles
    /// that unloads the response into the MISR and restores the state.
    pub fn segment_apply(&self, l: usize) -> usize {
        let tests = l / 2;
        l + tests * self.scan_len
    }

    /// Total cycles for a whole session.
    ///
    /// `sequences` holds, per multi-segment sequence, the lengths of its
    /// segments. Each sequence begins with a scan-in of the initial state
    /// (`scan_len` cycles).
    pub fn total_cycles(&self, sequences: &[Vec<usize>]) -> usize {
        sequences
            .iter()
            .map(|segs| {
                self.scan_len
                    + segs
                        .iter()
                        .map(|&l| self.segment_setup() + self.segment_apply(l))
                        .sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_accounting() {
        let s = TestSchedule::new(100, 9, 32);
        assert_eq!(s.segment_setup(), 41);
        // 10 cycles -> 5 tests -> 10 + 5*100.
        assert_eq!(s.segment_apply(10), 510);
    }

    #[test]
    fn total_over_sequences() {
        let s = TestSchedule::new(10, 5, 32);
        // one sequence with segments [4, 6]:
        // scan-in 10 + (37 + 4 + 2*10) + (37 + 6 + 3*10) = 10 + 61 + 73 = 144.
        assert_eq!(s.total_cycles(&[vec![4, 6]]), 144);
        // two identical sequences double it.
        assert_eq!(s.total_cycles(&[vec![4, 6], vec![4, 6]]), 288);
    }

    #[test]
    fn empty_session_is_free() {
        let s = TestSchedule::new(10, 5, 32);
        assert_eq!(s.total_cycles(&[]), 0);
    }
}
