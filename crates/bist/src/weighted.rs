//! Weighted random pattern generation (\[84\]–\[87\], reviewed in §4.2),
//! kept as an ablation baseline against the cube-biased TPG.
//!
//! Each primary input receives a weight `w ∈ {1/8, …, 7/8}`: the input takes
//! value 1 when the 3-bit number formed by its dedicated pseudo-random bits
//! is below `8 · w`. The cube-biased TPG of Fig. 4.8 is the special case
//! `w ∈ {1/8, 1/2, 7/8}` realised with single AND/OR gates instead of
//! comparators.

use fbt_sim::{Bits, Trit};

use crate::Lfsr;

/// A per-input weight in eighths (1..=7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Weight(u8);

impl Weight {
    /// Create a weight of `eighths / 8`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= eighths <= 7`.
    pub fn eighths(eighths: u8) -> Self {
        assert!((1..=7).contains(&eighths), "weight out of range");
        Weight(eighths)
    }

    /// The probability this weight encodes.
    pub fn probability(self) -> f64 {
        self.0 as f64 / 8.0
    }

    /// The weight the cube-biasing gates of Fig. 4.8 realise for a cube
    /// value (with `m = 3`): `7/8` for a preferred 1, `1/8` for a preferred
    /// 0, `1/2` for unbiased.
    pub fn from_cube_entry(c: Trit) -> Weight {
        match c {
            Trit::One => Weight(7),
            Trit::Zero => Weight(1),
            Trit::X => Weight(4),
        }
    }
}

/// A weighted-random test pattern generator.
#[derive(Debug, Clone)]
pub struct WeightedTpg {
    lfsr: Lfsr,
    weights: Vec<Weight>,
}

impl WeightedTpg {
    /// Build a generator over the given weights, driven by a 32-stage LFSR.
    pub fn new(weights: Vec<Weight>, seed: u64) -> Self {
        WeightedTpg {
            lfsr: Lfsr::new(32, seed).expect("32 is tabulated"),
            weights,
        }
    }

    /// The weight set realising the same biases as a cube (the apples-to-
    /// apples ablation configuration).
    pub fn from_cube(cube: &[Trit], seed: u64) -> Self {
        WeightedTpg::new(
            cube.iter().map(|&c| Weight::from_cube_entry(c)).collect(),
            seed,
        )
    }

    /// Advance and produce one primary-input vector: each input compares a
    /// fresh 3-bit draw against its weight.
    pub fn next_vector(&mut self) -> Bits {
        let mut out = Bits::zeros(self.weights.len());
        for (i, w) in self.weights.iter().enumerate() {
            let mut draw = 0u8;
            for _ in 0..3 {
                draw = (draw << 1) | self.lfsr.step() as u8;
            }
            out.set(i, draw < w.0);
        }
        out
    }

    /// Generate a sequence of `len` vectors.
    pub fn sequence(&mut self, len: usize) -> Vec<Bits> {
        (0..len).map(|_| self.next_vector()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_validate() {
        assert_eq!(Weight::eighths(4).probability(), 0.5);
        assert_eq!(Weight::from_cube_entry(Trit::One).probability(), 0.875);
        assert_eq!(Weight::from_cube_entry(Trit::Zero).probability(), 0.125);
    }

    #[test]
    #[should_panic(expected = "weight out of range")]
    fn zero_weight_rejected() {
        let _ = Weight::eighths(0);
    }

    #[test]
    fn empirical_frequencies_match_weights() {
        let weights = vec![Weight::eighths(1), Weight::eighths(4), Weight::eighths(7)];
        let mut t = WeightedTpg::new(weights.clone(), 0xC0DE);
        let n = 6000;
        let mut ones = [0usize; 3];
        for _ in 0..n {
            let v = t.next_vector();
            for (i, o) in ones.iter_mut().enumerate() {
                if v.get(i) {
                    *o += 1;
                }
            }
        }
        for (i, w) in weights.iter().enumerate() {
            let f = ones[i] as f64 / n as f64;
            assert!(
                (f - w.probability()).abs() < 0.05,
                "input {i}: {f} vs {}",
                w.probability()
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let w = vec![Weight::eighths(3); 5];
        let a = WeightedTpg::new(w.clone(), 9).sequence(40);
        let b = WeightedTpg::new(w, 9).sequence(40);
        assert_eq!(a, b);
    }
}
