#![warn(missing_docs)]

//! Cycle-accurate behavioural models of the built-in test generation
//! hardware of the paper's Chapter 4.
//!
//! Every structure in Figs. 4.2–4.13 has a model here:
//!
//! * [`Lfsr`] — the n-stage linear feedback shift register (Fig. 4.3);
//! * [`Misr`] — the multiple-input signature register (Fig. 4.4);
//! * [`cube`] — computation of the primary input cube `C` that biases the
//!   pseudo-random sequence to avoid repeated synchronization (§4.3);
//! * [`Tpg`] — the test pattern generator: a fixed-width LFSR feeding a shift
//!   register whose bits drive the primary inputs directly (`C(i)=x`) or
//!   through `m`-input AND/OR biasing gates (Fig. 4.8);
//! * [`CycleCounter`] — the clock-cycle counter with test-apply and
//!   hold-enable signal generation (Figs. 4.6 and 4.11);
//! * [`holding`] — hold-set selection hardware: set counter plus decoder
//!   (Fig. 4.13) and the per-set gated-clock hold masks (Fig. 4.10);
//! * [`schedule`] — the controller's cycle budget (seed load, shift-register
//!   initialization, sequence application, circular shift);
//! * [`area`] — a gate-equivalent area model for a generic 0.18 µm-style
//!   library, pricing both circuits and the BIST hardware (the paper's
//!   Design Compiler runs).

pub mod area;
pub mod controller;
mod counter;
pub mod cube;
pub mod holding;
mod lfsr;
mod misr;
pub mod scan;
pub mod schedule;
mod tpg;
pub mod tpg73;
pub mod weighted;

pub use controller::{ClockEnables, Controller, Mode};
pub use counter::CycleCounter;
pub use lfsr::Lfsr;
pub use misr::Misr;
pub use scan::ScanChains;
pub use tpg::{Tpg, TpgSpec};
pub use tpg73::{Tpg73, WideLfsr};
pub use weighted::{Weight, WeightedTpg};
