//! The BIST control FSM (paper Fig. 4.2, §4.4).
//!
//! The controller gates the clocks of the TPG, the counters and the circuit
//! through a sequence of operation modes — "seed loading, shift register
//! initialization, circuit initialization, primary input sequence
//! application, and circular shifting" — so that the TPG can run while the
//! circuit's state is held (between segments) and vice versa. This model is
//! mode- and cycle-accurate; [`crate::schedule::TestSchedule`] is its closed
//! form (cross-checked by a test here).

/// The controller's operation modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Scan in the sequence's initial state (`Lsc` cycles; circuit clock on
    /// in shift mode, TPG clock off).
    ScanInInit,
    /// Serially load the next LFSR seed (TPG clock on, circuit clock off —
    /// the circuit's state is held).
    SeedLoad,
    /// Fill the TPG's shift register (TPG clock on, circuit clock off).
    ShiftRegInit,
    /// Apply the primary-input segment (both clocks on, functional mode).
    Apply,
    /// Circular-shift the captured response into the MISR and restore the
    /// state (circuit clock on in shift mode).
    CircularShift,
    /// All sequences applied.
    Done,
}

/// Which clocks a mode enables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockEnables {
    /// The TPG (LFSR + shift register) clock.
    pub tpg: bool,
    /// The circuit's functional clock.
    pub circuit: bool,
    /// The scan-shift clock.
    pub scan: bool,
}

impl Mode {
    /// The clock gating of this mode (paper §4.4: "the clocks for the TPG
    /// logic, the counters and the circuit are gated and controlled by a
    /// finite state machine").
    pub fn clock_enables(self) -> ClockEnables {
        match self {
            Mode::ScanInInit | Mode::CircularShift => ClockEnables {
                tpg: false,
                circuit: false,
                scan: true,
            },
            Mode::SeedLoad | Mode::ShiftRegInit => ClockEnables {
                tpg: true,
                circuit: false,
                scan: false,
            },
            Mode::Apply => ClockEnables {
                tpg: true,
                circuit: true,
                scan: false,
            },
            Mode::Done => ClockEnables {
                tpg: false,
                circuit: false,
                scan: false,
            },
        }
    }
}

/// A cycle-accurate controller for one test program.
///
/// The program is the per-sequence list of segment lengths (what a
/// [`fbt-core` `ConstrainedOutcome`](crate) exports as `segment_lengths`).
#[derive(Debug, Clone)]
pub struct Controller {
    program: Vec<Vec<usize>>,
    scan_len: usize,
    shift_reg_len: usize,
    seed_len: usize,
    // Position.
    seq: usize,
    seg: usize,
    mode: Mode,
    /// Cycles remaining in the current mode.
    remaining: usize,
    /// Total cycles elapsed.
    elapsed: usize,
}

impl Controller {
    /// Create a controller over a program.
    pub fn new(
        program: Vec<Vec<usize>>,
        scan_len: usize,
        shift_reg_len: usize,
        seed_len: usize,
    ) -> Self {
        let mut c = Controller {
            program,
            scan_len,
            shift_reg_len,
            seed_len,
            seq: 0,
            seg: 0,
            mode: Mode::Done,
            remaining: 0,
            elapsed: 0,
        };
        c.enter_sequence();
        c
    }

    fn enter_sequence(&mut self) {
        if self.seq >= self.program.len() {
            self.mode = Mode::Done;
            self.remaining = 0;
            return;
        }
        self.seg = 0;
        self.mode = Mode::ScanInInit;
        self.remaining = self.scan_len;
        if self.remaining == 0 {
            self.advance_mode();
        }
    }

    fn advance_mode(&mut self) {
        loop {
            let next = match self.mode {
                Mode::ScanInInit => Some((Mode::SeedLoad, self.seed_len)),
                Mode::SeedLoad => Some((Mode::ShiftRegInit, self.shift_reg_len)),
                Mode::ShiftRegInit => {
                    let len = self.program[self.seq][self.seg];
                    Some((Mode::Apply, len))
                }
                Mode::Apply => {
                    // One circular shift per applied test (len / 2 tests).
                    let tests = self.program[self.seq][self.seg] / 2;
                    Some((Mode::CircularShift, tests * self.scan_len))
                }
                Mode::CircularShift => {
                    self.seg += 1;
                    if self.seg < self.program[self.seq].len() {
                        Some((Mode::SeedLoad, self.seed_len))
                    } else {
                        self.seq += 1;
                        self.enter_sequence();
                        return;
                    }
                }
                Mode::Done => return,
            };
            if let Some((mode, cycles)) = next {
                self.mode = mode;
                self.remaining = cycles;
                if cycles > 0 {
                    return;
                }
                // Zero-length phases are skipped transparently.
            }
        }
    }

    /// The current mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Total clock cycles consumed so far.
    pub fn elapsed(&self) -> usize {
        self.elapsed
    }

    /// Advance one clock cycle; returns the mode that cycle executed in, or
    /// `None` when the program has finished.
    pub fn tick(&mut self) -> Option<Mode> {
        if self.mode == Mode::Done {
            return None;
        }
        let executed = self.mode;
        self.elapsed += 1;
        self.remaining -= 1;
        if self.remaining == 0 {
            self.advance_mode();
        }
        Some(executed)
    }

    /// Run to completion, returning the total cycle count.
    pub fn run_to_completion(&mut self) -> usize {
        while self.tick().is_some() {}
        self.elapsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::TestSchedule;

    #[test]
    fn controller_total_matches_the_schedule_closed_form() {
        let program = vec![vec![10, 4], vec![6]];
        let (lsc, sr, seed) = (7, 5, 32);
        let mut c = Controller::new(program.clone(), lsc, sr, seed);
        let total = c.run_to_completion();
        let sched = TestSchedule::new(lsc, sr, seed);
        assert_eq!(total, sched.total_cycles(&program));
        assert_eq!(c.mode(), Mode::Done);
    }

    #[test]
    fn mode_order_per_segment() {
        let mut c = Controller::new(vec![vec![4]], 2, 3, 4);
        let mut modes = Vec::new();
        while let Some(m) = c.tick() {
            if modes.last() != Some(&m) {
                modes.push(m);
            }
        }
        assert_eq!(
            modes,
            vec![
                Mode::ScanInInit,
                Mode::SeedLoad,
                Mode::ShiftRegInit,
                Mode::Apply,
                Mode::CircularShift,
            ]
        );
    }

    #[test]
    fn clock_gating_rules() {
        assert_eq!(
            Mode::Apply.clock_enables(),
            ClockEnables {
                tpg: true,
                circuit: true,
                scan: false
            }
        );
        // Seed loading holds the circuit's state: its clock is off.
        assert!(!Mode::SeedLoad.clock_enables().circuit);
        assert!(Mode::SeedLoad.clock_enables().tpg);
        assert!(Mode::CircularShift.clock_enables().scan);
    }

    #[test]
    fn empty_program_is_immediately_done() {
        let mut c = Controller::new(vec![], 10, 5, 32);
        assert_eq!(c.mode(), Mode::Done);
        assert_eq!(c.run_to_completion(), 0);
    }

    #[test]
    fn between_segments_no_scan_in() {
        // The second segment of a sequence starts at SeedLoad (the state is
        // held, not re-initialized) — the §4.4 point that multi-segment
        // sequences avoid storing intermediate scan-in states.
        let mut c = Controller::new(vec![vec![2, 2]], 3, 2, 4);
        let mut transitions = Vec::new();
        let mut last = None;
        while let Some(m) = c.tick() {
            if last != Some(m) {
                transitions.push(m);
                last = Some(m);
            }
        }
        let scan_ins = transitions
            .iter()
            .filter(|&&m| m == Mode::ScanInInit)
            .count();
        assert_eq!(scan_ins, 1, "one scan-in per sequence, not per segment");
        let seed_loads = transitions.iter().filter(|&&m| m == Mode::SeedLoad).count();
        assert_eq!(seed_loads, 2, "one seed load per segment");
    }
}
