//! State-holding hardware: hold sets, set counter and decoder (Figs.
//! 4.10–4.13).
//!
//! Each selected set of state variables shares one latch-based clock-gating
//! cell driven by its own `Hold_en_k` signal; a `log2(Nh)`-to-`Nh` decoder
//! fed by the set counter activates exactly one set at a time, and a new set
//! is enabled only after all multi-segment sequences for the current set have
//! been applied (paper §4.5.2).

use fbt_sim::Bits;

/// A selected set of state variables (indices into the flip-flop order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HoldSet {
    /// Flip-flop positions held together.
    pub members: Vec<usize>,
}

impl HoldSet {
    /// Create a set from member indices.
    pub fn new(mut members: Vec<usize>) -> Self {
        members.sort_unstable();
        members.dedup();
        HoldSet { members }
    }

    /// The hold mask over `n_ff` flip-flops.
    ///
    /// # Panics
    ///
    /// Panics if a member index is out of range.
    pub fn mask(&self, n_ff: usize) -> Bits {
        let mut m = Bits::zeros(n_ff);
        for &i in &self.members {
            m.set(i, true);
        }
        m
    }

    /// Number of member flip-flops.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// The set counter + decoder of Fig. 4.13: tracks which hold set is active.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HoldController {
    sets: Vec<HoldSet>,
    active: usize,
    n_ff: usize,
}

impl HoldController {
    /// Create a controller over non-overlapping hold sets.
    ///
    /// # Panics
    ///
    /// Panics if the sets overlap (the §4.5.2 procedure only selects
    /// non-overlapping subsets so that each flip-flop's clock is gated once).
    pub fn new(n_ff: usize, sets: Vec<HoldSet>) -> Self {
        let mut seen = vec![false; n_ff];
        for s in &sets {
            for &m in &s.members {
                assert!(m < n_ff, "member {m} out of range");
                assert!(!seen[m], "hold sets overlap at flip-flop {m}");
                seen[m] = true;
            }
        }
        HoldController {
            sets,
            active: 0,
            n_ff,
        }
    }

    /// Number of sets (`Nh`).
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Total state variables across all sets (`Nbits` of Table 4.4).
    pub fn total_bits(&self) -> usize {
        self.sets.iter().map(HoldSet::len).sum()
    }

    /// The currently selected set, if test generation is still running.
    pub fn active_set(&self) -> Option<&HoldSet> {
        self.sets.get(self.active)
    }

    /// The hold mask to apply on a hold-enabled cycle (all-zero after the set
    /// counter has passed the last set).
    pub fn mask(&self) -> Bits {
        match self.active_set() {
            Some(s) => s.mask(self.n_ff),
            None => Bits::zeros(self.n_ff),
        }
    }

    /// Advance the set counter (all sequences of the current set applied).
    /// Returns `false` once the counter has reached `Nh` (test generation
    /// with state holding terminates).
    pub fn advance(&mut self) -> bool {
        self.active += 1;
        self.active < self.sets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_are_one_hot_per_set() {
        let ctl = HoldController::new(6, vec![HoldSet::new(vec![0, 2]), HoldSet::new(vec![5])]);
        assert_eq!(ctl.mask().to_string(), "101000");
        assert_eq!(ctl.num_sets(), 2);
        assert_eq!(ctl.total_bits(), 3);
    }

    #[test]
    fn advance_walks_sets_then_disables() {
        let mut ctl = HoldController::new(4, vec![HoldSet::new(vec![0]), HoldSet::new(vec![1])]);
        assert_eq!(ctl.mask().to_string(), "1000");
        assert!(ctl.advance());
        assert_eq!(ctl.mask().to_string(), "0100");
        assert!(!ctl.advance());
        assert_eq!(ctl.mask().to_string(), "0000");
        assert!(ctl.active_set().is_none());
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_sets_rejected() {
        let _ = HoldController::new(4, vec![HoldSet::new(vec![0, 1]), HoldSet::new(vec![1, 2])]);
    }

    #[test]
    fn duplicate_members_deduplicated() {
        let s = HoldSet::new(vec![3, 1, 3]);
        assert_eq!(s.members, vec![1, 3]);
        assert_eq!(s.len(), 2);
    }
}
