//! Differential tests: the packed-parallel PPSFP engine must be
//! bit-identical to the serial oracle on every circuit, every thread count
//! and every simulation mode. The two engines share the per-fault kernel
//! but differ in chunk driving, cone caching and threading, so agreement
//! here is the acceptance gate for the parallel engine.

use fbt_fault::{
    all_transition_faults, collapse, BroadsideTest, FaultSimEngine, FaultSimOptions,
    PackedParallelSim, SerialSim, TestSet, TransitionFault, TwoPatternTest,
};
use fbt_netlist::rng::Rng;
use fbt_netlist::synth::CircuitSpec;
use fbt_netlist::{s27, synth, Netlist};

/// Thread counts exercised for the parallel engine. The host may have any
/// number of cores; forcing explicit counts (including more threads than
/// cores, and odd shard splits) exercises the sharding logic regardless.
const THREADS: [usize; 4] = [1, 2, 3, 4];

fn random_tests(net: &Netlist, n: usize, rng: &mut Rng) -> Vec<BroadsideTest> {
    (0..n)
        .map(|_| {
            BroadsideTest::new(
                (0..net.num_dffs()).map(|_| rng.bit()).collect(),
                (0..net.num_inputs()).map(|_| rng.bit()).collect(),
                (0..net.num_inputs()).map(|_| rng.bit()).collect(),
            )
        })
        .collect()
}

/// The circuit sweep: s27 plus a spread of generated circuits (varying
/// size, reconvergence and sequential depth from the seed).
fn circuits() -> Vec<Netlist> {
    let mut nets = vec![s27()];
    let mut rng = Rng::new(0xD1FF);
    for _ in 0..8 {
        let pi = 2 + (rng.next_u64() % 5) as usize;
        let po = 1 + (rng.next_u64() % 4) as usize;
        let ff = 2 + (rng.next_u64() % 8) as usize;
        let gates = 20 + (rng.next_u64() % 120) as usize;
        let mut spec = CircuitSpec::new("diff", pi, po, ff, gates);
        spec.seed = rng.next_u64();
        nets.push(synth::generate(&spec));
    }
    nets
}

fn faults_for(net: &Netlist) -> Vec<TransitionFault> {
    collapse(net, &all_transition_faults(net))
}

/// Plain fault-dropping runs agree across engines and thread counts, both
/// from clean flags and from partially pre-detected flags.
#[test]
fn plain_run_is_bit_identical() {
    let mut rng = Rng::new(1);
    for net in circuits() {
        let faults = faults_for(&net);
        let tests = random_tests(&net, 150, &mut rng);

        let mut serial = SerialSim::new(&net);
        let mut det_ref = vec![false; faults.len()];
        let newly_ref = serial
            .simulate(
                TestSet::Broadside(&tests),
                &faults,
                &mut det_ref,
                &FaultSimOptions::new(),
            )
            .newly_detected;

        // Pre-set some flags to exercise dropping from a non-clean start.
        let preset: Vec<bool> = (0..faults.len()).map(|_| rng.chance(1, 4)).collect();
        let mut det_preset_ref = preset.clone();
        let newly_preset_ref = serial
            .simulate(
                TestSet::Broadside(&tests),
                &faults,
                &mut det_preset_ref,
                &FaultSimOptions::new(),
            )
            .newly_detected;

        for threads in THREADS {
            let opts = FaultSimOptions::new().threads(threads);
            let mut packed = PackedParallelSim::new(&net);

            let mut det = vec![false; faults.len()];
            let out = packed.simulate(TestSet::Broadside(&tests), &faults, &mut det, &opts);
            assert_eq!(det, det_ref, "{} threads={threads}", net.name());
            assert_eq!(
                out.newly_detected,
                newly_ref,
                "{} threads={threads}",
                net.name()
            );

            let mut det = preset.clone();
            let out = packed.simulate(TestSet::Broadside(&tests), &faults, &mut det, &opts);
            assert_eq!(
                det,
                det_preset_ref,
                "preset {} threads={threads}",
                net.name()
            );
            assert_eq!(out.newly_detected, newly_preset_ref);
        }
    }
}

/// Two-pattern simulation with explicit (held, possibly unreachable) second
/// states agrees across engines and thread counts.
#[test]
fn two_pattern_run_is_bit_identical() {
    let mut rng = Rng::new(2);
    for net in circuits() {
        let faults = faults_for(&net);
        let base = random_tests(&net, 100, &mut rng);
        let tests: Vec<TwoPatternTest> = base
            .iter()
            .map(|t| {
                let mut tp = TwoPatternTest::from_broadside(&net, t);
                // Flip a random flip-flop in the second state half the time
                // to exercise genuinely unreachable states.
                if rng.bit() {
                    let k = (rng.next_u64() as usize) % tp.s2.len();
                    let v = tp.s2.get(k);
                    tp.s2.set(k, !v);
                }
                tp
            })
            .collect();

        let mut serial = SerialSim::new(&net);
        let mut det_ref = vec![false; faults.len()];
        serial.simulate(
            TestSet::TwoPattern(&tests),
            &faults,
            &mut det_ref,
            &FaultSimOptions::new(),
        );

        for threads in THREADS {
            let opts = FaultSimOptions::new().threads(threads);
            let mut packed = PackedParallelSim::new(&net);
            let mut det = vec![false; faults.len()];
            packed.simulate(TestSet::TwoPattern(&tests), &faults, &mut det, &opts);
            assert_eq!(det, det_ref, "{} threads={threads}", net.name());
        }
    }
}

/// N-detect profiles agree exactly (counts, not just final flags) across
/// engines and thread counts, for several caps.
#[test]
fn n_detect_profiles_are_identical() {
    let mut rng = Rng::new(3);
    for net in circuits().into_iter().take(5) {
        let faults = faults_for(&net);
        let tests = random_tests(&net, 200, &mut rng);
        for cap in [1usize, 2, 5, 16] {
            let mut serial = SerialSim::new(&net);
            let counts_ref = serial.n_detect_profile(&tests, &faults, cap);
            for threads in THREADS {
                let mut packed = PackedParallelSim::new(&net);
                let mut sat = vec![false; faults.len()];
                let counts = packed
                    .simulate(
                        TestSet::Broadside(&tests),
                        &faults,
                        &mut sat,
                        &FaultSimOptions::new().n_detect(cap.max(2)).threads(threads),
                    )
                    .counts
                    .expect("counts requested");
                let counts: Vec<usize> = counts.into_iter().map(|c| c.min(cap)).collect();
                assert_eq!(
                    counts,
                    counts_ref,
                    "{} cap={cap} threads={threads}",
                    net.name()
                );
            }
        }
    }
}

/// Detection matrices (no fault dropping) agree entry for entry.
#[test]
fn detection_matrices_are_identical() {
    let mut rng = Rng::new(4);
    for net in circuits().into_iter().take(5) {
        let faults = faults_for(&net);
        let tests = random_tests(&net, 130, &mut rng);
        let mut serial = SerialSim::new(&net);
        let m_ref = serial.detection_matrix(&tests, &faults);
        for threads in THREADS {
            let mut packed = PackedParallelSim::new(&net);
            let mut det = vec![false; faults.len()];
            let m = packed
                .simulate(
                    TestSet::Broadside(&tests),
                    &faults,
                    &mut det,
                    &FaultSimOptions::new()
                        .detection_matrix(true)
                        .threads(threads),
                )
                .matrix
                .expect("matrix requested");
            assert_eq!(m, m_ref, "{} threads={threads}", net.name());
        }
    }
}

/// First-detection indices and activity accounting agree across engines.
#[test]
fn first_detection_and_activity_are_identical() {
    let mut rng = Rng::new(5);
    for net in circuits().into_iter().take(5) {
        let faults = faults_for(&net);
        let tests = random_tests(&net, 150, &mut rng);
        let opts_ref = FaultSimOptions::new().first_detection(true).activity(true);

        let mut serial = SerialSim::new(&net);
        let mut det_ref = vec![false; faults.len()];
        let out_ref = serial.simulate(TestSet::Broadside(&tests), &faults, &mut det_ref, &opts_ref);

        for threads in THREADS {
            let mut packed = PackedParallelSim::new(&net);
            let mut det = vec![false; faults.len()];
            let out = packed.simulate(
                TestSet::Broadside(&tests),
                &faults,
                &mut det,
                &opts_ref.clone().threads(threads),
            );
            assert_eq!(
                out.first_detection,
                out_ref.first_detection,
                "{}",
                net.name()
            );
            assert_eq!(out.activity, out_ref.activity, "{}", net.name());
            assert_eq!(det, det_ref);
        }
    }
}

/// Repeated calls on one engine instance (warm cone caches, reused worker
/// state) stay identical to fresh instances.
#[test]
fn warm_engine_state_does_not_leak_between_calls() {
    let net = s27();
    let faults = faults_for(&net);
    let mut rng = Rng::new(6);
    let mut warm = PackedParallelSim::new(&net);
    for round in 0..5 {
        let tests = random_tests(&net, 90, &mut rng);
        let mut fresh = PackedParallelSim::new(&net);
        let mut det_warm = vec![false; faults.len()];
        let mut det_fresh = vec![false; faults.len()];
        let opts = FaultSimOptions::new();
        warm.simulate(TestSet::Broadside(&tests), &faults, &mut det_warm, &opts);
        fresh.simulate(TestSet::Broadside(&tests), &faults, &mut det_fresh, &opts);
        assert_eq!(det_warm, det_fresh, "round {round}");
    }
}
