//! Group-isolation differential tests: `simulate_groups` on a batch of N
//! candidate groups must be bit-identical to N *independent* `SerialSim`
//! runs, each starting from the shared baseline flags. This is the
//! acceptance gate for the candidate-packed speculation path: the packed
//! engine interleaves tests from different groups in the same 64-lane
//! words and lane-masks fault dropping per group, and none of that may be
//! observable in any outcome field.

use fbt_fault::{
    all_transition_faults, collapse, BroadsideTest, FaultSimEngine, FaultSimOptions,
    PackedParallelSim, SerialSim, SimOutcome, TestGroup, TransitionFault, TwoPatternTest,
};
use fbt_netlist::rng::Rng;
use fbt_netlist::synth::CircuitSpec;
use fbt_netlist::{s27, synth, Netlist};

const THREADS: [usize; 3] = [1, 2, 3];

fn random_tests(net: &Netlist, n: usize, rng: &mut Rng) -> Vec<BroadsideTest> {
    (0..n)
        .map(|_| {
            BroadsideTest::new(
                (0..net.num_dffs()).map(|_| rng.bit()).collect(),
                (0..net.num_inputs()).map(|_| rng.bit()).collect(),
                (0..net.num_inputs()).map(|_| rng.bit()).collect(),
            )
        })
        .collect()
}

/// s27 plus the catalog circuits named in the issue plus synthetic random
/// circuits, so the packing is exercised on real reconvergence patterns.
fn circuits() -> Vec<Netlist> {
    let mut nets = vec![
        s27(),
        synth::generate(&synth::find("s298").expect("catalog circuit")),
        synth::generate(&synth::find("s344").expect("catalog circuit")),
    ];
    let mut rng = Rng::new(0x6E0C);
    for _ in 0..3 {
        let pi = 2 + (rng.next_u64() % 5) as usize;
        let po = 1 + (rng.next_u64() % 4) as usize;
        let ff = 2 + (rng.next_u64() % 8) as usize;
        let gates = 20 + (rng.next_u64() % 100) as usize;
        let mut spec = CircuitSpec::new("gdiff", pi, po, ff, gates);
        spec.seed = rng.next_u64();
        nets.push(synth::generate(&spec));
    }
    nets
}

fn faults_for(net: &Netlist) -> Vec<TransitionFault> {
    collapse(net, &all_transition_faults(net))
}

/// Unequal group lengths, deliberately straddling 64-lane word boundaries
/// (including empty and >64-test groups for the small batch sizes).
fn group_lengths(batch: usize, rng: &mut Rng) -> Vec<usize> {
    (0..batch)
        .map(|i| match (batch, i) {
            (2, 0) => 70,
            (2, 1) => 13,
            (8, 0) => 0,
            (8, 1) => 64,
            _ if batch <= 8 => 1 + (rng.next_u64() % 50) as usize,
            _ => (rng.next_u64() % 9) as usize,
        })
        .collect()
}

/// The oracle: each group alone through the serial engine, from a copy of
/// the baseline.
fn independent_runs(
    net: &Netlist,
    groups: &[TestGroup<'_>],
    faults: &[TransitionFault],
    baseline: &[bool],
    opts: &FaultSimOptions,
) -> Vec<SimOutcome> {
    let mut serial = SerialSim::new(net);
    groups
        .iter()
        .map(|g| {
            let mut det = baseline.to_vec();
            serial.simulate(g.tests, faults, &mut det, opts)
        })
        .collect()
}

#[test]
fn grouped_equals_independent_serial_runs() {
    let mut rng = Rng::new(11);
    for net in circuits() {
        let faults = faults_for(&net);
        // A non-clean baseline: some faults are already detected.
        let baseline: Vec<bool> = (0..faults.len()).map(|_| rng.chance(1, 4)).collect();
        for batch in [2usize, 8, 64] {
            let lens = group_lengths(batch, &mut rng);
            let sets: Vec<Vec<BroadsideTest>> = lens
                .iter()
                .map(|&n| random_tests(&net, n, &mut rng))
                .collect();
            let groups: Vec<TestGroup<'_>> = sets.iter().map(|s| TestGroup::new(&s[..])).collect();
            for n_detect in [1usize, 4] {
                for dropping in [true, false] {
                    let opts = FaultSimOptions::new()
                        .n_detect(n_detect)
                        .fault_dropping(dropping);
                    let oracle = independent_runs(&net, &groups, &faults, &baseline, &opts);
                    let mut serial = SerialSim::new(&net);
                    assert_eq!(
                        serial.simulate_groups(&groups, &faults, &baseline, &opts),
                        oracle,
                        "serial grouped: {} batch={batch} n={n_detect} drop={dropping}",
                        net.name()
                    );
                    for threads in THREADS {
                        let mut packed = PackedParallelSim::new(&net);
                        assert_eq!(
                            packed.simulate_groups(
                                &groups,
                                &faults,
                                &baseline,
                                &opts.clone().threads(threads)
                            ),
                            oracle,
                            "packed grouped: {} batch={batch} n={n_detect} drop={dropping} \
                             threads={threads}",
                            net.name()
                        );
                    }
                }
            }
        }
    }
}

/// Group-local bookkeeping (first-detection indices, detection matrices,
/// switching activity) must come out as if each group were simulated on
/// its own, despite being interleaved into shared words.
#[test]
fn grouped_bookkeeping_is_group_local() {
    let mut rng = Rng::new(21);
    for net in circuits().into_iter().take(4) {
        let faults = faults_for(&net);
        let baseline = vec![false; faults.len()];
        let lens = [37usize, 90, 3, 64, 11];
        let sets: Vec<Vec<BroadsideTest>> = lens
            .iter()
            .map(|&n| random_tests(&net, n, &mut rng))
            .collect();
        let groups: Vec<TestGroup<'_>> = sets.iter().map(|s| TestGroup::new(&s[..])).collect();
        let opts = FaultSimOptions::new()
            .detection_matrix(true)
            .first_detection(true)
            .activity(true);
        let oracle = independent_runs(&net, &groups, &faults, &baseline, &opts);
        for threads in THREADS {
            let mut packed = PackedParallelSim::new(&net);
            let outs =
                packed.simulate_groups(&groups, &faults, &baseline, &opts.clone().threads(threads));
            assert_eq!(outs, oracle, "{} threads={threads}", net.name());
        }
    }
}

/// Two-pattern groups (explicit, possibly unreachable second states) can
/// share words with broadside groups without cross-talk.
#[test]
fn mixed_test_kind_groups_share_words() {
    let mut rng = Rng::new(31);
    for net in circuits().into_iter().take(4) {
        let faults = faults_for(&net);
        let baseline = vec![false; faults.len()];
        let bs = random_tests(&net, 41, &mut rng);
        let tp: Vec<TwoPatternTest> = random_tests(&net, 29, &mut rng)
            .iter()
            .map(|t| {
                let mut tp = TwoPatternTest::from_broadside(&net, t);
                if rng.bit() {
                    let k = (rng.next_u64() as usize) % tp.s2.len();
                    let v = tp.s2.get(k);
                    tp.s2.set(k, !v);
                }
                tp
            })
            .collect();
        let bs2 = random_tests(&net, 17, &mut rng);
        let groups = [
            TestGroup::new(&bs[..]),
            TestGroup::new(&tp[..]),
            TestGroup::new(&bs2[..]),
        ];
        let opts = FaultSimOptions::new();
        let oracle = independent_runs(&net, &groups, &faults, &baseline, &opts);
        for threads in THREADS {
            let mut packed = PackedParallelSim::new(&net);
            let outs =
                packed.simulate_groups(&groups, &faults, &baseline, &opts.clone().threads(threads));
            assert_eq!(outs, oracle, "{} threads={threads}", net.name());
        }
    }
}

/// `until_first_accept` returns complete outcomes up to and including the
/// first accepting group, cut-off markers after it — identically on both
/// engines and every thread count — and the complete prefix matches the
/// unrestricted grouped call.
#[test]
fn until_first_accept_prefix_semantics() {
    let mut rng = Rng::new(41);
    for net in circuits().into_iter().take(4) {
        let faults = faults_for(&net);
        let baseline = vec![false; faults.len()];
        // Two rejecting groups (empty), then accepting ones.
        let empty: Vec<BroadsideTest> = Vec::new();
        let b = random_tests(&net, 80, &mut rng);
        let c = random_tests(&net, 20, &mut rng);
        let d = random_tests(&net, 33, &mut rng);
        let groups = [
            TestGroup::new(&empty[..]),
            TestGroup::new(&empty[..]),
            TestGroup::new(&b[..]),
            TestGroup::new(&c[..]),
            TestGroup::new(&d[..]),
        ];
        let full_opts = FaultSimOptions::new();
        let full = independent_runs(&net, &groups, &faults, &baseline, &full_opts);
        let acceptor = full
            .iter()
            .position(|o| o.newly_detected > 0)
            .expect("some group must accept");
        let opts = FaultSimOptions::new().until_first_accept(true);
        let mut reference: Option<Vec<SimOutcome>> = None;
        let mut serial = SerialSim::new(&net);
        let serial_outs = serial.simulate_groups(&groups, &faults, &baseline, &opts);
        for outs in std::iter::once(serial_outs).chain(THREADS.iter().map(|&threads| {
            let mut packed = PackedParallelSim::new(&net);
            packed.simulate_groups(&groups, &faults, &baseline, &opts.clone().threads(threads))
        })) {
            for (g, out) in outs.iter().enumerate() {
                if g <= acceptor {
                    assert!(out.complete, "{} group {g}", net.name());
                    assert_eq!(out, &full[g], "{} group {g}", net.name());
                } else {
                    assert!(!out.complete, "{} group {g}", net.name());
                    assert_eq!(out.newly_detected, 0);
                }
            }
            match &reference {
                None => reference = Some(outs),
                Some(r) => assert_eq!(&outs, r, "{}", net.name()),
            }
        }

        // When no group can accept (baseline saturated), nothing is cut off.
        let saturated = vec![true; faults.len()];
        let mut packed = PackedParallelSim::new(&net);
        let outs = packed.simulate_groups(&groups, &faults, &saturated, &opts);
        assert!(outs.iter().all(|o| o.complete && o.newly_detected == 0));
    }
}
