#![warn(missing_docs)]

//! Delay fault models and broadside fault simulation.
//!
//! Implements the fault-model layer of the paper:
//!
//! * [`TransitionFault`] — slow-to-rise / slow-to-fall faults on every line
//!   (paper §1.1, Fig. 1.1), with structural equivalence collapsing;
//! * [`BroadsideTest`] — scan-based two-pattern tests `<s1, v1, s2, v2>`
//!   where `s2` is the circuit's response to `<s1, v1>` (paper §1.3,
//!   Fig. 1.10);
//! * [`engine`] — the unified [`FaultSimEngine`] trait over bit-parallel
//!   (64 tests/word), cone-limited, fault-dropping transition-fault
//!   simulation, with a serial oracle ([`SerialSim`]) and a multi-threaded
//!   PPSFP engine ([`PackedParallelSim`]);
//! * [`path`] — structural paths, path delay faults and the *transition path
//!   delay fault* model of Chapter 2, under which a path delay fault is
//!   detected only if **all** transition faults along the path are detected
//!   by the same test.

mod broadside;
pub mod engine;
pub mod path;
pub mod sensitize;
pub mod sim;
pub mod stuck;
mod transition;

pub use broadside::{BroadsideTest, TwoPatternTest};
pub use engine::{
    DetectionMatrix, FaultSimEngine, FaultSimOptions, PackedParallelSim, SerialSim, SimOutcome,
    TestGroup, TestSet,
};
pub use path::{Path, TransitionPathDelayFault};
pub use sensitize::{classify, Sensitization};
pub use sim::{coverage_percent, n_detect_coverage};
pub use transition::{all_transition_faults, collapse, Transition, TransitionFault};
