//! Structural paths and the transition path delay fault model (paper §2.2).
//!
//! A path runs from a *launch point* (primary input or flip-flop output)
//! through combinational gates to a *capture point* (a primary output driver
//! or the driver of a flip-flop D input). A path delay fault is a path plus a
//! transition direction at its source. Under the **transition path delay
//! fault** model, the fault is detected only if *every* individual transition
//! fault along the path is detected by the same test — which is what makes
//! the model sensitive to both small distributed and large lumped delays.

use std::fmt;

use fbt_netlist::{Netlist, NodeId};

use crate::{Transition, TransitionFault};

/// A structural combinational path.
///
/// `nodes[0]` is the launch point; each subsequent node is a gate fed by its
/// predecessor; the last node is a capture point.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Path {
    nodes: Vec<NodeId>,
}

impl Path {
    /// Build a path, validating connectivity.
    ///
    /// # Panics
    ///
    /// Panics if consecutive nodes are not driver/consumer pairs or the path
    /// is empty.
    pub fn new(net: &Netlist, nodes: Vec<NodeId>) -> Self {
        assert!(!nodes.is_empty(), "path must be non-empty");
        for w in nodes.windows(2) {
            assert!(
                net.node(w[1]).fanins().contains(&w[0]),
                "{} does not drive {}",
                net.node_name(w[0]),
                net.node_name(w[1])
            );
        }
        Path { nodes }
    }

    /// The nodes along the path, launch point first.
    #[inline]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Path length (number of lines on the path).
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the path is empty (never true for a constructed path).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The launch point.
    #[inline]
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// The capture point.
    #[inline]
    pub fn sink(&self) -> NodeId {
        *self.nodes.last().expect("non-empty")
    }

    /// Render as `a-b-c` using node names.
    pub fn display<'a>(&'a self, net: &'a Netlist) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Path, &'a Netlist);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                for (i, &n) in self.0.nodes.iter().enumerate() {
                    if i > 0 {
                        f.write_str("-")?;
                    }
                    f.write_str(self.1.node_name(n))?;
                }
                Ok(())
            }
        }
        D(self, net)
    }
}

/// A transition path delay fault: a path plus a transition at its source.
///
/// Per the paper's §2.2: when the source transition `v1 → v1'` propagates
/// along `p = g1-g2-…-gk`, the transition at `gi` matches `v1 → v1'` if the
/// number of inverting gates between `g1` and `gi` is even and is the
/// opposite transition otherwise. Detection requires the corresponding
/// transition fault on every `gi` to be detected by the same test.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TransitionPathDelayFault {
    /// The path.
    pub path: Path,
    /// Transition launched at the path source.
    pub source_transition: Transition,
}

impl TransitionPathDelayFault {
    /// Construct the fault.
    pub fn new(path: Path, source_transition: Transition) -> Self {
        TransitionPathDelayFault {
            path,
            source_transition,
        }
    }

    /// The set `TR(fp)` of transition faults along the path, with the
    /// polarity at each line determined by the inversion parity of the gates
    /// traversed so far.
    pub fn transition_faults(&self, net: &Netlist) -> Vec<TransitionFault> {
        let mut out = Vec::with_capacity(self.path.len());
        let mut dir = self.source_transition;
        for (i, &n) in self.path.nodes().iter().enumerate() {
            if i > 0 && net.node(n).kind().inverts() {
                dir = dir.flip();
            }
            out.push(TransitionFault::new(n, dir));
        }
        out
    }
}

/// Enumerate structural paths.
///
/// # Example
///
/// ```
/// let net = fbt_netlist::s27();
/// let paths = fbt_fault::path::enumerate_paths(&net, usize::MAX);
/// assert_eq!(paths.len(), 28); // s27's complete path set (Table 2.1)
/// ```
///
/// Performs a depth-first traversal from every launch point; a path is
/// recorded whenever the frontier node is a capture point (and the traversal
/// still continues through its other fanouts). Stops after `max_paths` paths
/// have been collected (the paper enumerates *all* paths only for small
/// circuits — Table 2.1).
pub fn enumerate_paths(net: &Netlist, max_paths: usize) -> Vec<Path> {
    let mut paths = Vec::new();
    let capture = capture_map(net);
    let mut stack: Vec<NodeId> = Vec::new();
    for &launch in net.inputs().iter().chain(net.dffs()) {
        if paths.len() >= max_paths {
            break;
        }
        dfs(net, launch, &capture, &mut stack, &mut paths, max_paths);
    }
    paths
}

/// For each node: is it a capture point (PO driver or FF D-input driver)?
fn capture_map(net: &Netlist) -> Vec<bool> {
    let mut cap = vec![false; net.num_nodes()];
    for &o in net.outputs() {
        cap[o.index()] = true;
    }
    for &d in net.dffs() {
        cap[net.node(d).fanins()[0].index()] = true;
    }
    cap
}

fn dfs(
    net: &Netlist,
    node: NodeId,
    capture: &[bool],
    stack: &mut Vec<NodeId>,
    paths: &mut Vec<Path>,
    max_paths: usize,
) {
    if paths.len() >= max_paths {
        return;
    }
    stack.push(node);
    if capture[node.index()] {
        paths.push(Path {
            nodes: stack.clone(),
        });
    }
    for &fo in net.node(node).fanouts() {
        if net.node(fo).kind().is_source() {
            continue; // crossing into the next time frame ends the path
        }
        dfs(net, fo, capture, stack, paths, max_paths);
    }
    stack.pop();
}

/// Enumerate paths of length at least `min_len`, longest-biased, up to
/// `max_paths`.
///
/// Used for the "consider faults from the longest paths to the shorter ones"
/// strategy of Table 2.2: compute, for every node, the longest remaining
/// unit-delay distance to a capture point, then DFS only along extensions
/// that can still reach total length `min_len`. The returned paths are sorted
/// by decreasing length.
pub fn enumerate_paths_at_least(net: &Netlist, min_len: usize, max_paths: usize) -> Vec<Path> {
    let capture = capture_map(net);
    // Longest suffix (in nodes, counting the node itself) from each node to a
    // capture point, over the combinational DAG.
    let mut suffix = vec![0usize; net.num_nodes()];
    for &id in net.eval_order().iter().rev() {
        let mut best = if capture[id.index()] { 1 } else { 0 };
        for &fo in net.node(id).fanouts() {
            if !net.node(fo).kind().is_source() && suffix[fo.index()] > 0 {
                best = best.max(1 + suffix[fo.index()]);
            }
        }
        suffix[id.index()] = best;
    }
    // Sources too.
    let source_suffix = |id: NodeId| -> usize {
        let mut best = if capture[id.index()] { 1 } else { 0 };
        for &fo in net.node(id).fanouts() {
            if !net.node(fo).kind().is_source() && suffix[fo.index()] > 0 {
                best = best.max(1 + suffix[fo.index()]);
            }
        }
        best
    };

    let mut paths = Vec::new();
    let mut stack = Vec::new();
    for &launch in net.inputs().iter().chain(net.dffs()) {
        if paths.len() >= max_paths {
            break;
        }
        if source_suffix(launch) < min_len {
            continue;
        }
        dfs_bounded(
            net, launch, &capture, &suffix, min_len, &mut stack, &mut paths, max_paths,
        );
    }
    paths.sort_by_key(|p| std::cmp::Reverse(p.len()));
    paths
}

#[allow(clippy::too_many_arguments)]
fn dfs_bounded(
    net: &Netlist,
    node: NodeId,
    capture: &[bool],
    suffix: &[usize],
    min_len: usize,
    stack: &mut Vec<NodeId>,
    paths: &mut Vec<Path>,
    max_paths: usize,
) {
    if paths.len() >= max_paths {
        return;
    }
    stack.push(node);
    if capture[node.index()] && stack.len() >= min_len {
        paths.push(Path {
            nodes: stack.clone(),
        });
    }
    for &fo in net.node(node).fanouts() {
        if net.node(fo).kind().is_source() {
            continue;
        }
        if stack.len() + suffix[fo.index()] < min_len {
            continue; // cannot reach the length bound any more
        }
        dfs_bounded(net, fo, capture, suffix, min_len, stack, paths, max_paths);
    }
    stack.pop();
}

/// Build the transition path delay fault list for a set of paths (two faults
/// per path, rising and falling at the source).
pub fn tpdf_list(paths: &[Path]) -> Vec<TransitionPathDelayFault> {
    paths
        .iter()
        .flat_map(|p| {
            [
                TransitionPathDelayFault::new(p.clone(), Transition::Rise),
                TransitionPathDelayFault::new(p.clone(), Transition::Fall),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbt_netlist::{s27, GateKind, NetlistBuilder};

    /// The dissertation's Fig. 1.2 circuit: path a-c-e-g.
    fn fig12() -> Netlist {
        let mut b = NetlistBuilder::new("fig12");
        for n in ["a", "b", "d", "f"] {
            b.input(n).unwrap();
        }
        b.gate(GateKind::And, "c", &["a", "b_n"]).unwrap();
        b.gate(GateKind::Not, "b_n", &["b"]).unwrap();
        b.gate(GateKind::Or, "e", &["c", "d"]).unwrap();
        b.gate(GateKind::And, "g", &["e", "f_n"]).unwrap();
        b.gate(GateKind::Not, "f_n", &["f"]).unwrap();
        b.output("g").unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn polarity_tracking_through_inverters() {
        let mut b = NetlistBuilder::new("pol");
        b.input("a").unwrap();
        b.gate(GateKind::Not, "x", &["a"]).unwrap();
        b.gate(GateKind::Buf, "y", &["x"]).unwrap();
        b.gate(GateKind::Nand, "z", &["y", "a"]).unwrap();
        b.output("z").unwrap();
        let net = b.finish().unwrap();
        let path = Path::new(
            &net,
            vec![
                net.find("a").unwrap(),
                net.find("x").unwrap(),
                net.find("y").unwrap(),
                net.find("z").unwrap(),
            ],
        );
        let f = TransitionPathDelayFault::new(path, Transition::Rise);
        let trs = f.transition_faults(&net);
        assert_eq!(trs[0].transition, Transition::Rise); // a rises
        assert_eq!(trs[1].transition, Transition::Fall); // through NOT
        assert_eq!(trs[2].transition, Transition::Fall); // through BUF
        assert_eq!(trs[3].transition, Transition::Rise); // through NAND
    }

    #[test]
    fn enumerate_fig12_paths() {
        let net = fig12();
        let paths = enumerate_paths(&net, 1000);
        // Paths to g: a-c-e-g, b-b_n-c-e-g, d-e-g, f-f_n-g -> 4 paths.
        assert_eq!(paths.len(), 4);
        let lens: Vec<usize> = paths.iter().map(Path::len).collect();
        let mut sorted = lens.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![3, 3, 4, 5]);
    }

    #[test]
    fn enumerate_respects_cap() {
        let net = s27();
        let all = enumerate_paths(&net, usize::MAX);
        let capped = enumerate_paths(&net, 5);
        assert_eq!(capped.len(), 5);
        assert!(all.len() > 5);
        // s27 has 56 transition path delay faults (Table 2.1) = 28 paths.
        assert_eq!(all.len(), 28);
        assert_eq!(tpdf_list(&all).len(), 56);
    }

    #[test]
    fn bounded_enumeration_only_long_paths() {
        let net = s27();
        let all = enumerate_paths(&net, usize::MAX);
        let longest = all.iter().map(Path::len).max().unwrap();
        let long = enumerate_paths_at_least(&net, longest, usize::MAX);
        assert!(!long.is_empty());
        assert!(long.iter().all(|p| p.len() == longest));
        let expected = all.iter().filter(|p| p.len() == longest).count();
        assert_eq!(long.len(), expected);
    }

    #[test]
    fn bounded_enumeration_sorted_by_length() {
        let net = s27();
        let paths = enumerate_paths_at_least(&net, 2, usize::MAX);
        for w in paths.windows(2) {
            assert!(w[0].len() >= w[1].len());
        }
    }

    #[test]
    fn paths_start_at_launch_and_end_at_capture() {
        let net = s27();
        for p in enumerate_paths(&net, usize::MAX) {
            let src = net.node(p.source());
            assert!(src.kind().is_source());
            let sink = p.sink();
            let is_capture = net.is_po_driver(sink)
                || net.dffs().iter().any(|&d| net.node(d).fanins()[0] == sink);
            assert!(is_capture);
        }
    }

    #[test]
    fn display_path() {
        let net = fig12();
        let p = Path::new(
            &net,
            vec![
                net.find("a").unwrap(),
                net.find("c").unwrap(),
                net.find("e").unwrap(),
                net.find("g").unwrap(),
            ],
        );
        assert_eq!(p.display(&net).to_string(), "a-c-e-g");
    }
}
