//! The unified fault-simulation engine API.
//!
//! Everything the workspace needs from broadside transition-fault
//! simulation goes through one trait, [`FaultSimEngine`], configured by a
//! builder-style [`FaultSimOptions`]. The trait's core entry point is
//! *grouped*: one call simulates a whole batch of independent candidate
//! test sequences ([`TestGroup`]s), each with its own detection credit.
//! Two implementations are provided:
//!
//! * [`SerialSim`] — the original single-threaded simulator, kept as the
//!   correctness oracle; it simulates each group of a batch on its own.
//! * [`PackedParallelSim`] — a PPSFP-style (parallel-pattern, single-fault
//!   propagation) engine that packs 64 tests per `u64` word — *across group
//!   boundaries* — and shards the fault list across worker threads with
//!   [`std::thread::scope`]. One levelized pass over the circuit evaluates
//!   tests from many speculative candidates at once; fault dropping is
//!   lane-masked per group, so a drop credited to group *i* never leaks
//!   into group *j*'s outcome.
//!
//! Both engines produce bit-identical results: within a 64-test word each
//! fault is simulated independently against a shared fault-free machine, so
//! neither the word boundaries, the group packing, the shard boundaries nor
//! the thread count can change a detection verdict. Fault dropping takes
//! effect between words in both engines, and every group's outcome equals
//! what running that group alone (from the shared baseline) would produce.
//!
//! # Example
//!
//! ```
//! use fbt_fault::{all_transition_faults, BroadsideTest};
//! use fbt_fault::engine::{FaultSimEngine, FaultSimOptions, PackedParallelSim, TestGroup};
//! use fbt_netlist::s27;
//! use fbt_sim::Bits;
//!
//! let net = s27();
//! let faults = all_transition_faults(&net);
//! let a = vec![BroadsideTest::new(
//!     Bits::from_str01("000"),
//!     Bits::from_str01("0000"),
//!     Bits::from_str01("1000"),
//! )];
//! let b = vec![BroadsideTest::new(
//!     Bits::from_str01("101"),
//!     Bits::from_str01("1111"),
//!     Bits::from_str01("0000"),
//! )];
//! // Two speculative candidates, one packed pass, independent credit.
//! let groups = [TestGroup::new(&a[..]), TestGroup::new(&b[..])];
//! let baseline = vec![false; faults.len()];
//! let mut engine = PackedParallelSim::new(&net);
//! let outs = engine.simulate_groups(&groups, &faults, &baseline, &FaultSimOptions::new());
//! assert_eq!(outs.len(), 2);
//! assert_eq!(outs[0].newly_detected, outs[0].newly.len());
//! ```

use fbt_netlist::{Netlist, NodeId};
use fbt_sim::comb;

use crate::{BroadsideTest, Transition, TransitionFault, TwoPatternTest};

/// Configuration for one [`FaultSimEngine`] call.
///
/// Built fluently; the default is a plain 1-detect run with fault dropping
/// on and automatic thread count:
///
/// ```
/// use fbt_fault::engine::FaultSimOptions;
/// let opts = FaultSimOptions::new().n_detect(5).threads(4);
/// assert_eq!(opts.n_detect_cap(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSimOptions {
    n_detect: usize,
    fault_dropping: bool,
    threads: usize,
    first_detection: bool,
    matrix: bool,
    activity: bool,
    until_first_accept: bool,
}

impl Default for FaultSimOptions {
    fn default() -> Self {
        FaultSimOptions {
            n_detect: 1,
            fault_dropping: true,
            threads: 0,
            first_detection: false,
            matrix: false,
            activity: false,
            until_first_accept: false,
        }
    }
}

impl FaultSimOptions {
    /// Plain 1-detect simulation with fault dropping, automatic threads.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count detections per fault up to `cap` instead of stopping at the
    /// first one. With fault dropping on, a fault is dropped once it
    /// saturates. The outcome's `counts` field is populated when `cap > 1`.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn n_detect(mut self, cap: usize) -> Self {
        assert!(cap > 0, "n-detect cap must be positive");
        self.n_detect = cap;
        self
    }

    /// Skip faults whose `detected` flag is already set (default `true`).
    pub fn fault_dropping(mut self, on: bool) -> Self {
        self.fault_dropping = on;
        self
    }

    /// Number of worker threads for engines that parallelise; `0` (the
    /// default) resolves to [`std::thread::available_parallelism`].
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Record, per fault, the index of the first detecting test.
    pub fn first_detection(mut self, on: bool) -> Self {
        self.first_detection = on;
        self
    }

    /// Record the full fault × test detection matrix. Implies fault
    /// dropping off: every detection of every fault must be observed.
    pub fn detection_matrix(mut self, on: bool) -> Self {
        self.matrix = on;
        if on {
            self.fault_dropping = false;
        }
        self
    }

    /// Account the fault-free launch→capture switching activity of each
    /// test (number of circuit lines toggling between the two patterns, the
    /// quantity behind the paper's §4.4 `SWA` measure).
    pub fn activity(mut self, on: bool) -> Self {
        self.activity = on;
        self
    }

    /// In a [`FaultSimEngine::simulate_groups`] call, stop as soon as the
    /// first *accepting* group (in batch order) is fully simulated: a group
    /// that newly detects at least one fault relative to the baseline.
    /// Groups after the first acceptor are returned with
    /// [`SimOutcome::complete`] `false` and otherwise-empty outcomes.
    ///
    /// This mirrors the speculative commit rule of the generation engine
    /// (draw order, first acceptor wins): outcomes after the acceptor are
    /// never consumed, so the engine need not pay for them.
    pub fn until_first_accept(mut self, on: bool) -> Self {
        self.until_first_accept = on;
        self
    }

    /// The configured n-detect cap.
    pub fn n_detect_cap(&self) -> usize {
        self.n_detect
    }

    /// Whether fault dropping is enabled.
    pub fn drops_faults(&self) -> bool {
        self.fault_dropping
    }

    /// The configured thread count (`0` = automatic).
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// Whether grouped calls stop at the first accepting group.
    pub fn stops_at_first_accept(&self) -> bool {
        self.until_first_accept
    }
}

/// The tests given to one engine call: broadside tests (second state
/// derived from the first pattern) or two-pattern tests with an explicit —
/// possibly unreachable — second state (the state-holding DFT of paper
/// §4.5).
#[derive(Debug, Clone, Copy)]
pub enum TestSet<'a> {
    /// Broadside tests; `s2` is the circuit's response to `<s1, v1>`.
    Broadside(&'a [BroadsideTest]),
    /// Two-pattern tests carrying their own second state.
    TwoPattern(&'a [TwoPatternTest]),
}

impl TestSet<'_> {
    /// Number of tests.
    pub fn len(&self) -> usize {
        match self {
            TestSet::Broadside(t) => t.len(),
            TestSet::TwoPattern(t) => t.len(),
        }
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pack tests `start..end` (at most 64) into per-source words.
    fn pack(&self, net: &Netlist, start: usize, end: usize) -> PackedChunk {
        let mut c = PackedChunk::new(net, end - start);
        self.pack_into(net, start, end, 0, &mut c);
        c
    }

    /// Pack tests `start..end` into lanes `lane_lo..` of an existing chunk
    /// (the grouped engines interleave several groups into one word).
    fn pack_into(
        &self,
        net: &Netlist,
        start: usize,
        end: usize,
        lane_lo: u32,
        c: &mut PackedChunk,
    ) {
        let n_pi = net.num_inputs();
        let n_ff = net.num_dffs();
        match self {
            TestSet::Broadside(tests) => {
                for (k, t) in tests[start..end].iter().enumerate() {
                    assert_eq!(t.v1.len(), n_pi, "PI width mismatch");
                    assert_eq!(t.scan_in.len(), n_ff, "state width mismatch");
                    let bit = 1u64 << (lane_lo + k as u32);
                    for i in 0..n_pi {
                        if t.v1.get(i) {
                            c.v1w[i] |= bit;
                        }
                        if t.v2.get(i) {
                            c.v2w[i] |= bit;
                        }
                    }
                    for (i, w) in c.s1w.iter_mut().enumerate() {
                        if t.scan_in.get(i) {
                            *w |= bit;
                        }
                    }
                }
            }
            TestSet::TwoPattern(tests) => {
                for (k, t) in tests[start..end].iter().enumerate() {
                    assert_eq!(t.v1.len(), n_pi, "PI width mismatch");
                    assert_eq!(t.s1.len(), n_ff, "state width mismatch");
                    assert_eq!(t.s2.len(), n_ff, "state width mismatch");
                    let bit = 1u64 << (lane_lo + k as u32);
                    c.s2_mask |= bit;
                    for i in 0..n_pi {
                        if t.v1.get(i) {
                            c.v1w[i] |= bit;
                        }
                        if t.v2.get(i) {
                            c.v2w[i] |= bit;
                        }
                    }
                    for (i, (w1, w2)) in c.s1w.iter_mut().zip(c.s2w.iter_mut()).enumerate() {
                        if t.s1.get(i) {
                            *w1 |= bit;
                        }
                        if t.s2.get(i) {
                            *w2 |= bit;
                        }
                    }
                }
            }
        }
    }
}

impl<'a> From<&'a [BroadsideTest]> for TestSet<'a> {
    fn from(t: &'a [BroadsideTest]) -> Self {
        TestSet::Broadside(t)
    }
}

impl<'a> From<&'a [TwoPatternTest]> for TestSet<'a> {
    fn from(t: &'a [TwoPatternTest]) -> Self {
        TestSet::TwoPattern(t)
    }
}

/// One independent candidate in a [`FaultSimEngine::simulate_groups`]
/// batch: a test set simulated with its own detection credit, as if it were
/// the only one running against the shared baseline.
#[derive(Debug, Clone, Copy)]
pub struct TestGroup<'a> {
    /// The group's tests.
    pub tests: TestSet<'a>,
}

impl<'a> TestGroup<'a> {
    /// Wrap a test set (or anything convertible into one) as a group.
    pub fn new(tests: impl Into<TestSet<'a>>) -> Self {
        TestGroup {
            tests: tests.into(),
        }
    }
}

impl<'a> From<TestSet<'a>> for TestGroup<'a> {
    fn from(tests: TestSet<'a>) -> Self {
        TestGroup { tests }
    }
}

/// A fault × test detection matrix, 64 tests per word.
///
/// Row-major per fault; produced by
/// [`FaultSimEngine::detection_matrix`]. The transition-path-delay-fault
/// pipeline (paper §2.3.3) ANDs rows together: a path fault is detected by
/// a test only if the test detects every transition fault along the path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectionMatrix {
    n_tests: usize,
    rows: Vec<Vec<u64>>,
}

impl DetectionMatrix {
    fn new(n_faults: usize, n_tests: usize) -> Self {
        DetectionMatrix {
            n_tests,
            rows: vec![vec![0u64; n_tests.div_ceil(64)]; n_faults],
        }
    }

    /// Does `test` detect `fault`?
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn detects(&self, fault: usize, test: usize) -> bool {
        assert!(test < self.n_tests, "test index out of range");
        (self.rows[fault][test / 64] >> (test % 64)) & 1 == 1
    }

    /// The packed row for `fault` (64 tests per word).
    pub fn row(&self, fault: usize) -> &[u64] {
        &self.rows[fault]
    }

    /// Number of words per row.
    pub fn words_per_row(&self) -> usize {
        self.n_tests.div_ceil(64)
    }

    /// Number of faults (rows).
    pub fn num_faults(&self) -> usize {
        self.rows.len()
    }

    /// Number of tests (columns).
    pub fn num_tests(&self) -> usize {
        self.n_tests
    }

    /// Consume into the raw per-fault word rows.
    pub fn into_rows(self) -> Vec<Vec<u64>> {
        self.rows
    }
}

/// Everything one group (or one plain call) produced. Optional fields are
/// populated according to the [`FaultSimOptions`] used.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimOutcome {
    /// How many faults this group detected that the baseline had not
    /// (in n-detect mode: faults that reached the cap). Always equals
    /// `newly.len()`.
    pub newly_detected: usize,
    /// The fault indices behind `newly_detected`, sorted ascending. In a
    /// grouped call these are relative to the shared baseline: credit is
    /// per group and never leaks between groups.
    pub newly: Vec<usize>,
    /// `false` only for groups after the first acceptor in an
    /// [`FaultSimOptions::until_first_accept`] call; their other fields are
    /// unspecified (empty) and must not be consumed.
    pub complete: bool,
    /// Per-fault detection counts, clamped to the cap
    /// (present when `n_detect > 1`).
    pub counts: Option<Vec<usize>>,
    /// Per-fault index of the first detecting test, group-local
    /// (present when `first_detection` was requested).
    pub first_detection: Option<Vec<Option<usize>>>,
    /// The full detection matrix (present when requested).
    pub matrix: Option<DetectionMatrix>,
    /// Per-test count of fault-free lines toggling between launch and
    /// capture (present when `activity` was requested).
    pub activity: Option<Vec<usize>>,
}

impl Default for SimOutcome {
    fn default() -> Self {
        SimOutcome {
            newly_detected: 0,
            newly: Vec::new(),
            complete: true,
            counts: None,
            first_detection: None,
            matrix: None,
            activity: None,
        }
    }
}

/// A broadside transition-fault simulation engine.
///
/// [`simulate_groups`](FaultSimEngine::simulate_groups) is the single
/// required entry point: it evaluates a whole batch of independent
/// candidate test sets in one call. [`simulate`](FaultSimEngine::simulate)
/// is the single-set convenience (a batch of one) and the remaining methods
/// are thin conveniences over it; the former `run`/`run_two_pattern`/
/// `first_detections` shapes survive as deprecated shims.
///
/// The contract every engine must satisfy: a transition fault `v → v'` on
/// line `g` is detected by a test when the first pattern establishes
/// `g = v` (launch) and under the second pattern the stuck-at-`v` fault on
/// `g` is observed at a primary output or a flip-flop D input (paper §1.2).
/// Detection verdicts must not depend on chunking, group packing, sharding
/// or thread count, and each group's outcome must be bit-identical to
/// simulating that group alone from the shared baseline.
pub trait FaultSimEngine {
    /// A short, stable engine name for logs and reports.
    fn name(&self) -> &'static str;

    /// Simulate a batch of independent candidate groups against `faults`
    /// under `opts`, each group starting from the shared, read-only
    /// `baseline` detection flags.
    ///
    /// Returns one [`SimOutcome`] per group, in batch order. Detection
    /// credit is per group: outcome `i` is exactly what
    /// [`simulate`](FaultSimEngine::simulate) on group `i` alone (with a
    /// copy of `baseline`) would produce. The baseline itself is never
    /// modified — committing a winning group's `newly` indices back into a
    /// flag vector is the caller's decision.
    ///
    /// # Panics
    ///
    /// Panics if `baseline.len() != faults.len()` or test widths mismatch
    /// the engine's netlist.
    fn simulate_groups(
        &mut self,
        groups: &[TestGroup<'_>],
        faults: &[TransitionFault],
        baseline: &[bool],
        opts: &FaultSimOptions,
    ) -> Vec<SimOutcome>;

    /// Simulate `tests` against `faults` under `opts`, updating the
    /// per-fault `detected` flags (with fault dropping on, faults whose
    /// flag is already set are skipped). Equivalent to a grouped call with
    /// a single group whose `newly` indices are committed into `detected`.
    ///
    /// # Panics
    ///
    /// Panics if `detected.len() != faults.len()` or test widths mismatch
    /// the engine's netlist.
    fn simulate(
        &mut self,
        tests: TestSet<'_>,
        faults: &[TransitionFault],
        detected: &mut [bool],
        opts: &FaultSimOptions,
    ) -> SimOutcome {
        let group = [TestGroup::new(tests)];
        let out = self
            .simulate_groups(&group, faults, detected, opts)
            .pop()
            .expect("one group in, one outcome out");
        for &fi in &out.newly {
            detected[fi] = true;
        }
        out
    }

    /// Plain fault-dropping simulation of broadside tests; returns how many
    /// faults were newly detected.
    #[deprecated(note = "use `simulate` (or `simulate_groups` for batches)")]
    fn run(
        &mut self,
        tests: &[BroadsideTest],
        faults: &[TransitionFault],
        detected: &mut [bool],
    ) -> usize {
        self.simulate(
            TestSet::Broadside(tests),
            faults,
            detected,
            &FaultSimOptions::new(),
        )
        .newly_detected
    }

    /// Plain fault-dropping simulation of two-pattern tests with explicit
    /// second states (the state-holding DFT of paper §4.5).
    #[deprecated(note = "use `simulate` with `TestSet::TwoPattern`")]
    fn run_two_pattern(
        &mut self,
        tests: &[TwoPatternTest],
        faults: &[TransitionFault],
        detected: &mut [bool],
    ) -> usize {
        self.simulate(
            TestSet::TwoPattern(tests),
            faults,
            detected,
            &FaultSimOptions::new(),
        )
        .newly_detected
    }

    /// Like [`simulate`](FaultSimEngine::simulate), but also report, for
    /// each newly detected fault, the index (into `tests`) of the first
    /// detecting test.
    #[deprecated(note = "use `simulate` with `FaultSimOptions::first_detection`")]
    fn first_detections(
        &mut self,
        tests: &[BroadsideTest],
        faults: &[TransitionFault],
        detected: &mut [bool],
    ) -> Vec<Option<usize>> {
        self.simulate(
            TestSet::Broadside(tests),
            faults,
            detected,
            &FaultSimOptions::new().first_detection(true),
        )
        .first_detection
        .expect("first detections were requested")
    }

    /// N-detection profile: for each fault, how many of `tests` detect it,
    /// saturating at `cap`. Built-in test generation "naturally achieves
    /// n-detection" (paper §4.1); this quantifies the claim (see
    /// [`crate::sim::n_detect_coverage`]).
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    fn n_detect_profile(
        &mut self,
        tests: &[BroadsideTest],
        faults: &[TransitionFault],
        cap: usize,
    ) -> Vec<usize> {
        assert!(cap > 0, "cap must be positive");
        let mut saturated = vec![false; faults.len()];
        // Counts are only tracked for caps above 1; a cap of 1 is simulated
        // at 2 and clamped, which can only do extra work, never change the
        // clamped result.
        let counts = self
            .simulate(
                TestSet::Broadside(tests),
                faults,
                &mut saturated,
                &FaultSimOptions::new().n_detect(cap.max(2)),
            )
            .counts
            .expect("n-detect counts were requested");
        if cap == 1 {
            counts.into_iter().map(|c| c.min(1)).collect()
        } else {
            counts
        }
    }

    /// Full detection matrix without fault dropping.
    fn detection_matrix(
        &mut self,
        tests: &[BroadsideTest],
        faults: &[TransitionFault],
    ) -> DetectionMatrix {
        let mut detected = vec![false; faults.len()];
        self.simulate(
            TestSet::Broadside(tests),
            faults,
            &mut detected,
            &FaultSimOptions::new().detection_matrix(true),
        )
        .matrix
        .expect("detection matrix was requested")
    }

    /// Does a single test detect a single fault?
    fn detects(&mut self, test: &BroadsideTest, fault: &TransitionFault) -> bool {
        let mut detected = [false];
        self.simulate(
            TestSet::Broadside(std::slice::from_ref(test)),
            std::slice::from_ref(fault),
            &mut detected,
            &FaultSimOptions::new(),
        );
        detected[0]
    }
}

/// Packed source words for one chunk of at most 64 tests.
struct PackedChunk {
    n_tests: usize,
    v1w: Vec<u64>,
    v2w: Vec<u64>,
    s1w: Vec<u64>,
    /// Explicit second states (meaningful in `s2_mask` lanes only).
    s2w: Vec<u64>,
    /// Lanes carrying an explicit second state (two-pattern tests); all
    /// other lanes derive theirs from frame 1. Grouped calls can mix both
    /// kinds inside one word.
    s2_mask: u64,
}

impl PackedChunk {
    fn new(net: &Netlist, n_tests: usize) -> Self {
        PackedChunk {
            n_tests,
            v1w: vec![0; net.num_inputs()],
            v2w: vec![0; net.num_inputs()],
            s1w: vec![0; net.num_dffs()],
            s2w: vec![0; net.num_dffs()],
            s2_mask: 0,
        }
    }
}

/// Fault-free machine values for one chunk, shared by every fault.
struct GoodMachine {
    /// Launch (first-pattern) values per node.
    frame1: Vec<u64>,
    /// Capture (second-pattern) fault-free values per node.
    good: Vec<u64>,
    /// Mask of valid test lanes.
    lanes_mask: u64,
}

fn eval_good(net: &Netlist, chunk: &PackedChunk) -> GoodMachine {
    let lanes_mask: u64 = if chunk.n_tests == 64 {
        !0
    } else {
        (1u64 << chunk.n_tests) - 1
    };
    let mut frame1 = vec![0u64; net.num_nodes()];
    comb::load_sources_packed(net, &chunk.v1w, &chunk.s1w, &mut frame1);
    comb::eval_packed(net, &mut frame1);
    let mut s2w = comb::next_state_packed(net, &frame1);
    if chunk.s2_mask != 0 {
        for (w, e) in s2w.iter_mut().zip(&chunk.s2w) {
            *w = (*w & !chunk.s2_mask) | (*e & chunk.s2_mask);
        }
    }
    let mut good = vec![0u64; net.num_nodes()];
    comb::load_sources_packed(net, &chunk.v2w, &s2w, &mut good);
    comb::eval_packed(net, &mut good);
    GoodMachine {
        frame1,
        good,
        lanes_mask,
    }
}

/// The lanes of one group inside one packed word of a grouped call.
#[derive(Debug, Clone)]
struct GroupSpan {
    group: usize,
    lane_lo: u32,
    lanes: u32,
    /// Group-local index of the test sitting in lane `lane_lo`.
    local_base: usize,
}

impl GroupSpan {
    fn mask(&self) -> u64 {
        let ones = if self.lanes == 64 {
            !0u64
        } else {
            (1u64 << self.lanes) - 1
        };
        ones << self.lane_lo
    }
}

/// Concatenate the groups into a dense global test-index space: group `g`
/// occupies global tests `offsets[g]..offsets[g+1]`, 64 global tests per
/// word. Returns the offsets and the per-word group spans.
fn group_layout(groups: &[TestGroup<'_>]) -> (Vec<usize>, Vec<Vec<GroupSpan>>) {
    let mut offsets = Vec::with_capacity(groups.len() + 1);
    offsets.push(0usize);
    for g in groups {
        offsets.push(offsets.last().unwrap() + g.tests.len());
    }
    let total = *offsets.last().unwrap();
    let mut spans: Vec<Vec<GroupSpan>> = (0..total.div_ceil(64)).map(|_| Vec::new()).collect();
    for g in 0..groups.len() {
        let (p0, p1) = (offsets[g], offsets[g + 1]);
        if p0 == p1 {
            continue;
        }
        for (w, spans_w) in spans
            .iter_mut()
            .enumerate()
            .take((p1 - 1) / 64 + 1)
            .skip(p0 / 64)
        {
            let lo = p0.max(w * 64);
            let hi = p1.min((w + 1) * 64);
            spans_w.push(GroupSpan {
                group: g,
                lane_lo: (lo - w * 64) as u32,
                lanes: (hi - lo) as u32,
                local_base: lo - p0,
            });
        }
    }
    (offsets, spans)
}

/// Pack one global 64-test word of a grouped call: each span contributes
/// its group-local test range into its lane range.
fn pack_word(
    net: &Netlist,
    groups: &[TestGroup<'_>],
    spans_w: &[GroupSpan],
    n_tests: usize,
) -> PackedChunk {
    let mut c = PackedChunk::new(net, n_tests);
    for sp in spans_w {
        groups[sp.group].tests.pack_into(
            net,
            sp.local_base,
            sp.local_base + sp.lanes as usize,
            sp.lane_lo,
            &mut c,
        );
    }
    c
}

/// Distribute one fault's detecting lanes to the groups owning them
/// (lane-masked credit: a hit in group `i`'s lanes is recorded against
/// group `i`'s flags and accumulator only).
fn record_hit(
    spans_w: &[GroupSpan],
    dets: &mut [Vec<bool>],
    accums: &mut [Accum],
    dropping: bool,
    fi: usize,
    lanes: u64,
) {
    for sp in spans_w {
        let l = lanes & sp.mask();
        if l == 0 {
            continue;
        }
        let det = &mut dets[sp.group];
        // A group that already dropped this fault (in an earlier word)
        // takes no further credit — exactly as if it ran alone.
        if dropping && det[fi] {
            continue;
        }
        accums[sp.group].record_span(fi, l, sp.lane_lo, sp.local_base, det);
    }
}

/// Per-worker mutable state, reused across chunks: the faulty-machine
/// scratch buffer and a lazily built fanout-cone cache (indexed by node,
/// which is both faster and shard-friendlier than a hash map).
struct Worker {
    scratch: Vec<u64>,
    cones: Vec<Option<Box<[NodeId]>>>,
}

impl Worker {
    fn new(net: &Netlist) -> Self {
        Worker {
            scratch: Vec::new(),
            cones: vec![None; net.num_nodes()],
        }
    }

    /// Reset the scratch buffer to the chunk's fault-free values.
    fn load_good(&mut self, gm: &GoodMachine) {
        self.scratch.clear();
        self.scratch.extend_from_slice(&gm.good);
    }
}

/// The lanes (bit per test) in which `fault` is detected in this chunk.
///
/// Single-fault propagation: force the stuck value at the fault site,
/// re-evaluate only its fanout cone against the shared good machine, and
/// compare at observation points. The scratch buffer must equal `gm.good`
/// on entry and is restored before returning.
#[inline]
fn fault_lanes(
    net: &Netlist,
    observable: &[bool],
    gm: &GoodMachine,
    worker: &mut Worker,
    fault: &TransitionFault,
) -> u64 {
    let g = fault.line.index();
    let init_word: u64 = match fault.transition {
        Transition::Rise => 0,
        Transition::Fall => !0,
    };
    // Launch condition: g carries the fault's initial value under pattern 1.
    let act = match fault.transition {
        Transition::Rise => !gm.frame1[g],
        Transition::Fall => gm.frame1[g],
    } & gm.lanes_mask;
    if act == 0 {
        return 0;
    }
    // A fault effect exists at g only where the good frame-2 value differs
    // from the stuck value.
    if act & (gm.good[g] ^ init_word) == 0 {
        return 0;
    }
    let cone =
        worker.cones[g].get_or_insert_with(|| net.fanout_cone(fault.line).into_boxed_slice());
    worker.scratch[g] = init_word;
    // cone[0] is the faulty line itself: it must keep the forced value, so
    // evaluation starts at cone[1].
    comb::eval_packed_cone(net, &cone[1..], &mut worker.scratch);
    let mut diff_obs = 0u64;
    for &c in cone.iter() {
        if observable[c.index()] {
            diff_obs |= worker.scratch[c.index()] ^ gm.good[c.index()];
        }
    }
    for &c in cone.iter() {
        worker.scratch[c.index()] = gm.good[c.index()];
    }
    act & diff_obs
}

/// Accumulates per-group results; shared by both engines so their merge
/// semantics cannot drift apart.
struct Accum {
    newly: Vec<usize>,
    cap: usize,
    counts: Option<Vec<usize>>,
    first: Option<Vec<Option<usize>>>,
    matrix: Option<DetectionMatrix>,
    activity: Option<Vec<usize>>,
}

impl Accum {
    fn new(opts: &FaultSimOptions, n_faults: usize, n_tests: usize) -> Self {
        Accum {
            newly: Vec::new(),
            cap: opts.n_detect,
            counts: (opts.n_detect > 1).then(|| vec![0usize; n_faults]),
            first: opts.first_detection.then(|| vec![None; n_faults]),
            matrix: opts.matrix.then(|| DetectionMatrix::new(n_faults, n_tests)),
            activity: opts.activity.then(|| vec![0usize; n_tests]),
        }
    }

    /// Merge the detecting lanes of fault `fi` in aligned chunk `base`
    /// (single-group path: lane `l` is test `base * 64 + l`).
    fn record(&mut self, fi: usize, lanes: u64, base: usize, detected: &mut [bool]) {
        self.record_span(fi, lanes, 0, base * 64, detected);
    }

    /// Merge the detecting lanes of fault `fi` for one group span: lane
    /// `lane_lo + k` is the group-local test `local_base + k`.
    fn record_span(
        &mut self,
        fi: usize,
        lanes: u64,
        lane_lo: u32,
        local_base: usize,
        detected: &mut [bool],
    ) {
        let first_idx = local_base + (lanes.trailing_zeros() - lane_lo) as usize;
        match &mut self.counts {
            Some(counts) => {
                if counts[fi] == 0 {
                    if let Some(first) = &mut self.first {
                        first[fi] = Some(first_idx);
                    }
                }
                counts[fi] += lanes.count_ones() as usize;
                if counts[fi] >= self.cap && !detected[fi] {
                    detected[fi] = true;
                    self.newly.push(fi);
                }
            }
            None => {
                if !detected[fi] {
                    detected[fi] = true;
                    self.newly.push(fi);
                    if let Some(first) = &mut self.first {
                        first[fi] = Some(first_idx);
                    }
                }
            }
        }
        if let Some(m) = &mut self.matrix {
            if lane_lo == 0 && local_base.is_multiple_of(64) {
                m.rows[fi][local_base / 64] |= lanes;
            } else {
                let mut d = lanes;
                while d != 0 {
                    let idx = local_base + (d.trailing_zeros() - lane_lo) as usize;
                    m.rows[fi][idx / 64] |= 1u64 << (idx % 64);
                    d &= d - 1;
                }
            }
        }
    }

    /// Add the fault-free launch→capture toggle counts of aligned chunk
    /// `base` (single-group path).
    fn record_activity(&mut self, gm: &GoodMachine, base: usize) {
        self.record_activity_span(gm, gm.lanes_mask, 0, base * 64);
    }

    /// Add the toggle counts of one group span.
    fn record_activity_span(
        &mut self,
        gm: &GoodMachine,
        mask: u64,
        lane_lo: u32,
        local_base: usize,
    ) {
        if let Some(act) = &mut self.activity {
            for (f1, f2) in gm.frame1.iter().zip(&gm.good) {
                let mut d = (f1 ^ f2) & mask;
                while d != 0 {
                    act[local_base + (d.trailing_zeros() - lane_lo) as usize] += 1;
                    d &= d - 1;
                }
            }
        }
    }

    fn finish(self) -> SimOutcome {
        let Accum {
            mut newly,
            cap,
            counts,
            first,
            matrix,
            activity,
        } = self;
        // Record order depends on which word first flipped each fault, so
        // normalise: outcomes must not depend on chunking or packing.
        newly.sort_unstable();
        SimOutcome {
            newly_detected: newly.len(),
            newly,
            complete: true,
            counts: counts.map(|c| c.into_iter().map(|v| v.min(cap)).collect()),
            first_detection: first,
            matrix,
            activity,
        }
    }
}

/// Shared observability precomputation: a node is observable when it drives
/// a primary output or a flip-flop D input.
fn observability(net: &Netlist) -> Vec<bool> {
    let mut observable = vec![false; net.num_nodes()];
    for &o in net.outputs() {
        observable[o.index()] = true;
    }
    for &d in net.dffs() {
        observable[net.node(d).fanins()[0].index()] = true;
    }
    observable
}

/// The original single-threaded engine, kept as the correctness oracle for
/// [`PackedParallelSim`] (see the `differential` and `grouped_differential`
/// integration tests). Grouped batches are simulated one group at a time.
#[derive(Debug)]
pub struct SerialSim<'a> {
    net: &'a Netlist,
    observable: Vec<bool>,
    scratch: Vec<u64>,
    cones: Vec<Option<Box<[NodeId]>>>,
}

impl<'a> SerialSim<'a> {
    /// Build a serial engine for one netlist (precomputes observability).
    pub fn new(net: &'a Netlist) -> Self {
        SerialSim {
            net,
            observable: observability(net),
            scratch: Vec::new(),
            cones: vec![None; net.num_nodes()],
        }
    }

    /// Simulate one test set against one flag vector (the pre-grouped
    /// engine loop, unchanged).
    fn simulate_one(
        &mut self,
        tests: TestSet<'_>,
        faults: &[TransitionFault],
        detected: &mut [bool],
        opts: &FaultSimOptions,
    ) -> SimOutcome {
        let net = self.net;
        let mut accum = Accum::new(opts, faults.len(), tests.len());
        // Borrow-friendly local worker view over this engine's state.
        let mut worker = Worker {
            scratch: std::mem::take(&mut self.scratch),
            cones: std::mem::take(&mut self.cones),
        };
        for base in 0..tests.len().div_ceil(64) {
            let start = base * 64;
            let end = (start + 64).min(tests.len());
            let chunk = tests.pack(net, start, end);
            let gm = eval_good(net, &chunk);
            accum.record_activity(&gm, base);
            worker.load_good(&gm);
            for (fi, fault) in faults.iter().enumerate() {
                if opts.fault_dropping && detected[fi] {
                    continue;
                }
                let lanes = fault_lanes(net, &self.observable, &gm, &mut worker, fault);
                if lanes != 0 {
                    accum.record(fi, lanes, base, detected);
                }
            }
        }
        self.scratch = worker.scratch;
        self.cones = worker.cones;
        accum.finish()
    }
}

impl FaultSimEngine for SerialSim<'_> {
    fn name(&self) -> &'static str {
        "serial"
    }

    fn simulate_groups(
        &mut self,
        groups: &[TestGroup<'_>],
        faults: &[TransitionFault],
        baseline: &[bool],
        opts: &FaultSimOptions,
    ) -> Vec<SimOutcome> {
        assert_eq!(faults.len(), baseline.len(), "flag vector length mismatch");
        let mut outs = Vec::with_capacity(groups.len());
        let mut stopped = false;
        for group in groups {
            if stopped {
                outs.push(SimOutcome {
                    complete: false,
                    ..SimOutcome::default()
                });
                continue;
            }
            let mut det = baseline.to_vec();
            let out = self.simulate_one(group.tests, faults, &mut det, opts);
            stopped = opts.until_first_accept && out.newly_detected > 0;
            outs.push(out);
        }
        outs
    }
}

/// The PPSFP engine: 64 tests per machine word, fault list sharded across
/// worker threads with [`std::thread::scope`].
///
/// In a grouped call the batch's candidates are concatenated into one
/// dense test-index space, so tests from different groups share 64-lane
/// words; the fault-free machine of each word is evaluated once and each
/// fault is propagated through it once, however many groups the word
/// holds. Detection credit is lane-masked back to the owning groups, each
/// with its own copy of the baseline flags, so fault dropping in one group
/// never affects another — results are bit-identical to [`SerialSim`]
/// running each group alone, for every batch shape and thread count.
#[derive(Debug)]
pub struct PackedParallelSim<'a> {
    net: &'a Netlist,
    observable: Vec<bool>,
    workers: Vec<Worker>,
}

impl std::fmt::Debug for Worker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Worker")
            .field(
                "cached_cones",
                &self.cones.iter().filter(|c| c.is_some()).count(),
            )
            .finish()
    }
}

impl<'a> PackedParallelSim<'a> {
    /// Build a parallel engine for one netlist.
    pub fn new(net: &'a Netlist) -> Self {
        PackedParallelSim {
            net,
            observable: observability(net),
            workers: Vec::new(),
        }
    }

    /// Resolve an options thread count against the machine.
    fn resolve_threads(opts: &FaultSimOptions, n_faults: usize) -> usize {
        let requested = if opts.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            opts.threads
        };
        requested.clamp(1, n_faults.max(1))
    }
}

impl FaultSimEngine for PackedParallelSim<'_> {
    fn name(&self) -> &'static str {
        "packed-parallel"
    }

    fn simulate_groups(
        &mut self,
        groups: &[TestGroup<'_>],
        faults: &[TransitionFault],
        baseline: &[bool],
        opts: &FaultSimOptions,
    ) -> Vec<SimOutcome> {
        assert_eq!(faults.len(), baseline.len(), "flag vector length mismatch");
        let net = self.net;
        let (offsets, spans) = group_layout(groups);
        let total = *offsets.last().unwrap();
        let threads = Self::resolve_threads(opts, faults.len());
        while self.workers.len() < threads {
            self.workers.push(Worker::new(net));
        }
        let observable = &self.observable;
        let shard = faults.len().div_ceil(threads).max(1);

        // Per-group detection flags (baseline copies) and accumulators:
        // credit never crosses group boundaries.
        let mut dets: Vec<Vec<bool>> = groups.iter().map(|_| baseline.to_vec()).collect();
        let mut accums: Vec<Accum> = groups
            .iter()
            .map(|g| Accum::new(opts, faults.len(), g.tests.len()))
            .collect();

        // Early exit bookkeeping: group g is fully simulated once every
        // word up to its end offset is done; offsets are monotone, so
        // groups complete in batch order and `pending` can sweep forward.
        let mut pending = 0usize;
        let mut acceptor: Option<usize> = None;

        for (w, spans_w) in spans.iter().enumerate() {
            let n_tests = 64.min(total - w * 64);
            let chunk = pack_word(net, groups, spans_w, n_tests);
            let gm = eval_good(net, &chunk);
            for sp in spans_w {
                accums[sp.group].record_activity_span(&gm, sp.mask(), sp.lane_lo, sp.local_base);
            }

            if threads == 1 {
                // Inline fast path: no spawn overhead.
                let worker = &mut self.workers[0];
                worker.load_good(&gm);
                for (fi, fault) in faults.iter().enumerate() {
                    // Word-level dropping: skip only when every group with
                    // lanes here has dropped the fault.
                    if opts.fault_dropping && spans_w.iter().all(|sp| dets[sp.group][fi]) {
                        continue;
                    }
                    let lanes = fault_lanes(net, observable, &gm, worker, fault);
                    if lanes != 0 {
                        record_hit(
                            spans_w,
                            &mut dets,
                            &mut accums,
                            opts.fault_dropping,
                            fi,
                            lanes,
                        );
                    }
                }
            } else {
                // Shard the fault list; workers read a snapshot of the
                // per-group flags (dropping takes effect between words, as
                // in the serial engine) and report (fault, lanes) hits.
                let flags: &[Vec<bool>] = &dets;
                let dropping = opts.fault_dropping;
                let hits: Vec<Vec<(usize, u64)>> = std::thread::scope(|s| {
                    let handles: Vec<_> = self
                        .workers
                        .iter_mut()
                        .zip(faults.chunks(shard))
                        .enumerate()
                        .map(|(wk, (worker, shard_faults))| {
                            let gm = &gm;
                            s.spawn(move || {
                                let offset = wk * shard;
                                worker.load_good(gm);
                                let mut hits = Vec::new();
                                for (i, fault) in shard_faults.iter().enumerate() {
                                    if dropping
                                        && spans_w.iter().all(|sp| flags[sp.group][offset + i])
                                    {
                                        continue;
                                    }
                                    let lanes = fault_lanes(net, observable, gm, worker, fault);
                                    if lanes != 0 {
                                        hits.push((offset + i, lanes));
                                    }
                                }
                                hits
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("fault-sim worker panicked"))
                        .collect()
                });
                for shard_hits in hits {
                    for (fi, lanes) in shard_hits {
                        record_hit(
                            spans_w,
                            &mut dets,
                            &mut accums,
                            opts.fault_dropping,
                            fi,
                            lanes,
                        );
                    }
                }
            }

            if opts.until_first_accept {
                let words_done = w + 1;
                while pending < groups.len() && offsets[pending + 1] <= words_done * 64 {
                    if !accums[pending].newly.is_empty() {
                        acceptor = Some(pending);
                        break;
                    }
                    pending += 1;
                }
                if acceptor.is_some() {
                    break;
                }
            }
        }

        accums
            .into_iter()
            .enumerate()
            .map(|(g, a)| {
                if acceptor.is_some_and(|acc| g > acc) {
                    SimOutcome {
                        complete: false,
                        ..SimOutcome::default()
                    }
                } else {
                    a.finish()
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{all_transition_faults, sim::coverage_percent, sim::n_detect_coverage};
    use fbt_netlist::rng::Rng;
    use fbt_netlist::s27;
    use fbt_sim::Bits;

    fn random_tests(n: usize, n_pi: usize, n_ff: usize, seed: u64) -> Vec<BroadsideTest> {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|_| {
                BroadsideTest::new(
                    (0..n_ff).map(|_| rng.bit()).collect(),
                    (0..n_pi).map(|_| rng.bit()).collect(),
                    (0..n_pi).map(|_| rng.bit()).collect(),
                )
            })
            .collect()
    }

    /// Plain fault-dropping run through the non-deprecated surface.
    fn run_set(
        engine: &mut dyn FaultSimEngine,
        tests: TestSet<'_>,
        faults: &[TransitionFault],
        detected: &mut [bool],
    ) -> usize {
        engine
            .simulate(tests, faults, detected, &FaultSimOptions::new())
            .newly_detected
    }

    /// Reference scalar implementation: simulate the whole faulty circuit.
    fn detects_reference(net: &Netlist, t: &BroadsideTest, f: &TransitionFault) -> bool {
        let mut f1 = vec![false; net.num_nodes()];
        for (i, &id) in net.inputs().iter().enumerate() {
            f1[id.index()] = t.v1.get(i);
        }
        for (i, &id) in net.dffs().iter().enumerate() {
            f1[id.index()] = t.scan_in.get(i);
        }
        comb::eval_scalar(net, &mut f1);
        if f1[f.line.index()] != f.transition.initial_value() {
            return false;
        }
        let mut good = vec![false; net.num_nodes()];
        for (i, &id) in net.inputs().iter().enumerate() {
            good[id.index()] = t.v2.get(i);
        }
        for &d in net.dffs() {
            good[d.index()] = f1[net.node(d).fanins()[0].index()];
        }
        comb::eval_scalar(net, &mut good);
        let mut faulty = good.clone();
        for (i, &id) in net.inputs().iter().enumerate() {
            faulty[id.index()] = t.v2.get(i);
        }
        faulty[f.line.index()] = f.transition.initial_value();
        for &id in net.eval_order() {
            if id == f.line {
                continue;
            }
            let node = net.node(id);
            let vals: Vec<bool> = node.fanins().iter().map(|x| faulty[x.index()]).collect();
            faulty[id.index()] = node.kind().eval(&vals);
        }
        let po_diff = net
            .outputs()
            .iter()
            .any(|&o| good[o.index()] != faulty[o.index()]);
        let ns_diff = net.dffs().iter().any(|&d| {
            let di = net.node(d).fanins()[0].index();
            good[di] != faulty[di]
        });
        po_diff || ns_diff
    }

    fn engines<'a>(net: &'a Netlist) -> Vec<Box<dyn FaultSimEngine + 'a>> {
        vec![
            Box::new(SerialSim::new(net)),
            Box::new(PackedParallelSim::new(net)),
        ]
    }

    #[test]
    fn both_engines_match_reference_on_s27() {
        let net = s27();
        let faults = all_transition_faults(&net);
        let tests = random_tests(40, 4, 3, 99);
        for mut engine in engines(&net) {
            for t in &tests {
                for f in &faults {
                    assert_eq!(
                        engine.detects(t, f),
                        detects_reference(&net, t, f),
                        "{} fault {f} test {t:?}",
                        engine.name()
                    );
                }
            }
        }
    }

    #[test]
    fn fault_dropping_counts() {
        let net = s27();
        let faults = all_transition_faults(&net);
        let tests = random_tests(128, 4, 3, 7);
        for mut engine in engines(&net) {
            let mut detected = vec![false; faults.len()];
            let n1 = run_set(engine.as_mut(), (&tests[..]).into(), &faults, &mut detected);
            assert_eq!(n1, detected.iter().filter(|&&d| d).count());
            let n2 = run_set(engine.as_mut(), (&tests[..]).into(), &faults, &mut detected);
            assert_eq!(n2, 0, "{}: re-run detects nothing new", engine.name());
            assert!(coverage_percent(&detected) > 50.0);
        }
    }

    #[test]
    fn first_detection_indices_are_earliest() {
        let net = s27();
        let faults = all_transition_faults(&net);
        let tests = random_tests(100, 4, 3, 21);
        let mut engine = PackedParallelSim::new(&net);
        let mut det = vec![false; faults.len()];
        let first = engine
            .simulate(
                (&tests[..]).into(),
                &faults,
                &mut det,
                &FaultSimOptions::new().first_detection(true),
            )
            .first_detection
            .expect("first detections were requested");
        let mut oracle = SerialSim::new(&net);
        for (fi, f) in faults.iter().enumerate() {
            if let Some(ti) = first[fi] {
                assert!(det[fi]);
                for (tj, t) in tests.iter().enumerate().take(ti) {
                    assert!(!oracle.detects(t, f), "test {tj} already detects {f}");
                }
                assert!(oracle.detects(&tests[ti], f));
            } else {
                assert!(!det[fi]);
            }
        }
    }

    #[test]
    fn batch_equals_single_test_runs() {
        let net = s27();
        let faults = all_transition_faults(&net);
        let tests = random_tests(70, 4, 3, 5);
        for mut engine in engines(&net) {
            let mut det_batch = vec![false; faults.len()];
            run_set(
                engine.as_mut(),
                (&tests[..]).into(),
                &faults,
                &mut det_batch,
            );
            let mut det_single = vec![false; faults.len()];
            for t in &tests {
                for (fi, f) in faults.iter().enumerate() {
                    if !det_single[fi] && engine.detects(t, f) {
                        det_single[fi] = true;
                    }
                }
            }
            assert_eq!(det_batch, det_single, "{}", engine.name());
        }
    }

    #[test]
    fn two_pattern_with_natural_state_matches_broadside() {
        let net = s27();
        let faults = all_transition_faults(&net);
        let tests = random_tests(80, 4, 3, 33);
        let expanded: Vec<TwoPatternTest> = tests
            .iter()
            .map(|t| TwoPatternTest::from_broadside(&net, t))
            .collect();
        for mut engine in engines(&net) {
            let mut det_a = vec![false; faults.len()];
            run_set(engine.as_mut(), (&tests[..]).into(), &faults, &mut det_a);
            let mut det_b = vec![false; faults.len()];
            run_set(engine.as_mut(), (&expanded[..]).into(), &faults, &mut det_b);
            assert_eq!(det_a, det_b, "{}", engine.name());
        }
    }

    #[test]
    fn two_pattern_with_held_state_changes_detection() {
        let net = s27();
        let faults = all_transition_faults(&net);
        let tests = random_tests(60, 4, 3, 77);
        let natural: Vec<TwoPatternTest> = tests
            .iter()
            .map(|t| TwoPatternTest::from_broadside(&net, t))
            .collect();
        let held: Vec<TwoPatternTest> = natural
            .iter()
            .map(|t| {
                let mut s2 = t.s2.clone();
                s2.set(0, !s2.get(0)); // hold/flip one flip-flop
                TwoPatternTest::new(t.s1.clone(), t.v1.clone(), s2, t.v2.clone())
            })
            .collect();
        let mut engine = PackedParallelSim::new(&net);
        let mut det_nat = vec![false; faults.len()];
        run_set(&mut engine, (&natural[..]).into(), &faults, &mut det_nat);
        let mut det_held = vec![false; faults.len()];
        run_set(&mut engine, (&held[..]).into(), &faults, &mut det_held);
        assert_ne!(det_nat, det_held, "held states should alter detections");
    }

    #[test]
    fn n_detect_profile_consistent_with_plain_run() {
        let net = s27();
        let faults = all_transition_faults(&net);
        let tests = random_tests(120, 4, 3, 55);
        for mut engine in engines(&net) {
            let counts = engine.n_detect_profile(&tests, &faults, 5);
            let mut detected = vec![false; faults.len()];
            run_set(engine.as_mut(), (&tests[..]).into(), &faults, &mut detected);
            for (c, d) in counts.iter().zip(&detected) {
                assert_eq!(*c >= 1, *d, "1-detect must agree with plain detection");
                assert!(*c <= 5, "cap respected");
            }
            let c1 = n_detect_coverage(&counts, 1);
            let c3 = n_detect_coverage(&counts, 3);
            let c5 = n_detect_coverage(&counts, 5);
            assert!(c1 >= c3 && c3 >= c5);
            assert_eq!(c1, coverage_percent(&detected));
        }
    }

    #[test]
    fn n_detect_counts_are_exact_for_small_cases() {
        let net = s27();
        let faults = all_transition_faults(&net);
        let tests = random_tests(70, 4, 3, 8);
        for mut engine in engines(&net) {
            let counts = engine.n_detect_profile(&tests, &faults, 1_000);
            for (fi, f) in faults.iter().enumerate() {
                let brute = tests.iter().filter(|t| engine.detects(t, f)).count();
                assert_eq!(counts[fi], brute, "fault {f}");
            }
        }
    }

    #[test]
    fn detection_matrix_agrees_with_detects() {
        let net = s27();
        let faults = all_transition_faults(&net);
        let tests = random_tests(70, 4, 3, 13);
        let mut engine = PackedParallelSim::new(&net);
        let matrix = engine.detection_matrix(&tests, &faults);
        assert_eq!(matrix.num_faults(), faults.len());
        assert_eq!(matrix.num_tests(), tests.len());
        let mut oracle = SerialSim::new(&net);
        for (fi, f) in faults.iter().enumerate() {
            for (ti, t) in tests.iter().enumerate() {
                assert_eq!(
                    matrix.detects(fi, ti),
                    oracle.detects(t, f),
                    "fault {f} test {ti}"
                );
            }
        }
    }

    #[test]
    fn explicit_thread_counts_are_bit_identical() {
        let net = s27();
        let faults = all_transition_faults(&net);
        let tests = random_tests(200, 4, 3, 41);
        let mut reference = vec![false; faults.len()];
        SerialSim::new(&net).simulate(
            TestSet::Broadside(&tests),
            &faults,
            &mut reference,
            &FaultSimOptions::new(),
        );
        for threads in [1, 2, 3, 7] {
            let mut engine = PackedParallelSim::new(&net);
            let mut detected = vec![false; faults.len()];
            let out = engine.simulate(
                TestSet::Broadside(&tests),
                &faults,
                &mut detected,
                &FaultSimOptions::new().threads(threads),
            );
            assert_eq!(detected, reference, "threads={threads}");
            assert_eq!(out.newly_detected, reference.iter().filter(|&&d| d).count());
            assert_eq!(out.newly.len(), out.newly_detected);
            assert!(out.newly.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
        }
    }

    #[test]
    fn activity_accounting_matches_scalar_toggles() {
        let net = s27();
        let faults = all_transition_faults(&net);
        let tests = random_tests(10, 4, 3, 3);
        let mut engine = PackedParallelSim::new(&net);
        let mut detected = vec![false; faults.len()];
        let out = engine.simulate(
            TestSet::Broadside(&tests),
            &faults,
            &mut detected,
            &FaultSimOptions::new().activity(true),
        );
        let activity = out.activity.expect("activity requested");
        assert_eq!(activity.len(), tests.len());
        for (t, &toggles) in tests.iter().zip(&activity) {
            // Scalar reference: count nodes differing between the two frames.
            let mut f1 = vec![false; net.num_nodes()];
            for (i, &id) in net.inputs().iter().enumerate() {
                f1[id.index()] = t.v1.get(i);
            }
            for (i, &id) in net.dffs().iter().enumerate() {
                f1[id.index()] = t.scan_in.get(i);
            }
            comb::eval_scalar(&net, &mut f1);
            let mut f2 = vec![false; net.num_nodes()];
            for (i, &id) in net.inputs().iter().enumerate() {
                f2[id.index()] = t.v2.get(i);
            }
            for &d in net.dffs() {
                f2[d.index()] = f1[net.node(d).fanins()[0].index()];
            }
            comb::eval_scalar(&net, &mut f2);
            let expect = (0..net.num_nodes()).filter(|&i| f1[i] != f2[i]).count();
            assert_eq!(toggles, expect, "test {t:?}");
        }
    }

    #[test]
    fn options_builder_roundtrip() {
        let opts = FaultSimOptions::new()
            .n_detect(7)
            .threads(3)
            .fault_dropping(false)
            .first_detection(true)
            .activity(true)
            .until_first_accept(true);
        assert_eq!(opts.n_detect_cap(), 7);
        assert_eq!(opts.thread_count(), 3);
        assert!(!opts.drops_faults());
        assert!(opts.stops_at_first_accept());
        let m = FaultSimOptions::new().detection_matrix(true);
        assert!(!m.drops_faults(), "matrix recording implies no dropping");
        assert!(!m.stops_at_first_accept());
    }

    #[test]
    fn empty_test_set_is_a_no_op() {
        let net = s27();
        let faults = all_transition_faults(&net);
        for mut engine in engines(&net) {
            let mut detected = vec![false; faults.len()];
            let empty: &[BroadsideTest] = &[];
            assert_eq!(
                run_set(engine.as_mut(), empty.into(), &faults, &mut detected),
                0
            );
            assert!(detected.iter().all(|&d| !d));
        }
    }

    #[test]
    fn grouped_single_group_matches_simulate() {
        let net = s27();
        let faults = all_transition_faults(&net);
        let tests = random_tests(90, 4, 3, 17);
        for opts in [
            FaultSimOptions::new(),
            FaultSimOptions::new().n_detect(4).first_detection(true),
            FaultSimOptions::new().fault_dropping(false).activity(true),
        ] {
            for mut engine in engines(&net) {
                let baseline = vec![false; faults.len()];
                let groups = [TestGroup::new(&tests[..])];
                let grouped = engine
                    .simulate_groups(&groups, &faults, &baseline, &opts)
                    .pop()
                    .unwrap();
                let mut det = baseline.clone();
                let single = engine.simulate((&tests[..]).into(), &faults, &mut det, &opts);
                assert_eq!(grouped, single, "{}", engine.name());
                for &fi in &grouped.newly {
                    assert!(det[fi]);
                }
            }
        }
    }

    #[test]
    fn grouped_outcomes_match_standalone_runs() {
        // Unequal group lengths straddling word boundaries, a non-clean
        // baseline, and mixed broadside/two-pattern groups in one batch.
        let net = s27();
        let faults = all_transition_faults(&net);
        let a = random_tests(10, 4, 3, 1);
        let b = random_tests(70, 4, 3, 2);
        let c: Vec<TwoPatternTest> = random_tests(23, 4, 3, 3)
            .iter()
            .map(|t| TwoPatternTest::from_broadside(&net, t))
            .collect();
        let d = random_tests(1, 4, 3, 4);
        let groups = [
            TestGroup::new(&a[..]),
            TestGroup::new(&b[..]),
            TestGroup::new(&c[..]),
            TestGroup::new(&d[..]),
        ];
        let mut baseline = vec![false; faults.len()];
        for (i, b) in baseline.iter_mut().enumerate() {
            *b = i % 5 == 0;
        }
        for opts in [
            FaultSimOptions::new(),
            FaultSimOptions::new().fault_dropping(false),
            FaultSimOptions::new().n_detect(4).first_detection(true),
            FaultSimOptions::new()
                .detection_matrix(true)
                .activity(true)
                .first_detection(true),
        ] {
            let mut oracle = SerialSim::new(&net);
            let standalone: Vec<SimOutcome> = groups
                .iter()
                .map(|g| {
                    let mut det = baseline.clone();
                    oracle.simulate(g.tests, &faults, &mut det, &opts)
                })
                .collect();
            for mut engine in engines(&net) {
                let outs = engine.simulate_groups(&groups, &faults, &baseline, &opts);
                assert_eq!(outs, standalone, "{} opts {opts:?}", engine.name());
            }
        }
    }

    #[test]
    fn until_first_accept_stops_after_first_acceptor() {
        let net = s27();
        let faults = all_transition_faults(&net);
        // Group 0 rejects (no tests), group 1 accepts, group 2 must not be
        // simulated to completion.
        let empty: Vec<BroadsideTest> = Vec::new();
        let b = random_tests(40, 4, 3, 9);
        let c = random_tests(40, 4, 3, 10);
        let groups = [
            TestGroup::new(&empty[..]),
            TestGroup::new(&b[..]),
            TestGroup::new(&c[..]),
        ];
        let baseline = vec![false; faults.len()];
        let opts = FaultSimOptions::new().until_first_accept(true);
        let mut expected: Option<Vec<SimOutcome>> = None;
        for mut engine in engines(&net) {
            let outs = engine.simulate_groups(&groups, &faults, &baseline, &opts);
            assert!(outs[0].complete && outs[0].newly_detected == 0);
            assert!(outs[1].complete && outs[1].newly_detected > 0);
            assert!(!outs[2].complete, "groups after the acceptor are cut off");
            assert_eq!(outs[2].newly_detected, 0);
            match &expected {
                None => expected = Some(outs),
                Some(e) => assert_eq!(&outs, e, "{}", engine.name()),
            }
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_new_api() {
        let net = s27();
        let faults = all_transition_faults(&net);
        let tests = random_tests(50, 4, 3, 23);
        let two: Vec<TwoPatternTest> = tests
            .iter()
            .map(|t| TwoPatternTest::from_broadside(&net, t))
            .collect();
        for mut engine in engines(&net) {
            let mut det_old = vec![false; faults.len()];
            let n_old = engine.run(&tests, &faults, &mut det_old);
            let mut det_new = vec![false; faults.len()];
            let n_new = run_set(engine.as_mut(), (&tests[..]).into(), &faults, &mut det_new);
            assert_eq!((n_old, det_old.clone()), (n_new, det_new));

            let mut det_tp = vec![false; faults.len()];
            engine.run_two_pattern(&two, &faults, &mut det_tp);
            assert_eq!(det_tp, det_old, "natural two-pattern equals broadside");

            let mut det_fd = vec![false; faults.len()];
            let first = engine.first_detections(&tests, &faults, &mut det_fd);
            assert_eq!(det_fd, det_old);
            assert_eq!(first.len(), faults.len());
        }
    }

    #[test]
    fn from_str01_doc_smoke() {
        // The engine doc example's vectors: keep them detecting something.
        let net = s27();
        let faults = all_transition_faults(&net);
        let tests = [BroadsideTest::new(
            Bits::from_str01("000"),
            Bits::from_str01("0000"),
            Bits::from_str01("1000"),
        )];
        let mut engine = PackedParallelSim::new(&net);
        let mut detected = vec![false; faults.len()];
        let newly = run_set(&mut engine, (&tests[..]).into(), &faults, &mut detected);
        assert_eq!(newly, detected.iter().filter(|&&d| d).count());
    }
}
