//! The unified fault-simulation engine API.
//!
//! Everything the workspace needs from broadside transition-fault
//! simulation goes through one trait, [`FaultSimEngine`], configured by a
//! builder-style [`FaultSimOptions`]. Two implementations are provided:
//!
//! * [`SerialSim`] — the original single-threaded simulator, kept as the
//!   correctness oracle;
//! * [`PackedParallelSim`] — a PPSFP-style (parallel-pattern, single-fault
//!   propagation) engine that packs 64 broadside tests per `u64` word and
//!   shards the fault list across worker threads with
//!   [`std::thread::scope`].
//!
//! Both engines produce bit-identical results: within a 64-test chunk each
//! fault is simulated independently against a shared fault-free machine, so
//! neither the shard boundaries nor the thread count can change a detection
//! verdict. Fault dropping takes effect between chunks in both engines.
//!
//! # Example
//!
//! ```
//! use fbt_fault::{all_transition_faults, BroadsideTest};
//! use fbt_fault::engine::{FaultSimEngine, FaultSimOptions, PackedParallelSim};
//! use fbt_netlist::s27;
//! use fbt_sim::Bits;
//!
//! let net = s27();
//! let faults = all_transition_faults(&net);
//! let tests = vec![BroadsideTest::new(
//!     Bits::from_str01("000"),
//!     Bits::from_str01("0000"),
//!     Bits::from_str01("1000"),
//! )];
//! let mut engine = PackedParallelSim::new(&net);
//! let mut detected = vec![false; faults.len()];
//! let newly = engine.run(&tests, &faults, &mut detected);
//! assert_eq!(newly, detected.iter().filter(|&&d| d).count());
//! ```

use fbt_netlist::{Netlist, NodeId};
use fbt_sim::comb;

use crate::{BroadsideTest, Transition, TransitionFault, TwoPatternTest};

/// Configuration for one [`FaultSimEngine::simulate`] call.
///
/// Built fluently; the default is a plain 1-detect run with fault dropping
/// on and automatic thread count:
///
/// ```
/// use fbt_fault::engine::FaultSimOptions;
/// let opts = FaultSimOptions::new().n_detect(5).threads(4);
/// assert_eq!(opts.n_detect_cap(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSimOptions {
    n_detect: usize,
    fault_dropping: bool,
    threads: usize,
    first_detection: bool,
    matrix: bool,
    activity: bool,
}

impl Default for FaultSimOptions {
    fn default() -> Self {
        FaultSimOptions {
            n_detect: 1,
            fault_dropping: true,
            threads: 0,
            first_detection: false,
            matrix: false,
            activity: false,
        }
    }
}

impl FaultSimOptions {
    /// Plain 1-detect simulation with fault dropping, automatic threads.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count detections per fault up to `cap` instead of stopping at the
    /// first one. With fault dropping on, a fault is dropped once it
    /// saturates. The outcome's `counts` field is populated when `cap > 1`.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn n_detect(mut self, cap: usize) -> Self {
        assert!(cap > 0, "n-detect cap must be positive");
        self.n_detect = cap;
        self
    }

    /// Skip faults whose `detected` flag is already set (default `true`).
    pub fn fault_dropping(mut self, on: bool) -> Self {
        self.fault_dropping = on;
        self
    }

    /// Number of worker threads for engines that parallelise; `0` (the
    /// default) resolves to [`std::thread::available_parallelism`].
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Record, per fault, the index of the first detecting test.
    pub fn first_detection(mut self, on: bool) -> Self {
        self.first_detection = on;
        self
    }

    /// Record the full fault × test detection matrix. Implies fault
    /// dropping off: every detection of every fault must be observed.
    pub fn detection_matrix(mut self, on: bool) -> Self {
        self.matrix = on;
        if on {
            self.fault_dropping = false;
        }
        self
    }

    /// Account the fault-free launch→capture switching activity of each
    /// test (number of circuit lines toggling between the two patterns, the
    /// quantity behind the paper's §4.4 `SWA` measure).
    pub fn activity(mut self, on: bool) -> Self {
        self.activity = on;
        self
    }

    /// The configured n-detect cap.
    pub fn n_detect_cap(&self) -> usize {
        self.n_detect
    }

    /// Whether fault dropping is enabled.
    pub fn drops_faults(&self) -> bool {
        self.fault_dropping
    }

    /// The configured thread count (`0` = automatic).
    pub fn thread_count(&self) -> usize {
        self.threads
    }
}

/// The tests given to one [`FaultSimEngine::simulate`] call: broadside
/// tests (second state derived from the first pattern) or two-pattern tests
/// with an explicit — possibly unreachable — second state (the state-holding
/// DFT of paper §4.5).
#[derive(Debug, Clone, Copy)]
pub enum TestSet<'a> {
    /// Broadside tests; `s2` is the circuit's response to `<s1, v1>`.
    Broadside(&'a [BroadsideTest]),
    /// Two-pattern tests carrying their own second state.
    TwoPattern(&'a [TwoPatternTest]),
}

impl TestSet<'_> {
    /// Number of tests.
    pub fn len(&self) -> usize {
        match self {
            TestSet::Broadside(t) => t.len(),
            TestSet::TwoPattern(t) => t.len(),
        }
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pack tests `start..end` (at most 64) into per-source words.
    fn pack(&self, net: &Netlist, start: usize, end: usize) -> PackedChunk {
        let n_pi = net.num_inputs();
        let n_ff = net.num_dffs();
        let mut c = PackedChunk {
            n_tests: end - start,
            v1w: vec![0; n_pi],
            v2w: vec![0; n_pi],
            s1w: vec![0; n_ff],
            s2w: None,
        };
        match self {
            TestSet::Broadside(tests) => {
                for (lane, t) in tests[start..end].iter().enumerate() {
                    assert_eq!(t.v1.len(), n_pi, "PI width mismatch");
                    assert_eq!(t.scan_in.len(), n_ff, "state width mismatch");
                    let bit = 1u64 << lane;
                    for i in 0..n_pi {
                        if t.v1.get(i) {
                            c.v1w[i] |= bit;
                        }
                        if t.v2.get(i) {
                            c.v2w[i] |= bit;
                        }
                    }
                    for (i, w) in c.s1w.iter_mut().enumerate() {
                        if t.scan_in.get(i) {
                            *w |= bit;
                        }
                    }
                }
            }
            TestSet::TwoPattern(tests) => {
                let mut s2w = vec![0u64; n_ff];
                for (lane, t) in tests[start..end].iter().enumerate() {
                    assert_eq!(t.v1.len(), n_pi, "PI width mismatch");
                    assert_eq!(t.s1.len(), n_ff, "state width mismatch");
                    assert_eq!(t.s2.len(), n_ff, "state width mismatch");
                    let bit = 1u64 << lane;
                    for i in 0..n_pi {
                        if t.v1.get(i) {
                            c.v1w[i] |= bit;
                        }
                        if t.v2.get(i) {
                            c.v2w[i] |= bit;
                        }
                    }
                    for (i, (w1, w2)) in c.s1w.iter_mut().zip(s2w.iter_mut()).enumerate() {
                        if t.s1.get(i) {
                            *w1 |= bit;
                        }
                        if t.s2.get(i) {
                            *w2 |= bit;
                        }
                    }
                }
                c.s2w = Some(s2w);
            }
        }
        c
    }
}

impl<'a> From<&'a [BroadsideTest]> for TestSet<'a> {
    fn from(t: &'a [BroadsideTest]) -> Self {
        TestSet::Broadside(t)
    }
}

impl<'a> From<&'a [TwoPatternTest]> for TestSet<'a> {
    fn from(t: &'a [TwoPatternTest]) -> Self {
        TestSet::TwoPattern(t)
    }
}

/// A fault × test detection matrix, 64 tests per word.
///
/// Row-major per fault; produced by
/// [`FaultSimEngine::detection_matrix`]. The transition-path-delay-fault
/// pipeline (paper §2.3.3) ANDs rows together: a path fault is detected by
/// a test only if the test detects every transition fault along the path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectionMatrix {
    n_tests: usize,
    rows: Vec<Vec<u64>>,
}

impl DetectionMatrix {
    fn new(n_faults: usize, n_tests: usize) -> Self {
        DetectionMatrix {
            n_tests,
            rows: vec![vec![0u64; n_tests.div_ceil(64)]; n_faults],
        }
    }

    /// Does `test` detect `fault`?
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn detects(&self, fault: usize, test: usize) -> bool {
        assert!(test < self.n_tests, "test index out of range");
        (self.rows[fault][test / 64] >> (test % 64)) & 1 == 1
    }

    /// The packed row for `fault` (64 tests per word).
    pub fn row(&self, fault: usize) -> &[u64] {
        &self.rows[fault]
    }

    /// Number of words per row.
    pub fn words_per_row(&self) -> usize {
        self.n_tests.div_ceil(64)
    }

    /// Number of faults (rows).
    pub fn num_faults(&self) -> usize {
        self.rows.len()
    }

    /// Number of tests (columns).
    pub fn num_tests(&self) -> usize {
        self.n_tests
    }

    /// Consume into the raw per-fault word rows.
    pub fn into_rows(self) -> Vec<Vec<u64>> {
        self.rows
    }
}

/// Everything one [`FaultSimEngine::simulate`] call produced. Optional
/// fields are populated according to the [`FaultSimOptions`] used.
#[derive(Debug, Clone, Default)]
pub struct SimOutcome {
    /// Faults whose `detected` flag this call flipped from false to true
    /// (in n-detect mode: faults that reached the cap).
    pub newly_detected: usize,
    /// Per-fault detection counts, clamped to the cap
    /// (present when `n_detect > 1`).
    pub counts: Option<Vec<usize>>,
    /// Per-fault index of the first detecting test
    /// (present when `first_detection` was requested).
    pub first_detection: Option<Vec<Option<usize>>>,
    /// The full detection matrix (present when requested).
    pub matrix: Option<DetectionMatrix>,
    /// Per-test count of fault-free lines toggling between launch and
    /// capture (present when `activity` was requested).
    pub activity: Option<Vec<usize>>,
}

/// A broadside transition-fault simulation engine.
///
/// [`simulate`](FaultSimEngine::simulate) is the single required entry
/// point; the remaining methods are thin conveniences over it and replace
/// the former `FaultSim` method family (`run`, `run_two_pattern`,
/// `run_first_detection`, `run_n_detect`, `detection_matrix`, `detects`).
///
/// The contract every engine must satisfy: a transition fault `v → v'` on
/// line `g` is detected by a test when the first pattern establishes
/// `g = v` (launch) and under the second pattern the stuck-at-`v` fault on
/// `g` is observed at a primary output or a flip-flop D input (paper §1.2).
/// Detection verdicts must not depend on chunking, sharding or thread
/// count.
pub trait FaultSimEngine {
    /// A short, stable engine name for logs and reports.
    fn name(&self) -> &'static str;

    /// Simulate `tests` against `faults` under `opts`, updating the
    /// per-fault `detected` flags (with fault dropping on, faults whose
    /// flag is already set are skipped).
    ///
    /// # Panics
    ///
    /// Panics if `detected.len() != faults.len()` or test widths mismatch
    /// the engine's netlist.
    fn simulate(
        &mut self,
        tests: TestSet<'_>,
        faults: &[TransitionFault],
        detected: &mut [bool],
        opts: &FaultSimOptions,
    ) -> SimOutcome;

    /// Plain fault-dropping simulation of broadside tests; returns how many
    /// faults were newly detected.
    fn run(
        &mut self,
        tests: &[BroadsideTest],
        faults: &[TransitionFault],
        detected: &mut [bool],
    ) -> usize {
        self.simulate(
            TestSet::Broadside(tests),
            faults,
            detected,
            &FaultSimOptions::new(),
        )
        .newly_detected
    }

    /// Plain fault-dropping simulation of two-pattern tests with explicit
    /// second states (the state-holding DFT of paper §4.5).
    fn run_two_pattern(
        &mut self,
        tests: &[TwoPatternTest],
        faults: &[TransitionFault],
        detected: &mut [bool],
    ) -> usize {
        self.simulate(
            TestSet::TwoPattern(tests),
            faults,
            detected,
            &FaultSimOptions::new(),
        )
        .newly_detected
    }

    /// Like [`run`](FaultSimEngine::run), but also report, for each newly
    /// detected fault, the index (into `tests`) of the first detecting
    /// test.
    fn first_detections(
        &mut self,
        tests: &[BroadsideTest],
        faults: &[TransitionFault],
        detected: &mut [bool],
    ) -> Vec<Option<usize>> {
        self.simulate(
            TestSet::Broadside(tests),
            faults,
            detected,
            &FaultSimOptions::new().first_detection(true),
        )
        .first_detection
        .expect("first detections were requested")
    }

    /// N-detection profile: for each fault, how many of `tests` detect it,
    /// saturating at `cap`. Built-in test generation "naturally achieves
    /// n-detection" (paper §4.1); this quantifies the claim (see
    /// [`crate::sim::n_detect_coverage`]).
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    fn n_detect_profile(
        &mut self,
        tests: &[BroadsideTest],
        faults: &[TransitionFault],
        cap: usize,
    ) -> Vec<usize> {
        assert!(cap > 0, "cap must be positive");
        let mut saturated = vec![false; faults.len()];
        // Counts are only tracked for caps above 1; a cap of 1 is simulated
        // at 2 and clamped, which can only do extra work, never change the
        // clamped result.
        let counts = self
            .simulate(
                TestSet::Broadside(tests),
                faults,
                &mut saturated,
                &FaultSimOptions::new().n_detect(cap.max(2)),
            )
            .counts
            .expect("n-detect counts were requested");
        if cap == 1 {
            counts.into_iter().map(|c| c.min(1)).collect()
        } else {
            counts
        }
    }

    /// Full detection matrix without fault dropping.
    fn detection_matrix(
        &mut self,
        tests: &[BroadsideTest],
        faults: &[TransitionFault],
    ) -> DetectionMatrix {
        let mut detected = vec![false; faults.len()];
        self.simulate(
            TestSet::Broadside(tests),
            faults,
            &mut detected,
            &FaultSimOptions::new().detection_matrix(true),
        )
        .matrix
        .expect("detection matrix was requested")
    }

    /// Does a single test detect a single fault?
    fn detects(&mut self, test: &BroadsideTest, fault: &TransitionFault) -> bool {
        let mut detected = [false];
        self.simulate(
            TestSet::Broadside(std::slice::from_ref(test)),
            std::slice::from_ref(fault),
            &mut detected,
            &FaultSimOptions::new(),
        );
        detected[0]
    }
}

/// Packed source words for one chunk of at most 64 tests.
struct PackedChunk {
    n_tests: usize,
    v1w: Vec<u64>,
    v2w: Vec<u64>,
    s1w: Vec<u64>,
    /// Explicit second state (two-pattern tests); derived from frame 1
    /// when absent.
    s2w: Option<Vec<u64>>,
}

/// Fault-free machine values for one chunk, shared by every fault.
struct GoodMachine {
    /// Launch (first-pattern) values per node.
    frame1: Vec<u64>,
    /// Capture (second-pattern) fault-free values per node.
    good: Vec<u64>,
    /// Mask of valid test lanes.
    lanes_mask: u64,
}

fn eval_good(net: &Netlist, chunk: &PackedChunk) -> GoodMachine {
    let lanes_mask: u64 = if chunk.n_tests == 64 {
        !0
    } else {
        (1u64 << chunk.n_tests) - 1
    };
    let mut frame1 = vec![0u64; net.num_nodes()];
    comb::load_sources_packed(net, &chunk.v1w, &chunk.s1w, &mut frame1);
    comb::eval_packed(net, &mut frame1);
    let s2w = match &chunk.s2w {
        Some(s) => s.clone(),
        None => comb::next_state_packed(net, &frame1),
    };
    let mut good = vec![0u64; net.num_nodes()];
    comb::load_sources_packed(net, &chunk.v2w, &s2w, &mut good);
    comb::eval_packed(net, &mut good);
    GoodMachine {
        frame1,
        good,
        lanes_mask,
    }
}

/// Per-worker mutable state, reused across chunks: the faulty-machine
/// scratch buffer and a lazily built fanout-cone cache (indexed by node,
/// which is both faster and shard-friendlier than a hash map).
struct Worker {
    scratch: Vec<u64>,
    cones: Vec<Option<Box<[NodeId]>>>,
}

impl Worker {
    fn new(net: &Netlist) -> Self {
        Worker {
            scratch: Vec::new(),
            cones: vec![None; net.num_nodes()],
        }
    }

    /// Reset the scratch buffer to the chunk's fault-free values.
    fn load_good(&mut self, gm: &GoodMachine) {
        self.scratch.clear();
        self.scratch.extend_from_slice(&gm.good);
    }
}

/// The lanes (bit per test) in which `fault` is detected in this chunk.
///
/// Single-fault propagation: force the stuck value at the fault site,
/// re-evaluate only its fanout cone against the shared good machine, and
/// compare at observation points. The scratch buffer must equal `gm.good`
/// on entry and is restored before returning.
#[inline]
fn fault_lanes(
    net: &Netlist,
    observable: &[bool],
    gm: &GoodMachine,
    worker: &mut Worker,
    fault: &TransitionFault,
) -> u64 {
    let g = fault.line.index();
    let init_word: u64 = match fault.transition {
        Transition::Rise => 0,
        Transition::Fall => !0,
    };
    // Launch condition: g carries the fault's initial value under pattern 1.
    let act = match fault.transition {
        Transition::Rise => !gm.frame1[g],
        Transition::Fall => gm.frame1[g],
    } & gm.lanes_mask;
    if act == 0 {
        return 0;
    }
    // A fault effect exists at g only where the good frame-2 value differs
    // from the stuck value.
    if act & (gm.good[g] ^ init_word) == 0 {
        return 0;
    }
    let cone =
        worker.cones[g].get_or_insert_with(|| net.fanout_cone(fault.line).into_boxed_slice());
    worker.scratch[g] = init_word;
    // cone[0] is the faulty line itself: it must keep the forced value, so
    // evaluation starts at cone[1].
    comb::eval_packed_cone(net, &cone[1..], &mut worker.scratch);
    let mut diff_obs = 0u64;
    for &c in cone.iter() {
        if observable[c.index()] {
            diff_obs |= worker.scratch[c.index()] ^ gm.good[c.index()];
        }
    }
    for &c in cone.iter() {
        worker.scratch[c.index()] = gm.good[c.index()];
    }
    act & diff_obs
}

/// Accumulates per-call results; shared by both engines so their merge
/// semantics cannot drift apart.
struct Accum {
    newly: usize,
    cap: usize,
    counts: Option<Vec<usize>>,
    first: Option<Vec<Option<usize>>>,
    matrix: Option<DetectionMatrix>,
    activity: Option<Vec<usize>>,
}

impl Accum {
    fn new(opts: &FaultSimOptions, n_faults: usize, n_tests: usize) -> Self {
        Accum {
            newly: 0,
            cap: opts.n_detect,
            counts: (opts.n_detect > 1).then(|| vec![0usize; n_faults]),
            first: opts.first_detection.then(|| vec![None; n_faults]),
            matrix: opts.matrix.then(|| DetectionMatrix::new(n_faults, n_tests)),
            activity: opts.activity.then(|| vec![0usize; n_tests]),
        }
    }

    /// Merge the detecting lanes of fault `fi` in chunk `base`.
    fn record(&mut self, fi: usize, lanes: u64, base: usize, detected: &mut [bool]) {
        match &mut self.counts {
            Some(counts) => {
                if counts[fi] == 0 {
                    if let Some(first) = &mut self.first {
                        first[fi] = Some(base * 64 + lanes.trailing_zeros() as usize);
                    }
                }
                counts[fi] += lanes.count_ones() as usize;
                if counts[fi] >= self.cap && !detected[fi] {
                    detected[fi] = true;
                    self.newly += 1;
                }
            }
            None => {
                if !detected[fi] {
                    detected[fi] = true;
                    self.newly += 1;
                    if let Some(first) = &mut self.first {
                        first[fi] = Some(base * 64 + lanes.trailing_zeros() as usize);
                    }
                }
            }
        }
        if let Some(m) = &mut self.matrix {
            m.rows[fi][base] |= lanes;
        }
    }

    /// Add the fault-free launch→capture toggle counts of chunk `base`.
    fn record_activity(&mut self, gm: &GoodMachine, base: usize) {
        if let Some(act) = &mut self.activity {
            for (f1, f2) in gm.frame1.iter().zip(&gm.good) {
                let mut d = (f1 ^ f2) & gm.lanes_mask;
                while d != 0 {
                    act[base * 64 + d.trailing_zeros() as usize] += 1;
                    d &= d - 1;
                }
            }
        }
    }

    fn finish(self) -> SimOutcome {
        let cap = self.cap;
        SimOutcome {
            newly_detected: self.newly,
            counts: self
                .counts
                .map(|c| c.into_iter().map(|v| v.min(cap)).collect()),
            first_detection: self.first,
            matrix: self.matrix,
            activity: self.activity,
        }
    }
}

/// Shared observability precomputation: a node is observable when it drives
/// a primary output or a flip-flop D input.
fn observability(net: &Netlist) -> Vec<bool> {
    let mut observable = vec![false; net.num_nodes()];
    for &o in net.outputs() {
        observable[o.index()] = true;
    }
    for &d in net.dffs() {
        observable[net.node(d).fanins()[0].index()] = true;
    }
    observable
}

/// The original single-threaded engine, kept as the correctness oracle for
/// [`PackedParallelSim`] (see the `differential` integration tests).
#[derive(Debug)]
pub struct SerialSim<'a> {
    net: &'a Netlist,
    observable: Vec<bool>,
    scratch: Vec<u64>,
    cones: Vec<Option<Box<[NodeId]>>>,
}

impl<'a> SerialSim<'a> {
    /// Build a serial engine for one netlist (precomputes observability).
    pub fn new(net: &'a Netlist) -> Self {
        SerialSim {
            net,
            observable: observability(net),
            scratch: Vec::new(),
            cones: vec![None; net.num_nodes()],
        }
    }
}

impl FaultSimEngine for SerialSim<'_> {
    fn name(&self) -> &'static str {
        "serial"
    }

    fn simulate(
        &mut self,
        tests: TestSet<'_>,
        faults: &[TransitionFault],
        detected: &mut [bool],
        opts: &FaultSimOptions,
    ) -> SimOutcome {
        assert_eq!(faults.len(), detected.len(), "flag vector length mismatch");
        let net = self.net;
        let mut accum = Accum::new(opts, faults.len(), tests.len());
        // Borrow-friendly local worker view over this engine's state.
        let mut worker = Worker {
            scratch: std::mem::take(&mut self.scratch),
            cones: std::mem::take(&mut self.cones),
        };
        for base in 0..tests.len().div_ceil(64) {
            let start = base * 64;
            let end = (start + 64).min(tests.len());
            let chunk = tests.pack(net, start, end);
            let gm = eval_good(net, &chunk);
            accum.record_activity(&gm, base);
            worker.load_good(&gm);
            for (fi, fault) in faults.iter().enumerate() {
                if opts.fault_dropping && detected[fi] {
                    continue;
                }
                let lanes = fault_lanes(net, &self.observable, &gm, &mut worker, fault);
                if lanes != 0 {
                    accum.record(fi, lanes, base, detected);
                }
            }
        }
        self.scratch = worker.scratch;
        self.cones = worker.cones;
        accum.finish()
    }
}

/// The PPSFP engine: 64 tests per machine word, fault list sharded across
/// worker threads with [`std::thread::scope`].
///
/// Per 64-test chunk the fault-free machine (launch and capture frames) is
/// evaluated once and shared read-only; each worker then propagates its
/// shard of faults through private scratch buffers and per-worker fanout
/// cone caches, so no locking is needed anywhere. Detection flags are
/// merged between chunks, giving exactly the serial engine's fault-dropping
/// semantics — results are bit-identical to [`SerialSim`] for every thread
/// count.
#[derive(Debug)]
pub struct PackedParallelSim<'a> {
    net: &'a Netlist,
    observable: Vec<bool>,
    workers: Vec<Worker>,
}

impl std::fmt::Debug for Worker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Worker")
            .field(
                "cached_cones",
                &self.cones.iter().filter(|c| c.is_some()).count(),
            )
            .finish()
    }
}

impl<'a> PackedParallelSim<'a> {
    /// Build a parallel engine for one netlist.
    pub fn new(net: &'a Netlist) -> Self {
        PackedParallelSim {
            net,
            observable: observability(net),
            workers: Vec::new(),
        }
    }

    /// Resolve an options thread count against the machine.
    fn resolve_threads(opts: &FaultSimOptions, n_faults: usize) -> usize {
        let requested = if opts.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            opts.threads
        };
        requested.clamp(1, n_faults.max(1))
    }
}

impl FaultSimEngine for PackedParallelSim<'_> {
    fn name(&self) -> &'static str {
        "packed-parallel"
    }

    fn simulate(
        &mut self,
        tests: TestSet<'_>,
        faults: &[TransitionFault],
        detected: &mut [bool],
        opts: &FaultSimOptions,
    ) -> SimOutcome {
        assert_eq!(faults.len(), detected.len(), "flag vector length mismatch");
        let net = self.net;
        let threads = Self::resolve_threads(opts, faults.len());
        while self.workers.len() < threads {
            self.workers.push(Worker::new(net));
        }
        let observable = &self.observable;
        let mut accum = Accum::new(opts, faults.len(), tests.len());
        let shard = faults.len().div_ceil(threads).max(1);

        for base in 0..tests.len().div_ceil(64) {
            let start = base * 64;
            let end = (start + 64).min(tests.len());
            let chunk = tests.pack(net, start, end);
            let gm = eval_good(net, &chunk);
            accum.record_activity(&gm, base);

            if threads == 1 {
                // Inline fast path: no spawn overhead.
                let worker = &mut self.workers[0];
                worker.load_good(&gm);
                for (fi, fault) in faults.iter().enumerate() {
                    if opts.fault_dropping && detected[fi] {
                        continue;
                    }
                    let lanes = fault_lanes(net, observable, &gm, worker, fault);
                    if lanes != 0 {
                        accum.record(fi, lanes, base, detected);
                    }
                }
                continue;
            }

            // Shard the fault list; workers read a snapshot of the
            // detection flags (dropping takes effect between chunks, as in
            // the serial engine) and report (fault index, lanes) hits.
            let flags: &[bool] = detected;
            let dropping = opts.fault_dropping;
            let hits: Vec<Vec<(usize, u64)>> = std::thread::scope(|s| {
                let handles: Vec<_> = self
                    .workers
                    .iter_mut()
                    .zip(faults.chunks(shard))
                    .enumerate()
                    .map(|(w, (worker, shard_faults))| {
                        let gm = &gm;
                        s.spawn(move || {
                            let offset = w * shard;
                            worker.load_good(gm);
                            let mut hits = Vec::new();
                            for (i, fault) in shard_faults.iter().enumerate() {
                                if dropping && flags[offset + i] {
                                    continue;
                                }
                                let lanes = fault_lanes(net, observable, gm, worker, fault);
                                if lanes != 0 {
                                    hits.push((offset + i, lanes));
                                }
                            }
                            hits
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("fault-sim worker panicked"))
                    .collect()
            });
            for shard_hits in hits {
                for (fi, lanes) in shard_hits {
                    accum.record(fi, lanes, base, detected);
                }
            }
        }
        accum.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{all_transition_faults, sim::coverage_percent, sim::n_detect_coverage};
    use fbt_netlist::rng::Rng;
    use fbt_netlist::s27;
    use fbt_sim::Bits;

    fn random_tests(n: usize, n_pi: usize, n_ff: usize, seed: u64) -> Vec<BroadsideTest> {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|_| {
                BroadsideTest::new(
                    (0..n_ff).map(|_| rng.bit()).collect(),
                    (0..n_pi).map(|_| rng.bit()).collect(),
                    (0..n_pi).map(|_| rng.bit()).collect(),
                )
            })
            .collect()
    }

    /// Reference scalar implementation: simulate the whole faulty circuit.
    fn detects_reference(net: &Netlist, t: &BroadsideTest, f: &TransitionFault) -> bool {
        let mut f1 = vec![false; net.num_nodes()];
        for (i, &id) in net.inputs().iter().enumerate() {
            f1[id.index()] = t.v1.get(i);
        }
        for (i, &id) in net.dffs().iter().enumerate() {
            f1[id.index()] = t.scan_in.get(i);
        }
        comb::eval_scalar(net, &mut f1);
        if f1[f.line.index()] != f.transition.initial_value() {
            return false;
        }
        let mut good = vec![false; net.num_nodes()];
        for (i, &id) in net.inputs().iter().enumerate() {
            good[id.index()] = t.v2.get(i);
        }
        for &d in net.dffs() {
            good[d.index()] = f1[net.node(d).fanins()[0].index()];
        }
        comb::eval_scalar(net, &mut good);
        let mut faulty = good.clone();
        for (i, &id) in net.inputs().iter().enumerate() {
            faulty[id.index()] = t.v2.get(i);
        }
        faulty[f.line.index()] = f.transition.initial_value();
        for &id in net.eval_order() {
            if id == f.line {
                continue;
            }
            let node = net.node(id);
            let vals: Vec<bool> = node.fanins().iter().map(|x| faulty[x.index()]).collect();
            faulty[id.index()] = node.kind().eval(&vals);
        }
        let po_diff = net
            .outputs()
            .iter()
            .any(|&o| good[o.index()] != faulty[o.index()]);
        let ns_diff = net.dffs().iter().any(|&d| {
            let di = net.node(d).fanins()[0].index();
            good[di] != faulty[di]
        });
        po_diff || ns_diff
    }

    fn engines<'a>(net: &'a Netlist) -> Vec<Box<dyn FaultSimEngine + 'a>> {
        vec![
            Box::new(SerialSim::new(net)),
            Box::new(PackedParallelSim::new(net)),
        ]
    }

    #[test]
    fn both_engines_match_reference_on_s27() {
        let net = s27();
        let faults = all_transition_faults(&net);
        let tests = random_tests(40, 4, 3, 99);
        for mut engine in engines(&net) {
            for t in &tests {
                for f in &faults {
                    assert_eq!(
                        engine.detects(t, f),
                        detects_reference(&net, t, f),
                        "{} fault {f} test {t:?}",
                        engine.name()
                    );
                }
            }
        }
    }

    #[test]
    fn fault_dropping_counts() {
        let net = s27();
        let faults = all_transition_faults(&net);
        let tests = random_tests(128, 4, 3, 7);
        for mut engine in engines(&net) {
            let mut detected = vec![false; faults.len()];
            let n1 = engine.run(&tests, &faults, &mut detected);
            assert_eq!(n1, detected.iter().filter(|&&d| d).count());
            let n2 = engine.run(&tests, &faults, &mut detected);
            assert_eq!(n2, 0, "{}: re-run detects nothing new", engine.name());
            assert!(coverage_percent(&detected) > 50.0);
        }
    }

    #[test]
    fn first_detection_indices_are_earliest() {
        let net = s27();
        let faults = all_transition_faults(&net);
        let tests = random_tests(100, 4, 3, 21);
        let mut engine = PackedParallelSim::new(&net);
        let mut det = vec![false; faults.len()];
        let first = engine.first_detections(&tests, &faults, &mut det);
        let mut oracle = SerialSim::new(&net);
        for (fi, f) in faults.iter().enumerate() {
            if let Some(ti) = first[fi] {
                assert!(det[fi]);
                for (tj, t) in tests.iter().enumerate().take(ti) {
                    assert!(!oracle.detects(t, f), "test {tj} already detects {f}");
                }
                assert!(oracle.detects(&tests[ti], f));
            } else {
                assert!(!det[fi]);
            }
        }
    }

    #[test]
    fn batch_equals_single_test_runs() {
        let net = s27();
        let faults = all_transition_faults(&net);
        let tests = random_tests(70, 4, 3, 5);
        for mut engine in engines(&net) {
            let mut det_batch = vec![false; faults.len()];
            engine.run(&tests, &faults, &mut det_batch);
            let mut det_single = vec![false; faults.len()];
            for t in &tests {
                for (fi, f) in faults.iter().enumerate() {
                    if !det_single[fi] && engine.detects(t, f) {
                        det_single[fi] = true;
                    }
                }
            }
            assert_eq!(det_batch, det_single, "{}", engine.name());
        }
    }

    #[test]
    fn two_pattern_with_natural_state_matches_broadside() {
        let net = s27();
        let faults = all_transition_faults(&net);
        let tests = random_tests(80, 4, 3, 33);
        let expanded: Vec<TwoPatternTest> = tests
            .iter()
            .map(|t| TwoPatternTest::from_broadside(&net, t))
            .collect();
        for mut engine in engines(&net) {
            let mut det_a = vec![false; faults.len()];
            engine.run(&tests, &faults, &mut det_a);
            let mut det_b = vec![false; faults.len()];
            engine.run_two_pattern(&expanded, &faults, &mut det_b);
            assert_eq!(det_a, det_b, "{}", engine.name());
        }
    }

    #[test]
    fn two_pattern_with_held_state_changes_detection() {
        let net = s27();
        let faults = all_transition_faults(&net);
        let tests = random_tests(60, 4, 3, 77);
        let natural: Vec<TwoPatternTest> = tests
            .iter()
            .map(|t| TwoPatternTest::from_broadside(&net, t))
            .collect();
        let held: Vec<TwoPatternTest> = natural
            .iter()
            .map(|t| {
                let mut s2 = t.s2.clone();
                s2.set(0, !s2.get(0)); // hold/flip one flip-flop
                TwoPatternTest::new(t.s1.clone(), t.v1.clone(), s2, t.v2.clone())
            })
            .collect();
        let mut engine = PackedParallelSim::new(&net);
        let mut det_nat = vec![false; faults.len()];
        engine.run_two_pattern(&natural, &faults, &mut det_nat);
        let mut det_held = vec![false; faults.len()];
        engine.run_two_pattern(&held, &faults, &mut det_held);
        assert_ne!(det_nat, det_held, "held states should alter detections");
    }

    #[test]
    fn n_detect_profile_consistent_with_plain_run() {
        let net = s27();
        let faults = all_transition_faults(&net);
        let tests = random_tests(120, 4, 3, 55);
        for mut engine in engines(&net) {
            let counts = engine.n_detect_profile(&tests, &faults, 5);
            let mut detected = vec![false; faults.len()];
            engine.run(&tests, &faults, &mut detected);
            for (c, d) in counts.iter().zip(&detected) {
                assert_eq!(*c >= 1, *d, "1-detect must agree with plain detection");
                assert!(*c <= 5, "cap respected");
            }
            let c1 = n_detect_coverage(&counts, 1);
            let c3 = n_detect_coverage(&counts, 3);
            let c5 = n_detect_coverage(&counts, 5);
            assert!(c1 >= c3 && c3 >= c5);
            assert_eq!(c1, coverage_percent(&detected));
        }
    }

    #[test]
    fn n_detect_counts_are_exact_for_small_cases() {
        let net = s27();
        let faults = all_transition_faults(&net);
        let tests = random_tests(70, 4, 3, 8);
        for mut engine in engines(&net) {
            let counts = engine.n_detect_profile(&tests, &faults, 1_000);
            for (fi, f) in faults.iter().enumerate() {
                let brute = tests.iter().filter(|t| engine.detects(t, f)).count();
                assert_eq!(counts[fi], brute, "fault {f}");
            }
        }
    }

    #[test]
    fn detection_matrix_agrees_with_detects() {
        let net = s27();
        let faults = all_transition_faults(&net);
        let tests = random_tests(70, 4, 3, 13);
        let mut engine = PackedParallelSim::new(&net);
        let matrix = engine.detection_matrix(&tests, &faults);
        assert_eq!(matrix.num_faults(), faults.len());
        assert_eq!(matrix.num_tests(), tests.len());
        let mut oracle = SerialSim::new(&net);
        for (fi, f) in faults.iter().enumerate() {
            for (ti, t) in tests.iter().enumerate() {
                assert_eq!(
                    matrix.detects(fi, ti),
                    oracle.detects(t, f),
                    "fault {f} test {ti}"
                );
            }
        }
    }

    #[test]
    fn explicit_thread_counts_are_bit_identical() {
        let net = s27();
        let faults = all_transition_faults(&net);
        let tests = random_tests(200, 4, 3, 41);
        let mut reference = vec![false; faults.len()];
        SerialSim::new(&net).simulate(
            TestSet::Broadside(&tests),
            &faults,
            &mut reference,
            &FaultSimOptions::new(),
        );
        for threads in [1, 2, 3, 7] {
            let mut engine = PackedParallelSim::new(&net);
            let mut detected = vec![false; faults.len()];
            let out = engine.simulate(
                TestSet::Broadside(&tests),
                &faults,
                &mut detected,
                &FaultSimOptions::new().threads(threads),
            );
            assert_eq!(detected, reference, "threads={threads}");
            assert_eq!(out.newly_detected, reference.iter().filter(|&&d| d).count());
        }
    }

    #[test]
    fn activity_accounting_matches_scalar_toggles() {
        let net = s27();
        let faults = all_transition_faults(&net);
        let tests = random_tests(10, 4, 3, 3);
        let mut engine = PackedParallelSim::new(&net);
        let mut detected = vec![false; faults.len()];
        let out = engine.simulate(
            TestSet::Broadside(&tests),
            &faults,
            &mut detected,
            &FaultSimOptions::new().activity(true),
        );
        let activity = out.activity.expect("activity requested");
        assert_eq!(activity.len(), tests.len());
        for (t, &toggles) in tests.iter().zip(&activity) {
            // Scalar reference: count nodes differing between the two frames.
            let mut f1 = vec![false; net.num_nodes()];
            for (i, &id) in net.inputs().iter().enumerate() {
                f1[id.index()] = t.v1.get(i);
            }
            for (i, &id) in net.dffs().iter().enumerate() {
                f1[id.index()] = t.scan_in.get(i);
            }
            comb::eval_scalar(&net, &mut f1);
            let mut f2 = vec![false; net.num_nodes()];
            for (i, &id) in net.inputs().iter().enumerate() {
                f2[id.index()] = t.v2.get(i);
            }
            for &d in net.dffs() {
                f2[d.index()] = f1[net.node(d).fanins()[0].index()];
            }
            comb::eval_scalar(&net, &mut f2);
            let expect = (0..net.num_nodes()).filter(|&i| f1[i] != f2[i]).count();
            assert_eq!(toggles, expect, "test {t:?}");
        }
    }

    #[test]
    fn options_builder_roundtrip() {
        let opts = FaultSimOptions::new()
            .n_detect(7)
            .threads(3)
            .fault_dropping(false)
            .first_detection(true)
            .activity(true);
        assert_eq!(opts.n_detect_cap(), 7);
        assert_eq!(opts.thread_count(), 3);
        assert!(!opts.drops_faults());
        let m = FaultSimOptions::new().detection_matrix(true);
        assert!(!m.drops_faults(), "matrix recording implies no dropping");
    }

    #[test]
    fn empty_test_set_is_a_no_op() {
        let net = s27();
        let faults = all_transition_faults(&net);
        for mut engine in engines(&net) {
            let mut detected = vec![false; faults.len()];
            assert_eq!(engine.run(&[], &faults, &mut detected), 0);
            assert!(detected.iter().all(|&d| !d));
        }
    }

    #[test]
    fn from_str01_doc_smoke() {
        // The engine doc example's test vector: keep it detecting something.
        let net = s27();
        let faults = all_transition_faults(&net);
        let tests = vec![BroadsideTest::new(
            Bits::from_str01("000"),
            Bits::from_str01("0000"),
            Bits::from_str01("1000"),
        )];
        let mut engine = PackedParallelSim::new(&net);
        let mut detected = vec![false; faults.len()];
        let newly = engine.run(&tests, &faults, &mut detected);
        assert_eq!(newly, detected.iter().filter(|&&d| d).count());
    }
}
