//! Bit-parallel broadside transition-fault simulation.
//!
//! Tests are packed 64 per machine word; faults are simulated serially with
//! fault dropping and cone-limited forward propagation. A transition fault
//! `v → v'` on line `g` is detected by a broadside test when
//!
//! 1. the first pattern establishes `g = v` (launch condition), and
//! 2. under the second pattern the stuck-at-`v` fault on `g` is observed at a
//!    primary output or captured into a flip-flop (paper §1.2, Fig. 1.3).

use std::collections::HashMap;

use fbt_netlist::{Netlist, NodeId};
use fbt_sim::comb;

use crate::{BroadsideTest, Transition, TransitionFault, TwoPatternTest};

/// A reusable broadside transition-fault simulator for one netlist.
///
/// # Example
///
/// ```
/// use fbt_fault::{all_transition_faults, sim::FaultSim, BroadsideTest};
/// use fbt_netlist::s27;
/// use fbt_sim::Bits;
///
/// let net = s27();
/// let faults = all_transition_faults(&net);
/// let mut detected = vec![false; faults.len()];
/// let mut fsim = FaultSim::new(&net);
/// let tests = vec![BroadsideTest::new(
///     Bits::from_str01("000"),
///     Bits::from_str01("0000"),
///     Bits::from_str01("1000"),
/// )];
/// let newly = fsim.run(&tests, &faults, &mut detected);
/// assert_eq!(newly, detected.iter().filter(|&&d| d).count());
/// ```
#[derive(Debug)]
pub struct FaultSim<'a> {
    net: &'a Netlist,
    /// Whether each node is directly observable (drives a PO or a flip-flop
    /// D input).
    observable: Vec<bool>,
    cone_cache: HashMap<NodeId, Box<[NodeId]>>,
}

impl<'a> FaultSim<'a> {
    /// Build a simulator (precomputes observability).
    pub fn new(net: &'a Netlist) -> Self {
        let mut observable = vec![false; net.num_nodes()];
        for &o in net.outputs() {
            observable[o.index()] = true;
        }
        for &d in net.dffs() {
            observable[net.node(d).fanins()[0].index()] = true;
        }
        FaultSim {
            net,
            observable,
            cone_cache: HashMap::new(),
        }
    }

    /// Simulate `tests` against the faults whose `detected` flag is still
    /// false; set the flag for each newly detected fault and return how many
    /// were newly detected.
    ///
    /// # Panics
    ///
    /// Panics if `detected.len() != faults.len()` or test widths mismatch.
    pub fn run(
        &mut self,
        tests: &[BroadsideTest],
        faults: &[TransitionFault],
        detected: &mut [bool],
    ) -> usize {
        assert_eq!(faults.len(), detected.len(), "flag vector length mismatch");
        let mut newly = 0;
        for chunk in tests.chunks(64) {
            newly += self.run_batch(chunk, faults, detected, &mut |_, _| {});
        }
        newly
    }

    /// Simulate two-pattern tests whose second-pattern state is given
    /// explicitly rather than derived from the first pattern.
    ///
    /// Used for the state-holding DFT of §4.5: when some flip-flops are held
    /// during the launch transition, the second-pattern state differs from
    /// the circuit's natural response to `<s1, v1>` (that is the point — it
    /// may be unreachable), so it must be supplied.
    ///
    /// # Panics
    ///
    /// Panics if `detected.len() != faults.len()` or test widths mismatch.
    pub fn run_two_pattern(
        &mut self,
        tests: &[TwoPatternTest],
        faults: &[TransitionFault],
        detected: &mut [bool],
    ) -> usize {
        assert_eq!(faults.len(), detected.len(), "flag vector length mismatch");
        let mut newly = 0;
        for chunk in tests.chunks(64) {
            newly += self.run_batch_two_pattern(chunk, faults, detected, &mut |_, _| {});
        }
        newly
    }

    /// Like [`FaultSim::run`], but also report, for each newly detected
    /// fault, the index (into `tests`) of the first test that detects it.
    pub fn run_first_detection(
        &mut self,
        tests: &[BroadsideTest],
        faults: &[TransitionFault],
        detected: &mut [bool],
    ) -> Vec<Option<usize>> {
        assert_eq!(faults.len(), detected.len(), "flag vector length mismatch");
        let mut first = vec![None; faults.len()];
        for (base, chunk) in tests.chunks(64).enumerate() {
            self.run_batch(chunk, faults, detected, &mut |fault_idx, lanes| {
                let lane = lanes.trailing_zeros() as usize;
                first[fault_idx] = Some(base * 64 + lane);
            });
        }
        first
    }

    /// N-detection profile: for each fault, how many of `tests` detect it,
    /// saturating at `cap`.
    ///
    /// Built-in test generation "naturally achieves n-detection" (paper
    /// §4.1) because it applies many more tests than a compacted
    /// deterministic set; this profile quantifies that claim
    /// (see `n_detect_coverage`).
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn run_n_detect(
        &mut self,
        tests: &[BroadsideTest],
        faults: &[TransitionFault],
        cap: usize,
    ) -> Vec<usize> {
        assert!(cap > 0, "cap must be positive");
        let mut counts = vec![0usize; faults.len()];
        let mut saturated = vec![false; faults.len()];
        for chunk in tests.chunks(64) {
            let mut flags = saturated.clone();
            self.run_batch(chunk, faults, &mut flags, &mut |fi, lanes| {
                counts[fi] += lanes.count_ones() as usize;
            });
            for (s, c) in saturated.iter_mut().zip(&counts) {
                if *c >= cap {
                    *s = true;
                }
            }
        }
        counts.iter().map(|&c| c.min(cap)).collect()
    }

    /// Full detection matrix without fault dropping: for each fault, a
    /// bitset (64 tests per word) of which tests detect it.
    ///
    /// Used by the transition-path-delay-fault pipeline (§2.3.3), where a
    /// path fault is detected by a test only if the test detects *every*
    /// transition fault along the path — an AND over rows of this matrix.
    pub fn detection_matrix(
        &mut self,
        tests: &[BroadsideTest],
        faults: &[TransitionFault],
    ) -> Vec<Vec<u64>> {
        let words = tests.len().div_ceil(64);
        let mut matrix = vec![vec![0u64; words]; faults.len()];
        for (base, chunk) in tests.chunks(64).enumerate() {
            // Fresh flags per chunk: no dropping, we want every detection.
            let mut detected = vec![false; faults.len()];
            self.run_batch(chunk, faults, &mut detected, &mut |fi, lanes| {
                matrix[fi][base] |= lanes;
            });
        }
        matrix
    }

    /// Does a single test detect a single fault?
    pub fn detects(&mut self, test: &BroadsideTest, fault: &TransitionFault) -> bool {
        let mut detected = [false];
        self.run_batch(
            std::slice::from_ref(test),
            std::slice::from_ref(fault),
            &mut detected,
            &mut |_, _| {},
        );
        detected[0]
    }

    /// Pack broadside tests and delegate (second state derived from frame 1).
    fn run_batch(
        &mut self,
        tests: &[BroadsideTest],
        faults: &[TransitionFault],
        detected: &mut [bool],
        on_detect: &mut dyn FnMut(usize, u64),
    ) -> usize {
        assert!(tests.len() <= 64, "batch too wide");
        if tests.is_empty() {
            return 0;
        }
        let net = self.net;
        let n_pi = net.num_inputs();
        let n_ff = net.num_dffs();
        let mut v1w = vec![0u64; n_pi];
        let mut v2w = vec![0u64; n_pi];
        let mut s1w = vec![0u64; n_ff];
        for (lane, t) in tests.iter().enumerate() {
            assert_eq!(t.v1.len(), n_pi, "PI width mismatch");
            assert_eq!(t.scan_in.len(), n_ff, "state width mismatch");
            let bit = 1u64 << lane;
            for i in 0..n_pi {
                if t.v1.get(i) {
                    v1w[i] |= bit;
                }
                if t.v2.get(i) {
                    v2w[i] |= bit;
                }
            }
            for (i, w) in s1w.iter_mut().enumerate() {
                if t.scan_in.get(i) {
                    *w |= bit;
                }
            }
        }
        self.run_batch_words(tests.len(), &v1w, &s1w, None, &v2w, faults, detected, on_detect)
    }

    /// Pack two-pattern tests with explicit second states and delegate.
    fn run_batch_two_pattern(
        &mut self,
        tests: &[TwoPatternTest],
        faults: &[TransitionFault],
        detected: &mut [bool],
        on_detect: &mut dyn FnMut(usize, u64),
    ) -> usize {
        assert!(tests.len() <= 64, "batch too wide");
        if tests.is_empty() {
            return 0;
        }
        let net = self.net;
        let n_pi = net.num_inputs();
        let n_ff = net.num_dffs();
        let mut v1w = vec![0u64; n_pi];
        let mut v2w = vec![0u64; n_pi];
        let mut s1w = vec![0u64; n_ff];
        let mut s2w = vec![0u64; n_ff];
        for (lane, t) in tests.iter().enumerate() {
            assert_eq!(t.v1.len(), n_pi, "PI width mismatch");
            assert_eq!(t.s1.len(), n_ff, "state width mismatch");
            assert_eq!(t.s2.len(), n_ff, "state width mismatch");
            let bit = 1u64 << lane;
            for i in 0..n_pi {
                if t.v1.get(i) {
                    v1w[i] |= bit;
                }
                if t.v2.get(i) {
                    v2w[i] |= bit;
                }
            }
            for (i, (w1, w2)) in s1w.iter_mut().zip(s2w.iter_mut()).enumerate() {
                if t.s1.get(i) {
                    *w1 |= bit;
                }
                if t.s2.get(i) {
                    *w2 |= bit;
                }
            }
        }
        self.run_batch_words(
            tests.len(),
            &v1w,
            &s1w,
            Some(s2w),
            &v2w,
            faults,
            detected,
            on_detect,
        )
    }

    /// Core word-packed batch. `on_detect(fault_idx, lane_mask)` fires for
    /// each newly detected fault with the mask of detecting lanes.
    #[allow(clippy::too_many_arguments)]
    fn run_batch_words(
        &mut self,
        n_tests: usize,
        v1w: &[u64],
        s1w: &[u64],
        s2w: Option<Vec<u64>>,
        v2w: &[u64],
        faults: &[TransitionFault],
        detected: &mut [bool],
        on_detect: &mut dyn FnMut(usize, u64),
    ) -> usize {
        let net = self.net;
        let lanes_mask: u64 = if n_tests == 64 {
            !0
        } else {
            (1u64 << n_tests) - 1
        };

        // Frame 1 (launch values).
        let mut frame1 = vec![0u64; net.num_nodes()];
        comb::load_sources_packed(net, v1w, s1w, &mut frame1);
        comb::eval_packed(net, &mut frame1);
        let s2w = s2w.unwrap_or_else(|| comb::next_state_packed(net, &frame1));

        // Frame 2 (fault-free).
        let mut good = vec![0u64; net.num_nodes()];
        comb::load_sources_packed(net, v2w, &s2w, &mut good);
        comb::eval_packed(net, &mut good);

        let mut scratch = good.clone();
        let mut newly = 0;

        for (fi, fault) in faults.iter().enumerate() {
            if detected[fi] {
                continue;
            }
            let g = fault.line.index();
            let init_word: u64 = match fault.transition {
                Transition::Rise => 0,
                Transition::Fall => !0,
            };
            // Launch condition: g = initial value under pattern 1.
            let act = match fault.transition {
                Transition::Rise => !frame1[g],
                Transition::Fall => frame1[g],
            } & lanes_mask;
            if act == 0 {
                continue;
            }
            // Fault effect exists at g only in lanes where the good frame-2
            // value differs from the stuck value.
            if act & (good[g] ^ init_word) == 0 {
                continue;
            }

            self.cone_cache.entry(fault.line).or_insert_with(|| {
                
                net.fanout_cone(fault.line).into_boxed_slice()
            });
            let cone = &self.cone_cache[&fault.line];

            scratch[g] = init_word;
            // cone[0] is the faulty line itself: it must keep the forced
            // value, so evaluation starts at cone[1].
            comb::eval_packed_cone(net, &cone[1..], &mut scratch);
            let mut diff_obs = 0u64;
            for &c in cone.iter() {
                if self.observable[c.index()] {
                    diff_obs |= scratch[c.index()] ^ good[c.index()];
                }
            }
            // Restore scratch to fault-free values.
            for &c in cone.iter() {
                scratch[c.index()] = good[c.index()];
            }

            let det = act & diff_obs;
            if det != 0 {
                detected[fi] = true;
                newly += 1;
                on_detect(fi, det);
            }
        }
        newly
    }
}

/// Fault coverage: detected / total, in percent.
pub fn coverage_percent(detected: &[bool]) -> f64 {
    if detected.is_empty() {
        return 0.0;
    }
    100.0 * detected.iter().filter(|&&d| d).count() as f64 / detected.len() as f64
}

/// N-detect coverage: the percentage of faults detected by at least `n`
/// different tests, from a profile produced by `FaultSim::run_n_detect`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn n_detect_coverage(counts: &[usize], n: usize) -> f64 {
    assert!(n > 0, "n must be positive");
    if counts.is_empty() {
        return 0.0;
    }
    100.0 * counts.iter().filter(|&&c| c >= n).count() as f64 / counts.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_transition_faults;
    use fbt_netlist::rng::Rng;
    use fbt_netlist::s27;

    fn random_tests(n: usize, n_pi: usize, n_ff: usize, seed: u64) -> Vec<BroadsideTest> {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|_| {
                BroadsideTest::new(
                    (0..n_ff).map(|_| rng.bit()).collect(),
                    (0..n_pi).map(|_| rng.bit()).collect(),
                    (0..n_pi).map(|_| rng.bit()).collect(),
                )
            })
            .collect()
    }

    /// Reference scalar implementation: simulate the whole faulty circuit.
    fn detects_reference(net: &Netlist, t: &BroadsideTest, f: &TransitionFault) -> bool {
        // Frame 1 values.
        let mut f1 = vec![false; net.num_nodes()];
        for (i, &id) in net.inputs().iter().enumerate() {
            f1[id.index()] = t.v1.get(i);
        }
        for (i, &id) in net.dffs().iter().enumerate() {
            f1[id.index()] = t.scan_in.get(i);
        }
        comb::eval_scalar(net, &mut f1);
        if f1[f.line.index()] != f.transition.initial_value() {
            return false;
        }
        // Frame 2, fault-free.
        let mut good = vec![false; net.num_nodes()];
        for (i, &id) in net.inputs().iter().enumerate() {
            good[id.index()] = t.v2.get(i);
        }
        for &d in net.dffs() {
            good[d.index()] = f1[net.node(d).fanins()[0].index()];
        }
        comb::eval_scalar(net, &mut good);
        // Frame 2, faulty: g stuck at initial value; full re-evaluation with
        // the forced value (including through reconvergence).
        let mut faulty = good.clone();
        for (i, &id) in net.inputs().iter().enumerate() {
            faulty[id.index()] = t.v2.get(i);
        }
        faulty[f.line.index()] = f.transition.initial_value();
        for &id in net.eval_order() {
            if id == f.line {
                continue;
            }
            let node = net.node(id);
            let v = {
                let vals: Vec<bool> = node.fanins().iter().map(|x| faulty[x.index()]).collect();
                node.kind().eval(&vals)
            };
            faulty[id.index()] = v;
        }
        let po_diff = net.outputs().iter().any(|&o| good[o.index()] != faulty[o.index()]);
        let ns_diff = net.dffs().iter().any(|&d| {
            let di = net.node(d).fanins()[0].index();
            good[di] != faulty[di]
        });
        po_diff || ns_diff
    }

    #[test]
    fn matches_reference_on_s27() {
        let net = s27();
        let faults = all_transition_faults(&net);
        let tests = random_tests(40, 4, 3, 99);
        let mut fsim = FaultSim::new(&net);
        for t in &tests {
            for f in &faults {
                assert_eq!(
                    fsim.detects(t, f),
                    detects_reference(&net, t, f),
                    "fault {f} test {t:?}"
                );
            }
        }
    }

    #[test]
    fn fault_dropping_counts() {
        let net = s27();
        let faults = all_transition_faults(&net);
        let tests = random_tests(128, 4, 3, 7);
        let mut detected = vec![false; faults.len()];
        let mut fsim = FaultSim::new(&net);
        let n1 = fsim.run(&tests, &faults, &mut detected);
        assert_eq!(n1, detected.iter().filter(|&&d| d).count());
        // Re-running the same tests detects nothing new.
        let n2 = fsim.run(&tests, &faults, &mut detected);
        assert_eq!(n2, 0);
        // Random tests on s27 should detect a decent share of faults.
        assert!(coverage_percent(&detected) > 50.0);
    }

    #[test]
    fn first_detection_indices_are_earliest() {
        let net = s27();
        let faults = all_transition_faults(&net);
        let tests = random_tests(100, 4, 3, 21);
        let mut det_a = vec![false; faults.len()];
        let mut fsim = FaultSim::new(&net);
        let first = fsim.run_first_detection(&tests, &faults, &mut det_a);
        for (fi, f) in faults.iter().enumerate() {
            if let Some(ti) = first[fi] {
                assert!(det_a[fi]);
                // No earlier test detects it.
                let mut fsim2 = FaultSim::new(&net);
                for (tj, t) in tests.iter().enumerate().take(ti) {
                    assert!(!fsim2.detects(t, f), "test {tj} already detects {f}");
                }
                assert!(fsim2.detects(&tests[ti], f));
            } else {
                assert!(!det_a[fi]);
            }
        }
    }

    #[test]
    fn batch_equals_single_test_runs() {
        let net = s27();
        let faults = all_transition_faults(&net);
        let tests = random_tests(70, 4, 3, 5);
        let mut det_batch = vec![false; faults.len()];
        let mut fsim = FaultSim::new(&net);
        fsim.run(&tests, &faults, &mut det_batch);
        let mut det_single = vec![false; faults.len()];
        for t in &tests {
            for (fi, f) in faults.iter().enumerate() {
                if !det_single[fi] && fsim.detects(t, f) {
                    det_single[fi] = true;
                }
            }
        }
        assert_eq!(det_batch, det_single);
    }

    #[test]
    fn two_pattern_with_natural_state_matches_broadside() {
        let net = s27();
        let faults = all_transition_faults(&net);
        let tests = random_tests(80, 4, 3, 33);
        let expanded: Vec<crate::TwoPatternTest> = tests
            .iter()
            .map(|t| crate::TwoPatternTest::from_broadside(&net, t))
            .collect();
        let mut fsim = FaultSim::new(&net);
        let mut det_a = vec![false; faults.len()];
        fsim.run(&tests, &faults, &mut det_a);
        let mut det_b = vec![false; faults.len()];
        fsim.run_two_pattern(&expanded, &faults, &mut det_b);
        assert_eq!(det_a, det_b);
    }

    #[test]
    fn two_pattern_with_held_state_changes_detection() {
        // Forcing a different second state must be able to change detection
        // results (that is the whole point of state holding).
        let net = s27();
        let faults = all_transition_faults(&net);
        let tests = random_tests(60, 4, 3, 77);
        let mut fsim = FaultSim::new(&net);
        let natural: Vec<crate::TwoPatternTest> = tests
            .iter()
            .map(|t| crate::TwoPatternTest::from_broadside(&net, t))
            .collect();
        let held: Vec<crate::TwoPatternTest> = natural
            .iter()
            .map(|t| {
                let mut s2 = t.s2.clone();
                s2.set(0, !s2.get(0)); // hold/flip one flip-flop
                crate::TwoPatternTest::new(t.s1.clone(), t.v1.clone(), s2, t.v2.clone())
            })
            .collect();
        let mut det_nat = vec![false; faults.len()];
        fsim.run_two_pattern(&natural, &faults, &mut det_nat);
        let mut det_held = vec![false; faults.len()];
        fsim.run_two_pattern(&held, &faults, &mut det_held);
        assert_ne!(det_nat, det_held, "held states should alter detections");
    }

    #[test]
    fn coverage_percent_edges() {
        assert_eq!(coverage_percent(&[]), 0.0);
        assert_eq!(coverage_percent(&[true, true]), 100.0);
        assert_eq!(coverage_percent(&[true, false, false, false]), 25.0);
    }

    #[test]
    fn n_detect_profile_consistent_with_plain_run() {
        let net = s27();
        let faults = all_transition_faults(&net);
        let tests = random_tests(120, 4, 3, 55);
        let mut fsim = FaultSim::new(&net);
        let counts = fsim.run_n_detect(&tests, &faults, 5);
        let mut detected = vec![false; faults.len()];
        fsim.run(&tests, &faults, &mut detected);
        for (c, d) in counts.iter().zip(&detected) {
            assert_eq!(*c >= 1, *d, "1-detect must agree with plain detection");
            assert!(*c <= 5, "cap respected");
        }
        // n-detect coverage is non-increasing in n.
        let c1 = n_detect_coverage(&counts, 1);
        let c3 = n_detect_coverage(&counts, 3);
        let c5 = n_detect_coverage(&counts, 5);
        assert!(c1 >= c3 && c3 >= c5);
        assert_eq!(c1, coverage_percent(&detected));
    }

    #[test]
    fn n_detect_counts_are_exact_for_small_cases() {
        let net = s27();
        let faults = all_transition_faults(&net);
        let tests = random_tests(70, 4, 3, 8);
        let mut fsim = FaultSim::new(&net);
        let counts = fsim.run_n_detect(&tests, &faults, 1_000);
        for (fi, f) in faults.iter().enumerate() {
            let brute = tests.iter().filter(|t| fsim.detects(t, f)).count();
            assert_eq!(counts[fi], brute, "fault {f}");
        }
    }
}
