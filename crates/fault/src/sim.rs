//! Coverage metrics over detection flags and n-detect profiles.
//!
//! The simulator itself lives in [`crate::engine`] behind the
//! [`FaultSimEngine`](crate::engine::FaultSimEngine) trait — use
//! [`SerialSim`](crate::engine::SerialSim) for oracle-grade serial
//! simulation or [`PackedParallelSim`](crate::engine::PackedParallelSim)
//! for the multi-threaded PPSFP engine.

/// Fault coverage: detected / total, in percent.
pub fn coverage_percent(detected: &[bool]) -> f64 {
    if detected.is_empty() {
        return 0.0;
    }
    100.0 * detected.iter().filter(|&&d| d).count() as f64 / detected.len() as f64
}

/// N-detect coverage: the percentage of faults detected by at least `n`
/// different tests, from a profile produced by
/// [`crate::FaultSimEngine::n_detect_profile`].
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn n_detect_coverage(counts: &[usize], n: usize) -> f64 {
    assert!(n > 0, "n must be positive");
    if counts.is_empty() {
        return 0.0;
    }
    100.0 * counts.iter().filter(|&&c| c >= n).count() as f64 / counts.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_percent_edges() {
        assert_eq!(coverage_percent(&[]), 0.0);
        assert_eq!(coverage_percent(&[true, true]), 100.0);
        assert_eq!(coverage_percent(&[true, false, false, false]), 25.0);
    }

    #[test]
    fn n_detect_coverage_edges() {
        assert_eq!(n_detect_coverage(&[], 1), 0.0);
        assert_eq!(n_detect_coverage(&[0, 1, 2, 3], 1), 75.0);
        assert_eq!(n_detect_coverage(&[0, 1, 2, 3], 3), 25.0);
    }
}
