//! Legacy fault-simulation entry point and coverage helpers.
//!
//! The simulator itself now lives in [`crate::engine`] behind the
//! [`FaultSimEngine`](crate::engine::FaultSimEngine) trait; [`FaultSim`]
//! remains as a deprecated shim that delegates every call to
//! [`SerialSim`](crate::engine::SerialSim) so existing code keeps working
//! during the migration.

use fbt_netlist::Netlist;

use crate::engine::{FaultSimEngine, SerialSim};
use crate::{BroadsideTest, TransitionFault, TwoPatternTest};

/// Deprecated façade over [`SerialSim`].
///
/// New code should use the [`FaultSimEngine`] trait directly — with
/// [`SerialSim`] for oracle-grade serial simulation or
/// [`PackedParallelSim`](crate::engine::PackedParallelSim) for the
/// multi-threaded PPSFP engine.
#[deprecated(
    since = "0.1.0",
    note = "use the `FaultSimEngine` trait with `SerialSim` or `PackedParallelSim` from `fbt_fault::engine`"
)]
#[derive(Debug)]
pub struct FaultSim<'a> {
    inner: SerialSim<'a>,
}

#[allow(deprecated)]
impl<'a> FaultSim<'a> {
    /// Build a simulator (precomputes observability).
    pub fn new(net: &'a Netlist) -> Self {
        FaultSim {
            inner: SerialSim::new(net),
        }
    }

    /// Simulate `tests` against the faults whose `detected` flag is still
    /// false; see [`FaultSimEngine::run`].
    pub fn run(
        &mut self,
        tests: &[BroadsideTest],
        faults: &[TransitionFault],
        detected: &mut [bool],
    ) -> usize {
        self.inner.run(tests, faults, detected)
    }

    /// Simulate two-pattern tests with explicit second states; see
    /// [`FaultSimEngine::run_two_pattern`].
    pub fn run_two_pattern(
        &mut self,
        tests: &[TwoPatternTest],
        faults: &[TransitionFault],
        detected: &mut [bool],
    ) -> usize {
        self.inner.run_two_pattern(tests, faults, detected)
    }

    /// First-detection indices; see [`FaultSimEngine::first_detections`].
    pub fn run_first_detection(
        &mut self,
        tests: &[BroadsideTest],
        faults: &[TransitionFault],
        detected: &mut [bool],
    ) -> Vec<Option<usize>> {
        self.inner.first_detections(tests, faults, detected)
    }

    /// N-detection profile; see [`FaultSimEngine::n_detect_profile`].
    pub fn run_n_detect(
        &mut self,
        tests: &[BroadsideTest],
        faults: &[TransitionFault],
        cap: usize,
    ) -> Vec<usize> {
        self.inner.n_detect_profile(tests, faults, cap)
    }

    /// Full detection matrix as raw rows; see
    /// [`FaultSimEngine::detection_matrix`].
    pub fn detection_matrix(
        &mut self,
        tests: &[BroadsideTest],
        faults: &[TransitionFault],
    ) -> Vec<Vec<u64>> {
        FaultSimEngine::detection_matrix(&mut self.inner, tests, faults).into_rows()
    }

    /// Does a single test detect a single fault? See
    /// [`FaultSimEngine::detects`].
    pub fn detects(&mut self, test: &BroadsideTest, fault: &TransitionFault) -> bool {
        self.inner.detects(test, fault)
    }
}

/// Fault coverage: detected / total, in percent.
pub fn coverage_percent(detected: &[bool]) -> f64 {
    if detected.is_empty() {
        return 0.0;
    }
    100.0 * detected.iter().filter(|&&d| d).count() as f64 / detected.len() as f64
}

/// N-detect coverage: the percentage of faults detected by at least `n`
/// different tests, from a profile produced by
/// [`FaultSimEngine::n_detect_profile`].
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn n_detect_coverage(counts: &[usize], n: usize) -> f64 {
    assert!(n > 0, "n must be positive");
    if counts.is_empty() {
        return 0.0;
    }
    100.0 * counts.iter().filter(|&&c| c >= n).count() as f64 / counts.len() as f64
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::all_transition_faults;
    use fbt_netlist::rng::Rng;
    use fbt_netlist::s27;

    #[test]
    fn coverage_percent_edges() {
        assert_eq!(coverage_percent(&[]), 0.0);
        assert_eq!(coverage_percent(&[true, true]), 100.0);
        assert_eq!(coverage_percent(&[true, false, false, false]), 25.0);
    }

    #[test]
    fn n_detect_coverage_edges() {
        assert_eq!(n_detect_coverage(&[], 1), 0.0);
        assert_eq!(n_detect_coverage(&[0, 1, 2, 3], 1), 75.0);
        assert_eq!(n_detect_coverage(&[0, 1, 2, 3], 3), 25.0);
    }

    /// The deprecated shim gives the same answers as the engine it wraps.
    #[test]
    fn legacy_shim_delegates_faithfully() {
        let net = s27();
        let faults = all_transition_faults(&net);
        let mut rng = Rng::new(17);
        let tests: Vec<BroadsideTest> = (0..96)
            .map(|_| {
                BroadsideTest::new(
                    (0..3).map(|_| rng.bit()).collect(),
                    (0..4).map(|_| rng.bit()).collect(),
                    (0..4).map(|_| rng.bit()).collect(),
                )
            })
            .collect();
        let mut legacy = FaultSim::new(&net);
        let mut engine = SerialSim::new(&net);
        let mut det_l = vec![false; faults.len()];
        let mut det_e = vec![false; faults.len()];
        assert_eq!(
            legacy.run(&tests, &faults, &mut det_l),
            engine.run(&tests, &faults, &mut det_e)
        );
        assert_eq!(det_l, det_e);
        assert_eq!(
            legacy.run_n_detect(&tests, &faults, 4),
            engine.n_detect_profile(&tests, &faults, 4)
        );
        assert_eq!(
            legacy.detection_matrix(&tests, &faults),
            FaultSimEngine::detection_matrix(&mut engine, &tests, &faults).into_rows()
        );
    }
}
